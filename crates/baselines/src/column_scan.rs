//! The column-scan baseline (MonetDB stand-in).
//!
//! "The MonetDB column store does not have a spatial index but instead
//! stores bounding boxes as a separate column. The rationale is that
//! the sequential access pattern of scanning a column offsets the
//! extra computation due to the lack of an index" (§2.3). Queries scan
//! the packed bbox column with multiple threads; the `-B` variant
//! answers from boxes alone, the `-G` variant refines with full
//! geometry ("the lack of spatial optimisations in MonetDB results in
//! it performing the slowest of all systems" for `-G`). The join
//! materialises the whole MBR candidate set before refinement —
//! MonetDB's "requires sufficient memory to hold the product of the
//! joined columns" behaviour.

use crate::{BaselineAnswer, BaselineQuery};
use atgis_formats::{parse_all, Format, MetadataFilter, Mode, ParseError, RawFeature};
use atgis_geometry::relate::intersects;
use atgis_geometry::{measures, DistanceModel, Geometry, Mbr};

/// Whether queries stop at bounding boxes (`-B`) or refine with full
/// geometries (`-G`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refinement {
    /// Bounding boxes only (PostGIS-B / MonetDB-B in Fig. 10).
    BoxOnly,
    /// Full geometry comparison (PostGIS-G / MonetDB-G).
    FullGeometry,
}

/// The loaded column store: a packed MBR column plus the geometry heap.
pub struct ColumnStore {
    boxes: Vec<Mbr>,
    features: Vec<RawFeature>,
    /// Load (parse + columnise) time.
    pub load_time: std::time::Duration,
}

impl ColumnStore {
    /// One parse pass materialising the bbox column.
    pub fn load(input: &[u8], format: Format) -> Result<Self, ParseError> {
        let started = std::time::Instant::now();
        let features = parse_all(input, format, Mode::Pat, &MetadataFilter::All)?;
        let boxes = features.iter().map(|f| f.geometry.mbr()).collect();
        Ok(ColumnStore {
            boxes,
            features,
            load_time: started.elapsed(),
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Executes a query by scanning the bbox column with `threads`
    /// workers.
    pub fn execute(
        &self,
        query: &BaselineQuery,
        refinement: Refinement,
        threads: usize,
    ) -> BaselineAnswer {
        match query {
            BaselineQuery::Containment(region) => {
                let hits = self.scan(&region.mbr(), threads);
                let mut ids: Vec<u64> = hits
                    .into_iter()
                    .filter(|&i| {
                        refinement == Refinement::BoxOnly
                            || intersects(
                                &self.features[i].geometry,
                                &Geometry::Polygon(region.clone()),
                            )
                    })
                    .map(|i| self.features[i].id)
                    .collect();
                ids.sort_unstable();
                BaselineAnswer::Matches(ids)
            }
            BaselineQuery::Aggregation(region) => {
                let hits = self.scan(&region.mbr(), threads);
                let mut count = 0;
                let mut area = 0.0;
                let mut perimeter = 0.0;
                for i in hits {
                    let f = &self.features[i];
                    if refinement == Refinement::FullGeometry
                        && !intersects(&f.geometry, &Geometry::Polygon(region.clone()))
                    {
                        continue;
                    }
                    count += 1;
                    area += measures::area(&f.geometry, DistanceModel::Spherical);
                    perimeter += measures::perimeter(&f.geometry, DistanceModel::Spherical);
                }
                BaselineAnswer::Aggregate(count, area, perimeter)
            }
            BaselineQuery::Join(threshold) => {
                // Materialise the full MBR candidate product, then
                // refine — the memory-hungry MonetDB plan.
                let mut candidates: Vec<(usize, usize)> = Vec::new();
                for (i, f) in self.features.iter().enumerate() {
                    if f.id >= *threshold {
                        continue;
                    }
                    for (j, g) in self.features.iter().enumerate() {
                        if g.id < *threshold {
                            continue;
                        }
                        if self.boxes[i].intersects(&self.boxes[j]) {
                            candidates.push((i, j));
                        }
                    }
                }
                let mut pairs: Vec<(u64, u64)> = candidates
                    .into_iter()
                    .filter(|&(i, j)| {
                        refinement == Refinement::BoxOnly
                            || intersects(&self.features[i].geometry, &self.features[j].geometry)
                    })
                    .map(|(i, j)| (self.features[i].id, self.features[j].id))
                    .collect();
                pairs.sort_unstable();
                BaselineAnswer::Pairs(pairs)
            }
        }
    }

    /// Multi-threaded sequential scan of the bbox column.
    fn scan(&self, query: &Mbr, threads: usize) -> Vec<usize> {
        let threads = threads.max(1);
        if threads == 1 || self.boxes.len() < 1024 {
            return self
                .boxes
                .iter()
                .enumerate()
                .filter(|(_, b)| b.intersects(query))
                .map(|(i, _)| i)
                .collect();
        }
        let chunk = self.boxes.len().div_ceil(threads);
        let mut out: Vec<Vec<usize>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .boxes
                .chunks(chunk)
                .enumerate()
                .map(|(k, part)| {
                    scope.spawn(move || {
                        part.iter()
                            .enumerate()
                            .filter(|(_, b)| b.intersects(query))
                            .map(|(i, _)| k * chunk + i)
                            .collect::<Vec<usize>>()
                    })
                })
                .collect();
            out = handles
                .into_iter()
                .map(|h| h.join().expect("scan thread panicked"))
                .collect();
        });
        out.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential;
    use atgis_datagen::{write_geojson, OsmGenerator};

    fn fixture() -> Vec<u8> {
        write_geojson(&OsmGenerator::new(31).generate(50))
    }

    #[test]
    fn full_geometry_agrees_with_sequential() {
        let bytes = fixture();
        let store = ColumnStore::load(&bytes, Format::GeoJson).unwrap();
        let q = BaselineQuery::containment(Mbr::new(-5.0, 45.0, 5.0, 55.0));
        let a = store.execute(&q, Refinement::FullGeometry, 2);
        let b = sequential::execute(&bytes, Format::GeoJson, &q).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn box_only_is_a_superset() {
        let bytes = fixture();
        let store = ColumnStore::load(&bytes, Format::GeoJson).unwrap();
        let q = BaselineQuery::containment(Mbr::new(-5.0, 45.0, 5.0, 55.0));
        let full = match store.execute(&q, Refinement::FullGeometry, 1) {
            BaselineAnswer::Matches(m) => m,
            other => panic!("{other:?}"),
        };
        let boxes = match store.execute(&q, Refinement::BoxOnly, 1) {
            BaselineAnswer::Matches(m) => m,
            other => panic!("{other:?}"),
        };
        for id in &full {
            assert!(boxes.contains(id), "box filter must not lose matches");
        }
        assert!(boxes.len() >= full.len());
    }

    #[test]
    fn join_agrees_with_sequential() {
        let bytes = fixture();
        let store = ColumnStore::load(&bytes, Format::GeoJson).unwrap();
        let q = BaselineQuery::Join(25);
        let a = store.execute(&q, Refinement::FullGeometry, 1);
        let b = sequential::execute(&bytes, Format::GeoJson, &q).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn thread_counts_agree() {
        let bytes = write_geojson(&OsmGenerator::new(32).generate(2000));
        let store = ColumnStore::load(&bytes, Format::GeoJson).unwrap();
        let q = BaselineQuery::containment(Mbr::new(-5.0, 45.0, 5.0, 55.0));
        let one = store.execute(&q, Refinement::BoxOnly, 1);
        let four = store.execute(&q, Refinement::BoxOnly, 4);
        assert_eq!(one, four);
    }
}
