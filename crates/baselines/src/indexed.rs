//! The indexed-RDBMS baseline (PostGIS / DBMS-X stand-in).
//!
//! "RDBMS can only offer fast spatial query processing after the data
//! has been fully parsed, loaded and indexed — in our experiments,
//! loading the complete OpenStreetMap dataset into PostGIS takes over
//! 90 minutes, with an additional 75 minutes to construct the index"
//! (§1). This baseline makes that cost explicit: [`IndexedStore::load`]
//! parses everything and materialises geometries, [`IndexedStore::
//! build_index`] STR-bulk-loads an R-tree over the bounding boxes, and
//! only then are queries cheap. `data_to_query` = load + index +
//! first-query, the metric AT-GIS optimises.

use crate::{BaselineAnswer, BaselineQuery};
use atgis_formats::{parse_all, Format, MetadataFilter, Mode, ParseError, RawFeature};
use atgis_geometry::relate::intersects;
use atgis_geometry::{measures, DistanceModel, Geometry};
use atgis_rtree::RTree;
use std::time::{Duration, Instant};

/// A loaded, indexed spatial store.
pub struct IndexedStore {
    features: Vec<RawFeature>,
    index: Option<RTree>,
    /// Wall-clock cost of the load phase.
    pub load_time: Duration,
    /// Wall-clock cost of the index build.
    pub index_time: Duration,
}

impl IndexedStore {
    /// The load phase: full parse + materialisation.
    pub fn load(input: &[u8], format: Format) -> Result<Self, ParseError> {
        let started = Instant::now();
        let features = parse_all(input, format, Mode::Pat, &MetadataFilter::All)?;
        Ok(IndexedStore {
            features,
            index: None,
            load_time: started.elapsed(),
            index_time: Duration::ZERO,
        })
    }

    /// The index phase: STR bulk load over feature MBRs.
    pub fn build_index(&mut self) {
        let started = Instant::now();
        let items: Vec<_> = self
            .features
            .iter()
            .enumerate()
            .map(|(i, f)| (f.geometry.mbr(), i as u64))
            .collect();
        self.index = Some(RTree::bulk_load(items));
        self.index_time = started.elapsed();
    }

    /// Total data-to-query overhead paid before the first answer.
    pub fn data_to_query_overhead(&self) -> Duration {
        self.load_time + self.index_time
    }

    /// Number of loaded features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when nothing is loaded.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Executes a query using the index (which must have been built).
    pub fn execute(&self, query: &BaselineQuery) -> BaselineAnswer {
        let index = self.index.as_ref().expect("index not built");
        match query {
            BaselineQuery::Containment(region) => {
                let mut ids: Vec<u64> = index
                    .query(&region.mbr())
                    .into_iter()
                    .map(|i| &self.features[i as usize])
                    .filter(|f| intersects(&f.geometry, &Geometry::Polygon(region.clone())))
                    .map(|f| f.id)
                    .collect();
                ids.sort_unstable();
                BaselineAnswer::Matches(ids)
            }
            BaselineQuery::Aggregation(region) => {
                let mut count = 0;
                let mut area = 0.0;
                let mut perimeter = 0.0;
                for i in index.query(&region.mbr()) {
                    let f = &self.features[i as usize];
                    if intersects(&f.geometry, &Geometry::Polygon(region.clone())) {
                        count += 1;
                        area += measures::area(&f.geometry, DistanceModel::Spherical);
                        perimeter += measures::perimeter(&f.geometry, DistanceModel::Spherical);
                    }
                }
                BaselineAnswer::Aggregate(count, area, perimeter)
            }
            BaselineQuery::Join(threshold) => {
                // Index-nested-loop join: probe the R-tree with each
                // left geometry's box.
                let mut pairs = Vec::new();
                for f in self.features.iter().filter(|f| f.id < *threshold) {
                    for i in index.query(&f.geometry.mbr()) {
                        let g = &self.features[i as usize];
                        if g.id >= *threshold && intersects(&f.geometry, &g.geometry) {
                            pairs.push((f.id, g.id));
                        }
                    }
                }
                pairs.sort_unstable();
                pairs.dedup();
                BaselineAnswer::Pairs(pairs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential;
    use atgis_datagen::{write_geojson, OsmGenerator};
    use atgis_geometry::Mbr;

    fn fixture() -> Vec<u8> {
        write_geojson(&OsmGenerator::new(30).generate(60))
    }

    #[test]
    fn indexed_agrees_with_sequential() {
        let bytes = fixture();
        let mut store = IndexedStore::load(&bytes, Format::GeoJson).unwrap();
        store.build_index();
        for query in [
            BaselineQuery::containment(Mbr::new(-5.0, 45.0, 5.0, 55.0)),
            BaselineQuery::Join(30),
        ] {
            let a = store.execute(&query);
            let b = sequential::execute(&bytes, Format::GeoJson, &query).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn aggregation_agrees_with_sequential() {
        let bytes = fixture();
        let mut store = IndexedStore::load(&bytes, Format::GeoJson).unwrap();
        store.build_index();
        let q = BaselineQuery::aggregation(Mbr::new(-10.0, 40.0, 10.0, 60.0));
        let (a, b) = (
            store.execute(&q),
            sequential::execute(&bytes, Format::GeoJson, &q).unwrap(),
        );
        match (a, b) {
            (BaselineAnswer::Aggregate(c1, a1, p1), BaselineAnswer::Aggregate(c2, a2, p2)) => {
                assert_eq!(c1, c2);
                assert!((a1 - a2).abs() < 1e-6);
                assert!((p1 - p2).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn load_and_index_phases_are_timed() {
        let bytes = fixture();
        let mut store = IndexedStore::load(&bytes, Format::GeoJson).unwrap();
        assert!(store.load_time > Duration::ZERO);
        store.build_index();
        assert_eq!(store.len(), 60);
        assert!(store.data_to_query_overhead() >= store.load_time);
    }
}
