//! Simulated comparator systems for the Fig. 10 evaluation.
//!
//! The paper compares AT-GIS against PostGIS, MonetDB, a commercial
//! DBMS (DBMS-X), Hadoop-GIS and SpatialHadoop. None of those are
//! linkable from a Rust benchmark, so this crate implements
//! architectural stand-ins that preserve the *cost structure* each
//! system contributes to the comparison:
//!
//! * [`sequential`] — single-threaded raw-file scan: the no-parallelism
//!   floor every system must beat;
//! * [`indexed`] — an RDBMS-like engine (PostGIS / DBMS-X): pays an
//!   explicit **load + index** phase (parse everything, STR-bulk-load
//!   an R-tree), after which queries are index probes plus geometry
//!   refinement. Captures the data-to-query trade-off of §5.1;
//! * [`column_scan`] — a MonetDB-like engine: one parse pass
//!   materialises a bounding-box column; queries scan it sequentially
//!   (multi-threaded), optionally refining with full geometry (the
//!   paper's `-B` vs `-G` variants). Joins build the full candidate
//!   cross product in memory, reproducing MonetDB's failure mode;
//! * the Hadoop-like map/reduce comparator (`cluster_sim`) lives in
//!   the bench harness (`atgis-bench`), not here: it is a figure
//!   comparator only, never an oracle for correctness tests.
//!
//! See `ARCHITECTURE.md` at the repository root for how this crate
//! fits into the workspace as the oracle/baseline support crate of the four-layer design,
//! plus the ingest → seal → query lifecycle and the data flow of a
//! scheduled batch.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod column_scan;
pub mod indexed;
pub mod sequential;

use atgis_formats::RawFeature;
use atgis_geometry::{relate, Geometry, Mbr, Polygon};

/// Shared query shapes evaluated by every baseline (mirrors Table 3).
#[derive(Debug, Clone)]
pub enum BaselineQuery {
    /// Count/collect geometries intersecting the region.
    Containment(Polygon),
    /// Sum area and perimeter of geometries intersecting the region.
    Aggregation(Polygon),
    /// Self-join at an id threshold.
    Join(u64),
}

impl BaselineQuery {
    /// Containment against a box.
    pub fn containment(region: Mbr) -> Self {
        BaselineQuery::Containment(Polygon::from_mbr(&region))
    }

    /// Aggregation against a box.
    pub fn aggregation(region: Mbr) -> Self {
        BaselineQuery::Aggregation(Polygon::from_mbr(&region))
    }
}

/// A baseline's answer, normalised for cross-system comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineAnswer {
    /// Matching object ids (sorted).
    Matches(Vec<u64>),
    /// `(count, total area, total perimeter)`.
    Aggregate(u64, f64, f64),
    /// Joined `(left id, right id)` pairs (sorted).
    Pairs(Vec<(u64, u64)>),
}

pub(crate) fn geometry_matches(g: &Geometry, region: &Polygon) -> bool {
    g.mbr().intersects(&region.mbr()) && relate::intersects(g, &Geometry::Polygon(region.clone()))
}

pub(crate) fn answer_containment(features: &[RawFeature], region: &Polygon) -> BaselineAnswer {
    let mut ids: Vec<u64> = features
        .iter()
        .filter(|f| geometry_matches(&f.geometry, region))
        .map(|f| f.id)
        .collect();
    ids.sort_unstable();
    BaselineAnswer::Matches(ids)
}

pub(crate) fn answer_aggregation(features: &[RawFeature], region: &Polygon) -> BaselineAnswer {
    use atgis_geometry::{measures, DistanceModel};
    let mut count = 0;
    let mut area = 0.0;
    let mut perimeter = 0.0;
    for f in features {
        if geometry_matches(&f.geometry, region) {
            count += 1;
            area += measures::area(&f.geometry, DistanceModel::Spherical);
            perimeter += measures::perimeter(&f.geometry, DistanceModel::Spherical);
        }
    }
    BaselineAnswer::Aggregate(count, area, perimeter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgis_geometry::Point;

    #[test]
    fn containment_answer_is_sorted() {
        let mk = |id, x| RawFeature {
            id,
            geometry: Geometry::Point(Point::new(x, 0.0)),
            offset: id,
            len: 1,
        };
        let features = vec![mk(3, 0.5), mk(1, 0.2), mk(2, 99.0)];
        let region = Polygon::from_mbr(&Mbr::new(0.0, -1.0, 1.0, 1.0));
        match answer_containment(&features, &region) {
            BaselineAnswer::Matches(ids) => assert_eq!(ids, vec![1, 3]),
            other => panic!("{other:?}"),
        }
    }
}
