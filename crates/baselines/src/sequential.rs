//! The sequential baseline: one thread, one parse pass, no index —
//! the floor against which parallel speedups are measured.

use crate::{answer_aggregation, answer_containment, BaselineAnswer, BaselineQuery};
use atgis_formats::{parse_all, Format, MetadataFilter, Mode, ParseError};
use atgis_geometry::relate::intersects;

/// Executes a query with a single sequential scan over the raw bytes.
pub fn execute(
    input: &[u8],
    format: Format,
    query: &BaselineQuery,
) -> Result<BaselineAnswer, ParseError> {
    let features = parse_all(input, format, Mode::Pat, &MetadataFilter::All)?;
    Ok(match query {
        BaselineQuery::Containment(region) => answer_containment(&features, region),
        BaselineQuery::Aggregation(region) => answer_aggregation(&features, region),
        BaselineQuery::Join(threshold) => {
            // Nested-loop join with an MBR pre-filter — the naive plan
            // a system without spatial partitioning executes.
            let mut pairs = Vec::new();
            for a in features.iter().filter(|f| f.id < *threshold) {
                let am = a.geometry.mbr();
                for b in features.iter().filter(|f| f.id >= *threshold) {
                    if am.intersects(&b.geometry.mbr()) && intersects(&a.geometry, &b.geometry) {
                        pairs.push((a.id, b.id));
                    }
                }
            }
            pairs.sort_unstable();
            BaselineAnswer::Pairs(pairs)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgis_datagen::{write_geojson, OsmGenerator};
    use atgis_geometry::Mbr;

    #[test]
    fn containment_counts() {
        let ds = OsmGenerator::new(20).generate(50);
        let bytes = write_geojson(&ds);
        let world = BaselineQuery::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
        match execute(&bytes, Format::GeoJson, &world).unwrap() {
            BaselineAnswer::Matches(ids) => assert_eq!(ids.len(), 50),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn join_respects_threshold() {
        let ds = OsmGenerator::new(21).generate(40);
        let bytes = write_geojson(&ds);
        match execute(&bytes, Format::GeoJson, &BaselineQuery::Join(20)).unwrap() {
            BaselineAnswer::Pairs(pairs) => {
                for (l, r) in pairs {
                    assert!(l < 20 && r >= 20);
                }
            }
            other => panic!("{other:?}"),
        }
    }
}
