//! Fig. 9: scaling of containment (a), aggregation (b) and join (c)
//! queries with the number of CPU cores, for both FAT and PAT modes.

use atgis::{Engine, Query};
use atgis_bench::Workload;
use atgis_formats::Mode;
use atgis_geometry::Mbr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn engine(threads: usize, mode: Mode) -> Engine {
    Engine::builder()
        .threads(threads)
        .mode(mode)
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .build()
}

fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    [1usize, 2, 4].into_iter().filter(|&t| t <= max.max(2)).collect()
}

fn bench_scaling(c: &mut Criterion) {
    let w = Workload::build(atgis_bench::scaled(3000));
    let region = w.region();
    let threshold = (w.objects / 2) as u64;

    let mut group = c.benchmark_group("fig09a_containment");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(w.osm_g.len() as u64));
    for t in thread_counts() {
        for (mode, name) in [(Mode::Pat, "PAT"), (Mode::Fat, "FAT")] {
            let e = engine(t, mode);
            group.bench_with_input(
                BenchmarkId::new(name, t),
                &t,
                |b, _| b.iter(|| e.execute(&Query::containment(region), &w.osm_g).unwrap()),
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("fig09b_aggregation");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(w.osm_g.len() as u64));
    for t in thread_counts() {
        for (mode, name) in [(Mode::Pat, "PAT"), (Mode::Fat, "FAT")] {
            let e = engine(t, mode);
            group.bench_with_input(
                BenchmarkId::new(name, t),
                &t,
                |b, _| b.iter(|| e.execute(&Query::aggregation(region), &w.osm_g).unwrap()),
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("fig09c_join");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(w.osm_g.len() as u64));
    for t in thread_counts() {
        let e = engine(t, Mode::Pat);
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| e.execute(&Query::join(threshold), &w.osm_g).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
