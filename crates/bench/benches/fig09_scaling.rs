//! Fig. 9: scaling of containment (a), aggregation (b) and join (c)
//! queries with the number of CPU cores, for both FAT and PAT modes —
//! plus (d) the parallel speculative-lex scan, old byte loop vs the
//! vectorised scanner, across thread counts.

use atgis::executor::run_blocks;
use atgis::pool::JobFault;
use atgis::{Engine, Query};
use atgis_bench::{RunExt, Workload};
use atgis_formats::geojson::lexer;
use atgis_formats::{fixed_blocks, Mode};
use atgis_geometry::Mbr;
use atgis_transducer::Mergeable;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// Block-parallel speculative lexing (the FAT pipeline's stage 1) at
/// each thread count, with the seed byte loop and the vectorised
/// scanner — MB/s shows how far each is from the memory bus.
fn bench_scan_scaling(c: &mut Criterion) {
    let w = Workload::build(atgis_bench::scaled(3000));
    let input = w.osm_g.bytes();
    let mut group = c.benchmark_group("fig09d_scan_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(input.len() as u64));
    for t in thread_counts() {
        let blocks = fixed_blocks(input.len(), t * 4);
        for (name, bulk) in [("bytewise", false), ("vectorised", true)] {
            group.bench_with_input(BenchmarkId::new(name, t), &t, |b, &t| {
                b.iter(|| {
                    let (merged, _) = run_blocks(
                        &blocks,
                        t,
                        |blk| {
                            let bytes = blk.slice(input);
                            let frag = if bulk {
                                lexer::lex_block(bytes, blk.start as u64)
                            } else {
                                lexer::lex_block_bytewise(bytes, blk.start as u64)
                            };
                            Ok::<_, JobFault>(frag)
                        },
                        |a, b| Ok(a.merge(b)),
                    );
                    merged.unwrap().map(|f| f.distinct_finishing_states())
                })
            });
        }
    }
    group.finish();
}

fn engine(threads: usize, mode: Mode) -> Engine {
    Engine::builder()
        .threads(threads)
        .mode(mode)
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .build()
}

fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    [1usize, 2, 4]
        .into_iter()
        .filter(|&t| t <= max.max(2))
        .collect()
}

fn bench_scaling(c: &mut Criterion) {
    let w = Workload::build(atgis_bench::scaled(3000));
    let region = w.region();
    let threshold = (w.objects / 2) as u64;

    let mut group = c.benchmark_group("fig09a_containment");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(w.osm_g.len() as u64));
    for t in thread_counts() {
        for (mode, name) in [(Mode::Pat, "PAT"), (Mode::Fat, "FAT")] {
            let e = engine(t, mode);
            group.bench_with_input(BenchmarkId::new(name, t), &t, |b, _| {
                b.iter(|| e.exec1(&Query::containment(region), &w.osm_g).unwrap())
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("fig09b_aggregation");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(w.osm_g.len() as u64));
    for t in thread_counts() {
        for (mode, name) in [(Mode::Pat, "PAT"), (Mode::Fat, "FAT")] {
            let e = engine(t, mode);
            group.bench_with_input(BenchmarkId::new(name, t), &t, |b, _| {
                b.iter(|| e.exec1(&Query::aggregation(region), &w.osm_g).unwrap())
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("fig09c_join");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(w.osm_g.len() as u64));
    for t in thread_counts() {
        let e = engine(t, Mode::Pat);
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| e.exec1(&Query::join(threshold), &w.osm_g).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan_scaling, bench_scaling);
criterion_main!(benches);
