//! Fig. 10: query execution time comparison across systems — AT-GIS
//! (PAT/FAT) against the sequential, indexed-RDBMS, column-scan and
//! simulated-cluster baselines.

use atgis::{Engine, Query};
use atgis_baselines::{column_scan, indexed, sequential, BaselineQuery};
use atgis_bench::cluster_sim;
use atgis_bench::{RunExt, Workload};
use atgis_formats::{Format, Mode};
use atgis_geometry::Mbr;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_systems(c: &mut Criterion) {
    let w = Workload::build(atgis_bench::scaled(1500));
    let region = w.region();
    let threads = 2;

    let mut group = c.benchmark_group("fig10_containment");
    group.sample_size(10);

    let pat = Engine::builder().threads(threads).mode(Mode::Pat).build();
    group.bench_function("atgis_pat", |b| {
        b.iter(|| pat.exec1(&Query::containment(region), &w.osm_g).unwrap())
    });
    let fat = Engine::builder().threads(threads).mode(Mode::Fat).build();
    group.bench_function("atgis_fat", |b| {
        b.iter(|| fat.exec1(&Query::containment(region), &w.osm_g).unwrap())
    });
    group.bench_function("sequential", |b| {
        b.iter(|| {
            sequential::execute(
                w.osm_g.bytes(),
                Format::GeoJson,
                &BaselineQuery::containment(region),
            )
            .unwrap()
        })
    });
    // Indexed store: query-only time (load+index amortised out, as in
    // the paper's footnote that loading is excluded for the others).
    let mut store = indexed::IndexedStore::load(w.osm_g.bytes(), Format::GeoJson).unwrap();
    store.build_index();
    group.bench_function("indexed_query_only", |b| {
        b.iter(|| store.execute(&BaselineQuery::containment(region)))
    });
    // Indexed store including data-to-query (load + index + query).
    group.bench_function("indexed_data_to_query", |b| {
        b.iter(|| {
            let mut s = indexed::IndexedStore::load(w.osm_g.bytes(), Format::GeoJson).unwrap();
            s.build_index();
            s.execute(&BaselineQuery::containment(region))
        })
    });
    let col = column_scan::ColumnStore::load(w.osm_g.bytes(), Format::GeoJson).unwrap();
    group.bench_function("column_scan_box", |b| {
        b.iter(|| {
            col.execute(
                &BaselineQuery::containment(region),
                column_scan::Refinement::BoxOnly,
                threads,
            )
        })
    });
    group.bench_function("column_scan_geom", |b| {
        b.iter(|| {
            col.execute(
                &BaselineQuery::containment(region),
                column_scan::Refinement::FullGeometry,
                threads,
            )
        })
    });
    group.bench_function("cluster_sim_compute", |b| {
        b.iter(|| {
            cluster_sim::execute(
                w.osm_g.bytes(),
                Format::GeoJson,
                &BaselineQuery::containment(region),
                &cluster_sim::ClusterConfig {
                    job_startup: std::time::Duration::ZERO,
                    shuffle_per_record: std::time::Duration::ZERO,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("fig10_aggregation");
    group.sample_size(10);
    group.bench_function("atgis_pat", |b| {
        b.iter(|| pat.exec1(&Query::aggregation(region), &w.osm_g).unwrap())
    });
    group.bench_function("sequential", |b| {
        b.iter(|| {
            sequential::execute(
                w.osm_g.bytes(),
                Format::GeoJson,
                &BaselineQuery::aggregation(region),
            )
            .unwrap()
        })
    });
    group.bench_function("indexed_query_only", |b| {
        b.iter(|| store.execute(&BaselineQuery::aggregation(region)))
    });
    group.finish();

    let threshold = (w.objects / 2) as u64;
    let mut group = c.benchmark_group("fig10_join");
    group.sample_size(10);
    let pat_grid = Engine::builder()
        .threads(threads)
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .build();
    group.bench_function("atgis", |b| {
        b.iter(|| pat_grid.exec1(&Query::join(threshold), &w.osm_g).unwrap())
    });
    group.bench_function("indexed_query_only", |b| {
        b.iter(|| store.execute(&BaselineQuery::Join(threshold)))
    });
    group.finish();
}

criterion_group!(benches, bench_systems);
criterion_main!(benches);
