//! Fig. 11: partition-pipeline vs join-pipeline time as threads vary,
//! reported for both the uniform grid and the skew-adaptive
//! partition map.

use atgis::{Engine, Query};
use atgis_bench::{RunExt, Workload};
use atgis_geometry::Mbr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_partition_join(c: &mut Criterion) {
    let w = Workload::build(atgis_bench::scaled(2000));
    let threshold = (w.objects / 2) as u64;
    let mut group = c.benchmark_group("fig11_join_total");
    group.sample_size(10);
    for t in [1usize, 2, 4] {
        for (name, target) in [("uniform", 0usize), ("adaptive", 256)] {
            let e = Engine::builder()
                .threads(t)
                .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
                .partition_target(target)
                .build();
            group.bench_with_input(BenchmarkId::new(name, t), &t, |b, _| {
                b.iter(|| e.exec1(&Query::join(threshold), &w.osm_g).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_partition_join);
criterion_main!(benches);
