//! Fig. 12: throughput of each query on each data format (GeoJSON,
//! WKT, OSM XML, replicated).

use atgis::{Engine, Query};
use atgis_bench::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_formats(c: &mut Criterion) {
    let w = Workload::build(atgis_bench::scaled(1500));
    let region = w.region();
    let e = Engine::builder().threads(2).build();
    let mut group = c.benchmark_group("fig12_containment_by_format");
    group.sample_size(10);
    for (name, ds) in [("osm_g", &w.osm_g), ("osm_w", &w.osm_w), ("osm_x", &w.osm_x), ("osm_rep", &w.osm_rep)] {
        group.throughput(Throughput::Bytes(ds.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), ds, |b, ds| {
            b.iter(|| e.execute(&Query::containment(region), ds).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig12_aggregation_by_format");
    group.sample_size(10);
    for (name, ds) in [("osm_g", &w.osm_g), ("osm_w", &w.osm_w), ("osm_x", &w.osm_x)] {
        group.throughput(Throughput::Bytes(ds.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), ds, |b, ds| {
            b.iter(|| e.execute(&Query::aggregation(region), ds).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);
