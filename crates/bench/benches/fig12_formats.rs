//! Fig. 12: throughput of each query on each data format (GeoJSON,
//! WKT, OSM XML, replicated) — plus the structural-scan ablation
//! comparing the seed's byte-at-a-time DFA loop against the
//! vectorised skip scanner on the same GeoJSON bytes.

use atgis::{Engine, Query};
use atgis_bench::{RunExt, Workload};
use atgis_formats::geojson::lexer;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// Old-vs-new structural scan over raw GeoJSON: identical token
/// stream, only the scan loop differs. MB/s is the number the paper's
/// "saturate the memory bus" claim lives or dies on.
fn bench_scan(c: &mut Criterion) {
    let w = Workload::build(atgis_bench::scaled(1500));
    let input = w.osm_g.bytes();
    let dfa = lexer::lexer();
    let mut group = c.benchmark_group("fig12_structural_scan");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("bytewise_seed", |b| {
        b.iter(|| {
            let mut n = 0u64;
            dfa.run_bytewise(lexer::STATE_OUT, input, 0, |_, _| n += 1);
            n
        })
    });
    group.bench_function("vectorised", |b| {
        b.iter(|| {
            let mut n = 0u64;
            dfa.run(lexer::STATE_OUT, input, 0, |_, _| n += 1);
            n
        })
    });
    group.finish();
}

fn bench_formats(c: &mut Criterion) {
    let w = Workload::build(atgis_bench::scaled(1500));
    let region = w.region();
    let e = Engine::builder().threads(2).build();
    let mut group = c.benchmark_group("fig12_containment_by_format");
    group.sample_size(10);
    for (name, ds) in [
        ("osm_g", &w.osm_g),
        ("osm_w", &w.osm_w),
        ("osm_x", &w.osm_x),
        ("osm_rep", &w.osm_rep),
    ] {
        group.throughput(Throughput::Bytes(ds.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), ds, |b, ds| {
            b.iter(|| e.exec1(&Query::containment(region), ds).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig12_aggregation_by_format");
    group.sample_size(10);
    for (name, ds) in [
        ("osm_g", &w.osm_g),
        ("osm_w", &w.osm_w),
        ("osm_x", &w.osm_x),
    ] {
        group.throughput(Throughput::Bytes(ds.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), ds, |b, ds| {
            b.iter(|| e.exec1(&Query::aggregation(region), ds).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan, bench_formats);
criterion_main!(benches);
