//! Fig. 13: streaming vs buffered filtering across selectivities,
//! under the spherical-projection and Andoyer distance models.

use atgis::{Engine, FilterStrategy, Metric, Query};
use atgis_bench::{RunExt, Workload};
use atgis_geometry::{DistanceModel, Mbr};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_filtering(c: &mut Criterion) {
    let w = Workload::build(atgis_bench::scaled(2000));
    let e = Engine::builder().threads(2).build();
    for (model, label) in [
        (DistanceModel::Spherical, "fig13a_spherical"),
        (DistanceModel::Andoyer, "fig13b_andoyer"),
    ] {
        let mut group = c.benchmark_group(label);
        group.sample_size(10);
        for frac in [100u32, 10, 1] {
            // Region whose area is frac% of the data extent.
            let f = (frac as f64 / 100.0).sqrt();
            let region = Mbr::new(
                -5.0 - 11.0 * f,
                50.0 - 11.0 * f,
                -5.0 + 11.0 * f,
                50.0 + 11.0 * f,
            );
            for (strategy, name) in [
                (FilterStrategy::Streaming, "streaming"),
                (FilterStrategy::Buffered, "buffered"),
            ] {
                let q = Query::aggregation_with(
                    region,
                    vec![Metric::Area, Metric::Perimeter],
                    model,
                    strategy,
                );
                group.bench_with_input(BenchmarkId::new(name, frac), &q, |b, q| {
                    b.iter(|| e.exec1(q, &w.osm_g).unwrap())
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_filtering);
criterion_main!(benches);
