//! Fig. 14: FAT vs PAT under dataset skew — few huge objects (a) and
//! log-normal edge-count skew (b) — plus the join-skew experiment (c):
//! uniform-grid vs skew-adaptive partitioning on a hotspot dataset
//! where one grid cell holds most of the objects.

use atgis::{Dataset, Engine, Query};
use atgis_bench::RunExt;
use atgis_datagen::{write_geojson, OsmGenerator, SynthConfig};
use atgis_formats::{Format, Mode};
use atgis_geometry::Mbr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn dataset(objects: usize, sigma: f64, mu: f64) -> Dataset {
    let ds = SynthConfig {
        objects,
        sigma,
        mu,
        seed: 44,
        multipolygon_fraction: 0.0,
    }
    .generate();
    Dataset::from_bytes(atgis_datagen::write_geojson(&ds), Format::GeoJson)
}

fn bench_skew(c: &mut Criterion) {
    let world = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));

    let mut group = c.benchmark_group("fig14a_object_count");
    group.sample_size(10);
    let total_points = atgis_bench::scaled(50_000);
    for n in [10usize, 100, 1000] {
        let mu = ((total_points as f64 / n as f64).max(4.0)).ln();
        let ds = dataset(n, 0.3, mu);
        group.throughput(Throughput::Bytes(ds.len() as u64));
        for (mode, name) in [(Mode::Fat, "FAT"), (Mode::Pat, "PAT")] {
            let e = Engine::builder().threads(2).mode(mode).build();
            group.bench_with_input(BenchmarkId::new(name, n), &ds, |b, ds| {
                b.iter(|| e.exec1(&world, ds).unwrap())
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("fig14b_sigma");
    group.sample_size(10);
    for sigma in [1u32, 3, 5] {
        let ds = dataset(atgis_bench::scaled(150), sigma as f64, 2.0);
        group.throughput(Throughput::Bytes(ds.len() as u64));
        for (mode, name) in [(Mode::Fat, "FAT"), (Mode::Pat, "PAT")] {
            let e = Engine::builder().threads(2).mode(mode).build();
            group.bench_with_input(BenchmarkId::new(name, sigma), &ds, |b, ds| {
                b.iter(|| e.exec1(&world, ds).unwrap())
            });
        }
    }
    group.finish();

    // (c) Join skew: 85% of the objects packed into a thin corridor
    // (coastline-style linear clustering). Every corridor object
    // shares its x-range with every other, so the uniform grid's hot
    // cells degrade the sweep-based MBR compare to quadratic; the
    // adaptive map recursively splits them and restores
    // y-discrimination. Both configurations are reported so the
    // throughput gap is visible in the output.
    let mut group = c.benchmark_group("fig14c_join_skew");
    group.sample_size(10);
    let n = atgis_bench::scaled(12_000);
    let mut gen = OsmGenerator::new(77)
        .with_corridor(0.85, 0.0003, 0.4)
        .with_object_scale(0.1);
    gen.road_fraction = 0.0;
    gen.multipolygon_fraction = 0.0;
    gen.collection_fraction = 0.0;
    let ds = Dataset::from_bytes(write_geojson(&gen.generate(n)), Format::GeoJson);
    let join = Query::join(n as u64 / 2);
    group.throughput(Throughput::Bytes(ds.len() as u64));
    for (name, target) in [("uniform", 0usize), ("adaptive", 64)] {
        let e = Engine::builder()
            .threads(2)
            .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
            .partition_target(target)
            .build();
        group.bench_with_input(BenchmarkId::new(name, n), &ds, |b, ds| {
            b.iter(|| e.exec1(&join, ds).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skew);
criterion_main!(benches);
