//! Fig. 14: FAT vs PAT under dataset skew — few huge objects (a) and
//! log-normal edge-count skew (b).

use atgis::{Dataset, Engine, Query};
use atgis_datagen::SynthConfig;
use atgis_formats::{Format, Mode};
use atgis_geometry::Mbr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn dataset(objects: usize, sigma: f64, mu: f64) -> Dataset {
    let ds = SynthConfig { objects, sigma, mu, seed: 44, multipolygon_fraction: 0.0 }.generate();
    Dataset::from_bytes(atgis_datagen::write_geojson(&ds), Format::GeoJson)
}

fn bench_skew(c: &mut Criterion) {
    let world = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));

    let mut group = c.benchmark_group("fig14a_object_count");
    group.sample_size(10);
    let total_points = atgis_bench::scaled(50_000);
    for n in [10usize, 100, 1000] {
        let mu = ((total_points as f64 / n as f64).max(4.0)).ln();
        let ds = dataset(n, 0.3, mu);
        group.throughput(Throughput::Bytes(ds.len() as u64));
        for (mode, name) in [(Mode::Fat, "FAT"), (Mode::Pat, "PAT")] {
            let e = Engine::builder().threads(2).mode(mode).build();
            group.bench_with_input(BenchmarkId::new(name, n), &ds, |b, ds| {
                b.iter(|| e.execute(&world, ds).unwrap())
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("fig14b_sigma");
    group.sample_size(10);
    for sigma in [1u32, 3, 5] {
        let ds = dataset(atgis_bench::scaled(150), sigma as f64, 2.0);
        group.throughput(Throughput::Bytes(ds.len() as u64));
        for (mode, name) in [(Mode::Fat, "FAT"), (Mode::Pat, "PAT")] {
            let e = Engine::builder().threads(2).mode(mode).build();
            group.bench_with_input(BenchmarkId::new(name, sigma), &ds, |b, ds| {
                b.iter(|| e.execute(&world, ds).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_skew);
criterion_main!(benches);
