//! Fig. 15: effect of partition size, store layout (array vs list)
//! and partitioning phase (associative vs separate) on join time.

use atgis::engine::{PartitionPhase, StoreKind};
use atgis::{Engine, Query};
use atgis_bench::{RunExt, Workload};
use atgis_geometry::Mbr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_partitioning(c: &mut Criterion) {
    let w = Workload::build(atgis_bench::scaled(2000));
    let threshold = (w.objects / 2) as u64;
    let mut group = c.benchmark_group("fig15_join_configurations");
    group.sample_size(10);
    for (store, sname) in [(StoreKind::Array, "array"), (StoreKind::List, "list")] {
        for (phase, pname) in [
            (PartitionPhase::Associative, "assoc"),
            (PartitionPhase::Separate, "separate"),
        ] {
            for cell in [5u32, 10, 40] {
                let e = Engine::builder()
                    .threads(2)
                    .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
                    .cell_size(cell as f64 / 10.0)
                    .store(store)
                    .partition_phase(phase)
                    .build();
                group.bench_with_input(
                    BenchmarkId::new(format!("{sname}_{pname}"), cell),
                    &e,
                    |b, e| b.iter(|| e.exec1(&Query::join(threshold), &w.osm_g).unwrap()),
                );
            }
        }
    }
    group.finish();

    // Adaptive-vs-uniform across partition sizes: the coarser the base
    // grid, the more a hot cell gains from the second-level split.
    let mut group = c.benchmark_group("fig15_adaptive_partition_map");
    group.sample_size(10);
    for cell in [5u32, 10, 40] {
        for (name, target) in [("uniform", 0usize), ("adaptive", 256)] {
            let e = Engine::builder()
                .threads(2)
                .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
                .cell_size(cell as f64 / 10.0)
                .partition_target(target)
                .build();
            group.bench_with_input(BenchmarkId::new(name, cell), &e, |b, e| {
                b.iter(|| e.exec1(&Query::join(threshold), &w.osm_g).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
