//! Batch throughput: one shared scan serving an 8-query mixed batch
//! vs sequential per-query execution (the multi-tenant serving story
//! — not a paper figure, the `fig_batch` extension experiment).
//!
//! Both groups report aggregate throughput over the same served
//! workload (8 queries × dataset bytes), so the MB/s ratio between
//! them IS the batching speedup. The acceptance bar is ≥3× for the
//! mixed batch; the smoke assertions below additionally pin the
//! shared scan to a single parse pass and batch results to the
//! sequential ones.

use atgis::{Dataset, Engine, Query, QueryResult, QuerySession};
use atgis_bench::{RunExt, SessionRunExt};
use atgis_datagen::{write_geojson, OsmGenerator};
use atgis_formats::Format;
use atgis_geometry::Mbr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// The 8-query mixed batch: all four query kinds, duplicated with
/// different parameters (the shape of concurrent tenant traffic —
/// selective regions, as dashboards and tile servers issue; the
/// paper's ~25% rule resolves them to buffered filtering, so
/// non-matching features cost one MBR test each).
fn mixed_batch(n: u64) -> Vec<Query> {
    vec![
        Query::containment(Mbr::new(-2.0, 48.0, 2.0, 52.0)),
        Query::containment(Mbr::new(-8.0, 44.0, -4.0, 48.0)),
        Query::aggregation(Mbr::new(-2.0, 48.0, 2.0, 52.0)),
        Query::aggregation(Mbr::new(0.0, 50.0, 4.0, 54.0)),
        Query::containment(Mbr::new(3.0, 42.0, 7.0, 46.0)),
        Query::aggregation(Mbr::new(-6.0, 44.0, -2.0, 48.0)),
        Query::join(n / 8),
        Query::combined(n / 8, 10.0, 1.0e7),
    ]
}

fn bench_batch(c: &mut Criterion) {
    let n = atgis_bench::scaled(6000);
    let ds = Dataset::from_bytes(
        write_geojson(&OsmGenerator::new(2026).generate(n)),
        Format::GeoJson,
    );
    let queries = mixed_batch(n as u64);
    let engine = Engine::builder()
        .threads(0)
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .cell_size(1.0)
        .build();

    // Correctness + amortisation smoke, printed once so the bench
    // output records what the batch actually did.
    let sequential: Vec<QueryResult> = queries
        .iter()
        .map(|q| engine.exec1(q, &ds).unwrap())
        .collect();
    let (batched, stats) = engine.execb_timed(&queries, &ds).unwrap();
    assert_eq!(batched, sequential, "batch must equal per-query execution");
    assert_eq!(stats.scan_passes, 1, "one structural pass for 8 queries");
    println!(
        "fig_batch: {} queries / {} parse pass(es) -> amortisation {:.1}x, shared scan {:.1?}",
        stats.queries,
        stats.scan_passes,
        stats.amortisation_ratio(),
        stats.shared_scan.total(),
    );
    for (i, q) in stats.per_query.iter().enumerate() {
        println!(
            "fig_batch:   q{i}: wall {:.1?} (scan {:.1?}, finalize {:.1?}{})",
            q.wall,
            q.scan,
            q.finalize,
            match &q.join {
                Some(j) => format!(", join {:.1?} + dedup {:.1?}", j.join.process, j.dedup),
                None => String::new(),
            },
        );
    }

    let served_bytes = (ds.len() * queries.len()) as u64;
    let mut group = c.benchmark_group("fig_batch_mixed8");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(served_bytes));
    group.bench_with_input(BenchmarkId::new("sequential", n), &ds, |b, ds| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| engine.exec1(q, ds).unwrap())
                .collect::<Vec<_>>()
        })
    });
    group.bench_with_input(BenchmarkId::new("shared_scan", n), &ds, |b, ds| {
        b.iter(|| engine.execb(&queries, ds).unwrap())
    });
    // The serving seam: a session with a warm partition-index cache
    // answering repeated batches (what a server's steady state sees).
    let session = QuerySession::new(engine.clone(), ds.clone());
    session.execb(&queries).unwrap(); // warm the cache
    group.bench_with_input(BenchmarkId::new("session_warm", n), &ds, |b, _| {
        b.iter(|| session.execb(&queries).unwrap())
    });
    group.finish();

    // Join-only traffic over the warm session: zero parse passes.
    let joins: Vec<Query> = vec![Query::join(n as u64 / 2), Query::join(n as u64 / 3)];
    let (_, warm_stats) = session.execb_timed(&joins).unwrap();
    assert_eq!(
        warm_stats.scan_passes, 0,
        "cached index serves join-only batches without re-parsing"
    );
    println!(
        "fig_batch: warm session join-only batch: {} queries / {} parse passes",
        warm_stats.queries, warm_stats.scan_passes
    );
    let mut group = c.benchmark_group("fig_batch_session_joins");
    group.sample_size(10);
    group.throughput(Throughput::Bytes((ds.len() * joins.len()) as u64));
    group.bench_with_input(BenchmarkId::new("warm_index", n), &ds, |b, _| {
        b.iter(|| session.execb(&joins).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
