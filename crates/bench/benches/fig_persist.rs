//! Persistence warm-start: time-to-first-result for a join-class
//! query, cold parse vs snapshot restore through the persist store
//! ([`atgis::PersistStore`]), plus the decode cost of the snapshot
//! itself.
//!
//! The smoke assertions pin the two claims the persistence boundary
//! makes before any timing is trusted:
//!
//! 1. **bit-identity** — a session restored from a snapshot returns
//!    exactly the cold-parse results;
//! 2. **zero parse passes** — the restored index answers a join-class
//!    batch without a single scan (`scan_passes == 0`), so the warm
//!    arm is measuring restore + query, never a hidden re-parse.
//!
//! The `fig_persist_first_join` group builds a fresh engine and
//! session per iteration (the restart being simulated): the cold arm
//! clears the store root first, the warm arm finds the snapshot.

use atgis::{Dataset, Engine, ExecOptions, PersistStore, Query, QuerySession};
use atgis_datagen::{write_geojson, OsmGenerator};
use atgis_formats::Format;
use atgis_geometry::Mbr;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::path::PathBuf;

/// Spatially coherent GeoJSON dataset (sorted by centroid longitude),
/// matching the storage order the other figure benches use.
fn sorted_dataset(objects: usize) -> Dataset {
    let mut ds = OsmGenerator::new(2016).generate(objects);
    ds.objects.sort_by(|a, b| {
        let ax = a.geometry.mbr().center().x;
        let bx = b.geometry.mbr().center().x;
        ax.partial_cmp(&bx).expect("finite centroids")
    });
    Dataset::from_bytes(write_geojson(&ds), Format::GeoJson)
}

fn bench_persist(c: &mut Criterion) {
    let objects = atgis_bench::scaled(1500);
    let dataset = sorted_dataset(objects);
    let joins = vec![Query::join(objects as u64 / 2)];
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("fig-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store_engine = || {
        Engine::builder()
            .threads(2)
            .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
            .cell_size(1.0)
            .persist_path(&root)
            .build()
    };

    // Smoke 1+2: the cold run spills, the restored session answers
    // bit-identically with zero parse passes.
    let cold = {
        let session = QuerySession::new(store_engine(), dataset.clone());
        let out = session
            .run(&joins, &ExecOptions::new().timed())
            .expect("cold join");
        assert!(
            out.batch.as_ref().expect("timed run").scan_passes >= 1,
            "the cold join must parse"
        );
        out.collapse().expect("cold results")
    };
    {
        let session = QuerySession::new(store_engine(), dataset.clone());
        let out = session
            .run(&joins, &ExecOptions::new().timed())
            .expect("warm join");
        assert_eq!(
            out.batch.as_ref().expect("timed run").scan_passes,
            0,
            "a restored index must serve the join without a parse pass"
        );
        assert_eq!(
            out.collapse().expect("warm results"),
            cold,
            "restored results must be bit-identical to the cold parse"
        );
    }

    // Time-to-first-result: engine + session construction + the first
    // join, with and without a snapshot to restore from.
    let mut group = c.benchmark_group("fig_persist_first_join");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(dataset.len() as u64));
    group.bench_function("cold", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&root);
            let session = QuerySession::new(store_engine(), dataset.clone());
            session
                .run(&joins, &ExecOptions::new())
                .and_then(|o| o.collapse())
                .unwrap()
        })
    });
    // Re-seed the snapshot the cold arm kept deleting.
    QuerySession::new(store_engine(), dataset.clone())
        .run(&joins, &ExecOptions::new())
        .and_then(|o| o.collapse())
        .expect("re-seed snapshot");
    group.bench_function("warm", |b| {
        b.iter(|| {
            let session = QuerySession::new(store_engine(), dataset.clone());
            session
                .run(&joins, &ExecOptions::new())
                .and_then(|o| o.collapse())
                .unwrap()
        })
    });
    group.finish();

    // The snapshot decode alone: checksum validation + defensive
    // decode + handle rebuild, over the resident bytes (the steady
    // state of a store that has already read the file once).
    let store = PersistStore::open(&root).expect("open store");
    let snap_len = std::fs::metadata(store.snapshot_path(dataset.bytes(), Format::GeoJson))
        .expect("snapshot on disk")
        .len();
    let mut group = c.benchmark_group("fig_persist_restore");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(snap_len));
    group.bench_function("decode", |b| {
        b.iter(|| {
            store
                .load(dataset.bytes(), Format::GeoJson)
                .expect("load")
                .expect("snapshot present")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_persist);
criterion_main!(benches);
