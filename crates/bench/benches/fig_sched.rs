//! Scheduler throughput: a duplicate-heavy 16-query mixed batch
//! through the `QueryScheduler` (predicate dedup + admission) vs the
//! unscheduled shared-scan `execute_batch` (the multi-tenant serving
//! extension — not a paper figure; the `fig_sched` experiment).
//!
//! Both groups report aggregate throughput over the same served
//! workload (16 queries × dataset bytes), so the MB/s ratio between
//! them IS the scheduling speedup. The comparison is deliberately
//! symmetric: **both** sides run over a warm [`QuerySession`]-style
//! partition-index cache (the unscheduled side is a warmed session,
//! the scheduled side a scheduler with its aggregate cache disabled),
//! so the ratio isolates what *scheduling* adds — predicate dedup and
//! admission — and does not re-credit PR 3's index caching. The
//! acceptance bar is ≥1.5× for the duplicate-heavy batch: the win
//! comes from dedup collapsing the four-way duplicated
//! join/combined/aggregation predicates to one execution each (the
//! scan was already shared — what dedup removes is the per-duplicate
//! sink and join-pipeline work). A third group measures the steady
//! state with the cross-batch aggregate cache on: repeated
//! single-pass traffic skips execution entirely.

use atgis::{Dataset, Engine, Query, QueryResult, QueryScheduler, QuerySession, SchedulerConfig};
use atgis_bench::{RunExt, SchedRunExt, SessionRunExt};
use atgis_datagen::{write_geojson, OsmGenerator};
use atgis_formats::Format;
use atgis_geometry::Mbr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// The duplicate-heavy 16-query batch: concurrent tenants asking for
/// the same dashboards — four submitters each for the join, the
/// combined query and the hot aggregation tile, two for a containment
/// tile, plus two distinct one-off regions. 16 submissions, 6 unique
/// predicates.
fn duplicate_heavy_batch(n: u64) -> Vec<Query> {
    let hot_tile = Mbr::new(-6.0, 44.0, 4.0, 56.0);
    let warm_tile = Mbr::new(-2.0, 48.0, 2.0, 52.0);
    let mut batch = Vec::new();
    for _ in 0..4 {
        batch.push(Query::join(n / 8));
    }
    for _ in 0..4 {
        batch.push(Query::combined(n / 8, 10.0, 1.0e7));
    }
    for _ in 0..4 {
        batch.push(Query::aggregation(hot_tile));
    }
    for _ in 0..2 {
        batch.push(Query::containment(warm_tile));
    }
    batch.push(Query::containment(Mbr::new(-8.0, 44.0, -4.0, 48.0)));
    batch.push(Query::aggregation(Mbr::new(0.0, 50.0, 4.0, 54.0)));
    batch
}

fn bench_sched(c: &mut Criterion) {
    let n = atgis_bench::scaled(6000);
    let ds = Dataset::from_bytes(
        write_geojson(&OsmGenerator::new(2027).generate(n)),
        Format::GeoJson,
    );
    let queries = duplicate_heavy_batch(n as u64);
    let engine = Engine::builder()
        .threads(0)
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .cell_size(1.0)
        .build();

    // Correctness smoke, printed once so the bench output records
    // what scheduling actually did: scheduled results must be
    // bit-identical to the unscheduled batch (itself proven identical
    // to per-query execution by the differential suite).
    let session = QuerySession::new(engine.clone(), ds.clone());
    let (unscheduled, ustats) = session.execb_timed(&queries).unwrap(); // warms the index
    let sequential: Vec<QueryResult> = queries
        .iter()
        .map(|q| engine.exec1(q, &ds).unwrap())
        .collect();
    assert_eq!(unscheduled, sequential, "batch must equal sequential");
    // Dedup-only scheduler for the headline comparison: the aggregate
    // cache is disabled so every iteration measures real scheduling
    // work, not a cache hit (the warm-cache steady state is its own
    // group below).
    let scheduler = QueryScheduler::with_config(
        engine.clone(),
        SchedulerConfig {
            cache: false,
            ..SchedulerConfig::default()
        },
    );
    let id = scheduler.register(ds.clone());
    let (scheduled, sstats) = scheduler.execb_timed(id, &queries).unwrap();
    assert_eq!(scheduled, unscheduled, "scheduling must not change results");
    println!(
        "fig_sched: {} submissions -> {} unique ({} dedup hits), {} wave(s), \
         {} scan pass(es), amortisation {:.1}x",
        sstats.queries,
        sstats.unique_queries,
        sstats.dedup_hits,
        sstats.waves.len(),
        sstats.scan_passes,
        sstats.amortisation_ratio(),
    );
    println!(
        "fig_sched: unscheduled batch: {} queries / {} pass(es), shared scan {:.1?}",
        ustats.queries,
        ustats.scan_passes,
        ustats.shared_scan.total(),
    );
    println!(
        "fig_sched: latency p50 {:.1?} / p95 {:.1?} / p100 {:.1?}",
        sstats.latency_percentile(50.0),
        sstats.latency_percentile(95.0),
        sstats.latency_percentile(100.0),
    );

    let served_bytes = (ds.len() * queries.len()) as u64;
    let mut group = c.benchmark_group("fig_sched_dup16");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(served_bytes));
    // Symmetric footing: both sides serve from a warm partition
    // index; the delta is dedup + admission alone.
    group.bench_with_input(BenchmarkId::new("unscheduled", n), &ds, |b, _| {
        b.iter(|| session.execb(&queries).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("scheduled", n), &ds, |b, _| {
        b.iter(|| scheduler.execb(id, &queries).unwrap())
    });
    group.finish();

    // Steady state: the full scheduler (cache on) after one warming
    // batch — repeated single-pass predicates come from the aggregate
    // cache, repeated joins from the session's partition index.
    let warm_sched = QueryScheduler::new(engine.clone());
    let warm_id = warm_sched.register(ds.clone());
    warm_sched.execb(warm_id, &queries).unwrap();
    let (_, wstats) = warm_sched.execb_timed(warm_id, &queries).unwrap();
    println!(
        "fig_sched: warm scheduler: {} cache hits + {} dedup hits of {} submissions, \
         {} scan pass(es)",
        wstats.cache_hits, wstats.dedup_hits, wstats.queries, wstats.scan_passes,
    );
    assert_eq!(wstats.scan_passes, 0, "warm steady state re-parses nothing");
    let mut group = c.benchmark_group("fig_sched_warm");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(served_bytes));
    group.bench_with_input(BenchmarkId::new("scheduled_warm", n), &ds, |b, _| {
        b.iter(|| warm_sched.execb(warm_id, &queries).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
