//! Sharded scatter–gather throughput: the engine's intra-process
//! shard execution ([`atgis::ShardSet`]) across shard counts, against
//! the cluster map/reduce comparator it retires
//! ([`atgis_bench::cluster_sim`]).
//!
//! The smoke assertions pin the three claims the sharded path makes:
//!
//! 1. **bit-identity** — every shard count returns exactly the
//!    single-node results (associative transducers + `ExactSum`);
//! 2. **pruning** — a selective region query never scatters to a
//!    shard whose MBR it cannot intersect, observable in
//!    [`atgis::stats::ShardStats`];
//! 3. **it beats the cluster model** — one sharded node outruns the
//!    simulated cluster even *before* the cluster pays its modelled
//!    startup + shuffle overhead (with it, the gap is the paper's
//!    Fig. 10 story).
//!
//! The `fig_shard_vs_cluster` group times compute only (the cluster's
//! modelled overhead is returned as data, not slept), mirroring
//! `fig10_containment/cluster_sim_compute`.

use atgis::{Dataset, ExecOptions, Query, QuerySession};
use atgis_baselines::BaselineQuery;
use atgis_bench::cluster_sim;
use atgis_datagen::{write_geojson, OsmGenerator};
use atgis_formats::Format;
use atgis_geometry::Mbr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::{Duration, Instant};

/// A spatially coherent GeoJSON dataset: generated objects sorted by
/// centroid longitude before serialisation, the storage order of a
/// real regional export. Byte-range shards then carry tight MBRs and
/// region queries prune; on shuffled storage the shard MBRs all span
/// the world and sharding degrades (gracefully, still bit-identical)
/// to scatter-everywhere.
fn sorted_dataset(objects: usize) -> Dataset {
    let mut ds = OsmGenerator::new(2016).generate(objects);
    ds.objects.sort_by(|a, b| {
        let ax = a.geometry.mbr().center().x;
        let bx = b.geometry.mbr().center().x;
        ax.partial_cmp(&bx).expect("finite centroids")
    });
    Dataset::from_bytes(write_geojson(&ds), Format::GeoJson)
}

/// Mixed batch with selective regions (so MBR pruning has something
/// to prune) plus a join (which always scatters everywhere).
fn shard_batch(objects: u64) -> Vec<Query> {
    vec![
        Query::containment(Mbr::new(-2.0, 48.0, 2.0, 52.0)),
        Query::containment(Mbr::new(-10.0, 40.0, -8.0, 42.0)),
        Query::aggregation(Mbr::new(0.0, 50.0, 4.0, 54.0)),
        Query::aggregation(Mbr::new(6.0, 56.0, 10.0, 60.0)),
        Query::join(objects / 2),
    ]
}

fn best_of<T>(n: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..n {
        let t = Instant::now();
        let v = f();
        best = best.min(t.elapsed());
        out = Some(v);
    }
    (out.unwrap(), best)
}

fn bench_shard(c: &mut Criterion) {
    let objects = atgis_bench::scaled(1500);
    let dataset = sorted_dataset(objects);
    let region = Mbr::new(-10.0, 40.0, 0.0, 50.0);
    let queries = shard_batch(objects as u64);
    let engine = atgis::Engine::builder()
        .threads(2)
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .cell_size(1.0)
        .build();
    let session = QuerySession::new(engine.clone(), dataset.clone());

    // Smoke 1+2: bit-identity across shard counts, pruning observable.
    let single = session
        .run(&queries, &ExecOptions::new())
        .and_then(|o| o.collapse())
        .expect("single-node batch");
    for shards in [1usize, 2, 4, 8] {
        let out = session
            .run(&queries, &ExecOptions::new().sharded(shards).timed())
            .expect("sharded batch");
        if shards > 1 {
            let stats = out.shard_stats().expect("sharded run reports stats");
            assert!(
                stats.pruned > 0,
                "selective regions must prune some (query, shard) pairs: {stats:?}"
            );
            println!(
                "fig_shard: shards={} scattered={} pruned={} gathered={}",
                stats.shards, stats.scattered, stats.pruned, stats.gathered
            );
        }
        assert_eq!(
            out.collapse().expect("sharded batch"),
            single,
            "sharded execution must be bit-identical at {shards} shards"
        );
    }

    // Smoke 3: one sharded node vs the simulated cluster, same
    // containment query. The cluster's compute alone must not win;
    // with its modelled overhead added the gap only grows.
    let probe = Query::containment(region);
    let (_, atgis_best) = best_of(3, || {
        session
            .run(std::slice::from_ref(&probe), &ExecOptions::new().sharded(8))
            .and_then(|o| o.into_single())
            .expect("sharded probe")
    });
    let (cluster, cluster_best) = best_of(3, || {
        cluster_sim::execute(
            dataset.bytes(),
            Format::GeoJson,
            &BaselineQuery::containment(region),
            &cluster_sim::ClusterConfig::default(),
        )
        .expect("cluster probe")
    });
    let cluster_with_overhead = cluster_best + cluster.simulated_overhead;
    println!(
        "fig_shard: atgis_sharded {atgis_best:.1?} vs cluster compute {cluster_best:.1?} \
         (+{:.1?} modelled overhead)",
        cluster.simulated_overhead
    );
    assert!(
        atgis_best <= cluster_with_overhead,
        "sharded single node must beat the cluster model: \
         {atgis_best:?} vs {cluster_with_overhead:?}"
    );

    let mut group = c.benchmark_group("fig_shard_batch");
    group.sample_size(10);
    group.throughput(Throughput::Bytes((dataset.len() * queries.len()) as u64));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &n| {
            b.iter(|| {
                session
                    .run(&queries, &ExecOptions::new().sharded(n))
                    .and_then(|o| o.collapse())
                    .unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig_shard_vs_cluster");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(dataset.len() as u64));
    group.bench_function("atgis_sharded", |b| {
        b.iter(|| {
            session
                .run(std::slice::from_ref(&probe), &ExecOptions::new().sharded(8))
                .and_then(|o| o.into_single())
                .unwrap()
        })
    });
    group.bench_function("cluster_sim_compute", |b| {
        b.iter(|| {
            cluster_sim::execute(
                dataset.bytes(),
                Format::GeoJson,
                &BaselineQuery::containment(region),
                &cluster_sim::ClusterConfig {
                    job_startup: Duration::ZERO,
                    shuffle_per_record: Duration::ZERO,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_shard);
criterion_main!(benches);
