//! `fig_stream`: streamed vs full-buffer execution throughput.
//!
//! The streaming path must serve queries at I/O speed without first
//! materialising the dataset: this bench runs the fig12-style GeoJSON
//! workload end-to-end from a file — the buffered variant pays
//! read-everything-then-scan, the streamed variants overlap chunk
//! ingest with scanning at chunk sizes 64 KiB / 1 MiB / 16 MiB. In
//! `--test` mode it additionally asserts streamed ≡ buffered results.

use atgis::{Dataset, Engine, FileChunkSource, Query};
use atgis_bench::{RunExt, StreamRunExt, Workload};
use atgis_formats::Format;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_streamed_vs_buffered(c: &mut Criterion) {
    let w = Workload::build(atgis_bench::scaled(1500));
    let bytes = w.osm_g.bytes().to_vec();
    let path =
        std::env::temp_dir().join(format!("atgis_fig_stream_{}.geojson", std::process::id()));
    std::fs::write(&path, &bytes).expect("spill workload to disk");
    let engine = Engine::builder().threads(2).build();
    let region = w.region();
    let query = Query::aggregation(region);

    // Sanity: streamed equals buffered before any timing is trusted.
    let buffered = Dataset::from_file(&path, Format::GeoJson).unwrap();
    let want = engine.exec1(&query, &buffered).unwrap();
    let mut src = FileChunkSource::open_with_chunk_len(&path, 1 << 16).unwrap();
    let got = engine.stream1(&query, &mut src, Format::GeoJson).unwrap();
    assert_eq!(got, want, "streamed must equal buffered");

    let mut group = c.benchmark_group("fig_stream_aggregation");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("buffered_from_file", |b| {
        b.iter(|| {
            let ds = Dataset::from_file(&path, Format::GeoJson).unwrap();
            engine.exec1(&query, &ds).unwrap()
        })
    });
    for (label, chunk) in [
        ("streamed_64KiB", 1usize << 16),
        ("streamed_1MiB", 1 << 20),
        ("streamed_16MiB", 1 << 24),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &chunk, |b, &chunk| {
            b.iter(|| {
                let mut src = FileChunkSource::open_with_chunk_len(&path, chunk).unwrap();
                engine.stream1(&query, &mut src, Format::GeoJson).unwrap()
            })
        });
    }
    group.finish();

    // The join-class pipeline over a streamed source (index sealed at
    // EOF) vs the buffered run.
    let threshold = (w.objects / 2) as u64;
    let join = Query::join(threshold);
    let want = engine.exec1(&join, &buffered).unwrap();
    let mut src = FileChunkSource::open_with_chunk_len(&path, 1 << 20).unwrap();
    let got = engine.stream1(&join, &mut src, Format::GeoJson).unwrap();
    assert_eq!(got, want, "streamed join must equal buffered join");
    let mut group = c.benchmark_group("fig_stream_join");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("buffered_from_file", |b| {
        b.iter(|| {
            let ds = Dataset::from_file(&path, Format::GeoJson).unwrap();
            engine.exec1(&join, &ds).unwrap()
        })
    });
    group.bench_function("streamed_1MiB", |b| {
        b.iter(|| {
            let mut src = FileChunkSource::open_with_chunk_len(&path, 1 << 20).unwrap();
            engine.stream1(&join, &mut src, Format::GeoJson).unwrap()
        })
    });
    group.finish();

    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_streamed_vs_buffered);
criterion_main!(benches);
