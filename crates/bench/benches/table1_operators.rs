//! Table 1 ablation: cost of the spatial operators the transducer
//! classes wrap, plus the fragment-representation micro-benchmarks the
//! DESIGN.md ablation list calls out (speculative lexing vs known-
//! state lexing).

use atgis_formats::geojson::lexer;
use atgis_geometry::{convex_hull, intersects, Geometry, Point, Polygon};
use criterion::{criterion_group, criterion_main, Criterion};

fn polygon(n: usize, cx: f64) -> Polygon {
    let pts = (0..n)
        .map(|i| {
            let t = std::f64::consts::TAU * i as f64 / n as f64;
            Point::new(cx + t.cos(), t.sin())
        })
        .collect();
    Polygon::from_exterior(pts)
}

fn bench_operators(c: &mut Criterion) {
    let a = Geometry::Polygon(polygon(64, 0.0));
    let b = Geometry::Polygon(polygon(64, 0.5));
    let mut group = c.benchmark_group("table1_operator_cost");
    group.sample_size(20);
    group.bench_function("st_intersects_64v", |bch| bch.iter(|| intersects(&a, &b)));
    group.bench_function("st_convexhull_1000pts", |bch| {
        let pts: Vec<Point> = (0..1000)
            .map(|i| Point::new((i * 37 % 101) as f64, (i * 61 % 97) as f64))
            .collect();
        bch.iter(|| convex_hull(&pts))
    });
    group.bench_function("st_area_perimeter_64v", |bch| {
        bch.iter(|| (a.area(), a.perimeter()))
    });
    group.finish();

    // Ablation: speculative (3-state) vs known-state lexing of the
    // same block — the cost of FAT speculation the paper discusses in
    // §3.3/§5.5.
    let doc: String =
        r#"{"type":"Feature","geometry":{"type":"Point","coordinates":[1.0,2.0]},"id":1,"properties":{"k":"v"}},"#
            .repeat(200);
    let bytes = doc.as_bytes();
    let mut group = c.benchmark_group("ablation_lexer_speculation");
    group.sample_size(20);
    group.throughput(criterion::Throughput::Bytes(bytes.len() as u64));
    group.bench_function("speculative_3_states", |b| {
        b.iter(|| lexer::lex_block(bytes, 0))
    });
    group.bench_function("known_state", |b| {
        b.iter(|| lexer::lex_known(bytes, 0, lexer::STATE_OUT))
    });
    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
