//! Ad-hoc phase breakdown for the streamed vs buffered join (run
//! manually: `cargo run --release -p atgis-bench --example streamprof`).

use atgis::{Dataset, Engine, ExecOptions, FileChunkSource, Query};
use atgis_bench::{RunExt, StreamRunExt, Workload};
use atgis_formats::Format;
use std::time::Instant;

fn main() {
    let w = Workload::build(atgis_bench::scaled(1500));
    let bytes = w.osm_g.bytes().to_vec();
    println!("input: {} bytes", bytes.len());
    let path =
        std::env::temp_dir().join(format!("atgis_streamprof_{}.geojson", std::process::id()));
    std::fs::write(&path, &bytes).unwrap();
    let engine = Engine::builder().threads(2).build();
    let threshold = (w.objects / 2) as u64;
    let join = Query::join(threshold);
    let mb = bytes.len() as f64 / 1e6;

    for _ in 0..3 {
        let ds = Dataset::from_file(&path, Format::GeoJson).unwrap();
        engine.exec1(&join, &ds).unwrap();
    }

    let iters = 20;
    let t = Instant::now();
    for _ in 0..iters {
        let ds = Dataset::from_file(&path, Format::GeoJson).unwrap();
        engine.exec1(&join, &ds).unwrap();
    }
    let per = t.elapsed().as_secs_f64() / iters as f64;
    println!("buffered: {:7.1} MB/s", mb / per);
    {
        let ds = Dataset::from_file(&path, Format::GeoJson).unwrap();
        let out = engine
            .run(
                std::slice::from_ref(&join),
                &ds,
                &ExecOptions::new().timed(),
            )
            .unwrap();
        let es = out.batch.expect("timed run reports batch stats");
        println!(
            "  solo pipeline: split={:?} process={:?} merge={:?} join={:?}",
            es.shared_scan.split,
            es.shared_scan.process,
            es.shared_scan.merge,
            es.per_query[0].join
        );
    }
    let (_, bstats) = {
        let ds = Dataset::from_file(&path, Format::GeoJson).unwrap();
        engine
            .execb_timed(std::slice::from_ref(&join), &ds)
            .unwrap()
    };
    println!(
        "  buffered shared_scan: split={:?} process={:?} merge={:?}",
        bstats.shared_scan.split, bstats.shared_scan.process, bstats.shared_scan.merge
    );
    dump_query(&bstats);

    let t = Instant::now();
    for _ in 0..iters {
        let mut src = FileChunkSource::open_with_chunk_len(&path, 1 << 20).unwrap();
        engine.stream1(&join, &mut src, Format::GeoJson).unwrap();
    }
    let per = t.elapsed().as_secs_f64() / iters as f64;
    println!("streamed: {:7.1} MB/s", mb / per);
    let (_, sstats, st) = {
        let mut src = FileChunkSource::open_with_chunk_len(&path, 1 << 20).unwrap();
        engine
            .streamb_timed(std::slice::from_ref(&join), &mut src, Format::GeoJson)
            .unwrap()
    };
    println!(
        "  streamed shared_scan: split={:?} process={:?} merge={:?}",
        sstats.shared_scan.split, sstats.shared_scan.process, sstats.shared_scan.merge
    );
    println!(
        "  stream: chunks={} regions={} peak_frags={} ingest_wait={:?} mode={:?}",
        st.chunks, st.regions, st.peak_fragments, st.ingest_wait, st.resolved_mode
    );
    dump_query(&sstats);
    std::fs::remove_file(&path).ok();
}

fn dump_query(stats: &atgis::BatchStats) {
    for q in &stats.per_query {
        println!(
            "    query: scan={:?} finalize={:?} wall={:?}",
            q.scan, q.finalize, q.wall
        );
        if let Some(j) = &q.join {
            println!(
                "    join: partition(split={:?} process={:?} merge={:?}) refine={:?} join(split={:?} process={:?} merge={:?}) dedup={:?}",
                j.partition.split,
                j.partition.process,
                j.partition.merge,
                j.refine,
                j.join.split,
                j.join.process,
                j.join.merge,
                j.dedup
            );
        }
        if let Some(d) = &q.decisions {
            println!(
                "    decisions: map={:?} sweep={} rtree={}",
                d.map, d.sweep_partitions, d.rtree_partitions
            );
        }
    }
}
