//! The AT-GIS evaluation harness: regenerates every table and figure
//! of the paper's §5 as text tables.
//!
//! ```text
//! experiments [all|table1|table2|table3|fig9|fig10|fig11|fig12|fig13|
//!              fig14|fig15|fig_batch|fig_sched|fig_stream]
//! ```
//!
//! Scale with `ATGIS_SCALE` (default 1.0). Absolute numbers differ
//! from the paper (different hardware, generated data); the *shapes* —
//! who wins, crossover points, scaling knees — are the reproduction
//! targets recorded in EXPERIMENTS.md.

use atgis::engine::{PartitionPhase, StoreKind};
use atgis::{Dataset, Engine, ExecOptions, FilterStrategy, Metric, Query, QueryResult};
use atgis_baselines::{column_scan, indexed, sequential, BaselineQuery};
use atgis_bench::cluster_sim;
use atgis_bench::{
    scaled, synth_dataset, throughput_mbs, time_best_of, time_once, RunExt, SchedRunExt,
    SessionRunExt, StreamRunExt, Workload,
};
use atgis_datagen::SynthConfig;
use atgis_formats::{Format, Mode};
use atgis_geometry::{DistanceModel, Mbr};
use std::time::Duration;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let run_all = which == "all";
    println!(
        "AT-GIS evaluation harness (scale = {})",
        atgis_bench::scale()
    );
    println!("host threads available: {}", host_threads());
    println!(
        "dataset backing: {}",
        if atgis_bench::mmap_enabled() {
            "memory-mapped temp files (ATGIS_MMAP=1)"
        } else {
            "heap buffers (set ATGIS_MMAP=1 to mmap)"
        }
    );
    println!();
    if run_all || which == "table1" {
        table1();
    }
    if run_all || which == "table2" {
        table2();
    }
    if run_all || which == "table3" {
        table3();
    }
    if run_all || which == "fig9" {
        fig9();
    }
    if run_all || which == "fig10" {
        fig10();
    }
    if run_all || which == "fig11" {
        fig11();
    }
    if run_all || which == "fig12" {
        fig12();
    }
    if run_all || which == "fig13" {
        fig13();
    }
    if run_all || which == "fig14" {
        fig14();
    }
    if run_all || which == "fig15" {
        fig15();
    }
    if run_all || which == "fig_batch" {
        fig_batch();
    }
    if run_all || which == "fig_sched" {
        fig_sched();
    }
    if run_all || which == "fig_stream" {
        fig_stream();
    }
}

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn thread_sweep() -> Vec<usize> {
    // Sweep past the physical count to show the saturation knee even
    // on small hosts (the paper sweeps 1..64 on a 64-core box).
    let max = host_threads();
    let mut v: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .filter(|&t| t <= max.max(4))
        .collect();
    if !v.contains(&max) && max > 1 {
        v.push(max);
        v.sort_unstable();
    }
    v
}

fn engine(threads: usize, mode: Mode) -> Engine {
    Engine::builder()
        .threads(threads)
        .mode(mode)
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .cell_size(1.0)
        .build()
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

// ---------------------------------------------------------------- tables

fn table1() {
    use atgis::operators::SpatialOperator;
    println!("=== Table 1: spatial operators as associative transducers ===");
    println!("{:<18} {:>10} {:>16}", "operator", "class", "associativity");
    for op in SpatialOperator::ALL {
        println!(
            "{:<18} {:>10} {:>16}",
            op.name(),
            format!("{:?}", op.transducer_class()),
            format!("{:?}", op.associativity()),
        );
    }
    println!();
}

fn table2() {
    println!("=== Table 2: datasets ===");
    let w = Workload::build(scaled(5000));
    let synth = synth_dataset(scaled(1000), 1.0);
    println!(
        "{:<10} {:<28} {:>12} {:>10}",
        "name", "description", "size (KB)", "objects"
    );
    let row = |name: &str, desc: &str, ds: &Dataset, objects: usize| {
        println!(
            "{:<10} {:<28} {:>12} {:>10}",
            name,
            desc,
            ds.len() / 1024,
            objects
        );
    };
    row("OSM-X", "OSM-like XML", &w.osm_x, w.objects);
    row("OSM-G", "OSM-like GeoJSON", &w.osm_g, w.objects);
    row("OSM-W", "OSM-like WKT", &w.osm_w, w.objects);
    row("OSM-4R", "replicated 4x", &w.osm_rep, w.objects * 4);
    row("Synth", "log-normal sigma=1", &synth, scaled(1000));
    println!();
}

fn table3() {
    println!("=== Table 3: queries (executed against OSM-G) ===");
    let w = Workload::build(scaled(2000));
    let e = engine(host_threads(), Mode::Pat);
    let region = w.region();
    let threshold = (w.objects / 2) as u64;

    let (r, d) = time_once(|| e.exec1(&Query::containment(region), &w.osm_g).unwrap());
    println!(
        "containment: {} matches in {:.3}s",
        r.matches().len(),
        secs(d)
    );
    let (r, d) = time_once(|| e.exec1(&Query::aggregation(region), &w.osm_g).unwrap());
    let a = r.aggregate().unwrap();
    println!(
        "aggregation: count={} area={:.3e} m^2 perimeter={:.3e} m in {:.3}s",
        a.count,
        a.total_area,
        a.total_perimeter,
        secs(d)
    );
    let (r, d) = time_once(|| e.exec1(&Query::join(threshold), &w.osm_g).unwrap());
    println!("join:        {} pairs in {:.3}s", r.joined().len(), secs(d));
    let (r, d) = time_once(|| {
        e.exec1(&Query::combined(threshold, 10.0, 1.0e7), &w.osm_g)
            .unwrap()
    });
    if let QueryResult::Combined {
        pairs,
        total_union_area,
    } = r
    {
        println!(
            "combined:    {pairs} pairs, union area {total_union_area:.3e} m^2 in {:.3}s",
            secs(d)
        );
    }
    println!();
}

// --------------------------------------------------------------- figures

fn fig9() {
    println!("=== Fig 9: scaling with CPU cores (throughput MB/s) ===");
    let w = Workload::build(scaled(20000));
    let region = w.region();
    let threshold = (w.objects / 2) as u64;
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "threads", "cont-PAT", "cont-FAT", "agg-PAT", "agg-FAT", "join"
    );
    for t in thread_sweep() {
        let pat = engine(t, Mode::Pat);
        let fat = engine(t, Mode::Fat);
        let (_, d_cp) = time_best_of(2, || pat.exec1(&Query::containment(region), &w.osm_g));
        let (_, d_cf) = time_best_of(2, || fat.exec1(&Query::containment(region), &w.osm_g));
        let (_, d_ap) = time_best_of(2, || pat.exec1(&Query::aggregation(region), &w.osm_g));
        let (_, d_af) = time_best_of(2, || fat.exec1(&Query::aggregation(region), &w.osm_g));
        let (_, d_j) = time_once(|| pat.exec1(&Query::join(threshold), &w.osm_g));
        println!(
            "{:>7} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>10.1}",
            t,
            throughput_mbs(w.osm_g.len(), d_cp),
            throughput_mbs(w.osm_g.len(), d_cf),
            throughput_mbs(w.osm_g.len(), d_ap),
            throughput_mbs(w.osm_g.len(), d_af),
            throughput_mbs(w.osm_g.len(), d_j),
        );
    }
    println!();
}

fn fig10() {
    println!("=== Fig 10: query execution time across systems (seconds) ===");
    let w = Workload::build(scaled(5000));
    let region = w.region();
    let threshold = (w.objects / 2) as u64;
    let threads = host_threads();

    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>14}",
        "system", "containment", "aggregation", "join", "load+index"
    );

    // AT-GIS PAT and FAT: zero load phase.
    for (name, mode) in [("AT-GIS-PAT", Mode::Pat), ("AT-GIS-FAT", Mode::Fat)] {
        let e = engine(threads, mode);
        let (_, dc) = time_best_of(2, || e.exec1(&Query::containment(region), &w.osm_g));
        let (_, da) = time_best_of(2, || e.exec1(&Query::aggregation(region), &w.osm_g));
        let (_, dj) = time_once(|| e.exec1(&Query::join(threshold), &w.osm_g));
        println!(
            "{:<16} {:>12.3} {:>12.3} {:>12.3} {:>14}",
            name,
            secs(dc),
            secs(da),
            secs(dj),
            "0 (raw data)"
        );
    }

    // Sequential scan.
    {
        let qc = BaselineQuery::containment(region);
        let qa = BaselineQuery::aggregation(region);
        let (_, dc) = time_once(|| sequential::execute(w.osm_g.bytes(), Format::GeoJson, &qc));
        let (_, da) = time_once(|| sequential::execute(w.osm_g.bytes(), Format::GeoJson, &qa));
        let (_, dj) = time_once(|| {
            sequential::execute(
                w.osm_g.bytes(),
                Format::GeoJson,
                &BaselineQuery::Join(threshold),
            )
        });
        println!(
            "{:<16} {:>12.3} {:>12.3} {:>12.3} {:>14}",
            "Sequential",
            secs(dc),
            secs(da),
            secs(dj),
            "0"
        );
    }

    // Indexed RDBMS (PostGIS / DBMS-X stand-in).
    {
        let mut store = indexed::IndexedStore::load(w.osm_g.bytes(), Format::GeoJson).unwrap();
        store.build_index();
        let (_, dc) = time_best_of(2, || store.execute(&BaselineQuery::containment(region)));
        let (_, da) = time_best_of(2, || store.execute(&BaselineQuery::aggregation(region)));
        let (_, dj) = time_once(|| store.execute(&BaselineQuery::Join(threshold)));
        println!(
            "{:<16} {:>12.3} {:>12.3} {:>12.3} {:>14.3}",
            "Indexed(DBMS)",
            secs(dc),
            secs(da),
            secs(dj),
            secs(store.data_to_query_overhead()),
        );
    }

    // Column scan (MonetDB stand-in), -B and -G.
    {
        let store = column_scan::ColumnStore::load(w.osm_g.bytes(), Format::GeoJson).unwrap();
        for (name, refine) in [
            ("ColumnScan-B", column_scan::Refinement::BoxOnly),
            ("ColumnScan-G", column_scan::Refinement::FullGeometry),
        ] {
            let (_, dc) = time_best_of(2, || {
                store.execute(&BaselineQuery::containment(region), refine, threads)
            });
            let (_, da) = time_best_of(2, || {
                store.execute(&BaselineQuery::aggregation(region), refine, threads)
            });
            let (_, dj) =
                time_once(|| store.execute(&BaselineQuery::Join(threshold), refine, threads));
            println!(
                "{:<16} {:>12.3} {:>12.3} {:>12.3} {:>14.3}",
                name,
                secs(dc),
                secs(da),
                secs(dj),
                secs(store.load_time),
            );
        }
    }

    // Cluster simulator (Hadoop-GIS-like).
    {
        let config = cluster_sim::ClusterConfig::default();
        let run = |q: &BaselineQuery| {
            let (r, d) =
                time_once(|| cluster_sim::execute(w.osm_g.bytes(), Format::GeoJson, q, &config));
            d + r.unwrap().simulated_overhead
        };
        let dc = run(&BaselineQuery::containment(region));
        let da = run(&BaselineQuery::aggregation(region));
        let dj = run(&BaselineQuery::Join(threshold));
        println!(
            "{:<16} {:>12.3} {:>12.3} {:>12.3} {:>14}",
            "ClusterSim(8n)",
            secs(dc),
            secs(da),
            secs(dj),
            "partitioned"
        );
    }
    println!();
}

fn fig11() {
    println!("=== Fig 11: partition vs join time scaling (seconds) ===");
    let w = Workload::build(scaled(10000));
    let threshold = (w.objects / 2) as u64;
    println!(
        "{:>7} {:>12} {:>12} {:>12}",
        "threads", "partition", "join", "total"
    );
    for t in thread_sweep() {
        let e = engine(t, Mode::Pat);
        let (stats, _) = time_once(|| {
            e.run(
                &[Query::join(threshold)],
                &w.osm_g,
                &ExecOptions::new().timed(),
            )
            .unwrap()
            .batch
            .expect("timed run reports batch stats")
        });
        let j = stats.per_query[0].join.expect("join stats");
        println!(
            "{:>7} {:>12.3} {:>12.3} {:>12.3}",
            t,
            secs(j.partition.total()),
            secs(j.join.total() + j.dedup),
            secs(j.total()),
        );
    }
    println!();
}

fn fig12() {
    println!("=== Fig 12: throughput by data format (MB/s) ===");
    let w = Workload::build(scaled(10000));
    let region = w.region();
    let threads = host_threads();
    let e = engine(threads, Mode::Pat);
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10}",
        "dataset", "containment", "aggregation", "join", "combined"
    );
    for (name, ds) in [
        ("OSM-G", &w.osm_g),
        ("OSM-W", &w.osm_w),
        ("OSM-X", &w.osm_x),
        ("OSM-4R", &w.osm_rep),
    ] {
        let objects = if name == "OSM-4R" {
            w.objects * 4
        } else {
            w.objects
        };
        let threshold = (objects / 2) as u64;
        let (_, dc) = time_best_of(2, || e.exec1(&Query::containment(region), ds));
        let (_, da) = time_best_of(2, || e.exec1(&Query::aggregation(region), ds));
        let (_, dj) = time_once(|| e.exec1(&Query::join(threshold), ds));
        let (_, dk) = time_once(|| e.exec1(&Query::combined(threshold, 10.0, 1.0e7), ds));
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>12.1} {:>10.1}",
            name,
            throughput_mbs(ds.len(), dc),
            throughput_mbs(ds.len(), da),
            throughput_mbs(ds.len(), dj),
            throughput_mbs(ds.len(), dk),
        );
    }
    println!();
}

fn fig13() {
    println!("=== Fig 13: streaming vs buffered filtering (MB/s) ===");
    let w = Workload::build(scaled(10000));
    let threads = host_threads();
    // Regions selecting decreasing fractions of the data extent.
    let world = Mbr::new(-11.0, 39.0, 11.0, 61.0);
    let fractions: [f64; 6] = [1.0, 0.3, 0.1, 0.03, 0.01, 0.001];
    for (model, label) in [
        (DistanceModel::Spherical, "(a) spherical projection"),
        (DistanceModel::Andoyer, "(b) Andoyer's algorithm"),
    ] {
        println!("--- {label} ---");
        println!("{:>10} {:>12} {:>12}", "area sel%", "streaming", "buffered");
        for frac in fractions {
            let width = world.width() * frac.sqrt();
            let height = world.height() * frac.sqrt();
            let cx = -5.0; // Centre on a cluster-dense area.
            let cy = 50.0;
            let region = Mbr::new(
                cx - width / 2.0,
                cy - height / 2.0,
                cx + width / 2.0,
                cy + height / 2.0,
            );
            let run = |strategy| {
                let q = Query::aggregation_with(
                    region,
                    vec![Metric::Area, Metric::Perimeter, Metric::Count],
                    model,
                    strategy,
                );
                let e = engine(threads, Mode::Pat);
                let (_, d) = time_best_of(2, || e.exec1(&q, &w.osm_g).unwrap());
                throughput_mbs(w.osm_g.len(), d)
            };
            println!(
                "{:>10.2} {:>12.1} {:>12.1}",
                frac * 100.0,
                run(FilterStrategy::Streaming),
                run(FilterStrategy::Buffered),
            );
        }
    }
    println!();
}

fn fig14() {
    println!("=== Fig 14: dataset skew, FAT vs PAT (MB/s) ===");
    let threads = host_threads();
    let total_points = scaled(200_000);

    println!("--- (a) object count (fixed total size) ---");
    println!("{:>10} {:>12} {:>12}", "objects", "FAT", "PAT");
    for n in [10usize, 100, 1000, 10_000] {
        let n = n.min(total_points / 4);
        let mu = ((total_points as f64 / n as f64).max(4.0)).ln();
        let ds = SynthConfig {
            objects: n,
            sigma: 0.3,
            mu,
            seed: 4,
            multipolygon_fraction: 0.0,
        }
        .generate();
        let data = Dataset::from_bytes(atgis_datagen::write_geojson(&ds), Format::GeoJson);
        let q = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
        let (_, d_fat) = time_once(|| engine(threads, Mode::Fat).exec1(&q, &data).unwrap());
        let (_, d_pat) = time_once(|| engine(threads, Mode::Pat).exec1(&q, &data).unwrap());
        println!(
            "{:>10} {:>12.1} {:>12.1}",
            n,
            throughput_mbs(data.len(), d_fat),
            throughput_mbs(data.len(), d_pat),
        );
    }

    println!("--- (b) skew sigma (log-normal edge counts) ---");
    println!("{:>10} {:>12} {:>12}", "sigma", "FAT", "PAT");
    for sigma in [1.0, 2.0, 3.0, 4.0, 5.0] {
        let ds = SynthConfig {
            objects: scaled(300),
            sigma,
            mu: 2.0,
            seed: 5,
            multipolygon_fraction: 0.0,
        }
        .generate();
        let data = Dataset::from_bytes(atgis_datagen::write_geojson(&ds), Format::GeoJson);
        let q = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
        let (_, d_fat) = time_once(|| engine(threads, Mode::Fat).exec1(&q, &data).unwrap());
        let (_, d_pat) = time_once(|| engine(threads, Mode::Pat).exec1(&q, &data).unwrap());
        println!(
            "{:>10.1} {:>12.1} {:>12.1}",
            sigma,
            throughput_mbs(data.len(), d_fat),
            throughput_mbs(data.len(), d_pat),
        );
    }
    println!();
}

fn fig15() {
    println!("=== Fig 15: partition size, storage format and pipeline (seconds) ===");
    let w = Workload::build(scaled(10000));
    let threshold = (w.objects / 2) as u64;
    let threads = host_threads();
    for (store, store_name) in [(StoreKind::Array, "array"), (StoreKind::List, "list")] {
        for (phase, phase_name) in [
            (PartitionPhase::Associative, "associative"),
            (PartitionPhase::Separate, "separate"),
        ] {
            println!("--- store={store_name} partitioning={phase_name} ---");
            println!(
                "{:>10} {:>12} {:>12} {:>12} {:>12}",
                "cell(deg)", "part-P", "part-M", "join", "total"
            );
            for cell in [0.25, 0.5, 1.0, 2.0, 4.0] {
                let e = Engine::builder()
                    .threads(threads)
                    .mode(Mode::Pat)
                    .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
                    .cell_size(cell)
                    .store(store)
                    .partition_phase(phase)
                    .build();
                let out = e
                    .run(
                        &[Query::join(threshold)],
                        &w.osm_g,
                        &ExecOptions::new().timed(),
                    )
                    .unwrap();
                let stats = out.batch.expect("timed run reports batch stats");
                let j = stats.per_query[0].join.expect("join stats");
                println!(
                    "{:>10.2} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
                    cell,
                    secs(j.partition.split + j.partition.process),
                    secs(j.partition.merge),
                    secs(j.join.total() + j.dedup),
                    secs(j.total()),
                );
            }
        }
    }
    println!();
}

fn fig_batch() {
    println!("=== fig_batch: shared-scan batch execution (8 mixed queries) ===");
    let w = Workload::build(scaled(6000));
    let threshold = (w.objects / 8) as u64;
    let threads = host_threads();
    let e = engine(threads, Mode::Pat);
    let queries = vec![
        Query::containment(Mbr::new(-2.0, 48.0, 2.0, 52.0)),
        Query::containment(Mbr::new(-8.0, 44.0, -4.0, 48.0)),
        Query::aggregation(Mbr::new(-2.0, 48.0, 2.0, 52.0)),
        Query::aggregation(Mbr::new(0.0, 50.0, 4.0, 54.0)),
        Query::containment(Mbr::new(3.0, 42.0, 7.0, 46.0)),
        Query::aggregation(Mbr::new(-6.0, 44.0, -2.0, 48.0)),
        Query::join(threshold),
        Query::combined(threshold, 10.0, 1.0e7),
    ];
    let served = w.osm_g.len() * queries.len();

    let (seq_results, d_seq) = time_best_of(3, || {
        queries
            .iter()
            .map(|q| e.exec1(q, &w.osm_g).unwrap())
            .collect::<Vec<_>>()
    });
    let ((batch_results, stats), d_batch) =
        time_best_of(3, || e.execb_timed(&queries, &w.osm_g).unwrap());
    assert_eq!(batch_results, seq_results, "batch must equal sequential");

    println!(
        "{:>14} {:>12} {:>12} {:>12}",
        "mode", "time (s)", "agg MB/s", "passes"
    );
    println!(
        "{:>14} {:>12.3} {:>12.1} {:>12}",
        "sequential",
        secs(d_seq),
        throughput_mbs(served, d_seq),
        queries.len(),
    );
    println!(
        "{:>14} {:>12.3} {:>12.1} {:>12}",
        "shared scan",
        secs(d_batch),
        throughput_mbs(served, d_batch),
        stats.scan_passes,
    );
    println!(
        "batch speedup: {:.2}x  amortisation: {:.1} queries/pass  shared scan: {:.3}s",
        secs(d_seq) / secs(d_batch),
        stats.amortisation_ratio(),
        secs(stats.shared_scan.total()),
    );
    for (i, q) in stats.per_query.iter().enumerate() {
        let join = q
            .join
            .map(|j| {
                format!(
                    " join={:.3}s dedup={:.3}s",
                    secs(j.join.process),
                    secs(j.dedup)
                )
            })
            .unwrap_or_default();
        println!(
            "  q{i}: wall={:.3}s scan={:.3}s finalize={:.3}s{join}",
            secs(q.wall),
            secs(q.scan),
            secs(q.finalize),
        );
    }

    // Steady-state serving: a QuerySession with a warm index cache.
    let session = atgis::QuerySession::new(e, w.osm_g.clone());
    session.execb(&queries).unwrap();
    let (_, d_warm) = time_best_of(3, || session.execb(&queries).unwrap());
    let joins = vec![Query::join(threshold), Query::join(threshold / 2)];
    let ((_, warm_stats), d_joins) = time_best_of(3, || session.execb_timed(&joins).unwrap());
    println!(
        "warm session: mixed batch {:.3}s ({:.1} MB/s); join-only batch {:.3}s at {} parse passes",
        secs(d_warm),
        throughput_mbs(served, d_warm),
        secs(d_joins),
        warm_stats.scan_passes,
    );
    println!();
}

fn fig_sched() {
    use atgis::{QueryScheduler, SchedulerConfig};
    println!("=== fig_sched: scheduled vs unscheduled duplicate-heavy batch (16 queries) ===");
    let w = Workload::build(scaled(6000));
    let threshold = (w.objects / 8) as u64;
    let e = engine(host_threads(), Mode::Pat);
    // 16 submissions, 6 unique predicates: 4× join, 4× combined,
    // 4× one aggregation tile, 2× one containment tile, 2 one-offs.
    let mut queries = Vec::new();
    queries.extend((0..4).map(|_| Query::join(threshold)));
    queries.extend((0..4).map(|_| Query::combined(threshold, 10.0, 1.0e7)));
    queries.extend((0..4).map(|_| Query::aggregation(Mbr::new(-6.0, 44.0, 4.0, 56.0))));
    queries.extend((0..2).map(|_| Query::containment(Mbr::new(-2.0, 48.0, 2.0, 52.0))));
    queries.push(Query::containment(Mbr::new(-8.0, 44.0, -4.0, 48.0)));
    queries.push(Query::aggregation(Mbr::new(0.0, 50.0, 4.0, 54.0)));
    let served = w.osm_g.len() * queries.len();

    // Symmetric footing: the unscheduled side is a warm QuerySession
    // (partition index cached, same as the scheduler's session), so
    // the ratio isolates dedup + admission, not PR 3's index caching.
    let plain = atgis::QuerySession::new(e.clone(), w.osm_g.clone());
    plain.execb(&queries).unwrap(); // warm the index
    let (unscheduled, d_plain) = time_best_of(3, || plain.execb(&queries).unwrap());
    let sched = QueryScheduler::with_config(
        e.clone(),
        SchedulerConfig {
            cache: false, // measure scheduling work, not cache hits
            ..SchedulerConfig::default()
        },
    );
    let id = sched.register(w.osm_g.clone());
    sched.execb(id, &queries).unwrap(); // warm its index too
    let ((scheduled, stats), d_sched) =
        time_best_of(3, || sched.execb_timed(id, &queries).unwrap());
    assert_eq!(scheduled, unscheduled, "scheduling must not change results");

    println!(
        "{:>14} {:>12} {:>12} {:>8} {:>8}",
        "mode", "time (s)", "agg MB/s", "executed", "passes"
    );
    println!(
        "{:>14} {:>12.3} {:>12.1} {:>8} {:>8}",
        "unscheduled",
        secs(d_plain),
        throughput_mbs(served, d_plain),
        queries.len(),
        1,
    );
    println!(
        "{:>14} {:>12.3} {:>12.1} {:>8} {:>8}",
        "scheduled",
        secs(d_sched),
        throughput_mbs(served, d_sched),
        stats.unique_queries,
        stats.scan_passes,
    );
    println!(
        "scheduling speedup: {:.2}x  dedup {} of {}  waves {}  latency p50/p95/max \
         {:.3}s/{:.3}s/{:.3}s",
        secs(d_plain) / secs(d_sched),
        stats.dedup_hits,
        stats.queries,
        stats.waves.len(),
        secs(stats.latency_percentile(50.0)),
        secs(stats.latency_percentile(95.0)),
        secs(stats.latency_percentile(100.0)),
    );

    // Steady state: full policies, warm aggregate cache + warm index.
    let warm = QueryScheduler::new(e);
    let wid = warm.register(w.osm_g.clone());
    warm.execb(wid, &queries).unwrap();
    let ((_, wstats), d_warm) = time_best_of(3, || warm.execb_timed(wid, &queries).unwrap());
    println!(
        "warm scheduler: {:.3}s ({:.1} MB/s) — {} cache hits, {} parse passes",
        secs(d_warm),
        throughput_mbs(served, d_warm),
        wstats.cache_hits,
        wstats.scan_passes,
    );
    println!();
}

fn fig_stream() {
    use atgis::{FileChunkSource, QueryResult};
    println!("=== fig_stream: streamed vs full-buffer execution (MB/s) ===");
    let w = Workload::build(scaled(10000));
    let bytes = w.osm_g.bytes().to_vec();
    let path = std::env::temp_dir().join(format!(
        "atgis_fig_stream_exp_{}.geojson",
        std::process::id()
    ));
    std::fs::write(&path, &bytes).expect("spill workload to disk");
    let threads = host_threads();
    let e = engine(threads, Mode::Pat);
    let region = w.region();
    let threshold = (w.objects / 2) as u64;
    let queries = [
        Query::containment(region),
        Query::aggregation(region),
        Query::join(threshold),
    ];

    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>10} {:>10} {:>11}",
        "mode", "chunk", "containment", "aggregation", "join", "peak-frag", "VmHWM(MB)"
    );

    // Streamed first: VmHWM is a high-water mark, so measure the
    // streamed profile before the buffered run can spike it. The
    // summary ratio reports the best streamed configuration (chunk
    // size is an operator knob; the figure shows all of them).
    let mut streamed_agg = f64::NAN;
    let mut streamed_agg_label = "-";
    for (label, chunk) in [
        ("64KiB", 1usize << 16),
        ("1MiB", 1 << 20),
        ("16MiB", 1 << 24),
    ] {
        let mut mbs = [0.0f64; 3];
        let mut peak_frag = 0u64;
        for (i, q) in queries.iter().enumerate() {
            let ((_, _, sstats), d) = time_best_of(2, || {
                let mut src = FileChunkSource::open_with_chunk_len(&path, chunk).unwrap();
                e.streamb_timed(std::slice::from_ref(q), &mut src, Format::GeoJson)
                    .unwrap()
            });
            mbs[i] = throughput_mbs(bytes.len(), d);
            peak_frag = peak_frag.max(sstats.peak_fragments);
        }
        if streamed_agg.is_nan() || mbs[1] > streamed_agg {
            streamed_agg = mbs[1];
            streamed_agg_label = label;
        }
        println!(
            "{:>10} {:>10} {:>12.1} {:>12.1} {:>10.1} {:>10} {:>11}",
            "streamed",
            label,
            mbs[0],
            mbs[1],
            mbs[2],
            peak_frag,
            atgis_bench::peak_rss_kb()
                .map(|kb| format!("{:.0}", kb as f64 / 1024.0))
                .unwrap_or_else(|| "-".into()),
        );
    }

    // Full-buffer reference: read the file, then scan.
    let mut buf_mbs = [0.0f64; 3];
    let mut reference: Vec<QueryResult> = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let (r, d) = time_best_of(2, || {
            let ds = Dataset::from_file(&path, Format::GeoJson).unwrap();
            e.exec1(q, &ds).unwrap()
        });
        buf_mbs[i] = throughput_mbs(bytes.len(), d);
        reference.push(r);
    }
    println!(
        "{:>10} {:>10} {:>12.1} {:>12.1} {:>10.1} {:>10} {:>11}",
        "buffered",
        "-",
        buf_mbs[0],
        buf_mbs[1],
        buf_mbs[2],
        "-",
        atgis_bench::peak_rss_kb()
            .map(|kb| format!("{:.0}", kb as f64 / 1024.0))
            .unwrap_or_else(|| "-".into()),
    );
    println!(
        "streamed/buffered aggregation ratio: {:.2} (best streamed config: {streamed_agg_label} chunks)",
        streamed_agg / buf_mbs[1]
    );

    // Equality spot-check at the reporting scale.
    for (q, want) in queries.iter().zip(&reference) {
        let mut src = FileChunkSource::open_with_chunk_len(&path, 1 << 20).unwrap();
        let got = e.stream1(q, &mut src, Format::GeoJson).unwrap();
        assert_eq!(&got, want, "streamed must equal buffered");
    }
    std::fs::remove_file(&path).ok();
    println!();
}
