//! `perfcmp` — the CI perf-regression gate.
//!
//! Compares a current bench JSON file (emitted by the criterion shim's
//! `--json <path>` / `ATGIS_BENCH_JSON`) against the committed
//! baseline and **fails (exit 1) on any throughput regression beyond
//! the tolerance** (default 15%, `--tolerance 0.15` /
//! `ATGIS_PERF_TOLERANCE`).
//!
//! ```text
//! perfcmp <current.json> [--baseline <path>] [--tolerance 0.15] [--update]
//! ```
//!
//! * entries gate on `mb_per_s` (throughput benches); entries without
//!   a throughput are listed for context but never gate — wall-clock
//!   nanoseconds are too host-dependent to diff across machines;
//! * `--update` rewrites the baseline from the current file (run it
//!   after an intentional perf change and commit the result);
//! * benches present only in the current file are reported as new and
//!   pass; baseline entries **missing** from the current run (renamed
//!   bench, dropped throughput declaration, filtered run) fail the
//!   gate — an incomplete run must not green-wash a regression
//!   silently. Compare a full run, or `--update` the baseline when a
//!   bench is intentionally removed.
//!
//! The JSON is parsed with a purpose-built scanner (the build is
//! offline — no serde): one object per line, flat string/number
//! fields, exactly what the shim emits.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug, Clone)]
struct Entry {
    ns_per_iter: f64,
    mb_per_s: Option<f64>,
}

/// Extracts `"key":<value>` from a flat JSON object line; strings are
/// returned without quotes, numbers/null verbatim.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let mut end = 0;
        let bytes = stripped.as_bytes();
        while end < bytes.len() {
            match bytes[end] {
                b'\\' => end += 2,
                b'"' => return Some(&stripped[..end]),
                _ => end += 1,
            }
        }
        None
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn parse(path: &PathBuf) -> Result<BTreeMap<String, Entry>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (Some(bench), Some(name), Some(ns)) = (
            field(line, "bench"),
            field(line, "name"),
            field(line, "ns_per_iter"),
        ) else {
            return Err(format!("malformed bench JSON line: {line}"));
        };
        let mb_per_s = field(line, "mb_per_s")
            .filter(|v| *v != "null")
            .and_then(|v| v.parse::<f64>().ok());
        let ns_per_iter: f64 = ns
            .parse()
            .map_err(|_| format!("bad ns_per_iter in: {line}"))?;
        // Repeated names (re-runs appending to one file): last wins.
        out.insert(
            format!("{bench}::{name}"),
            Entry {
                ns_per_iter,
                mb_per_s,
            },
        );
    }
    Ok(out)
}

fn default_baseline() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_baseline.json")
}

fn write_baseline(path: &PathBuf, entries: &BTreeMap<String, Entry>) -> Result<(), String> {
    let mut out = String::new();
    for (key, e) in entries {
        let (bench, name) = key.split_once("::").unwrap_or(("", key));
        let mbs = e
            .mb_per_s
            .map(|v| format!("{v:.3}"))
            .unwrap_or_else(|| "null".into());
        out.push_str(&format!(
            "{{\"bench\":\"{bench}\",\"name\":\"{name}\",\"mode\":\"baseline\",\"ns_per_iter\":{},\"mb_per_s\":{mbs}}}\n",
            e.ns_per_iter as u128,
        ));
    }
    std::fs::write(path, out).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut current: Option<PathBuf> = None;
    let mut baseline = default_baseline();
    let mut tolerance: f64 = std::env::var("ATGIS_PERF_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.15);
    let mut update = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                i += 1;
                baseline = PathBuf::from(args.get(i).expect("--baseline needs a path"));
            }
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .expect("--tolerance needs a fraction")
                    .parse()
                    .expect("tolerance must be a number");
            }
            "--update" => update = true,
            s if current.is_none() => current = Some(PathBuf::from(s)),
            s => {
                eprintln!("unexpected argument: {s}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(current_path) = current else {
        eprintln!(
            "usage: perfcmp <current.json> [--baseline <path>] [--tolerance 0.15] [--update]"
        );
        return ExitCode::FAILURE;
    };

    let current = match parse(&current_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if update {
        if let Err(e) = write_baseline(&baseline, &current) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "baseline updated: {} entries -> {}",
            current.len(),
            baseline.display()
        );
        return ExitCode::SUCCESS;
    }
    let baseline_entries = match parse(&baseline) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e} (run `perfcmp <current.json> --update` to create it)");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{:<64} {:>12} {:>12} {:>8}",
        "benchmark", "base MB/s", "cur MB/s", "delta"
    );
    let mut regressions = 0usize;
    let mut missing = 0usize;
    let mut compared = 0usize;
    for (key, base) in &baseline_entries {
        let Some(base_mbs) = base.mb_per_s else {
            continue; // wall-clock-only entries never gate
        };
        let Some(cur) = current.get(key) else {
            missing += 1;
            println!("{key:<64} {base_mbs:>12.1} {:>12} {:>8}", "-", "MISSING");
            continue;
        };
        let Some(cur_mbs) = cur.mb_per_s else {
            missing += 1;
            println!("{key:<64} {base_mbs:>12.1} {:>12} {:>8}", "-", "NO-TPUT");
            continue;
        };
        compared += 1;
        let delta = (cur_mbs - base_mbs) / base_mbs;
        let flag = if delta < -tolerance {
            regressions += 1;
            "  REGRESSED"
        } else {
            ""
        };
        println!(
            "{key:<64} {base_mbs:>12.1} {cur_mbs:>12.1} {:>7.1}%{flag}",
            delta * 100.0
        );
    }
    for key in current.keys() {
        if !baseline_entries.contains_key(key) {
            println!("{key:<64} {:>12} (new, not gated)", "-");
        }
    }
    println!(
        "\ncompared {compared} throughput benches against {} (tolerance {:.0}%)",
        baseline.display(),
        tolerance * 100.0
    );
    if regressions > 0 || missing > 0 {
        if missing > 0 {
            eprintln!(
                "FAIL: {missing} baseline entries had no comparable current measurement \
                 (incomplete runs cannot prove the absence of a regression)"
            );
        }
        if regressions > 0 {
            eprintln!(
                "FAIL: {regressions} benchmark(s) regressed more than {:.0}%",
                tolerance * 100.0
            );
        }
        return ExitCode::FAILURE;
    }
    println!("perf gate passed");
    ExitCode::SUCCESS
}
