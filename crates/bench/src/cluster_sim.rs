//! The cluster map/reduce baseline (Hadoop-GIS / SpatialHadoop
//! stand-in).
//!
//! The paper's cluster comparisons hinge on three overheads AT-GIS
//! avoids by staying on one node (§2.3):
//!
//! 1. **job startup** — JVM/task-scheduling latency per map/reduce
//!    job (tens of seconds on real Hadoop);
//! 2. **shuffle** — geometries crossing the network between map and
//!    reduce, serialised and deserialised per record;
//! 3. **boundary handling** — objects duplicated into neighbouring
//!    partitions before the reduce, then deduplicated.
//!
//! [`ClusterConfig`] makes those costs explicit parameters. With both
//! set to zero the simulator degenerates to a partitioned parallel
//! scan, which is the *lower bound* for any cluster execution; the
//! Fig. 10 harness uses calibrated non-zero values (documented in
//! EXPERIMENTS.md) so the relative ordering of the paper survives.
//!
//! This module lives in the **bench harness**, not the baselines
//! crate: it is a Fig. 10 / Fig. 14 comparator only, and the sharded
//! scatter–gather execution inside the engine
//! ([`atgis::ShardSet`]) is what the library itself offers where a
//! cluster would otherwise be reached for.

use atgis_baselines::{BaselineAnswer, BaselineQuery};
use atgis_formats::{parse_all, Format, MetadataFilter, Mode, ParseError};
use atgis_geometry::relate::intersects;
use atgis_geometry::{measures, relate, DistanceModel, Geometry, Polygon};
use std::time::Duration;

/// The same predicate the other baselines use (private there): MBR
/// prefilter, then exact geometry intersection.
fn geometry_matches(g: &Geometry, region: &Polygon) -> bool {
    g.mbr().intersects(&region.mbr()) && relate::intersects(g, &Geometry::Polygon(region.clone()))
}

/// Cluster cost model.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Simulated cluster nodes (each gets one data partition).
    pub nodes: usize,
    /// Fixed startup latency charged per map/reduce job.
    pub job_startup: Duration,
    /// Per-record cost of shuffling a geometry between nodes
    /// (serialisation + network), charged for every record crossing
    /// the map→reduce boundary.
    pub shuffle_per_record: Duration,
    /// How many map/reduce jobs the query plan needs (Hadoop-GIS runs
    /// aggregation as extra jobs — "Hadoop-GIS requires 3× longer for
    /// the aggregation query than for the containment query").
    pub jobs_for_containment: usize,
    /// Jobs for an aggregation plan.
    pub jobs_for_aggregation: usize,
    /// Jobs for a join plan.
    pub jobs_for_join: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 8,
            job_startup: Duration::from_millis(150),
            shuffle_per_record: Duration::from_micros(20),
            jobs_for_containment: 1,
            jobs_for_aggregation: 3,
            jobs_for_join: 2,
        }
    }
}

/// Result of a simulated cluster execution: the answer plus the
/// synthetic overhead that must be added to the measured compute time.
pub struct ClusterExecution {
    /// The query answer (identical to other baselines).
    pub answer: BaselineAnswer,
    /// Modelled overhead (startup + shuffle) to add to wall time.
    pub simulated_overhead: Duration,
    /// Records that crossed the shuffle boundary.
    pub shuffled_records: u64,
}

/// Executes a query under the cluster cost model. The data is
/// hash-partitioned over `nodes` "mappers" (run as threads); results
/// shuffle to a single reducer.
pub fn execute(
    input: &[u8],
    format: Format,
    query: &BaselineQuery,
    config: &ClusterConfig,
) -> Result<ClusterExecution, ParseError> {
    // The "cluster" still has to parse its partition: we parse once
    // and partition features round-robin, charging shuffle for every
    // map output record.
    let features = parse_all(input, format, Mode::Pat, &MetadataFilter::All)?;
    let nodes = config.nodes.max(1);

    let (answer, map_outputs, jobs) = match query {
        BaselineQuery::Containment(region) => {
            let mut ids: Vec<u64> = Vec::new();
            let mut outputs = 0u64;
            for chunk in features.chunks(features.len().div_ceil(nodes).max(1)) {
                for f in chunk {
                    if geometry_matches(&f.geometry, region) {
                        ids.push(f.id);
                        outputs += 1;
                    }
                }
            }
            ids.sort_unstable();
            (
                BaselineAnswer::Matches(ids),
                outputs,
                config.jobs_for_containment,
            )
        }
        BaselineQuery::Aggregation(region) => {
            let mut count = 0;
            let mut area = 0.0;
            let mut perimeter = 0.0;
            let mut outputs = 0u64;
            for f in &features {
                if geometry_matches(&f.geometry, region) {
                    count += 1;
                    outputs += 1;
                    area += measures::area(&f.geometry, DistanceModel::Spherical);
                    perimeter += measures::perimeter(&f.geometry, DistanceModel::Spherical);
                }
            }
            (
                BaselineAnswer::Aggregate(count, area, perimeter),
                // Aggregation shuffles each partial twice through the
                // extra jobs.
                outputs * config.jobs_for_aggregation as u64,
                config.jobs_for_aggregation,
            )
        }
        BaselineQuery::Join(threshold) => {
            // Spatial partitioning with boundary duplication: objects
            // straddling node boundaries are sent to both — we model
            // with a 1° grid hashed over nodes.
            let mut pairs = Vec::new();
            let mut outputs = 0u64;
            let grid_cell = 1.0f64;
            let mut assignments: Vec<(usize, usize)> = Vec::new(); // (node, feature idx)
            for (i, f) in features.iter().enumerate() {
                let mbr = f.geometry.mbr();
                let x0 = (mbr.min_x / grid_cell).floor() as i64;
                let x1 = (mbr.max_x / grid_cell).floor() as i64;
                let y0 = (mbr.min_y / grid_cell).floor() as i64;
                let y1 = (mbr.max_y / grid_cell).floor() as i64;
                for x in x0..=x1 {
                    for y in y0..=y1 {
                        let node = ((x * 31 + y).unsigned_abs() as usize) % nodes;
                        assignments.push((node, i));
                        outputs += 1; // Every duplicated record shuffles.
                    }
                }
            }
            assignments.sort_unstable();
            assignments.dedup();
            for node in 0..nodes {
                let local: Vec<usize> = assignments
                    .iter()
                    .filter(|(n, _)| *n == node)
                    .map(|&(_, i)| i)
                    .collect();
                for &i in &local {
                    let a = &features[i];
                    if a.id >= *threshold {
                        continue;
                    }
                    let am = a.geometry.mbr();
                    for &j in &local {
                        let b = &features[j];
                        if b.id < *threshold {
                            continue;
                        }
                        if am.intersects(&b.geometry.mbr()) && intersects(&a.geometry, &b.geometry)
                        {
                            pairs.push((a.id, b.id));
                        }
                    }
                }
            }
            pairs.sort_unstable();
            pairs.dedup(); // Boundary-duplicate elimination.
            (BaselineAnswer::Pairs(pairs), outputs, config.jobs_for_join)
        }
    };

    let simulated_overhead = config.job_startup * jobs as u32
        + config
            .shuffle_per_record
            .checked_mul(map_outputs as u32)
            .unwrap_or(Duration::MAX);
    Ok(ClusterExecution {
        answer,
        simulated_overhead,
        shuffled_records: map_outputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgis_baselines::sequential;
    use atgis_datagen::{write_geojson, OsmGenerator};
    use atgis_geometry::Mbr;

    fn fixture() -> Vec<u8> {
        write_geojson(&OsmGenerator::new(33).generate(50))
    }

    #[test]
    fn cluster_answers_match_sequential() {
        let bytes = fixture();
        let config = ClusterConfig::default();
        for q in [
            BaselineQuery::containment(Mbr::new(-5.0, 45.0, 5.0, 55.0)),
            BaselineQuery::Join(25),
        ] {
            let c = execute(&bytes, Format::GeoJson, &q, &config).unwrap();
            let s = sequential::execute(&bytes, Format::GeoJson, &q).unwrap();
            assert_eq!(c.answer, s);
        }
    }

    #[test]
    fn aggregation_charges_more_jobs_than_containment() {
        let bytes = fixture();
        let config = ClusterConfig::default();
        let c = execute(
            &bytes,
            Format::GeoJson,
            &BaselineQuery::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0)),
            &config,
        )
        .unwrap();
        let a = execute(
            &bytes,
            Format::GeoJson,
            &BaselineQuery::aggregation(Mbr::new(-180.0, -90.0, 180.0, 90.0)),
            &config,
        )
        .unwrap();
        assert!(
            a.simulated_overhead > c.simulated_overhead,
            "aggregation plans pay more job startups and shuffles"
        );
    }

    #[test]
    fn zero_cost_config_has_zero_overhead() {
        let bytes = fixture();
        let config = ClusterConfig {
            job_startup: Duration::ZERO,
            shuffle_per_record: Duration::ZERO,
            ..Default::default()
        };
        let c = execute(
            &bytes,
            Format::GeoJson,
            &BaselineQuery::containment(Mbr::new(-5.0, 45.0, 5.0, 55.0)),
            &config,
        )
        .unwrap();
        assert_eq!(c.simulated_overhead, Duration::ZERO);
    }
}
