//! Shared-scan batch execution: one structural parse pass serving N
//! concurrent queries.
//!
//! AT-GIS's throughput comes from doing query processing *inside* the
//! scan; a multi-tenant server extends that story by amortising the
//! scan itself. [`Engine::execute_batch`] compiles submitted queries
//! into a batch plan: every query contributes a per-query
//! aggregate sink to **one** [`MultiSink`] fan-out, so a single
//! transducer pass (the engine's configured PAT/FAT/Adaptive mode for
//! the dataset's format) parses each geometry once and dispatches it
//! to every member. Join-class queries additionally share one
//! side-agnostic [`PartitionIndex`] — the partition store plus its
//! skew-refined [`PartitionMap`] — and one [`ReparseCache`], so the
//! partition pass, hot-cell splitting and candidate re-parsing are all
//! paid once per batch instead of once per query. Per-query cost
//! drops from `O(dataset)` parse + `O(query)` work to `O(query)` work
//! alone.
//!
//! The layering is plan → scan → aggregate:
//!
//! 1. **plan** — classify each query ([`Query::scan_class`]), build
//!    its sink, and register join specs ([`crate::join::JoinSpec`]:
//!    threshold-resolved sides, refine-stage perimeter bounds);
//! 2. **scan** — one pass over the raw bytes with the
//!    [`MultiSink`] prototype (the partition sink rides along when the
//!    index is not already cached). The pass is either the buffered
//!    `single_pass` over a materialised [`Dataset`] or the
//!    **streaming scan** (`crate::stream::StreamingScan`) fed chunk
//!    by chunk from a [`crate::stream::ChunkSource`] — both produce
//!    the same finished sinks, bit-identically;
//! 3. **aggregate** — extract per-query results; join-class queries
//!    fan out over a flattened (query × partition) job space
//!    ([`crate::executor::run_grid_on`]) sharing the index and the
//!    re-parse cache, then deduplicate per query.
//!
//! Results are **bit-identical** to per-query [`Engine::execute`]
//! calls: member sinks see an absorb/combine structure whose final
//! fold is order-canonical (list aggregates concatenate in document
//! order, numeric aggregates are exact — see [`crate::exact`]), and
//! join pairs are canonicalised by the final sort + dedup.
//!
//! [`QuerySession`] is the serving seam, with two lifecycles:
//!
//! * **pinned** (`QuerySession::new`): a materialised dataset, warm
//!   [`IndexCache`] across batches (a join-only batch over a cached
//!   index runs *zero* parse passes);
//! * **streaming** (`QuerySession::streaming` → `ingest_chunk`* →
//!   `finish`): the session owns a growing stream buffer. While
//!   ingesting it answers single-pass queries over the
//!   feature-complete prefix, and a partition sink rides the
//!   incremental scan, so `finish` **seals** the index without
//!   re-reading anything — the cache is extended incrementally rather
//!   than invalidated wholesale. Join-class queries become available
//!   the moment `finish` returns.

use crate::cancel::CancelToken;
use crate::dataset::Dataset;
use crate::engine::{
    make_reparser, Engine, EngineBuilder, PartitionAgg, PartitionPhase, StoreKind,
};
use crate::exec::{self, ExecOptions, RunOutcome};
use crate::executor::run_grid_on;
use crate::join::{
    fold_slot_results, join_partition, JoinOptions, JoinSpec, ReparseCache, Reparser, SlotResult,
};
use crate::partition::{
    ArrayStore, GridSpec, ListStore, PartitionMap, PartitionMapStats, PartitionStore,
};
use crate::persist::{self, Snapshot};
use crate::pipeline::{
    downcast_sink, AggregateSink, ContainmentAgg, FailedSink, MetricsAgg, MultiSink, QueryAggregate,
};
use crate::pool::{recover, JobFault};
use crate::query::{Query, ScanClass};
use crate::result::{QueryError, QueryOutcome, QueryResult};
use crate::shard::ShardSet;
use crate::stats::{
    BatchQueryStats, BatchStats, JoinTimings, ShardStats, ShardTiming, StreamStats, Timings,
};
use crate::stream::{drive, ChunkSource, StreamingScan};
use crate::{Error, Result};
use atgis_formats::feature::MetadataFilter;
use atgis_formats::Format;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The partitioning configuration a [`PartitionIndex`] was built
/// under — the cache key. Two engines with the same partitioning
/// knobs can share an index even if they differ in threads or scan
/// mode, because the index depends only on geometry bounds.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct IndexKey {
    pub(crate) cell_deg: u64,
    pub(crate) extent: [u64; 4],
    pub(crate) store: StoreKind,
    pub(crate) phase: PartitionPhase,
    pub(crate) adaptive: crate::partition::AdaptiveConfig,
}

pub(crate) fn index_key(cfg: &EngineBuilder) -> IndexKey {
    IndexKey {
        cell_deg: cfg.cell_deg.to_bits(),
        extent: [
            cfg.grid_extent.min_x.to_bits(),
            cfg.grid_extent.min_y.to_bits(),
            cfg.grid_extent.max_x.to_bits(),
            cfg.grid_extent.max_y.to_bits(),
        ],
        store: cfg.store,
        phase: cfg.partition_phase,
        adaptive: cfg.adaptive,
    }
}

/// The store side of a [`PartitionIndex`], matching the engine's
/// configured [`StoreKind`].
pub(crate) enum IndexStore {
    /// Flat per-cell arrays.
    Array(ArrayStore),
    /// Chunk lists.
    List(ListStore),
}

/// A dataset-level spatial index shared by every join-class query of
/// a batch (and, inside a [`QuerySession`], across batches): the
/// side-agnostic partition store plus its skew-refined map. Sides are
/// resolved per query at join time (`id < threshold`), so queries
/// with different thresholds — and the combined query's perimeter
/// bounds, enforced at the refine stage — all read the same index.
pub struct PartitionIndex {
    pub(crate) store: IndexStore,
    pub(crate) map: PartitionMap,
    /// Time spent on map refinement (load stats + hot-cell splits).
    pub(crate) refine: Duration,
    /// OSM XML only: the offset→geometry table re-parsing needs (a
    /// relation's geometry requires the node table, so single-object
    /// reparse is impossible). Cached with the index so warm-session
    /// XML batches skip this pass too.
    pub(crate) xml_table: Option<Arc<HashMap<u64, atgis_geometry::Geometry>>>,
}

impl PartitionIndex {
    /// Shape of the refined partition map.
    pub(crate) fn occupied_slots(&self) -> Vec<usize> {
        match &self.store {
            IndexStore::Array(s) => self.map.occupied_slots(s),
            IndexStore::List(s) => self.map.occupied_slots(s),
        }
    }

    /// Shape of the (possibly refined) partition map.
    pub fn map_stats(&self) -> PartitionMapStats {
        self.map.stats()
    }
}

/// Dataset-level cache of [`PartitionIndex`]es keyed by partitioning
/// configuration. [`Engine::execute_batch`] uses a fresh cache per
/// call (queries of one batch share the index); [`QuerySession`] keeps
/// one alive so later batches skip the partition pass entirely.
pub struct IndexCache {
    inner: Mutex<HashMap<IndexKey, Arc<PartitionIndex>>>,
}

impl IndexCache {
    /// An empty cache.
    pub fn new() -> Self {
        IndexCache {
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Number of cached indexes.
    pub fn len(&self) -> usize {
        recover(self.inner.lock()).len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get(&self, key: &IndexKey) -> Option<Arc<PartitionIndex>> {
        recover(self.inner.lock()).get(key).cloned()
    }

    fn insert(&self, key: IndexKey, index: Arc<PartitionIndex>) {
        recover(self.inner.lock()).insert(key, index);
    }

    /// Every cached index, for snapshot encoding.
    pub(crate) fn export(&self) -> Vec<(IndexKey, Arc<PartitionIndex>)> {
        recover(self.inner.lock())
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }
}

impl Default for IndexCache {
    fn default() -> Self {
        IndexCache::new()
    }
}

/// What one query contributes to the batch plan.
enum Task {
    /// Containment: sink at this position in the fan-out.
    Containment { sink: usize },
    /// Aggregation: sink at this position in the fan-out.
    Aggregation { sink: usize },
    /// Join-class query (its spec's position in the join fan-out is
    /// tracked by `join_query_index`).
    Join,
    /// Combined query: join spec plus the union-area post-aggregation.
    Combined,
}

/// The per-query compilation of a batch — everything the scan step
/// (buffered or streamed) and the aggregate step need.
struct BatchPlan {
    sinks: Vec<Box<dyn AggregateSink>>,
    tasks: Vec<Task>,
    join_specs: Vec<JoinSpec>,
    join_query_index: Vec<usize>,
}

/// Compiles queries into per-query sinks and join specs. Planning
/// needs only the engine configuration, so the buffered and streaming
/// scan paths share it verbatim.
fn plan_queries(engine: &Engine, queries: &[Query]) -> BatchPlan {
    let mut sinks: Vec<Box<dyn AggregateSink>> = Vec::new();
    let mut tasks: Vec<Task> = Vec::with_capacity(queries.len());
    let mut join_specs: Vec<JoinSpec> = Vec::new();
    let mut join_query_index: Vec<usize> = Vec::new();
    for (qi, q) in queries.iter().enumerate() {
        match q {
            Query::Containment { region } => {
                tasks.push(Task::Containment { sink: sinks.len() });
                sinks.push(Box::new(ContainmentAgg::new(Arc::new(region.clone()))));
            }
            Query::Aggregation {
                region,
                metrics,
                model,
                strategy,
            } => {
                let strategy = engine.resolve_strategy(*strategy, region);
                tasks.push(Task::Aggregation { sink: sinks.len() });
                sinks.push(Box::new(MetricsAgg::new(
                    Arc::new(region.clone()),
                    metrics,
                    *model,
                    strategy,
                )));
            }
            Query::Join { id_threshold } => {
                tasks.push(Task::Join);
                join_specs.push(JoinSpec::threshold(*id_threshold));
                join_query_index.push(qi);
            }
            Query::Combined {
                id_threshold,
                min_perimeter_left,
                max_perimeter_right,
            } => {
                tasks.push(Task::Combined);
                join_specs.push(
                    JoinSpec::threshold(*id_threshold).with_perimeter_bounds(
                        Some(*min_perimeter_left),
                        Some(*max_perimeter_right),
                    ),
                );
                join_query_index.push(qi);
            }
        }
    }
    BatchPlan {
        sinks,
        tasks,
        join_specs,
        join_query_index,
    }
}

/// A reusable query session: one engine (and its persistent worker
/// pool), one dataset — pinned up front or streamed in chunk by chunk
/// — and a warm [`IndexCache`]. The unit a multi-tenant server holds
/// per served dataset; repeated [`QuerySession::run`] calls amortise
/// both the structural scan (within a batch) and the partition index
/// (across batches).
///
/// ```
/// use atgis::{Dataset, Engine, ExecOptions, Query, QuerySession};
/// use atgis_formats::Format;
/// use atgis_geometry::Mbr;
///
/// let bytes = atgis_datagen::write_geojson(&atgis_datagen::OsmGenerator::new(6).generate(90));
/// let dataset = Dataset::from_bytes(bytes, Format::GeoJson);
/// let engine = Engine::builder().threads(2).cell_size(2.0).build();
/// let session = QuerySession::new(engine, dataset);
///
/// let joins = vec![Query::join(45), Query::join(30)];
/// let opts = ExecOptions::new().timed();
/// // First join-class batch: one shared pass builds the partition
/// // index and both joins read it.
/// let out = session.run(&joins, &opts).unwrap();
/// assert_eq!(out.batch.as_ref().unwrap().scan_passes, 1);
/// let cold = out.collapse().unwrap();
/// // Repeat traffic: the cached index serves the joins with ZERO
/// // parse passes, and results stay bit-identical.
/// let out = session.run(&joins, &opts).unwrap();
/// assert_eq!(out.batch.as_ref().unwrap().scan_passes, 0);
/// assert_eq!(cold, out.collapse().unwrap());
/// ```
///
/// For the **streaming** lifecycle (`ingest_chunk`* → `finish`), see
/// [`QuerySession::streaming`]; a sealed session can be handed to a
/// [`crate::scheduler::QueryScheduler`] for multi-tenant serving.
pub struct QuerySession {
    engine: Engine,
    dataset: Dataset,
    cache: IndexCache,
    ingest: Option<SessionIngest>,
    /// Set when a streaming seal failed: the stream is gone but the
    /// session only holds a truncated prefix, so serving queries
    /// would silently cover partial data. Every entry point errors.
    seal_failed: bool,
    /// Shard layouts built for this dataset, keyed by requested shard
    /// count — the bounding pass runs once per count, like the
    /// partition index runs once per configuration.
    shard_sets: Mutex<HashMap<usize, Arc<ShardSet>>>,
}

/// Mid-ingest state of a streaming session.
struct SessionIngest {
    scan: StreamingScan<MultiSink>,
    format: Format,
}

impl QuerySession {
    /// Opens a session serving a fully materialised `dataset` with
    /// `engine`. When the engine carries a persist store
    /// ([`crate::EngineBuilder::persist_path`]), a valid snapshot of
    /// this dataset warm-starts the session: sealed partition indexes
    /// and shard layouts restore without a single parse pass, and a
    /// missing/corrupt/version-skewed snapshot silently leaves the
    /// session cold.
    pub fn new(engine: Engine, dataset: Dataset) -> Self {
        let session = QuerySession {
            engine,
            dataset,
            cache: IndexCache::new(),
            ingest: None,
            seal_failed: false,
            shard_sets: Mutex::new(HashMap::new()),
        };
        session.restore_from_store();
        session
    }

    /// Installs a snapshot's derived state, if the engine persists and
    /// a trustworthy snapshot of this dataset exists. Every failure
    /// mode (no store, no file, corruption, version skew, injected
    /// read fault) leaves the session exactly as cold as it started.
    fn restore_from_store(&self) {
        let Some(store) = self.engine.persist() else {
            return;
        };
        if let Ok(Some(snap)) = store.load_dataset(&self.dataset) {
            for (key, index) in snap.indexes {
                self.cache.insert(key, index);
            }
            let mut sets = recover(self.shard_sets.lock());
            for (count, set) in snap.shard_sets {
                sets.insert(count, set);
            }
        }
    }

    /// How much restorable state the session holds — grows when a
    /// partition index is built or a shard layout is bounded, so
    /// callers can spill only after runs that actually derived
    /// something new.
    pub(crate) fn persist_epoch(&self) -> usize {
        self.cache.len() + recover(self.shard_sets.lock()).len()
    }

    /// Spills the session's derived state (plus the caller's finished
    /// `aggregates`) to the engine's persist store, best-effort: a
    /// failed save costs only future warm starts, never the query.
    /// No-op for unsealed sessions — a streaming prefix's index must
    /// never be restored as if it covered the full dataset.
    pub(crate) fn write_through(
        &self,
        generation: u64,
        aggregates: Vec<(crate::scheduler::QueryKey, QueryResult)>,
    ) {
        let Some(store) = self.engine.persist() else {
            return;
        };
        if !self.is_sealed() {
            return;
        }
        let snap = Snapshot {
            generation,
            dataset_len: self.dataset.len() as u64,
            fingerprint: persist::dataset_fingerprint(self.dataset.bytes(), self.dataset.format()),
            indexes: self.cache.export(),
            shard_sets: recover(self.shard_sets.lock())
                .iter()
                .map(|(count, set)| (*count, Arc::clone(set)))
                .collect(),
            aggregates,
        };
        let _ = store.save(&snap);
    }

    /// Opens a **streaming** session: the dataset arrives through
    /// [`QuerySession::ingest_chunk`] while the session is live.
    ///
    /// During ingestion the session answers single-pass queries
    /// (containment/aggregation) over the feature-complete prefix
    /// ingested so far, and a side-agnostic partition sink rides the
    /// incremental scan. Calling [`QuerySession::finish`] seals the
    /// stream: the partition index is refined from the incrementally
    /// fed store — no extra parse pass — and join-class queries become
    /// available, served from the warm cache exactly as in a pinned
    /// session.
    pub fn streaming(engine: Engine, format: Format) -> Result<Self> {
        QuerySession::streaming_sized(engine, format, None)
    }

    /// [`QuerySession::streaming`] with a known stream size, so the
    /// buffer reservation is exact.
    pub fn streaming_sized(
        engine: Engine,
        format: Format,
        size_hint: Option<usize>,
    ) -> Result<Self> {
        let cfg = engine.config();
        let grid = GridSpec::new(cfg.grid_extent, cfg.cell_deg);
        let sink: Box<dyn AggregateSink> = match cfg.store {
            StoreKind::Array => Box::new(partition_proto::<ArrayStore>(grid, cfg)),
            StoreKind::List => Box::new(partition_proto::<ListStore>(grid, cfg)),
        };
        let scan = StreamingScan::new(&engine, format, MultiSink::new(vec![sink]), size_hint)?;
        let dataset = Dataset::from_stream_buffer(scan.buffer().clone(), 0, format);
        Ok(QuerySession {
            engine,
            dataset,
            cache: IndexCache::new(),
            ingest: Some(SessionIngest { scan, format }),
            seal_failed: false,
            shard_sets: Mutex::new(HashMap::new()),
        })
    }

    /// The session's engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The served dataset. For a streaming session mid-ingest this is
    /// the feature-complete queryable prefix; after
    /// [`QuerySession::finish`] it is the sealed full dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Partition indexes currently cached.
    pub fn cached_indexes(&self) -> usize {
        self.cache.len()
    }

    /// True when the session serves a complete dataset (pinned, or
    /// streamed and successfully sealed). A session whose seal
    /// *failed* is neither ingesting nor sealed — every query entry
    /// point errors.
    pub fn is_sealed(&self) -> bool {
        self.ingest.is_none() && !self.seal_failed
    }

    /// Bytes ingested so far (streaming sessions; pinned sessions
    /// report the dataset length).
    pub fn ingested_len(&self) -> usize {
        match &self.ingest {
            Some(i) => i.scan.ingested_len(),
            None => self.dataset.len(),
        }
    }

    /// Feeds one chunk into a streaming session: the bytes are
    /// appended to the stream buffer, newly feature-complete regions
    /// are scanned into the incremental partition sink on the worker
    /// pool, and the queryable prefix advances. The pool is released
    /// between calls, so queries can interleave with ingestion.
    pub fn ingest_chunk(&mut self, chunk: &[u8]) -> Result<()> {
        let Some(ingest) = self.ingest.as_mut() else {
            return Err(Error::InvalidState(
                "session is sealed; only QuerySession::streaming ingests".into(),
            ));
        };
        ingest.scan.ingest(&self.engine, chunk)?;
        self.dataset = Dataset::from_stream_buffer(
            ingest.scan.buffer().clone(),
            ingest.scan.queryable_len(),
            ingest.format,
        );
        Ok(())
    }

    /// Seals a streaming session: the tail region is scanned, the
    /// incrementally fed partition store is refined into a
    /// [`PartitionIndex`] and installed in the session cache (no
    /// re-scan — the cache is *extended*, not invalidated), and the
    /// session dataset becomes the sealed zero-copy view. Join-class
    /// queries are valid from here on.
    pub fn finish(&mut self) -> Result<StreamStats> {
        let Some(ingest) = self.ingest.take() else {
            return Err(Error::InvalidState("session is already sealed".into()));
        };
        // A failed seal (malformed tail, I/O error) must not leave the
        // session masquerading as sealed over the truncated prefix:
        // mark it dead so later queries error instead of silently
        // serving partial data.
        let (multi, dataset, _timings, stats) = match ingest.scan.seal(&self.engine) {
            Ok(sealed) => sealed,
            Err(e) => {
                self.seal_failed = true;
                return Err(e);
            }
        };
        self.dataset = dataset;
        // Any shard layout bounded the (shorter) streaming prefix;
        // rebuild on demand against the sealed dataset.
        recover(self.shard_sets.lock()).clear();
        let cfg = self.engine.config();
        let grid = GridSpec::new(cfg.grid_extent, cfg.cell_deg);
        let sink = multi
            .into_sinks()
            .pop()
            .expect("the partition sink rode the stream");
        // A panicked partition sink means the index is unbuildable;
        // the session cannot serve join-class queries over it, so the
        // seal fails like a truncated stream would.
        if let Some(m) = sink.panic_message() {
            self.seal_failed = true;
            return Err(Error::TaskPanicked(m.to_string()));
        }
        let (store, map, refine) = match cfg.store {
            StoreKind::Array => {
                let agg: PartitionAgg<ArrayStore> = downcast_sink(sink);
                let (s, m, r) = finish_index(cfg, grid, agg);
                (IndexStore::Array(s), m, r)
            }
            StoreKind::List => {
                let agg: PartitionAgg<ListStore> = downcast_sink(sink);
                let (s, m, r) = finish_index(cfg, grid, agg);
                (IndexStore::List(s), m, r)
            }
        };
        let xml_table = if self.dataset.format() == Format::OsmXml {
            Some(Arc::new(
                self.engine.xml_geometry_table(&self.dataset, None)?,
            ))
        } else {
            None
        };
        self.cache.insert(
            index_key(cfg),
            Arc::new(PartitionIndex {
                store,
                map,
                refine,
                xml_table,
            }),
        );
        // The seal built the one artifact worth keeping; spill it so
        // the next process skips the parse entirely.
        self.write_through(1, Vec::new());
        Ok(stats)
    }

    /// Executes one query (a batch of one — join-class queries still
    /// benefit from the cached partition index).
    #[deprecated(note = "use QuerySession::run with ExecOptions")]
    pub fn execute(&self, query: &Query) -> Result<QueryResult> {
        self.run(std::slice::from_ref(query), &ExecOptions::new())?
            .into_single()
    }

    /// Executes a batch of queries over the session dataset with a
    /// shared scan (see [`Engine::execute_batch`]), reusing the
    /// session's cached partition index when join-class queries
    /// recur. On a streaming session mid-ingest, single-pass queries
    /// run over the queryable prefix and join-class queries error
    /// until [`QuerySession::finish`] seals the index.
    #[deprecated(note = "use QuerySession::run with ExecOptions")]
    pub fn execute_batch(&self, queries: &[Query]) -> Result<Vec<QueryResult>> {
        self.run(queries, &ExecOptions::new())?.collapse()
    }

    /// [`QuerySession::execute_batch`] with the amortisation
    /// breakdown.
    #[deprecated(note = "use QuerySession::run with ExecOptions::new().timed()")]
    pub fn execute_batch_timed(&self, queries: &[Query]) -> Result<(Vec<QueryResult>, BatchStats)> {
        let out = self.run(queries, &ExecOptions::new().timed())?;
        let stats = out.batch.clone().expect("timed run reports batch stats");
        Ok((out.collapse()?, stats))
    }

    /// [`QuerySession::execute_batch`] under a cooperative
    /// [`CancelToken`] shared by the whole batch (see
    /// [`Engine::execute_cancellable`] for the cancellation contract).
    #[deprecated(note = "use QuerySession::run with ExecOptions::new().cancellable(token)")]
    pub fn execute_batch_cancellable(
        &self,
        queries: &[Query],
        token: &CancelToken,
    ) -> Result<Vec<QueryResult>> {
        self.run(queries, &ExecOptions::new().cancellable(token))?
            .collapse()
    }

    /// The **fault-isolated** batch entry point: per-query
    /// `Result`s instead of one all-or-nothing `Result`. A panic in
    /// one query's sink yields `Err(`[`QueryError::Panicked`]`)` for
    /// that query alone — its batch mates complete bit-identically to
    /// solo execution, and the session (pool, caches, dataset) stays
    /// fully serviceable. Whole-batch failures (parse/I/O errors,
    /// cancellation, deadline) still surface as the outer `Err`.
    #[deprecated(note = "use QuerySession::run with ExecOptions::new().isolated()")]
    pub fn execute_batch_isolated(
        &self,
        queries: &[Query],
        token: Option<&CancelToken>,
    ) -> Result<Vec<std::result::Result<QueryResult, QueryError>>> {
        let out = self.run(
            queries,
            &ExecOptions::new().isolated().cancellable_opt(token),
        )?;
        Ok(out.outcomes)
    }

    /// [`QuerySession::execute_batch_isolated`] with the amortisation
    /// breakdown.
    #[deprecated(note = "use QuerySession::run with ExecOptions::new().isolated().timed()")]
    pub fn execute_batch_isolated_timed(
        &self,
        queries: &[Query],
        token: Option<&CancelToken>,
    ) -> Result<(
        Vec<std::result::Result<QueryResult, QueryError>>,
        BatchStats,
    )> {
        let out = self.run(
            queries,
            &ExecOptions::new().isolated().timed().cancellable_opt(token),
        )?;
        let stats = out.batch.expect("timed run reports batch stats");
        Ok((out.outcomes, stats))
    }

    /// The unified entry point: executes `queries` under
    /// [`ExecOptions`] — cancellation/deadline, fault isolation,
    /// timing, and sharded scatter–gather all come from the options
    /// struct instead of a method-name permutation.
    pub fn run(&self, queries: &[Query], opts: &ExecOptions) -> Result<RunOutcome> {
        let token = opts.effective_token();
        let shards = opts.shards.resolve(self.engine.threads());
        let epoch = self.persist_epoch();
        let (outcomes, stats) = self.run_isolated_core(queries, token.as_ref(), shards)?;
        // Write-through: a run that built a partition index or bounded
        // a shard layout leaves it on disk for the next process.
        // Standalone sessions have no generation counter; 1 matches a
        // fresh scheduler registration.
        if self.engine.persist().is_some() && self.persist_epoch() > epoch {
            self.write_through(1, Vec::new());
        }
        exec::finish_run(outcomes, Some(stats), None, None, opts)
    }

    /// The session's cached shard layout for `count` shards, building
    /// (and caching) it on first use. The bounding pass runs outside
    /// the lock; a racing duplicate build is harmless (last insert
    /// wins, both layouts are identical).
    fn shard_set(&self, count: usize, token: Option<&CancelToken>) -> Result<Arc<ShardSet>> {
        if let Some(set) = recover(self.shard_sets.lock()).get(&count) {
            return Ok(set.clone());
        }
        let built = Arc::new(ShardSet::build(&self.engine, &self.dataset, count, token)?);
        recover(self.shard_sets.lock())
            .entry(count)
            .or_insert_with(|| built.clone());
        Ok(built)
    }

    /// Fault-isolated execution core shared by [`QuerySession::run`]
    /// and the scheduler: sharded scatter–gather when `shards > 1` on
    /// a sealed dataset, the ordinary shared scan otherwise. Streaming
    /// sessions mid-ingest never shard — the queryable prefix moves
    /// under the layout.
    pub(crate) fn run_isolated_core(
        &self,
        queries: &[Query],
        token: Option<&CancelToken>,
        shards: usize,
    ) -> Result<(Vec<QueryOutcome>, BatchStats)> {
        self.guard_lifecycle(queries)?;
        if shards > 1 && self.ingest.is_none() {
            let set = self.shard_set(shards, token)?;
            if set.len() > 1 {
                return execute_sharded_impl(
                    &self.engine,
                    queries,
                    &self.dataset,
                    &self.cache,
                    &set,
                    token,
                );
            }
        }
        execute_batch_impl(&self.engine, queries, &self.dataset, &self.cache, token)
    }

    /// Rejects calls that violate the session lifecycle with
    /// [`Error::InvalidState`] (never a panic): serving after a failed
    /// seal, or join-class queries mid-ingest.
    fn guard_lifecycle(&self, queries: &[Query]) -> Result<()> {
        if self.seal_failed {
            return Err(Error::InvalidState(
                "streaming session failed to seal; the buffered prefix is \
                 incomplete and will not be served"
                    .into(),
            ));
        }
        if self.ingest.is_some() && queries.iter().any(|q| q.scan_class() == ScanClass::Join) {
            return Err(Error::InvalidState(
                "join-class queries need the sealed partition index; \
                 call QuerySession::finish once the stream ends"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Builds the side-agnostic partition-pass prototype: everything tags
/// left (`id < u64::MAX`) and no perimeter prefilter runs, so one
/// index serves every join spec.
fn partition_proto<S: PartitionStore + Clone>(
    grid: GridSpec,
    cfg: &EngineBuilder,
) -> PartitionAgg<S> {
    PartitionAgg {
        grid,
        store: S::new(grid.num_cells()),
        entries: Vec::new(),
        associative: cfg.partition_phase == PartitionPhase::Associative,
        id_threshold: u64::MAX,
        min_perimeter_left: None,
        max_perimeter_right: None,
    }
}

/// Finishes a partition sink into store + refined map (scattering the
/// entry list first under the separate partition phase).
fn finish_index<S: PartitionStore + Clone>(
    cfg: &EngineBuilder,
    grid: GridSpec,
    mut agg: PartitionAgg<S>,
) -> (S, PartitionMap, Duration) {
    if cfg.partition_phase == PartitionPhase::Separate {
        for e in std::mem::take(&mut agg.entries) {
            for cell in grid.cells_for(&e.mbr) {
                agg.store.push(cell, e);
            }
        }
    }
    let started = Instant::now();
    let map = PartitionMap::adaptive(&grid, &agg.store, &cfg.adaptive);
    (agg.store, map, started.elapsed())
}

/// Runs the flattened (query × partition) join fan-out: one shared
/// job cursor over every pair, so cheap queries never serialise the
/// pool behind expensive ones. Each task reports its own duration for
/// per-query attribution. Only **occupied** slots are fanned out —
/// on the default (sparse) grid the vast majority of slots are empty,
/// and dispatching + clocking a task per empty slot used to cost more
/// than the whole join pass; an empty slot can only contribute the
/// empty `SlotResult`, which the fold ignores.
#[allow(clippy::too_many_arguments)]
fn run_join_grid<S: PartitionStore + Sync>(
    engine: &Engine,
    store: &S,
    map: &PartitionMap,
    specs: &[JoinSpec],
    reparse: &Reparser<'_>,
    cache: &ReparseCache,
    options: &JoinOptions,
    token: Option<&CancelToken>,
    slots: &[usize],
) -> std::result::Result<Vec<Vec<(Duration, SlotResult)>>, JobFault> {
    run_grid_on(
        engine.pool(),
        specs.len(),
        slots.len(),
        options.threads,
        token,
        |q, i| {
            let started = Instant::now();
            let r = join_partition(store, map, slots[i], &specs[q], reparse, cache, options);
            (started.elapsed(), r)
        },
    )
}

/// Everything the scan step needs, prepared identically for the
/// buffered and streamed paths: the compiled plan (with the partition
/// sink already appended when an index must be built), the cache
/// probe, and the grid. One preparation function so the two paths can
/// never diverge on index keying or sink setup.
struct ScanPrep {
    plan: BatchPlan,
    cached: Option<Arc<PartitionIndex>>,
    key: Option<IndexKey>,
    grid: GridSpec,
    /// Sink count before the partition sink was (possibly) appended —
    /// the partition sink's position in the finished fan-out.
    single_pass_sinks: usize,
}

fn prepare_scan(engine: &Engine, queries: &[Query], cache: &IndexCache) -> ScanPrep {
    let cfg = engine.config();
    let mut plan = plan_queries(engine, queries);
    let needs_index = !plan.join_specs.is_empty();
    let key = needs_index.then(|| index_key(cfg));
    let cached = key.as_ref().and_then(|k| cache.get(k));
    let build_index = needs_index && cached.is_none();
    let single_pass_sinks = plan.sinks.len();
    let grid = GridSpec::new(cfg.grid_extent, cfg.cell_deg);
    if build_index {
        match cfg.store {
            StoreKind::Array => plan
                .sinks
                .push(Box::new(partition_proto::<ArrayStore>(grid, cfg))),
            StoreKind::List => plan
                .sinks
                .push(Box::new(partition_proto::<ListStore>(grid, cfg))),
        }
    }
    ScanPrep {
        plan,
        cached,
        key,
        grid,
        single_pass_sinks,
    }
}

/// The batch executor behind [`Engine::execute_batch`] and
/// [`QuerySession::execute_batch`]: plan, buffered shared scan,
/// per-query aggregation (see the module docs for the layering).
pub(crate) fn execute_batch_impl(
    engine: &Engine,
    queries: &[Query],
    dataset: &Dataset,
    cache: &IndexCache,
    token: Option<&CancelToken>,
) -> Result<(
    Vec<std::result::Result<QueryResult, QueryError>>,
    BatchStats,
)> {
    let mut stats = BatchStats {
        queries: queries.len() as u64,
        per_query: vec![BatchQueryStats::default(); queries.len()],
        ..BatchStats::default()
    };
    if queries.is_empty() {
        return Ok((Vec::new(), stats));
    }

    // ---- plan, then the buffered shared scan: every sink rides one
    // parse pass (the partition sink too, when the index is not
    // cached) ----
    let mut prep = prepare_scan(engine, queries, cache);
    let mut finished: Vec<Option<Box<dyn AggregateSink>>> = Vec::new();
    if !prep.plan.sinks.is_empty() {
        let proto = MultiSink::new(std::mem::take(&mut prep.plan.sinks));
        let (merged, t) =
            engine.single_pass_cancellable(dataset, &MetadataFilter::All, proto, token)?;
        finished = merged.into_sinks().into_iter().map(Some).collect();
        stats.scan_passes += 1;
        stats.shared_scan = t;
    }

    let results = finish_batch(
        engine,
        queries,
        &prep.plan,
        finished,
        prep.single_pass_sinks,
        prep.cached,
        prep.key,
        prep.grid,
        dataset,
        cache,
        &mut stats,
        token,
        None,
    )?;
    Ok((results, stats))
}

/// The streaming batch executor behind
/// [`Engine::execute_streaming_batch`]: the same plan and aggregate
/// steps as [`execute_batch_impl`], but the shared scan is fed from a
/// [`ChunkSource`] as the bytes arrive — fragments for later chunks
/// spawn while earlier ones merge, and the dataset materialises
/// **inside** the scan (sealed zero-copy stream buffer) instead of
/// before it.
pub(crate) fn execute_streaming_batch_impl(
    engine: &Engine,
    queries: &[Query],
    source: &mut dyn ChunkSource,
    format: Format,
    cache: &IndexCache,
    token: Option<&CancelToken>,
) -> Result<(Vec<crate::result::QueryOutcome>, BatchStats, StreamStats)> {
    let mut stats = BatchStats {
        queries: queries.len() as u64,
        per_query: vec![BatchQueryStats::default(); queries.len()],
        ..BatchStats::default()
    };
    if queries.is_empty() {
        return Ok((Vec::new(), stats, StreamStats::default()));
    }

    // ---- plan (shared with the buffered path), then the streamed
    // shared scan ----
    let mut prep = prepare_scan(engine, queries, cache);
    let proto = MultiSink::new(std::mem::take(&mut prep.plan.sinks));
    let mut scan = StreamingScan::new(engine, format, proto, source.size_hint())?;
    drive(&mut scan, engine, source, token)?;
    let (multi, dataset, timings, stream_stats) = scan.seal_cancellable(engine, token)?;
    stats.scan_passes += 1;
    stats.shared_scan = timings;
    let finished: Vec<Option<Box<dyn AggregateSink>>> =
        multi.into_sinks().into_iter().map(Some).collect();

    let results = finish_batch(
        engine,
        queries,
        &prep.plan,
        finished,
        prep.single_pass_sinks,
        prep.cached,
        prep.key,
        prep.grid,
        &dataset,
        cache,
        &mut stats,
        token,
        None,
    )?;
    Ok((results, stats, stream_stats))
}

/// Tombstone-aware gather of one shard's sink into the accumulated
/// base — the same per-member contract as [`MultiSink::combine`]:
/// sticky failure (earliest shard wins), and a panic inside the
/// combine itself becomes a tombstone instead of poisoning the batch.
fn gather_sink(
    base: Box<dyn AggregateSink>,
    shard: Box<dyn AggregateSink>,
) -> Box<dyn AggregateSink> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    if base.panic_message().is_some() {
        return base;
    }
    if shard.panic_message().is_some() {
        return shard;
    }
    match catch_unwind(AssertUnwindSafe(|| base.combine_sink(shard))) {
        Ok(s) => s,
        Err(p) => Box::new(FailedSink::new(crate::pool::panic_message(&*p))),
    }
}

/// The sharded scatter–gather executor: every shard of `set` scans
/// only its own byte range into **fresh** per-query sinks (the
/// aggregate identity), pruned queries never scatter, and the
/// gathered per-query sinks are bit-identical to one shared scan
/// because the underlying transducers are associative (see
/// [`crate::shard`]). Fault isolation is per shard: a panic while
/// scanning one shard tombstones only the queries scattered there.
pub(crate) fn execute_sharded_impl(
    engine: &Engine,
    queries: &[Query],
    dataset: &Dataset,
    cache: &IndexCache,
    set: &ShardSet,
    token: Option<&CancelToken>,
) -> Result<(Vec<QueryOutcome>, BatchStats)> {
    let nshards = set.len();
    let mut stats = BatchStats {
        queries: queries.len() as u64,
        per_query: vec![BatchQueryStats::default(); queries.len()],
        shards: Some(ShardStats {
            shards: nshards as u64,
            per_shard: vec![ShardTiming::default(); nshards],
            ..ShardStats::default()
        }),
        ..BatchStats::default()
    };
    if queries.is_empty() {
        return Ok((Vec::new(), stats));
    }

    let mut prep = prepare_scan(engine, queries, cache);
    let build_index = prep.plan.sinks.len() > prep.single_pass_sinks;

    // ---- prune: which shards each query scatters to ----
    let masks: Vec<Vec<bool>> = queries.iter().map(|q| set.scatter_mask(q)).collect();
    {
        let ss = stats.shards.as_mut().expect("initialised above");
        for (s, timing) in ss.per_shard.iter_mut().enumerate() {
            timing.queries = masks.iter().filter(|m| m[s]).count() as u64;
        }
        for m in &masks {
            let hits = m.iter().filter(|&&b| b).count() as u64;
            ss.scattered += hits;
            ss.pruned += nshards as u64 - hits;
            ss.gathered += hits.saturating_sub(1);
        }
    }
    let mut sink_owner = vec![usize::MAX; prep.single_pass_sinks];
    for (qi, task) in prep.plan.tasks.iter().enumerate() {
        if let Task::Containment { sink } | Task::Aggregation { sink } = task {
            sink_owner[*sink] = qi;
        }
    }

    // The global plan's fresh sinks are the gather bases (a fresh sink
    // is the aggregate's identity element).
    let mut finished: Vec<Option<Box<dyn AggregateSink>>> = std::mem::take(&mut prep.plan.sinks)
        .into_iter()
        .map(Some)
        .collect();

    // ---- scatter ----
    // XML needs the whole node table for relations, so the parse runs
    // once globally; shards then absorb their own features by offset.
    let any_member = build_index || sink_owner.iter().any(|&qi| masks[qi].iter().any(|&b| b));
    let xml_features = if dataset.format() == Format::OsmXml && any_member {
        let (features, t) = engine.parse_xml(dataset, &MetadataFilter::All, token)?;
        stats.shared_scan.split += t.split;
        stats.shared_scan.process += t.process;
        stats.shared_scan.merge += t.merge;
        Some(features)
    } else {
        None
    };
    let mut scanned = xml_features.is_some();
    let cfg = engine.config();
    for (s, shard) in set.shards().iter().enumerate() {
        // Members scattered to this shard, as positions in `finished`.
        let mut members: Vec<usize> = (0..prep.single_pass_sinks)
            .filter(|&g| masks[sink_owner[g]][s])
            .collect();
        if build_index {
            members.push(prep.single_pass_sinks);
        }
        if members.is_empty() {
            continue;
        }
        // Fresh identity sinks for this shard's scan.
        let mut fresh = plan_queries(engine, queries);
        let mut shard_sinks: Vec<Box<dyn AggregateSink>> = Vec::with_capacity(members.len());
        for &g in &members {
            if g < prep.single_pass_sinks {
                shard_sinks.push(std::mem::replace(
                    &mut fresh.sinks[g],
                    Box::new(FailedSink::new("taken")),
                ));
            } else {
                shard_sinks.push(match cfg.store {
                    StoreKind::Array => Box::new(partition_proto::<ArrayStore>(prep.grid, cfg)),
                    StoreKind::List => Box::new(partition_proto::<ListStore>(prep.grid, cfg)),
                });
            }
        }
        let proto = MultiSink::new(shard_sinks);
        let shard_token = token.map(CancelToken::child);
        // Shard-targeted failpoint: arming `shard.scan.N` fails shard
        // N alone, so per-shard fault isolation is testable
        // deterministically (the `executor.block` point fires inside
        // every shard's scan and would tombstone the whole batch).
        #[cfg(feature = "fault-injection")]
        if let Err(p) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::fault::fire(&format!("shard.scan.{s}"))
        })) {
            let msg = crate::pool::panic_message(&*p);
            for &g in &members {
                finished[g] = Some(Box::new(FailedSink::new(msg.clone())));
            }
            continue;
        }
        let scan = match &xml_features {
            Some(features) => {
                let started = Instant::now();
                let mut sink = proto;
                for f in features {
                    if (shard.start as u64) <= f.offset && f.offset < (shard.end as u64) {
                        QueryAggregate::absorb(&mut sink, f);
                    }
                }
                if let Some(t) = shard_token.as_ref() {
                    t.check()?;
                }
                Ok((
                    sink,
                    Timings {
                        split: Duration::ZERO,
                        process: started.elapsed(),
                        merge: Duration::ZERO,
                    },
                ))
            }
            None => engine.scan_range_cancellable(
                dataset,
                shard.start,
                shard.end,
                &MetadataFilter::All,
                proto,
                shard_token.as_ref(),
            ),
        };
        match scan {
            Ok((merged, t)) => {
                scanned = true;
                if xml_features.is_none() {
                    stats.shared_scan.split += t.split;
                    stats.shared_scan.process += t.process;
                    stats.shared_scan.merge += t.merge;
                }
                let ss = stats.shards.as_mut().expect("initialised above");
                ss.per_shard[s].scan = t;
                // ---- gather: member-wise associative combine ----
                for (&g, sink) in members.iter().zip(merged.into_sinks()) {
                    let base = finished[g].take().expect("gather base exists");
                    finished[g] = Some(gather_sink(base, sink));
                }
            }
            // Per-shard fault isolation: a panic on this shard
            // tombstones exactly the queries scattered here.
            Err(Error::TaskPanicked(msg)) => {
                for &g in &members {
                    finished[g] = Some(Box::new(FailedSink::new(msg.clone())));
                }
            }
            // Interrupts and parse errors keep whole-batch semantics.
            Err(e) => return Err(e),
        }
    }
    if scanned {
        stats.scan_passes += 1;
    }

    let results = finish_batch(
        engine,
        queries,
        &prep.plan,
        finished,
        prep.single_pass_sinks,
        prep.cached,
        prep.key,
        prep.grid,
        dataset,
        cache,
        &mut stats,
        token,
        Some(set),
    )?;
    Ok((results, stats))
}

/// The aggregate step shared by the buffered and streamed scan paths:
/// build/fetch the partition index, extract single-pass results, run
/// the flattened join fan-out. Per-query fault isolation happens
/// here: a member sink that panicked mid-scan (now a
/// [`AggregateSink::panic_message`] tombstone) turns into that
/// query's `Err(`[`QueryError::Panicked`]`)` — its batch mates'
/// results are extracted normally.
#[allow(clippy::too_many_arguments)]
fn finish_batch(
    engine: &Engine,
    queries: &[Query],
    plan: &BatchPlan,
    mut finished: Vec<Option<Box<dyn AggregateSink>>>,
    single_pass_sinks: usize,
    cached: Option<Arc<PartitionIndex>>,
    key: Option<IndexKey>,
    grid: GridSpec,
    dataset: &Dataset,
    cache: &IndexCache,
    stats: &mut BatchStats,
    token: Option<&CancelToken>,
    shard_set: Option<&ShardSet>,
) -> Result<Vec<std::result::Result<QueryResult, QueryError>>> {
    let cfg = engine.config();
    let needs_index = !plan.join_specs.is_empty();
    let scan_total = stats.shared_scan.total();
    let mut results: Vec<Option<std::result::Result<QueryResult, QueryError>>> =
        (0..queries.len()).map(|_| None).collect();

    // ---- aggregate: partition index ----
    let index: Option<Arc<PartitionIndex>> = if needs_index {
        let index = match cached {
            Some(i) => Some(i),
            None => 'build: {
                let sink = finished
                    .get_mut(single_pass_sinks)
                    .and_then(Option::take)
                    .expect("the partition sink rode the scan");
                // The shared partition sink serves every join-class
                // query; if it panicked there is nothing per-query to
                // salvage. Single-node, the whole batch fails
                // (structured, no poisoned state left behind); under
                // shard isolation the panic happened on one shard, so
                // only the join-class queries — which all depend on
                // the index — are tombstoned.
                if let Some(m) = sink.panic_message() {
                    if shard_set.is_some() {
                        for &qi in &plan.join_query_index {
                            results[qi] = Some(Err(QueryError::Panicked(m.to_string())));
                        }
                        break 'build None;
                    }
                    return Err(Error::TaskPanicked(m.to_string()));
                }
                let (store, map, refine) = match cfg.store {
                    StoreKind::Array => {
                        let agg: PartitionAgg<ArrayStore> = downcast_sink(sink);
                        let (s, m, r) = finish_index(cfg, grid, agg);
                        (IndexStore::Array(s), m, r)
                    }
                    StoreKind::List => {
                        let agg: PartitionAgg<ListStore> = downcast_sink(sink);
                        let (s, m, r) = finish_index(cfg, grid, agg);
                        (IndexStore::List(s), m, r)
                    }
                };
                // XML joins re-parse through the node table; build it
                // once and cache it with the index, so warm batches
                // skip this pass along with the partition pass.
                let xml_table = if dataset.format() == Format::OsmXml {
                    stats.scan_passes += 1;
                    Some(Arc::new(engine.xml_geometry_table(dataset, token)?))
                } else {
                    None
                };
                let built = Arc::new(PartitionIndex {
                    store,
                    map,
                    refine,
                    xml_table,
                });
                cache.insert(
                    key.expect("key exists when an index is needed"),
                    built.clone(),
                );
                Some(built)
            }
        };
        index
    } else {
        None
    };

    // ---- aggregate: single-pass query results ----
    for (qi, task) in plan.tasks.iter().enumerate() {
        let sink = match task {
            Task::Containment { sink } | Task::Aggregation { sink } => *sink,
            _ => continue,
        };
        let started = Instant::now();
        let sink = finished
            .get_mut(sink)
            .and_then(Option::take)
            .expect("every single-pass query has a finished sink");
        // Member-level failure domain: a panicked sink fails exactly
        // this query; everyone else's extraction proceeds.
        if let Some(m) = sink.panic_message() {
            results[qi] = Some(Err(QueryError::Panicked(m.to_string())));
            continue;
        }
        results[qi] = Some(Ok(match task {
            Task::Containment { .. } => {
                let agg: ContainmentAgg = downcast_sink(sink);
                let mut matches = agg.matches;
                matches.sort_by_key(|m| m.offset);
                QueryResult::Matches(matches)
            }
            Task::Aggregation { .. } => {
                let agg: MetricsAgg = downcast_sink(sink);
                QueryResult::Aggregate(agg.values())
            }
            _ => unreachable!(),
        }));
        let finalize = started.elapsed();
        stats.per_query[qi] = BatchQueryStats {
            scan: scan_total,
            join: None,
            decisions: None,
            finalize,
            wall: scan_total + finalize,
        };
    }

    // ---- aggregate: the shared join stage ----
    if let Some(index) = &index {
        let input = dataset.bytes();
        let reparse = make_reparser(input, dataset.format(), index.xml_table.as_deref());
        let options = JoinOptions {
            threads: engine.threads(),
            sort_batch: cfg.sort_batch,
            probe: cfg.probe,
            ..JoinOptions::default()
        };
        // One re-parse cache for the whole batch: objects probed by
        // several queries (or replicated into several partitions)
        // parse once.
        let shared_cache = ReparseCache::new(options.sort_batch);
        let occupied = index.occupied_slots();
        // Single-node: one fan-out over every occupied slot. Sharded:
        // the occupied slots are distributed round-robin across
        // shards; each shard joins its own slots and the per-slot
        // results concatenate before the (order-canonical) per-query
        // fold — bit-identical to the single fan-out. A panicking
        // shard tombstones the join-class queries (they all depend on
        // every shard's slots) instead of failing the batch.
        let slot_groups: Vec<Vec<usize>> = match shard_set {
            Some(set) => (0..set.len())
                .map(|s| set.own_slots(s, &occupied))
                .collect(),
            None => vec![occupied],
        };
        let mut grid_results: Vec<Vec<(Duration, SlotResult)>> =
            (0..plan.join_specs.len()).map(|_| Vec::new()).collect();
        let mut join_panic: Option<String> = None;
        for (shard_idx, slots) in slot_groups.iter().enumerate() {
            if slots.is_empty() {
                continue;
            }
            let shard_results = match &index.store {
                IndexStore::Array(s) => run_join_grid(
                    engine,
                    s,
                    &index.map,
                    &plan.join_specs,
                    reparse.as_ref(),
                    &shared_cache,
                    &options,
                    token,
                    slots,
                ),
                IndexStore::List(s) => run_join_grid(
                    engine,
                    s,
                    &index.map,
                    &plan.join_specs,
                    reparse.as_ref(),
                    &shared_cache,
                    &options,
                    token,
                    slots,
                ),
            };
            match shard_results {
                Ok(per_query) => {
                    if shard_set.is_some() {
                        if let Some(ss) = stats.shards.as_mut() {
                            ss.per_shard[shard_idx].join +=
                                per_query.iter().flatten().map(|(d, _)| *d).sum();
                        }
                    }
                    for (jq, v) in per_query.into_iter().enumerate() {
                        grid_results[jq].extend(v);
                    }
                }
                Err(JobFault::Panicked(msg)) if shard_set.is_some() => {
                    join_panic = Some(msg);
                    break;
                }
                Err(e) => return Err(Error::from(e)),
            }
        }
        if let Some(msg) = join_panic {
            for &qi in &plan.join_query_index {
                results[qi] = Some(Err(QueryError::Panicked(msg.clone())));
            }
            let results = results
                .into_iter()
                .map(|r| r.expect("every query produced a result"))
                .collect();
            return Ok(results);
        }
        for (jq, per_slot) in grid_results.into_iter().enumerate() {
            let qi = plan.join_query_index[jq];
            let own_process: Duration = per_slot.iter().map(|(d, _)| *d).sum();
            let outcome = fold_slot_results(&index.map, per_slot.into_iter().map(|(_, r)| r))?;
            let mut finalize = Duration::ZERO;
            results[qi] = Some(Ok(match &queries[qi] {
                Query::Join { .. } => QueryResult::Joined(outcome.pairs),
                Query::Combined { .. } => {
                    // The final aggregation: ST_Area(ST_Union(l, r))
                    // over the (canonically sorted) pairs, through the
                    // shared cache.
                    let started = Instant::now();
                    let mut total = 0.0;
                    for p in &outcome.pairs {
                        if let Some(t) = token {
                            t.check()?;
                        }
                        let a =
                            shared_cache.get_or_parse(p.left_offset, u32::MAX, reparse.as_ref())?;
                        let b = shared_cache.get_or_parse(
                            p.right_offset,
                            u32::MAX,
                            reparse.as_ref(),
                        )?;
                        total += crate::operators::union_area(&a, &b);
                    }
                    finalize = started.elapsed();
                    QueryResult::Combined {
                        pairs: outcome.pairs.len() as u64,
                        total_union_area: total,
                    }
                }
                _ => unreachable!("join fan-out only holds join-class queries"),
            }));
            stats.per_query[qi] = BatchQueryStats {
                scan: scan_total,
                join: Some(JoinTimings {
                    partition: stats.shared_scan,
                    refine: index.refine,
                    join: Timings {
                        split: Duration::ZERO,
                        process: own_process,
                        merge: Duration::ZERO,
                    },
                    dedup: outcome.dedup,
                }),
                decisions: Some(outcome.decisions),
                finalize,
                wall: scan_total + own_process + outcome.dedup + finalize,
            };
        }
    }

    let results = results
        .into_iter()
        .map(|r| r.expect("every query produced a result"))
        .collect();
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{RunExt, SessionRunExt};
    use atgis_datagen::{write_geojson, OsmGenerator};
    use atgis_geometry::Mbr;

    fn dataset(seed: u64, n: usize) -> Dataset {
        let ds = OsmGenerator::new(seed).generate(n);
        Dataset::from_bytes(write_geojson(&ds), Format::GeoJson)
    }

    fn mixed_queries(n_objects: u64) -> Vec<Query> {
        vec![
            Query::containment(Mbr::new(-10.0, 40.0, 10.0, 60.0)),
            Query::aggregation(Mbr::new(-6.0, 44.0, 4.0, 56.0)),
            Query::join(n_objects / 2),
            Query::combined(n_objects / 2, 0.0, f64::INFINITY),
            Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0)),
        ]
    }

    #[test]
    fn batch_matches_sequential_execution() {
        let ds = dataset(900, 80);
        let engine = Engine::builder().threads(2).cell_size(2.0).build();
        let queries = mixed_queries(80);
        let want: Vec<QueryResult> = queries
            .iter()
            .map(|q| engine.exec1(q, &ds).unwrap())
            .collect();
        let (got, stats) = engine.execb_timed(&queries, &ds).unwrap();
        assert_eq!(got, want);
        assert_eq!(stats.scan_passes, 1, "one shared pass for the whole batch");
        assert_eq!(stats.queries, 5);
        assert_eq!(stats.amortisation_ratio(), 5.0);
        assert!(stats.per_query[2].join.is_some());
        assert!(stats.per_query[0].join.is_none());
    }

    #[test]
    fn empty_batch_is_empty() {
        let ds = dataset(901, 10);
        let engine = Engine::builder().build();
        let (results, stats) = engine.execb_timed(&[], &ds).unwrap();
        assert!(results.is_empty());
        assert_eq!(stats.scan_passes, 0);
    }

    #[test]
    fn session_caches_partition_index_across_batches() {
        let ds = dataset(902, 70);
        let engine = Engine::builder().threads(2).cell_size(2.0).build();
        let baseline: Vec<QueryResult> = [Query::join(35), Query::join(20)]
            .iter()
            .map(|q| engine.exec1(q, &ds).unwrap())
            .collect();
        let session = QuerySession::new(engine, ds);
        assert_eq!(session.cached_indexes(), 0);
        assert!(session.is_sealed());
        let (first, s1) = session
            .execb_timed(&[Query::join(35), Query::join(20)])
            .unwrap();
        assert_eq!(first, baseline);
        assert_eq!(s1.scan_passes, 1);
        assert_eq!(session.cached_indexes(), 1);
        // Second batch: the cached index serves both joins with zero
        // parse passes.
        let (second, s2) = session
            .execb_timed(&[Query::join(35), Query::join(20)])
            .unwrap();
        assert_eq!(second, baseline);
        assert_eq!(s2.scan_passes, 0);
        assert_eq!(session.cached_indexes(), 1);
    }

    #[test]
    fn session_single_query_matches_engine() {
        let ds = dataset(903, 60);
        let engine = Engine::builder().threads(2).build();
        let q = Query::aggregation(Mbr::new(-8.0, 42.0, 6.0, 58.0));
        let want = engine.exec1(&q, &ds).unwrap();
        let session = QuerySession::new(engine, ds);
        assert_eq!(session.exec1(&q).unwrap(), want);
    }

    #[test]
    fn duplicate_queries_in_one_batch_agree() {
        let ds = dataset(904, 50);
        let engine = Engine::builder().threads(2).build();
        let q = Query::containment(Mbr::new(-10.0, 40.0, 10.0, 60.0));
        let results = engine
            .execb(&[q.clone(), q.clone(), q.clone()], &ds)
            .unwrap();
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        assert!(!results[0].matches().is_empty());
    }

    #[test]
    fn store_kinds_agree_in_batch() {
        let ds = dataset(905, 60);
        let queries = mixed_queries(60);
        let a = Engine::builder()
            .store(StoreKind::Array)
            .cell_size(2.0)
            .build()
            .execb(&queries, &ds)
            .unwrap();
        let l = Engine::builder()
            .store(StoreKind::List)
            .cell_size(2.0)
            .build()
            .execb(&queries, &ds)
            .unwrap();
        assert_eq!(a, l);
    }

    #[test]
    fn streaming_session_lifecycle() {
        let gen = OsmGenerator::new(906).generate(60);
        let bytes = write_geojson(&gen);
        let engine = Engine::builder().threads(2).cell_size(2.0).build();
        let reference = Dataset::from_bytes(bytes.clone(), Format::GeoJson);

        let mut session = QuerySession::streaming(engine.clone(), Format::GeoJson).unwrap();
        assert!(!session.is_sealed());
        // Joins are rejected until sealed.
        assert!(session.exec1(&Query::join(30)).is_err());

        for chunk in bytes.chunks(777) {
            session.ingest_chunk(chunk).unwrap();
        }
        // Mid-ingest: single-pass queries answer over the prefix, and
        // the prefix equals a buffered run over the same bytes.
        let prefix_len = session.dataset().len();
        assert!(prefix_len > 0);
        let world = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
        let prefix_ds = Dataset::from_bytes(bytes[..prefix_len].to_vec(), Format::GeoJson);
        assert_eq!(
            session.exec1(&world).unwrap(),
            engine.exec1(&world, &prefix_ds).unwrap()
        );

        let stats = session.finish().unwrap();
        assert!(session.is_sealed());
        assert!(stats.chunks > 0);
        assert_eq!(session.dataset().len(), bytes.len());
        assert_eq!(session.cached_indexes(), 1, "finish seals the index");

        // Join-class queries now serve from the sealed index with no
        // further parse passes, bit-identical to buffered execution.
        let (got, jstats) = session
            .execb_timed(&[Query::join(30), Query::combined(30, 0.0, f64::INFINITY)])
            .unwrap();
        let want: Vec<QueryResult> = [Query::join(30), Query::combined(30, 0.0, f64::INFINITY)]
            .iter()
            .map(|q| engine.exec1(q, &reference).unwrap())
            .collect();
        assert_eq!(got, want);
        assert_eq!(jstats.scan_passes, 0, "sealed index: no parse passes");
        // Double-finish errors.
        assert!(session.finish().is_err());
    }

    #[test]
    fn failed_seal_refuses_to_serve_the_truncated_prefix() {
        // A malformed record in the stream surfaces at finish(); the
        // session must then refuse every query instead of serving the
        // feature-complete prefix as if it were the whole dataset.
        let engine = Engine::builder().build();
        let mut session = QuerySession::streaming(engine, Format::Wkt).unwrap();
        session
            .ingest_chunk(b"1\tPOINT(1.5 50.5)\t\nBAD-ID\tPOINT(2 2)\t\n")
            .unwrap();
        let err = session.finish();
        assert!(err.is_err(), "malformed row must fail the seal");
        assert!(!session.is_sealed(), "a failed seal is not sealed");
        let world = Query::containment(atgis_geometry::Mbr::new(-180.0, -90.0, 180.0, 90.0));
        assert!(
            session.exec1(&world).is_err(),
            "queries after a failed seal must error, not serve partial data"
        );
        assert!(session.ingest_chunk(b"more").is_err(), "the stream is gone");
    }

    #[test]
    fn tombstoned_member_sink_fails_only_its_query() {
        // Drives finish_batch's member-level failure domain directly:
        // query 1's sink "panicked" mid-scan (tombstoned), queries 0
        // and 2 must come out bit-identical to their solo runs.
        let ds = dataset(930, 60);
        let engine = Engine::builder().threads(2).build();
        let queries = vec![
            Query::containment(Mbr::new(-10.0, 40.0, 10.0, 60.0)),
            Query::containment(Mbr::new(-6.0, 44.0, 4.0, 56.0)),
            Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0)),
        ];
        let solo: Vec<QueryResult> = queries
            .iter()
            .map(|q| engine.exec1(q, &ds).unwrap())
            .collect();
        let cache = IndexCache::new();
        let mut prep = prepare_scan(&engine, &queries, &cache);
        let proto = MultiSink::new(std::mem::take(&mut prep.plan.sinks));
        let (merged, t) = engine
            .single_pass_cancellable(&ds, &MetadataFilter::All, proto, None)
            .unwrap();
        let mut finished: Vec<Option<Box<dyn AggregateSink>>> =
            merged.into_sinks().into_iter().map(Some).collect();
        finished[1] = Some(Box::new(crate::pipeline::FailedSink::new("sink bomb")));
        let mut stats = BatchStats {
            queries: 3,
            scan_passes: 1,
            shared_scan: t,
            per_query: vec![BatchQueryStats::default(); 3],
            shards: None,
        };
        let results = finish_batch(
            &engine,
            &queries,
            &prep.plan,
            finished,
            prep.single_pass_sinks,
            prep.cached,
            prep.key,
            prep.grid,
            &ds,
            &cache,
            &mut stats,
            None,
            None,
        )
        .unwrap();
        assert_eq!(results[0].as_ref().unwrap(), &solo[0]);
        assert_eq!(results[2].as_ref().unwrap(), &solo[2]);
        match &results[1] {
            Err(QueryError::Panicked(m)) => assert!(m.contains("sink bomb"), "payload: {m}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
        // The engine (and its pool) stays fully serviceable.
        assert_eq!(
            engine.execb(&queries, &ds).unwrap(),
            solo,
            "a later batch on the same engine is unaffected"
        );
    }

    #[test]
    fn cancelled_batch_returns_structured_error_and_engine_survives() {
        let ds = dataset(931, 60);
        let engine = Engine::builder().threads(2).build();
        let queries = mixed_queries(60);
        let token = crate::CancelToken::new();
        token.cancel();
        match engine
            .run(&queries, &ds, &ExecOptions::new().cancellable(&token))
            .and_then(|o| o.collapse())
        {
            Err(Error::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // Same engine, fresh token: full results, bit-identical.
        let want: Vec<QueryResult> = queries
            .iter()
            .map(|q| engine.exec1(q, &ds).unwrap())
            .collect();
        let got = engine
            .run(
                &queries,
                &ds,
                &ExecOptions::new().cancellable(&crate::CancelToken::new()),
            )
            .and_then(|o| o.collapse())
            .unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn elapsed_deadline_fails_the_batch_with_deadline_exceeded() {
        let ds = dataset(932, 60);
        let engine = Engine::builder().threads(2).build();
        let token = crate::CancelToken::with_deadline(std::time::Duration::ZERO);
        match engine
            .run(
                &mixed_queries(60),
                &ds,
                &ExecOptions::new().cancellable(&token),
            )
            .and_then(|o| o.collapse())
        {
            Err(Error::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn mid_ingest_join_and_double_finish_are_invalid_state() {
        let engine = Engine::builder().build();
        let mut session = QuerySession::streaming(engine, Format::Wkt).unwrap();
        session.ingest_chunk(b"1\tPOINT(1.5 50.5)\t\n").unwrap();
        match session.exec1(&Query::join(10)) {
            Err(Error::InvalidState(m)) => assert!(m.contains("sealed"), "message: {m}"),
            other => panic!("expected InvalidState, got {other:?}"),
        }
        session.finish().unwrap();
        match session.ingest_chunk(b"2\tPOINT(2 2)\t\n") {
            Err(Error::InvalidState(_)) => {}
            other => panic!("expected InvalidState, got {other:?}"),
        }
        match session.finish() {
            Err(Error::InvalidState(_)) => {}
            other => panic!("expected InvalidState, got {other:?}"),
        }
    }

    #[test]
    fn sharded_session_matches_single_node() {
        let ds = dataset(940, 120);
        let queries = mixed_queries(120);
        let single: Vec<QueryResult> = {
            let engine = Engine::builder().threads(2).cell_size(2.0).build();
            queries
                .iter()
                .map(|q| engine.exec1(q, &ds).unwrap())
                .collect()
        };
        for shards in [1usize, 2, 4, 8] {
            let engine = Engine::builder().threads(2).cell_size(2.0).build();
            let session = QuerySession::new(engine, ds.clone());
            let out = session
                .run(&queries, &ExecOptions::new().timed().sharded(shards))
                .unwrap();
            if shards > 1 {
                let ss = out.shard_stats().expect("sharded run reports ShardStats");
                assert!(ss.shards > 1, "dataset must split at {shards} shards");
                assert_eq!(
                    ss.scattered + ss.pruned,
                    ss.shards * queries.len() as u64,
                    "every (query, shard) pair is scattered or pruned"
                );
            }
            let got: Vec<QueryResult> = out.collapse().unwrap();
            assert_eq!(got, single, "shards={shards}");
        }
    }

    #[test]
    fn sharded_pruning_is_observable_and_result_preserving() {
        let ds = dataset(941, 100);
        let engine = Engine::builder().threads(2).build();
        // A query region far outside the generated extent: every shard
        // prunes it, and the result is the same empty match set a full
        // scan produces.
        let nowhere = Query::containment(Mbr::new(170.0, 80.0, 175.0, 85.0));
        let want = engine.exec1(&nowhere, &ds).unwrap();
        let session = QuerySession::new(engine, ds);
        let out = session
            .run(
                std::slice::from_ref(&nowhere),
                &ExecOptions::new().timed().sharded(4),
            )
            .unwrap();
        let ss = out.shard_stats().expect("sharded stats");
        assert_eq!(ss.scattered, 0, "disjoint region scatters nowhere");
        assert_eq!(ss.pruned, ss.shards);
        assert_eq!(out.collapse().unwrap(), vec![want]);
    }

    #[test]
    fn sharded_session_reuses_layout_and_index() {
        let ds = dataset(942, 80);
        let engine = Engine::builder().threads(2).cell_size(2.0).build();
        let session = QuerySession::new(engine, ds);
        let joins = vec![Query::join(40), Query::join(25)];
        let opts = ExecOptions::new().timed().sharded(4);
        let first = session.run(&joins, &opts).unwrap().collapse().unwrap();
        assert_eq!(session.cached_indexes(), 1);
        // Warm path: the cached index serves the sharded join fan-out
        // with zero parse passes, bit-identically.
        let warm = session.run(&joins, &opts).unwrap();
        assert_eq!(warm.batch.as_ref().unwrap().scan_passes, 0);
        assert_eq!(warm.collapse().unwrap(), first);
    }

    #[test]
    fn streaming_batch_matches_buffered_batch() {
        let gen = OsmGenerator::new(907).generate(70);
        let bytes = write_geojson(&gen);
        let ds = Dataset::from_bytes(bytes.clone(), Format::GeoJson);
        let engine = Engine::builder().threads(2).cell_size(2.0).build();
        let queries = mixed_queries(70);
        let want = engine.execb(&queries, &ds).unwrap();
        let mut source = crate::stream::SliceChunkSource::new(&bytes, 4096);
        let out = engine
            .run_streaming(
                &queries,
                &mut source,
                Format::GeoJson,
                &ExecOptions::new().timed(),
            )
            .unwrap();
        let stats = out.batch.clone().unwrap();
        let sstats = out.stream.clone().unwrap();
        assert_eq!(out.collapse().unwrap(), want);
        assert_eq!(stats.scan_passes, 1);
        assert!(sstats.chunks > 1);
        assert!(sstats.regions > 0);
    }
}
