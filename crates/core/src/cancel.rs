//! Cooperative cancellation and deadlines for every execution path.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between a
//! caller (a tenant front end, a timeout wrapper, a test harness) and
//! the execution layers underneath
//! ([`crate::scheduler::QueryScheduler`] →
//! [`crate::Engine::execute_batch`] / streaming ingest →
//! [`crate::executor`] region fan-out → the [`crate::pool`] worker job
//! loop). Workers poll the token **once per work unit** (a scan
//! region, a streamed chunk, a join partition), so a cancelled or
//! past-deadline query stops within one unit of in-flight work and
//! surfaces a structured [`crate::Error::Cancelled`] /
//! [`crate::Error::DeadlineExceeded`] instead of completing, hanging,
//! or poisoning shared state.
//!
//! The fast path is a single relaxed atomic load; the deadline (when
//! set) costs one monotonic clock read per check. A token is never
//! required: every `*_cancellable` entry point has an uncancellable
//! sibling that passes no token and pays nothing.
//!
//! ```
//! use atgis::cancel::{CancelToken, Interrupt};
//!
//! let token = CancelToken::new();
//! assert!(token.check().is_ok());
//! token.cancel();
//! assert_eq!(token.check(), Err(Interrupt::Cancelled));
//!
//! // Deadlines trip on their own once the budget elapses.
//! let strict = CancelToken::with_deadline(std::time::Duration::ZERO);
//! assert_eq!(strict.check(), Err(Interrupt::DeadlineExceeded));
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a cooperative check tripped: an explicit [`CancelToken::cancel`]
/// or an elapsed deadline. Cancellation wins when both hold — the
/// caller's explicit signal is the stronger statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interrupt {
    /// The token was explicitly cancelled.
    Cancelled,
    /// The token's deadline elapsed.
    DeadlineExceeded,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "cancelled"),
            Interrupt::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

struct TokenState {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// Parent state for tokens created with [`CancelToken::child`]:
    /// the child trips whenever any ancestor trips, but cancelling the
    /// child never propagates upward.
    parent: Option<Arc<TokenState>>,
}

impl TokenState {
    fn interrupted(&self) -> Option<Interrupt> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Some(Interrupt::Cancelled);
        }
        if let Some(at) = self.deadline {
            if Instant::now() >= at {
                return Some(Interrupt::DeadlineExceeded);
            }
        }
        self.parent.as_deref().and_then(TokenState::interrupted)
    }

    fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
            || self.parent.as_deref().is_some_and(TokenState::is_cancelled)
    }
}

/// A cloneable cancellation handle with an optional deadline. All
/// clones observe the same state; [`CancelToken::cancel`] from any
/// thread trips every holder's next [`CancelToken::check`].
#[derive(Clone)]
pub struct CancelToken {
    state: Arc<TokenState>,
}

impl CancelToken {
    /// A live token with no deadline. It only trips when
    /// [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken {
            state: Arc::new(TokenState {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A token that additionally trips once `budget` has elapsed from
    /// now. A budget too large to represent as an `Instant` (e.g. a
    /// client sending `u64::MAX` milliseconds as a "no timeout"
    /// sentinel) means **no deadline**, never a panic.
    pub fn with_deadline(budget: Duration) -> Self {
        match Instant::now().checked_add(budget) {
            Some(at) => CancelToken::deadline_at(at),
            None => CancelToken::new(),
        }
    }

    /// A token that additionally trips at the given instant.
    pub fn deadline_at(at: Instant) -> Self {
        CancelToken {
            state: Arc::new(TokenState {
                cancelled: AtomicBool::new(false),
                deadline: Some(at),
                parent: None,
            }),
        }
    }

    /// Trips the token: every subsequent [`CancelToken::check`] on any
    /// clone returns [`Interrupt::Cancelled`]. Idempotent.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on this token
    /// or any ancestor (deadline state is not consulted).
    pub fn is_cancelled(&self) -> bool {
        self.state.is_cancelled()
    }

    /// A child token that trips whenever `self` trips (cancellation or
    /// deadline), but whose own [`CancelToken::cancel`] never
    /// propagates back to `self`. Shard workers each poll a child so
    /// the coordinator's signal fans out while a shard-local trip
    /// stays local.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            state: Arc::new(TokenState {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: Some(self.state.clone()),
            }),
        }
    }

    /// A child token (see [`CancelToken::child`]) that additionally
    /// trips once `budget` has elapsed from now. The effective
    /// deadline is the earlier of the child's and any ancestor's; an
    /// unrepresentable budget means the child adds no deadline of its
    /// own.
    pub fn child_with_deadline(&self, budget: Duration) -> CancelToken {
        CancelToken {
            state: Arc::new(TokenState {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
                parent: Some(self.state.clone()),
            }),
        }
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.state.deadline
    }

    /// Polls the token: `None` while work may continue, `Some` once
    /// cancelled or past the deadline. One relaxed atomic load on the
    /// hot path; the clock is read only when a deadline is set.
    pub fn interrupted(&self) -> Option<Interrupt> {
        self.state.interrupted()
    }

    /// [`CancelToken::interrupted`] as a `Result`, for `?`-style
    /// chaining in execution loops.
    pub fn check(&self) -> std::result::Result<(), Interrupt> {
        match self.interrupted() {
            Some(i) => Err(i),
            None => Ok(()),
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.state.deadline)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.interrupted(), None);
        assert!(t.check().is_ok());
    }

    #[test]
    fn cancel_trips_every_clone() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.check(), Err(Interrupt::Cancelled));
        t.cancel(); // idempotent
        assert_eq!(t.interrupted(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn elapsed_deadline_trips() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(t.check(), Err(Interrupt::DeadlineExceeded));
        let future = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(future.check().is_ok());
    }

    #[test]
    fn oversized_budgets_mean_no_deadline_not_a_panic() {
        // `Instant::now() + Duration::MAX` overflows; the token must
        // degrade to "no deadline" (the natural reading of a huge
        // client-supplied timeout) instead of panicking.
        let t = CancelToken::with_deadline(Duration::MAX);
        assert_eq!(t.deadline(), None);
        assert!(t.check().is_ok());
        t.cancel();
        assert_eq!(t.check(), Err(Interrupt::Cancelled));
        // A representable-but-huge budget still yields a deadline.
        let far = CancelToken::with_deadline(Duration::from_secs(86_400 * 365));
        assert!(far.deadline().is_some());
        assert!(far.check().is_ok());
    }

    #[test]
    fn explicit_cancellation_outranks_the_deadline() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        t.cancel();
        assert_eq!(t.interrupted(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn child_trips_with_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        assert!(child.check().is_ok());
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "child cancel stays local");
        let other = parent.child();
        parent.cancel();
        assert_eq!(other.interrupted(), Some(Interrupt::Cancelled));
        assert!(other.is_cancelled());
    }

    #[test]
    fn child_deadline_composes_with_parent_deadline() {
        let parent = CancelToken::with_deadline(Duration::from_secs(3600));
        let strict = parent.child_with_deadline(Duration::ZERO);
        assert_eq!(strict.check(), Err(Interrupt::DeadlineExceeded));
        let lax = parent.child_with_deadline(Duration::from_secs(7200));
        assert!(lax.check().is_ok());
        // The parent's earlier trip still reaches the lax child.
        let tight = CancelToken::with_deadline(Duration::ZERO);
        let inherited = tight.child_with_deadline(Duration::from_secs(3600));
        assert_eq!(inherited.check(), Err(Interrupt::DeadlineExceeded));
        // Oversized child budgets degrade to "no own deadline".
        let huge = parent.child_with_deadline(Duration::MAX);
        assert!(huge.check().is_ok());
    }

    #[test]
    fn cancellation_crosses_threads() {
        let t = CancelToken::new();
        let worker = t.clone();
        let handle = std::thread::spawn(move || {
            while worker.check().is_ok() {
                std::thread::yield_now();
            }
            worker.interrupted()
        });
        t.cancel();
        assert_eq!(handle.join().unwrap(), Some(Interrupt::Cancelled));
    }
}
