//! Raw datasets: bytes plus format, following the NoDB philosophy —
//! no conversion, no loading phase, queries run against these bytes
//! directly (§1, §2.3 "the data [is] left in its original form").
//!
//! Two storage backends:
//!
//! * [`Dataset::from_bytes`] / [`Dataset::from_file`] — heap-owned
//!   bytes (the paper's RAM-disk configuration);
//! * [`Dataset::mmap`] — a read-only memory mapping, so multi-GB
//!   inputs are paged in on demand by the query scan instead of being
//!   copied into (and doubling) resident memory. The mapping is done
//!   with a direct `mmap(2)` FFI call (the build environment is
//!   offline, so the `memmap2` crate is not available; the libc
//!   symbols are already linked by std).

use atgis_formats::Format;
use std::path::Path;
use std::sync::Arc;

#[cfg(unix)]
mod mmap_impl {
    //! Minimal read-only file mapping over raw `mmap(2)`/`munmap(2)`.

    use std::fs::File;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// An owned read-only mapping, unmapped on drop.
    #[derive(Debug)]
    pub struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is immutable (PROT_READ, private) for its
    // whole lifetime, so shared access from any thread is sound.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps the whole of `file` read-only. Zero-length files get a
        /// dangling empty mapping (mmap rejects len 0).
        pub fn of_file(file: &File) -> std::io::Result<Mapping> {
            let len = file.metadata()?.len() as usize;
            if len == 0 {
                return Ok(Mapping {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            // SAFETY: fd is valid for the duration of the call; the
            // kernel keeps the mapping alive after the fd closes.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Mapping { ptr, len })
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: ptr/len come from a successful mmap that lives
            // until drop.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            if !self.ptr.is_null() {
                // SAFETY: exactly the region returned by mmap.
                unsafe { munmap(self.ptr, self.len) };
            }
        }
    }
}

/// The storage backing a dataset's bytes.
#[derive(Debug, Clone)]
enum Storage {
    Owned(Arc<Vec<u8>>),
    #[cfg(unix)]
    Mapped(Arc<mmap_impl::Mapping>),
}

/// A raw spatial dataset held in memory (the paper's RAM-disk
/// configuration) or memory-mapped from a file.
#[derive(Debug, Clone)]
pub struct Dataset {
    storage: Storage,
    format: Format,
}

impl Dataset {
    /// Wraps in-memory bytes.
    pub fn from_bytes(bytes: Vec<u8>, format: Format) -> Self {
        Dataset {
            storage: Storage::Owned(Arc::new(bytes)),
            format,
        }
    }

    /// Reads a file fully into memory.
    pub fn from_file(path: impl AsRef<Path>, format: Format) -> std::io::Result<Self> {
        Ok(Dataset {
            storage: Storage::Owned(Arc::new(std::fs::read(path)?)),
            format,
        })
    }

    /// Memory-maps a file read-only: queries scan pages straight from
    /// the page cache, so resident memory is not doubled for large
    /// inputs. Falls back to [`Dataset::from_file`] on non-Unix
    /// targets.
    pub fn mmap(path: impl AsRef<Path>, format: Format) -> std::io::Result<Self> {
        #[cfg(unix)]
        {
            let file = std::fs::File::open(path)?;
            Ok(Dataset {
                storage: Storage::Mapped(Arc::new(mmap_impl::Mapping::of_file(&file)?)),
                format,
            })
        }
        #[cfg(not(unix))]
        {
            Dataset::from_file(path, format)
        }
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.storage {
            Storage::Owned(v) => v,
            #[cfg(unix)]
            Storage::Mapped(m) => m.as_slice(),
        }
    }

    /// Dataset size in bytes (the denominator of the paper's MB/s
    /// throughput numbers).
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True for an empty dataset.
    pub fn is_empty(&self) -> bool {
        self.bytes().is_empty()
    }

    /// The serialisation format.
    pub fn format(&self) -> Format {
        self.format
    }

    /// True when the dataset is served by a memory mapping rather than
    /// heap-owned bytes.
    pub fn is_mapped(&self) -> bool {
        match &self.storage {
            Storage::Owned(_) => false,
            #[cfg(unix)]
            Storage::Mapped(_) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_bytes() {
        let d = Dataset::from_bytes(b"hello".to_vec(), Format::Wkt);
        assert_eq!(d.bytes(), b"hello");
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());
        assert!(!d.is_mapped());
        assert_eq!(d.format(), Format::Wkt);
    }

    #[test]
    fn reads_files() {
        let path = std::env::temp_dir().join("atgis_dataset_test.txt");
        std::fs::write(&path, b"1\tPOINT(1 2)\t\n").unwrap();
        let d = Dataset::from_file(&path, Format::Wkt).unwrap();
        assert_eq!(d.len(), 14);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clone_shares_bytes() {
        let d = Dataset::from_bytes(vec![0u8; 1024], Format::GeoJson);
        let e = d.clone();
        assert!(std::ptr::eq(d.bytes().as_ptr(), e.bytes().as_ptr()));
    }

    #[test]
    fn mmap_matches_read() {
        let path = std::env::temp_dir().join("atgis_dataset_mmap_test.txt");
        let payload = b"2\tPOINT(3 4)\t\n".repeat(1000);
        std::fs::write(&path, &payload).unwrap();
        let mapped = Dataset::mmap(&path, Format::Wkt).unwrap();
        let owned = Dataset::from_file(&path, Format::Wkt).unwrap();
        assert_eq!(mapped.bytes(), owned.bytes());
        assert_eq!(cfg!(unix), mapped.is_mapped());
        // The mapping survives the clone and the original.
        let copy = mapped.clone();
        drop(mapped);
        assert_eq!(copy.len(), payload.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_empty_file() {
        let path = std::env::temp_dir().join("atgis_dataset_mmap_empty.txt");
        std::fs::write(&path, b"").unwrap();
        let d = Dataset::mmap(&path, Format::GeoJson).unwrap();
        assert!(d.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_missing_file_errors() {
        assert!(Dataset::mmap("/nonexistent/atgis/nope.json", Format::GeoJson).is_err());
    }
}
