//! Raw datasets: bytes plus format, following the NoDB philosophy —
//! no conversion, no loading phase, queries run against these bytes
//! directly (§1, §2.3 "the data [is] left in its original form").

use atgis_formats::Format;
use std::path::Path;
use std::sync::Arc;

/// A raw spatial dataset held in memory (the paper's RAM-disk
/// configuration) or read from a file.
#[derive(Debug, Clone)]
pub struct Dataset {
    bytes: Arc<Vec<u8>>,
    format: Format,
}

impl Dataset {
    /// Wraps in-memory bytes.
    pub fn from_bytes(bytes: Vec<u8>, format: Format) -> Self {
        Dataset {
            bytes: Arc::new(bytes),
            format,
        }
    }

    /// Reads a file fully into memory.
    pub fn from_file(path: impl AsRef<Path>, format: Format) -> std::io::Result<Self> {
        Ok(Dataset {
            bytes: Arc::new(std::fs::read(path)?),
            format,
        })
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Dataset size in bytes (the denominator of the paper's MB/s
    /// throughput numbers).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True for an empty dataset.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The serialisation format.
    pub fn format(&self) -> Format {
        self.format
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_bytes() {
        let d = Dataset::from_bytes(b"hello".to_vec(), Format::Wkt);
        assert_eq!(d.bytes(), b"hello");
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());
        assert_eq!(d.format(), Format::Wkt);
    }

    #[test]
    fn reads_files() {
        let path = std::env::temp_dir().join("atgis_dataset_test.txt");
        std::fs::write(&path, b"1\tPOINT(1 2)\t\n").unwrap();
        let d = Dataset::from_file(&path, Format::Wkt).unwrap();
        assert_eq!(d.len(), 14);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clone_shares_bytes() {
        let d = Dataset::from_bytes(vec![0u8; 1024], Format::GeoJson);
        let e = d.clone();
        assert!(std::ptr::eq(d.bytes().as_ptr(), e.bytes().as_ptr()));
    }
}
