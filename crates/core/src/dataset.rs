//! Raw datasets: bytes plus format, following the NoDB philosophy —
//! no conversion, no loading phase, queries run against these bytes
//! directly (§1, §2.3 "the data \[is\] left in its original form").
//!
//! Three storage backends:
//!
//! * [`Dataset::from_bytes`] / [`Dataset::from_file`] — heap-owned
//!   bytes (the paper's RAM-disk configuration);
//! * [`Dataset::mmap`] — a read-only memory mapping, so multi-GB
//!   inputs are paged in on demand by the query scan instead of being
//!   copied into (and doubling) resident memory. The mapping is done
//!   with a direct `mmap(2)` FFI call (the build environment is
//!   offline, so the `memmap2` crate is not available; the libc
//!   symbols are already linked by std);
//! * a [`StreamBuffer`] view — the append-only, stable-address buffer
//!   the streaming ingestion path fills chunk by chunk
//!   ([`Dataset::from_reader`], [`Dataset::from_chunk_source`], and
//!   the `stream` module's scan). A prefix view taken mid-ingest stays
//!   valid while later chunks append, and sealing the stream wraps the
//!   very same buffer — the bytes are resident exactly **once**, never
//!   double-buffered between a reader and the query input.

use atgis_formats::Format;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[cfg(unix)]
mod mmap_impl {
    //! Minimal read-only file mapping over raw `mmap(2)`/`munmap(2)`.

    use std::fs::File;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// An owned read-only mapping, unmapped on drop.
    #[derive(Debug)]
    pub struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is immutable (PROT_READ, private) for its
    // whole lifetime, so shared access from any thread is sound.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps the whole of `file` read-only. Zero-length files get a
        /// dangling empty mapping (mmap rejects len 0).
        pub fn of_file(file: &File) -> std::io::Result<Mapping> {
            let len = file.metadata()?.len() as usize;
            if len == 0 {
                return Ok(Mapping {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            // SAFETY: fd is valid for the duration of the call; the
            // kernel keeps the mapping alive after the fd closes.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Mapping { ptr, len })
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: ptr/len come from a successful mmap that lives
            // until drop.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            if !self.ptr.is_null() {
                // SAFETY: exactly the region returned by mmap.
                unsafe { munmap(self.ptr, self.len) };
            }
        }
    }
}

/// An append-only byte buffer with **stable addresses**: capacity is
/// reserved once up front (virtual memory — untouched pages cost
/// nothing resident on demand-paged platforms) and never reallocated,
/// so slices of the published prefix remain valid while later chunks
/// append. This is the seam between streaming ingestion and query
/// execution: scan fragments read `[0, published_len)` while the
/// ingest thread copies the next chunk in behind them.
///
/// Concurrency contract: **one appender at a time** (enforced by the
/// owning scan taking `&mut self`), any number of readers. `append`
/// writes only beyond the published length and publishes with a
/// release store; readers snapshot the length with an acquire load, so
/// every byte below a snapshot is immutable-forever from the reader's
/// point of view.
pub struct StreamBuffer {
    ptr: *mut u8,
    cap: usize,
    len: AtomicUsize,
}

// SAFETY: bytes below the published `len` are never written again, and
// the only mutation (append past `len`) is release-published; see the
// concurrency contract above.
unsafe impl Send for StreamBuffer {}
unsafe impl Sync for StreamBuffer {}

impl std::fmt::Debug for StreamBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamBuffer")
            .field("len", &self.len())
            .field("cap", &self.cap)
            .finish()
    }
}

impl StreamBuffer {
    /// Reserves a buffer of exactly `cap` bytes. Fails (instead of
    /// aborting) when the allocator refuses the reservation.
    pub fn with_capacity(cap: usize) -> std::io::Result<StreamBuffer> {
        let mut v: Vec<u8> = Vec::new();
        v.try_reserve_exact(cap).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::OutOfMemory,
                format!("cannot reserve {cap} byte stream buffer"),
            )
        })?;
        let ptr = v.as_mut_ptr();
        let cap = v.capacity();
        std::mem::forget(v);
        Ok(StreamBuffer {
            ptr,
            cap,
            len: AtomicUsize::new(0),
        })
    }

    /// Reserves the largest power-of-two-halving of `want` the
    /// allocator grants (floor `min`): streams of unknown length get a
    /// generous virtual reservation without failing on strict-commit
    /// hosts.
    pub fn with_capacity_ladder(want: usize, min: usize) -> std::io::Result<StreamBuffer> {
        let mut cap = want.max(1);
        loop {
            match StreamBuffer::with_capacity(cap) {
                Ok(b) => return Ok(b),
                Err(e) if cap <= min => return Err(e),
                Err(_) => cap = (cap / 2).max(min),
            }
        }
    }

    /// Published length in bytes.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserved capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends `bytes`, publishing them to readers. Errors when the
    /// reservation would be exceeded (the buffer never moves).
    ///
    /// Callers must uphold the single-appender contract; within the
    /// crate every appender goes through a `&mut` owner.
    pub(crate) fn append(&self, bytes: &[u8]) -> std::io::Result<usize> {
        let len = self.len.load(Ordering::Relaxed);
        if bytes.len() > self.cap - len {
            return Err(std::io::Error::new(
                std::io::ErrorKind::OutOfMemory,
                format!(
                    "stream exceeds reserved capacity ({} + {} > {})",
                    len,
                    bytes.len(),
                    self.cap
                ),
            ));
        }
        if !bytes.is_empty() {
            // SAFETY: the region [len, len + bytes.len()) is inside the
            // reservation and unpublished — no reader can observe it
            // until the release store below.
            unsafe {
                std::ptr::copy_nonoverlapping(bytes.as_ptr(), self.ptr.add(len), bytes.len());
            }
        }
        let new_len = len + bytes.len();
        self.len.store(new_len, Ordering::Release);
        Ok(new_len)
    }

    /// The published bytes `[0, end)`; `end` must not exceed a length
    /// the caller has already observed.
    pub fn slice_to(&self, end: usize) -> &[u8] {
        assert!(end <= self.len(), "slice beyond published stream length");
        if end == 0 {
            return &[];
        }
        // SAFETY: `[0, end)` is published and immutable (see the
        // concurrency contract).
        unsafe { std::slice::from_raw_parts(self.ptr, end) }
    }

    /// All currently published bytes.
    pub fn bytes(&self) -> &[u8] {
        self.slice_to(self.len())
    }
}

impl Drop for StreamBuffer {
    fn drop(&mut self) {
        // SAFETY: exactly the allocation made in `with_capacity`
        // (length 0 — u8 has no destructor, only the capacity matters).
        unsafe {
            drop(Vec::from_raw_parts(self.ptr, 0, self.cap));
        }
    }
}

/// The storage backing a dataset's bytes.
#[derive(Debug, Clone)]
enum Storage {
    Owned(Arc<Vec<u8>>),
    #[cfg(unix)]
    Mapped(Arc<mmap_impl::Mapping>),
    /// A (possibly still growing) stream buffer, exposed up to `len`
    /// bytes — a stable prefix snapshot.
    Stream {
        /// The shared ingest buffer.
        buf: Arc<StreamBuffer>,
        /// Snapshot length this view exposes.
        len: usize,
    },
}

/// A raw spatial dataset held in memory (the paper's RAM-disk
/// configuration) or memory-mapped from a file.
#[derive(Debug, Clone)]
pub struct Dataset {
    storage: Storage,
    format: Format,
}

impl Dataset {
    /// Wraps in-memory bytes.
    pub fn from_bytes(bytes: Vec<u8>, format: Format) -> Self {
        Dataset {
            storage: Storage::Owned(Arc::new(bytes)),
            format,
        }
    }

    /// Reads a file fully into memory.
    pub fn from_file(path: impl AsRef<Path>, format: Format) -> std::io::Result<Self> {
        Ok(Dataset {
            storage: Storage::Owned(Arc::new(std::fs::read(path)?)),
            format,
        })
    }

    /// Memory-maps a file read-only: queries scan pages straight from
    /// the page cache, so resident memory is not doubled for large
    /// inputs. Falls back to [`Dataset::from_file`] on non-Unix
    /// targets.
    pub fn mmap(path: impl AsRef<Path>, format: Format) -> std::io::Result<Self> {
        #[cfg(unix)]
        {
            let file = std::fs::File::open(path)?;
            Ok(Dataset {
                storage: Storage::Mapped(Arc::new(mmap_impl::Mapping::of_file(&file)?)),
                format,
            })
        }
        #[cfg(not(unix))]
        {
            Dataset::from_file(path, format)
        }
    }

    /// Streams `source` chunk by chunk into a [`StreamBuffer`] and
    /// wraps it — the construction used when a caller wants a dataset
    /// *from a stream* without first materialising it elsewhere: the
    /// bytes land in their final resting place directly (no
    /// read-everything-then-copy double buffering). The reservation
    /// comes from the source's size hint when it has one.
    pub fn from_chunk_source(
        source: &mut dyn crate::stream::ChunkSource,
        format: Format,
    ) -> crate::Result<Self> {
        let buf = crate::stream::reserve(source.size_hint())?;
        while let Some(chunk) = source.next_chunk().map_err(crate::Error::Io)? {
            buf.append(&chunk).map_err(crate::Error::Io)?;
        }
        let len = buf.len();
        Ok(Dataset::from_stream_buffer(Arc::new(buf), len, format))
    }

    /// Reader-based construction: wraps `reader` in a
    /// [`crate::stream::ReaderChunkSource`] and streams it in. Use
    /// this (or [`Dataset::from_chunk_source`]) instead of
    /// [`Dataset::from_file`] + re-feeding when the data is about to be
    /// consumed by the streaming path anyway.
    pub fn from_reader(reader: impl std::io::Read + Send, format: Format) -> crate::Result<Self> {
        let mut source = crate::stream::ReaderChunkSource::new(reader);
        Dataset::from_chunk_source(&mut source, format)
    }

    /// Wraps a snapshot of `buf`'s first `len` bytes — zero-copy; the
    /// streaming scan uses this for both mid-ingest prefix views and
    /// the sealed full view.
    pub(crate) fn from_stream_buffer(buf: Arc<StreamBuffer>, len: usize, format: Format) -> Self {
        debug_assert!(len <= buf.len());
        Dataset {
            storage: Storage::Stream { buf, len },
            format,
        }
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.storage {
            Storage::Owned(v) => v,
            #[cfg(unix)]
            Storage::Mapped(m) => m.as_slice(),
            Storage::Stream { buf, len } => buf.slice_to(*len),
        }
    }

    /// Dataset size in bytes (the denominator of the paper's MB/s
    /// throughput numbers).
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True for an empty dataset.
    pub fn is_empty(&self) -> bool {
        self.bytes().is_empty()
    }

    /// The serialisation format.
    pub fn format(&self) -> Format {
        self.format
    }

    /// True when the dataset is served by a memory mapping rather than
    /// heap-owned bytes.
    pub fn is_mapped(&self) -> bool {
        match &self.storage {
            #[cfg(unix)]
            Storage::Mapped(_) => true,
            _ => false,
        }
    }

    /// True when the dataset is a view over a streaming ingest buffer
    /// (sealed or prefix).
    pub fn is_streamed(&self) -> bool {
        matches!(&self.storage, Storage::Stream { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_bytes() {
        let d = Dataset::from_bytes(b"hello".to_vec(), Format::Wkt);
        assert_eq!(d.bytes(), b"hello");
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());
        assert!(!d.is_mapped());
        assert_eq!(d.format(), Format::Wkt);
    }

    #[test]
    fn reads_files() {
        let path = std::env::temp_dir().join("atgis_dataset_test.txt");
        std::fs::write(&path, b"1\tPOINT(1 2)\t\n").unwrap();
        let d = Dataset::from_file(&path, Format::Wkt).unwrap();
        assert_eq!(d.len(), 14);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clone_shares_bytes() {
        let d = Dataset::from_bytes(vec![0u8; 1024], Format::GeoJson);
        let e = d.clone();
        assert!(std::ptr::eq(d.bytes().as_ptr(), e.bytes().as_ptr()));
    }

    #[test]
    fn mmap_matches_read() {
        let path = std::env::temp_dir().join("atgis_dataset_mmap_test.txt");
        let payload = b"2\tPOINT(3 4)\t\n".repeat(1000);
        std::fs::write(&path, &payload).unwrap();
        let mapped = Dataset::mmap(&path, Format::Wkt).unwrap();
        let owned = Dataset::from_file(&path, Format::Wkt).unwrap();
        assert_eq!(mapped.bytes(), owned.bytes());
        assert_eq!(cfg!(unix), mapped.is_mapped());
        // The mapping survives the clone and the original.
        let copy = mapped.clone();
        drop(mapped);
        assert_eq!(copy.len(), payload.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_empty_file() {
        let path = std::env::temp_dir().join("atgis_dataset_mmap_empty.txt");
        std::fs::write(&path, b"").unwrap();
        let d = Dataset::mmap(&path, Format::GeoJson).unwrap();
        assert!(d.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_missing_file_errors() {
        assert!(Dataset::mmap("/nonexistent/atgis/nope.json", Format::GeoJson).is_err());
    }

    #[test]
    fn stream_buffer_appends_with_stable_addresses() {
        let buf = StreamBuffer::with_capacity(1 << 16).unwrap();
        assert!(buf.is_empty());
        buf.append(b"hello ").unwrap();
        let early = buf.bytes().as_ptr();
        let early_view = buf.slice_to(6);
        buf.append(b"world").unwrap();
        assert_eq!(buf.bytes(), b"hello world");
        assert_eq!(early, buf.bytes().as_ptr(), "no reallocation ever");
        assert_eq!(early_view, b"hello ", "prefix view survives appends");
        assert_eq!(buf.len(), 11);
    }

    #[test]
    fn stream_buffer_rejects_overflow_and_zero_cap_is_fine() {
        let buf = StreamBuffer::with_capacity(4).unwrap();
        buf.append(b"abcd").unwrap();
        assert!(buf.append(b"e").is_err());
        assert_eq!(buf.bytes(), b"abcd", "failed append changes nothing");
        let empty = StreamBuffer::with_capacity(0).unwrap();
        assert!(empty.append(b"").is_ok());
        assert!(empty.bytes().is_empty());
    }

    #[test]
    fn stream_buffer_ladder_falls_back() {
        // An absurd reservation steps down instead of failing outright.
        let buf = StreamBuffer::with_capacity_ladder(usize::MAX / 2, 1 << 12).unwrap();
        assert!(buf.capacity() >= 1 << 12);
        buf.append(b"x").unwrap();
        assert_eq!(buf.bytes(), b"x");
    }

    #[test]
    fn stream_views_snapshot_prefixes() {
        let buf = Arc::new(StreamBuffer::with_capacity(64).unwrap());
        buf.append(b"1\tPOINT(1 2)\t\n").unwrap();
        let prefix = Dataset::from_stream_buffer(buf.clone(), buf.len(), Format::Wkt);
        assert!(prefix.is_streamed());
        assert!(!prefix.is_mapped());
        buf.append(b"2\tPOINT(3 4)\t\n").unwrap();
        let full = Dataset::from_stream_buffer(buf.clone(), buf.len(), Format::Wkt);
        assert_eq!(prefix.len(), 14, "snapshot is immune to later appends");
        assert_eq!(full.len(), 28);
        assert_eq!(&full.bytes()[..14], prefix.bytes());
        assert_eq!(prefix.bytes().as_ptr(), full.bytes().as_ptr(), "zero copy");
    }

    #[test]
    fn from_reader_matches_from_bytes() {
        let payload = b"9\tPOINT(5 6)\t\n".repeat(300);
        let d = Dataset::from_reader(&payload[..], Format::Wkt).unwrap();
        assert_eq!(d.bytes(), &payload[..]);
        assert!(d.is_streamed());
    }
}
