//! The AT-GIS engine: translates Table 3 queries into parallel
//! pipeline executions over raw datasets (§4).

use crate::cancel::CancelToken;
use crate::dataset::Dataset;
use crate::exec::{self, ExecOptions, Isolation, RunOutcome};
use crate::executor::{resolve_threads, run_blocks_on};
use crate::join::{pbsm_join_mapped_on, JoinOptions, ProbeStrategy, Reparser};
use crate::partition::{
    AdaptiveConfig, ArrayStore, GridSpec, ListStore, PartEntry, PartitionMap, PartitionStore,
};
use crate::pipeline::{ContainmentAgg, FatGeoJsonFrag, FatWktFrag, MetricsAgg, QueryAggregate};
use crate::pool::WorkerPool;
use crate::query::{FilterStrategy, Query};
use crate::result::{JoinPair, QueryResult};
use crate::stats::{BatchQueryStats, BatchStats, JoinDecisions, JoinTimings, Timings};
use crate::{Error, Result};
use atgis_formats::feature::{MetadataFilter, RawFeature};
use atgis_formats::{fixed_blocks, marker_blocks, Format, Mode, ParseError};
use atgis_geometry::{measures, DistanceModel, Geometry, Mbr, Polygon};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which data structure holds partitions (§4.4 / Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StoreKind {
    /// Flat arrays: locality, linear-time merge.
    #[default]
    Array,
    /// Chunk lists: constant-time merge, slower reads.
    List,
}

/// Whether partitioning runs inside the associative pipeline or as a
/// separate sequential phase after it (§5.6 / Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PartitionPhase {
    /// Partition transducer inside the pipeline; stores merge
    /// associatively.
    #[default]
    Associative,
    /// The pipeline only bounds geometries; a sequential step
    /// partitions the merged entry list.
    Separate,
}

/// Engine configuration builder.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    threads: usize,
    pub(crate) mode: Mode,
    block_multiplier: usize,
    pub(crate) cell_deg: f64,
    pub(crate) grid_extent: Mbr,
    pub(crate) store: StoreKind,
    pub(crate) partition_phase: PartitionPhase,
    pub(crate) sort_batch: usize,
    pub(crate) adaptive: AdaptiveConfig,
    pub(crate) probe: ProbeStrategy,
    persist_root: Option<std::path::PathBuf>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            threads: 1,
            mode: Mode::Pat,
            block_multiplier: 4,
            cell_deg: 1.0,
            grid_extent: Mbr::new(-180.0, -90.0, 180.0, 90.0),
            store: StoreKind::Array,
            partition_phase: PartitionPhase::Associative,
            sort_batch: 1 << 16,
            adaptive: AdaptiveConfig::default(),
            probe: ProbeStrategy::Auto,
            persist_root: None,
        }
    }
}

impl EngineBuilder {
    /// Worker threads for all parallel phases. `0` means "match the
    /// machine" (`std::thread::available_parallelism`). The default is
    /// 1 (fully sequential) so results are reproducible on any host
    /// unless parallelism is asked for; per-job worker counts are
    /// always clamped to the number of work items, so small inputs
    /// never oversubscribe.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// FAT vs PAT execution (§5's AT-GIS-FAT / AT-GIS-PAT).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Blocks per thread (more blocks = better load balance, more
    /// merge work).
    pub fn block_multiplier(mut self, m: usize) -> Self {
        self.block_multiplier = m.max(1);
        self
    }

    /// Partition cell size in degrees (§5.6 sweeps 0.25–4).
    pub fn cell_size(mut self, deg: f64) -> Self {
        self.cell_deg = deg;
        self
    }

    /// Extent covered by the partition grid.
    pub fn grid_extent(mut self, extent: Mbr) -> Self {
        self.grid_extent = extent;
        self
    }

    /// Partition store data structure.
    pub fn store(mut self, kind: StoreKind) -> Self {
        self.store = kind;
        self
    }

    /// Associative vs separate partitioning phase.
    pub fn partition_phase(mut self, phase: PartitionPhase) -> Self {
        self.partition_phase = phase;
        self
    }

    /// SORT-stage batch size for joins.
    pub fn sort_batch(mut self, n: usize) -> Self {
        self.sort_batch = n.max(1);
        self
    }

    /// Target objects per join partition for the skew-adaptive
    /// second-level split: grid cells holding more entries are split
    /// into their own sub-grid. `0` keeps the pure uniform grid.
    pub fn partition_target(mut self, n: usize) -> Self {
        self.adaptive.target_per_cell = n;
        self
    }

    /// Full skew-adaptive split configuration (target, sub-grid cap,
    /// replication budget).
    pub fn adaptive_config(mut self, cfg: AdaptiveConfig) -> Self {
        self.adaptive = cfg;
        self
    }

    /// MBR COMPARE algorithm selection for joins (sweep vs R-tree
    /// probe; the default picks per partition by cost).
    pub fn probe_strategy(mut self, probe: ProbeStrategy) -> Self {
        self.probe = probe;
        self
    }

    /// Roots the engine's persistent snapshot store at `path`
    /// (created if missing): sessions spill their derived state
    /// (partition indexes, shard layouts, cached aggregates) there and
    /// warm-start from it after a restart — see [`crate::persist`].
    /// An unopenable store degrades to the ordinary in-memory-only
    /// behaviour rather than failing the build.
    pub fn persist_path(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.persist_root = Some(path.into());
        self
    }

    /// Finalises the engine, spawning its persistent worker pool
    /// (`threads - 1` pool workers; the query-submitting thread is the
    /// remaining execution unit). The pool outlives individual queries
    /// and is shared by clones of the engine.
    pub fn build(mut self) -> Engine {
        self.threads = resolve_threads(self.threads);
        let pool = Arc::new(WorkerPool::new(self.threads.saturating_sub(1)));
        let persist = self
            .persist_root
            .as_ref()
            .and_then(|root| crate::persist::PersistStore::open(root).ok().map(Arc::new));
        Engine {
            config: self,
            pool,
            persist,
        }
    }
}

/// The query engine: a configuration plus a persistent worker pool,
/// executing Table 3 queries over raw [`Dataset`] bytes. Cloning
/// shares the underlying worker pool.
///
/// ```
/// use atgis::{Dataset, Engine, ExecOptions, Query};
/// use atgis_formats::{Format, Mode};
/// use atgis_geometry::Mbr;
///
/// let bytes = atgis_datagen::write_geojson(&atgis_datagen::OsmGenerator::new(3).generate(100));
/// let dataset = Dataset::from_bytes(bytes, Format::GeoJson);
/// let engine = Engine::builder().threads(2).mode(Mode::Pat).build();
/// let opts = ExecOptions::new();
///
/// let matches = engine
///     .run(&[Query::containment(Mbr::new(-10.0, 40.0, 10.0, 60.0))], &dataset, &opts)
///     .unwrap()
///     .into_single()
///     .unwrap();
/// assert!(!matches.matches().is_empty());
///
/// let joined = engine
///     .run(&[Query::join(50)], &dataset, &opts)
///     .unwrap()
///     .into_single()
///     .unwrap();
/// for pair in joined.joined() {
///     assert!(pair.left_id < 50 && pair.right_id >= 50);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    config: EngineBuilder,
    pool: Arc<WorkerPool>,
    persist: Option<Arc<crate::persist::PersistStore>>,
}

/// Timing breakdown of one query execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecutionStats {
    /// Single-pass pipeline timings (containment/aggregation; the
    /// partition pipeline of joins).
    pub pipeline: Timings,
    /// Join-specific timings when the query joins.
    pub join: Option<JoinTimings>,
    /// Skew-adaptive split and probe decisions when the query joins.
    pub decisions: Option<JoinDecisions>,
}

/// Synthesises the batch-shaped breakdown for [`Engine::run`]'s
/// single-query fast path, so a timed one-query `run` reports the same
/// stats surface as the batch executor.
fn single_query_batch_stats(es: &ExecutionStats) -> BatchStats {
    let scan = es.pipeline.total();
    let wall = es.join.as_ref().map_or(scan, |j| scan + j.total());
    BatchStats {
        queries: 1,
        scan_passes: 1,
        shared_scan: es.pipeline,
        per_query: vec![BatchQueryStats {
            scan,
            join: es.join,
            decisions: es.decisions,
            finalize: Duration::ZERO,
            wall,
        }],
        shards: None,
    }
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Configured thread count.
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// The engine configuration (the batch planner reads partitioning
    /// knobs from it).
    pub(crate) fn config(&self) -> &EngineBuilder {
        &self.config
    }

    /// The engine's persistent worker pool.
    pub(crate) fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The engine's persistent snapshot store, when one was configured
    /// with [`EngineBuilder::persist_path`] and opened successfully.
    pub fn persist(&self) -> Option<&Arc<crate::persist::PersistStore>> {
        self.persist.as_ref()
    }

    /// Area of the configured partition-grid extent (the scheduler's
    /// selectivity denominator).
    pub(crate) fn grid_extent_area(&self) -> f64 {
        self.config.grid_extent.area()
    }

    /// The unified entry point: executes `queries` over `dataset`
    /// under one [`ExecOptions`] request — cancellation, deadline,
    /// timing, fault isolation and sharded scatter–gather are fields,
    /// not method-name permutations (see [`crate::exec`] for the
    /// legacy-name migration table).
    ///
    /// A single whole-batch query takes the direct single-query path
    /// (no fan-out plumbing); everything else runs the shared-scan
    /// batch executor, sharded when [`ExecOptions::shards`] asks for
    /// it. Results are bit-identical across all of these paths and
    /// across every shard count.
    ///
    /// ```
    /// use atgis::{Dataset, Engine, ExecOptions, Query};
    /// use atgis_formats::Format;
    /// use atgis_geometry::Mbr;
    ///
    /// let bytes = atgis_datagen::write_geojson(&atgis_datagen::OsmGenerator::new(4).generate(80));
    /// let dataset = Dataset::from_bytes(bytes, Format::GeoJson);
    /// let engine = Engine::builder().threads(2).build();
    /// let queries = vec![
    ///     Query::containment(Mbr::new(-10.0, 40.0, 10.0, 60.0)),
    ///     Query::join(40),
    /// ];
    ///
    /// // One shared parse pass, timed, scattered over 4 shards.
    /// let out = engine
    ///     .run(&queries, &dataset, &ExecOptions::new().timed().sharded(4))
    ///     .unwrap();
    /// let stats = out.shard_stats().expect("sharded run");
    /// assert!(stats.shards >= 1);
    /// // Bit-identical to the single-query, single-node path.
    /// let solo = engine
    ///     .run(&queries[..1], &dataset, &ExecOptions::new())
    ///     .unwrap();
    /// assert_eq!(out.outcomes[0], solo.outcomes[0]);
    /// ```
    pub fn run(
        &self,
        queries: &[Query],
        dataset: &Dataset,
        opts: &ExecOptions,
    ) -> Result<RunOutcome> {
        let token = opts.effective_token();
        let shards = opts.shards.resolve(self.threads());
        // Single-query fast path: no fan-out plumbing, no per-feature
        // dynamic dispatch — the hot path of every latency benchmark.
        if queries.len() == 1 && shards <= 1 && opts.isolation == Isolation::WholeBatch {
            let (result, es) = self.run_single(&queries[0], dataset, token.as_ref())?;
            let batch = opts.timing.then(|| single_query_batch_stats(&es));
            return exec::finish_run(vec![Ok(result)], batch, None, None, opts);
        }
        let cache = crate::batch::IndexCache::new();
        let (outcomes, stats) = if shards > 1 {
            let set = crate::shard::ShardSet::build(self, dataset, shards, token.as_ref())?;
            if set.len() > 1 {
                crate::batch::execute_sharded_impl(
                    self,
                    queries,
                    dataset,
                    &cache,
                    &set,
                    token.as_ref(),
                )?
            } else {
                crate::batch::execute_batch_impl(self, queries, dataset, &cache, token.as_ref())?
            }
        } else {
            crate::batch::execute_batch_impl(self, queries, dataset, &cache, token.as_ref())?
        };
        exec::finish_run(outcomes, Some(stats), None, None, opts)
    }

    /// Executes a query, discarding timings.
    #[deprecated(note = "use Engine::run with ExecOptions")]
    pub fn execute(&self, query: &Query, dataset: &Dataset) -> Result<QueryResult> {
        self.run(std::slice::from_ref(query), dataset, &ExecOptions::new())?
            .into_single()
    }

    /// [`Engine::execute`] under a cooperative [`CancelToken`]: the
    /// scan observes the token at region/block granularity, so a
    /// cancelled (or past-deadline) query stops within one in-flight
    /// work unit and returns [`Error::Cancelled`] /
    /// [`Error::DeadlineExceeded`] instead of its result. The engine,
    /// its pool and any shared caches remain fully usable afterwards.
    ///
    /// ```
    /// use atgis::{CancelToken, Dataset, Engine, Error, ExecOptions, Query};
    /// use atgis_formats::Format;
    /// use atgis_geometry::Mbr;
    ///
    /// let bytes = atgis_datagen::write_geojson(&atgis_datagen::OsmGenerator::new(9).generate(50));
    /// let dataset = Dataset::from_bytes(bytes, Format::GeoJson);
    /// let engine = Engine::builder().build();
    /// let token = CancelToken::new();
    /// token.cancel();
    /// let err = engine
    ///     .run(
    ///         &[Query::containment(Mbr::new(-10.0, 40.0, 10.0, 60.0))],
    ///         &dataset,
    ///         &ExecOptions::new().cancellable(&token),
    ///     )
    ///     .unwrap_err();
    /// assert!(matches!(err, Error::Cancelled));
    /// ```
    #[deprecated(note = "use Engine::run with ExecOptions::new().cancellable(token)")]
    pub fn execute_cancellable(
        &self,
        query: &Query,
        dataset: &Dataset,
        token: &CancelToken,
    ) -> Result<QueryResult> {
        self.run(
            std::slice::from_ref(query),
            dataset,
            &ExecOptions::new().cancellable(token),
        )?
        .into_single()
    }

    /// Executes a batch of queries over one dataset with a **shared
    /// structural scan**: all queries ride one parse pass (per-query
    /// aggregates fan out from each decoded geometry), join-class
    /// queries share one partition index and one re-parse cache, and
    /// every result is bit-identical to calling [`Engine::execute`]
    /// per query. Results come back in submission order.
    ///
    /// For repeated batches over the same dataset, prefer
    /// [`crate::batch::QuerySession`], which additionally caches the
    /// partition index across calls; for multi-tenant traffic
    /// (duplicate predicates, repeated batches, outlier isolation),
    /// hold a [`crate::scheduler::QueryScheduler`].
    ///
    /// ```
    /// use atgis::{Dataset, Engine, Query};
    /// use atgis_formats::Format;
    /// use atgis_geometry::Mbr;
    ///
    /// let bytes = atgis_datagen::write_geojson(&atgis_datagen::OsmGenerator::new(4).generate(80));
    /// let dataset = Dataset::from_bytes(bytes, Format::GeoJson);
    /// let engine = Engine::builder().threads(2).build();
    /// let queries = vec![
    ///     Query::containment(Mbr::new(-10.0, 40.0, 10.0, 60.0)),
    ///     Query::aggregation(Mbr::new(-6.0, 44.0, 4.0, 56.0)),
    ///     Query::join(40),
    /// ];
    ///
    /// // One parse pass serves all three queries…
    /// let batched = engine
    ///     .run(&queries, &dataset, &atgis::ExecOptions::new())
    ///     .unwrap()
    ///     .collapse()
    ///     .unwrap();
    /// // …and every result is bit-identical to executing alone.
    /// for (q, batch_result) in queries.iter().zip(&batched) {
    ///     let solo = engine
    ///         .run(std::slice::from_ref(q), &dataset, &atgis::ExecOptions::new())
    ///         .unwrap()
    ///         .into_single()
    ///         .unwrap();
    ///     assert_eq!(&solo, batch_result);
    /// }
    /// ```
    #[deprecated(note = "use Engine::run with ExecOptions")]
    pub fn execute_batch(&self, queries: &[Query], dataset: &Dataset) -> Result<Vec<QueryResult>> {
        self.run(queries, dataset, &ExecOptions::new())?.collapse()
    }

    /// [`Engine::execute_batch`] with the per-query and shared-scan
    /// amortisation breakdown.
    #[deprecated(note = "use Engine::run with ExecOptions::new().timed()")]
    pub fn execute_batch_timed(
        &self,
        queries: &[Query],
        dataset: &Dataset,
    ) -> Result<(Vec<QueryResult>, crate::stats::BatchStats)> {
        let out = self.run(queries, dataset, &ExecOptions::new().timed())?;
        let stats = out.batch.clone().expect("timed run reports batch stats");
        Ok((out.collapse()?, stats))
    }

    /// [`Engine::execute_batch`] under a cooperative [`CancelToken`]
    /// shared by the whole batch (see [`Engine::execute_cancellable`]
    /// for the cancellation contract).
    #[deprecated(note = "use Engine::run with ExecOptions::new().cancellable(token)")]
    pub fn execute_batch_cancellable(
        &self,
        queries: &[Query],
        dataset: &Dataset,
        token: &CancelToken,
    ) -> Result<Vec<QueryResult>> {
        self.run(queries, dataset, &ExecOptions::new().cancellable(token))?
            .collapse()
    }

    /// The **fault-isolated** batch form: per-query `Result`s instead
    /// of one all-or-nothing `Result`. A panic in one query's
    /// aggregate sink yields `Err(`[`crate::QueryError::Panicked`]`)`
    /// for that query alone; its batch mates complete bit-identically
    /// to solo execution and the engine (pool included) stays fully
    /// serviceable. Whole-batch failures — parse/I/O errors,
    /// cancellation, an elapsed deadline — surface as the outer `Err`.
    #[deprecated(note = "use Engine::run with ExecOptions::new().isolated()")]
    pub fn execute_batch_isolated(
        &self,
        queries: &[Query],
        dataset: &Dataset,
        token: Option<&CancelToken>,
    ) -> Result<Vec<std::result::Result<QueryResult, crate::QueryError>>> {
        Ok(self
            .run(
                queries,
                dataset,
                &ExecOptions::new().isolated().cancellable_opt(token),
            )?
            .outcomes)
    }

    /// Executes batches over **multiple datasets** in one call: each
    /// `(dataset, queries)` group routes through a transient
    /// [`crate::scheduler::QueryScheduler`] — predicates deduplicate
    /// within each group and admission may split scan-heavy outliers
    /// into their own waves — and results come back grouped exactly
    /// like the input. For long-lived serving (warm partition indexes
    /// and the cross-batch aggregate cache), hold a
    /// [`crate::scheduler::QueryScheduler`] instead.
    #[deprecated(note = "use QueryScheduler::run_multi with ExecOptions")]
    pub fn execute_multi_batch(
        &self,
        groups: &[(&Dataset, &[Query])],
    ) -> Result<Vec<Vec<QueryResult>>> {
        self.multi_batch_core(groups, &ExecOptions::new())
            .map(|(r, _)| r)
    }

    /// [`Engine::execute_multi_batch`] with the combined scheduling
    /// breakdown.
    #[deprecated(note = "use QueryScheduler::run_multi with ExecOptions::new().timed()")]
    pub fn execute_multi_batch_timed(
        &self,
        groups: &[(&Dataset, &[Query])],
    ) -> Result<(Vec<Vec<QueryResult>>, crate::stats::SchedulerStats)> {
        self.multi_batch_core(groups, &ExecOptions::new().timed())
    }

    /// Shared body of the deprecated multi-batch conveniences: route
    /// each `(dataset, queries)` group through a transient
    /// [`crate::scheduler::QueryScheduler`] and regroup the flat
    /// results.
    fn multi_batch_core(
        &self,
        groups: &[(&Dataset, &[Query])],
        opts: &ExecOptions,
    ) -> Result<(Vec<Vec<QueryResult>>, crate::stats::SchedulerStats)> {
        use crate::scheduler::{QueryScheduler, ScheduledQuery};
        let scheduler = QueryScheduler::new(self.clone());
        let mut batch = Vec::new();
        let mut sizes = Vec::with_capacity(groups.len());
        for (dataset, queries) in groups {
            let id = scheduler.register((*dataset).clone());
            sizes.push(queries.len());
            batch.extend(queries.iter().map(|q| ScheduledQuery::new(id, q.clone())));
        }
        let out = scheduler.run_multi(&batch, &opts.clone().timed())?;
        let stats = out
            .scheduler
            .clone()
            .expect("timed run reports scheduler stats");
        let mut flat = out.collapse()?.into_iter();
        let grouped = sizes
            .into_iter()
            .map(|n| flat.by_ref().take(n).collect())
            .collect();
        Ok((grouped, stats))
    }

    /// Executes a query and reports per-phase timings.
    #[deprecated(note = "use Engine::run with ExecOptions::new().timed()")]
    pub fn execute_timed(
        &self,
        query: &Query,
        dataset: &Dataset,
    ) -> Result<(QueryResult, ExecutionStats)> {
        self.run_single(query, dataset, None)
    }

    /// [`Engine::execute_timed`] under an optional [`CancelToken`]
    /// (see [`Engine::execute_cancellable`] for the cancellation
    /// contract).
    #[deprecated(note = "use Engine::run with ExecOptions::new().timed().cancellable_opt(token)")]
    pub fn execute_timed_cancellable(
        &self,
        query: &Query,
        dataset: &Dataset,
        token: Option<&CancelToken>,
    ) -> Result<(QueryResult, ExecutionStats)> {
        self.run_single(query, dataset, token)
    }

    /// The direct single-query executor — [`Engine::run`]'s fast path
    /// for one whole-batch query (no fan-out plumbing, no per-feature
    /// dynamic dispatch).
    pub(crate) fn run_single(
        &self,
        query: &Query,
        dataset: &Dataset,
        token: Option<&CancelToken>,
    ) -> Result<(QueryResult, ExecutionStats)> {
        match query {
            Query::Containment { region } => {
                let proto = ContainmentAgg::new(Arc::new(region.clone()));
                let (agg, t) =
                    self.single_pass_cancellable(dataset, &MetadataFilter::All, proto, token)?;
                let mut matches = agg.matches;
                matches.sort_by_key(|m| m.offset);
                Ok((
                    QueryResult::Matches(matches),
                    ExecutionStats {
                        pipeline: t,
                        join: None,
                        decisions: None,
                    },
                ))
            }
            Query::Aggregation {
                region,
                metrics,
                model,
                strategy,
            } => {
                let strategy = self.resolve_strategy(*strategy, region);
                let proto = MetricsAgg::new(Arc::new(region.clone()), metrics, *model, strategy);
                let (agg, t) =
                    self.single_pass_cancellable(dataset, &MetadataFilter::All, proto, token)?;
                Ok((
                    QueryResult::Aggregate(agg.values()),
                    ExecutionStats {
                        pipeline: t,
                        join: None,
                        decisions: None,
                    },
                ))
            }
            Query::Join { id_threshold } => {
                let (pairs, stats) = self.run_join(dataset, *id_threshold, None, None, token)?;
                Ok((QueryResult::Joined(pairs), stats))
            }
            Query::Combined {
                id_threshold,
                min_perimeter_left,
                max_perimeter_right,
            } => {
                let (pairs, mut stats) = self.run_join(
                    dataset,
                    *id_threshold,
                    Some(*min_perimeter_left),
                    Some(*max_perimeter_right),
                    token,
                )?;
                // Final aggregation over joined pairs:
                // ST_Area(ST_Union(d1, d2)).
                let started = Instant::now();
                let reparse_table = self.geometry_table(dataset, &pairs, token)?;
                let mut total = 0.0;
                for p in &pairs {
                    if let Some(t) = token {
                        t.check()?;
                    }
                    let a = &reparse_table[&p.left_offset];
                    let b = &reparse_table[&p.right_offset];
                    total += crate::operators::union_area(a, b);
                }
                if let Some(j) = stats.join.as_mut() {
                    j.dedup += started.elapsed();
                }
                Ok((
                    QueryResult::Combined {
                        pairs: pairs.len() as u64,
                        total_union_area: total,
                    },
                    stats,
                ))
            }
        }
    }

    /// Resolves `FilterStrategy::Auto` with the paper's ~25% rule: the
    /// fraction of the dataset extent selected by the region estimates
    /// selectivity (§5.4: below ~25% selected, buffering wins).
    pub(crate) fn resolve_strategy(
        &self,
        strategy: FilterStrategy,
        region: &Polygon,
    ) -> FilterStrategy {
        match strategy {
            FilterStrategy::Auto => {
                let world = self.config.grid_extent.area();
                let selected = region.mbr().area();
                if world > 0.0 && selected / world >= 0.25 {
                    FilterStrategy::Streaming
                } else {
                    FilterStrategy::Buffered
                }
            }
            s => s,
        }
    }

    /// Number of blocks for a parallel pass.
    pub(crate) fn block_count(&self) -> usize {
        self.config.threads * self.config.block_multiplier
    }

    /// Runs a single-pass pipeline with the given aggregate prototype
    /// — the low-level API for custom aggregates and metadata filters
    /// pushed into the parse stage.
    pub fn single_pass<A: QueryAggregate>(
        &self,
        dataset: &Dataset,
        filter: &MetadataFilter,
        proto: A,
    ) -> Result<(A, Timings)> {
        self.single_pass_cancellable(dataset, filter, proto, None)
    }

    /// [`Engine::single_pass`] under an optional [`CancelToken`]: the
    /// token is observed between blocks (a tripped token skips every
    /// not-yet-started block and the pass returns
    /// [`Error::Cancelled`] / [`Error::DeadlineExceeded`]), and a
    /// panicking aggregate fails only this pass
    /// ([`Error::TaskPanicked`]) — the pool survives.
    pub fn single_pass_cancellable<A: QueryAggregate>(
        &self,
        dataset: &Dataset,
        filter: &MetadataFilter,
        proto: A,
        token: Option<&CancelToken>,
    ) -> Result<(A, Timings)> {
        self.scan_range_cancellable(dataset, 0, dataset.bytes().len(), filter, proto, token)
    }

    /// The execution mode a scan of `dataset` resolves to: `Adaptive`
    /// picks Pat/Fat from the full input's marker density, so every
    /// byte-range shard of one dataset scans in the same mode as a
    /// single-node pass.
    pub(crate) fn resolve_mode(&self, dataset: &Dataset) -> Mode {
        match self.config.mode {
            Mode::Adaptive => {
                let marker: &[u8] = match dataset.format() {
                    Format::GeoJson => atgis_formats::geojson::FEATURE_MARKER,
                    _ => b"\n",
                };
                atgis_formats::resolve_adaptive(dataset.bytes(), marker, self.block_count())
            }
            m => m,
        }
    }

    /// [`Engine::single_pass_cancellable`] restricted to the byte
    /// range `[start, end)` — the shard scan primitive. Blocks are
    /// split within the range but carry **absolute** offsets, so
    /// features keep their global identity (offset/len) and results
    /// over marker-aligned ranges compose bit-identically with
    /// single-node execution. OSM XML (whose relations need the global
    /// node table) parses the full document and absorbs only features
    /// whose offset falls in the range; sharded batch execution parses
    /// once and buckets instead of calling this per shard.
    pub(crate) fn scan_range_cancellable<A: QueryAggregate>(
        &self,
        dataset: &Dataset,
        start: usize,
        end: usize,
        filter: &MetadataFilter,
        proto: A,
        token: Option<&CancelToken>,
    ) -> Result<(A, Timings)> {
        let input = dataset.bytes();
        let slice = &input[start..end];
        let threads = self.config.threads;
        let n = self.block_count();
        let shift = |mut blocks: Vec<atgis_formats::Block>| {
            if start > 0 {
                for b in &mut blocks {
                    b.start += start;
                    b.end += start;
                }
            }
            blocks
        };
        let mode = self.resolve_mode(dataset);
        match (dataset.format(), mode) {
            (Format::GeoJson, Mode::Pat) => {
                let started = Instant::now();
                let blocks = shift(marker_blocks(
                    slice,
                    atgis_formats::geojson::FEATURE_MARKER,
                    n,
                ));
                let split = started.elapsed();
                let (merged, mut t) = run_blocks_on(
                    &self.pool,
                    &blocks,
                    threads,
                    token,
                    |b| {
                        let mut features = Vec::new();
                        atgis_formats::geojson::fast::parse_block(
                            input,
                            b.start,
                            b.end,
                            filter,
                            &mut features,
                        )?;
                        let mut a = proto.clone();
                        for f in &features {
                            a.absorb(f);
                        }
                        Ok::<_, Error>(a)
                    },
                    |a, b| Ok(a.combine(b)),
                );
                t.split = split;
                Ok((merged?.unwrap_or(proto), t))
            }
            (Format::GeoJson, _) => {
                let started = Instant::now();
                let blocks = shift(fixed_blocks(slice.len(), n));
                let split = started.elapsed();
                let (merged, mut t) = run_blocks_on(
                    &self.pool,
                    &blocks,
                    threads,
                    token,
                    |b| FatGeoJsonFrag::process(input, b, filter, &proto).map_err(Error::Parse),
                    |a, b| a.merge(b, input, filter).map_err(Error::Parse),
                );
                t.split = split;
                let started = Instant::now();
                let agg = match merged? {
                    Some(m) => m.finalize(input, filter)?,
                    None => proto,
                };
                t.merge += started.elapsed();
                Ok((agg, t))
            }
            (Format::Wkt, Mode::Pat) => {
                let started = Instant::now();
                let blocks = shift(marker_blocks(slice, b"\n", n));
                let split = started.elapsed();
                let (merged, mut t) = run_blocks_on(
                    &self.pool,
                    &blocks,
                    threads,
                    token,
                    |b| {
                        let mut a = proto.clone();
                        let mut features = Vec::new();
                        // Rows starting within the block.
                        parse_wkt_rows(input, b.start, b.end, filter, &mut features)?;
                        for f in &features {
                            a.absorb(f);
                        }
                        Ok::<_, Error>(a)
                    },
                    |a, b| Ok(a.combine(b)),
                );
                t.split = split;
                Ok((merged?.unwrap_or(proto), t))
            }
            (Format::Wkt, _) => {
                let started = Instant::now();
                let blocks = shift(fixed_blocks(slice.len(), n));
                let split = started.elapsed();
                let (merged, mut t) = run_blocks_on(
                    &self.pool,
                    &blocks,
                    threads,
                    token,
                    |b| FatWktFrag::process(input, b, filter, &proto).map_err(Error::Parse),
                    |a, b| a.merge(b, input, filter).map_err(Error::Parse),
                );
                t.split = split;
                let started = Instant::now();
                let agg = match merged? {
                    Some(m) => m.finalize(input, filter)?,
                    None => proto,
                };
                t.merge += started.elapsed();
                Ok((agg, t))
            }
            (Format::OsmXml, _) => {
                let (features, t) = self.parse_xml(dataset, filter, token)?;
                let started = Instant::now();
                let whole = start == 0 && end == input.len();
                let mut a = proto;
                for f in &features {
                    if whole || ((start as u64) <= f.offset && f.offset < end as u64) {
                        a.absorb(f);
                    }
                }
                let mut t = t;
                t.merge += started.elapsed();
                Ok((a, t))
            }
        }
    }

    /// The XML two-pass parse (§4.4): block-parallel node collection
    /// and way/relation collection, then sequential assembly against
    /// the temporary node table.
    pub(crate) fn parse_xml(
        &self,
        dataset: &Dataset,
        filter: &MetadataFilter,
        token: Option<&CancelToken>,
    ) -> Result<(Vec<RawFeature>, Timings)> {
        use atgis_formats::osmxml;
        let input = dataset.bytes();
        let threads = self.config.threads;
        let started = Instant::now();
        let blocks = marker_blocks(input, b"\n", self.block_count());
        let split = started.elapsed();

        // Pass 1: temporary node table (map union is the associative
        // merge).
        let (nodes, mut t1) = run_blocks_on(
            &self.pool,
            &blocks,
            threads,
            token,
            |b| osmxml::collect_nodes(input, b.start, b.end).map_err(Error::Parse),
            |mut a, b| {
                a.extend(b);
                Ok(a)
            },
        );
        let nodes = nodes?.unwrap_or_default();

        // Pass 2: ways and relations.
        let (ways, t2) = run_blocks_on(
            &self.pool,
            &blocks,
            threads,
            token,
            |b| osmxml::collect_ways(input, b.start, b.end).map_err(Error::Parse),
            |mut a: Vec<_>, mut b| {
                a.append(&mut b);
                Ok(a)
            },
        );
        let ways = ways?.unwrap_or_default();
        let (relations, t3) = run_blocks_on(
            &self.pool,
            &blocks,
            threads,
            token,
            |b| osmxml::collect_relations(input, b.start, b.end).map_err(Error::Parse),
            |mut a: Vec<_>, mut b| {
                a.append(&mut b);
                Ok(a)
            },
        );
        let relations = relations?.unwrap_or_default();

        let started = Instant::now();
        let features = osmxml::assemble(&ways, &relations, &nodes, filter);
        t1.split = split;
        t1.process += t2.process + t3.process;
        t1.merge += t2.merge + t3.merge + started.elapsed();
        Ok((features, t1))
    }

    /// The two-pipeline join (§4.5): partition pass, PBSM join pass,
    /// duplicate elimination.
    fn run_join(
        &self,
        dataset: &Dataset,
        id_threshold: u64,
        min_perimeter_left: Option<f64>,
        max_perimeter_right: Option<f64>,
        token: Option<&CancelToken>,
    ) -> Result<(Vec<JoinPair>, ExecutionStats)> {
        let grid = GridSpec::new(self.config.grid_extent, self.config.cell_deg);
        match self.config.store {
            StoreKind::Array => self.run_join_with_store::<ArrayStore>(
                dataset,
                grid,
                id_threshold,
                min_perimeter_left,
                max_perimeter_right,
                token,
            ),
            StoreKind::List => self.run_join_with_store::<ListStore>(
                dataset,
                grid,
                id_threshold,
                min_perimeter_left,
                max_perimeter_right,
                token,
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_join_with_store<S: PartitionStore + Sync + Clone + 'static>(
        &self,
        dataset: &Dataset,
        grid: GridSpec,
        id_threshold: u64,
        min_perimeter_left: Option<f64>,
        max_perimeter_right: Option<f64>,
        token: Option<&CancelToken>,
    ) -> Result<(Vec<JoinPair>, ExecutionStats)> {
        // Pass 1: parse + bound + partition.
        let proto: PartitionAgg<S> = PartitionAgg {
            grid,
            store: S::new(grid.num_cells()),
            entries: Vec::new(),
            associative: self.config.partition_phase == PartitionPhase::Associative,
            id_threshold,
            min_perimeter_left,
            max_perimeter_right,
        };
        let (mut agg, mut t_partition) =
            self.single_pass_cancellable(dataset, &MetadataFilter::All, proto, token)?;
        if self.config.partition_phase == PartitionPhase::Separate {
            // Sequential partitioning step (§4.4: "it is possible to
            // perform the partitioning as a sequential step after the
            // processing pipeline").
            let started = Instant::now();
            for e in std::mem::take(&mut agg.entries) {
                for cell in grid.cells_for(&e.mbr) {
                    agg.store.push(cell, e);
                }
            }
            t_partition.merge += started.elapsed();
        }

        // Partition-map refinement: per-cell load statistics, hot-cell
        // splitting (identity map when adaptive partitioning is off).
        let started = Instant::now();
        let map = PartitionMap::adaptive(&grid, &agg.store, &self.config.adaptive);
        let refine = started.elapsed();

        // Pass 2: the join pipeline.
        let started = Instant::now();
        let input = dataset.bytes();
        let xml_table = if dataset.format() == Format::OsmXml {
            Some(self.xml_geometry_table(dataset, token)?)
        } else {
            None
        };
        let reparse = make_reparser(input, dataset.format(), xml_table.as_ref());
        let outcome = pbsm_join_mapped_on(
            &self.pool,
            &agg.store,
            &map,
            reparse.as_ref(),
            JoinOptions {
                threads: self.config.threads,
                sort_batch: self.config.sort_batch,
                probe: self.config.probe,
                ..JoinOptions::default()
            },
            token,
        )?;
        let join_time = started.elapsed() - outcome.dedup;

        Ok((
            outcome.pairs,
            ExecutionStats {
                pipeline: t_partition,
                join: Some(JoinTimings {
                    partition: t_partition,
                    refine,
                    join: Timings {
                        split: Default::default(),
                        process: join_time,
                        merge: Default::default(),
                    },
                    dedup: outcome.dedup,
                }),
                decisions: Some(outcome.decisions),
            },
        ))
    }

    /// Parses the dataset once into an offset→geometry table (used for
    /// XML joins, where re-parsing a relation needs the node table,
    /// and for the combined query's final aggregation).
    fn geometry_table(
        &self,
        dataset: &Dataset,
        pairs: &[JoinPair],
        token: Option<&CancelToken>,
    ) -> Result<HashMap<u64, Geometry>> {
        let needed: std::collections::HashSet<u64> = pairs
            .iter()
            .flat_map(|p| [p.left_offset, p.right_offset])
            .collect();
        let input = dataset.bytes();
        let xml_table = if dataset.format() == Format::OsmXml {
            Some(self.xml_geometry_table(dataset, token)?)
        } else {
            None
        };
        let reparse = make_reparser(input, dataset.format(), xml_table.as_ref());
        let mut table = HashMap::with_capacity(needed.len());
        // Lengths are recoverable from the collected features; for
        // GeoJSON/WKT the reparser only needs the offset.
        for off in needed {
            if let Some(t) = token {
                t.check()?;
            }
            table.insert(off, reparse(off, u32::MAX)?);
        }
        Ok(table)
    }

    pub(crate) fn xml_geometry_table(
        &self,
        dataset: &Dataset,
        token: Option<&CancelToken>,
    ) -> Result<HashMap<u64, Geometry>> {
        let (features, _) = self.parse_xml(dataset, &MetadataFilter::All, token)?;
        Ok(features
            .into_iter()
            .map(|f| (f.offset, f.geometry))
            .collect())
    }
}

/// Builds the format-specific single-object reparser for the join
/// pipeline.
pub(crate) fn make_reparser<'a>(
    input: &'a [u8],
    format: Format,
    xml_table: Option<&'a HashMap<u64, Geometry>>,
) -> Box<Reparser<'a>> {
    match format {
        Format::GeoJson => Box::new(move |offset, _len| {
            let mut out = Vec::new();
            atgis_formats::geojson::fast::parse_block(
                input,
                offset as usize,
                offset as usize + 1,
                &MetadataFilter::All,
                &mut out,
            )?;
            out.into_iter()
                .next()
                .map(|f| f.geometry)
                .ok_or_else(|| ParseError::syntax(offset, "no feature at offset"))
        }),
        Format::Wkt => Box::new(move |offset, len| {
            let end = if len == u32::MAX {
                // Length unknown: the row ends at the next newline.
                atgis_formats::split::find_marker(input, b"\n", offset as usize)
                    .unwrap_or(input.len())
            } else {
                offset as usize + len as usize
            };
            atgis_formats::wkt::parse_row(input, offset as usize, end, &MetadataFilter::All)?
                .map(|f| f.geometry)
                .ok_or_else(|| ParseError::syntax(offset, "no row at offset"))
        }),
        Format::OsmXml => {
            let table = xml_table.expect("XML joins require the geometry table");
            Box::new(move |offset, _len| {
                table
                    .get(&offset)
                    .cloned()
                    .ok_or_else(|| ParseError::syntax(offset, "unknown XML object offset"))
            })
        }
    }
}

/// WKT PAT row parsing helper (rows starting within `[start, end)`).
pub(crate) fn parse_wkt_rows(
    input: &[u8],
    start: usize,
    end: usize,
    filter: &MetadataFilter,
    out: &mut Vec<RawFeature>,
) -> std::result::Result<(), ParseError> {
    let mut pos = start;
    while pos < end {
        while pos < end && input[pos] == b'\n' {
            pos += 1;
        }
        if pos >= end {
            break;
        }
        let row_end = atgis_formats::split::find_marker(input, b"\n", pos).unwrap_or(input.len());
        if let Some(f) = atgis_formats::wkt::parse_row(input, pos, row_end, filter)? {
            out.push(f);
        }
        pos = row_end + 1;
    }
    Ok(())
}

/// Pass-1 aggregate for joins: bounds geometries and partitions them
/// (associatively, or collecting entries for a separate phase). The
/// batch layer reuses it side-agnostically (`id_threshold = u64::MAX`
/// tags everything left, no filters) to build one shared index.
#[derive(Clone)]
pub(crate) struct PartitionAgg<S: PartitionStore + Clone> {
    pub(crate) grid: GridSpec,
    pub(crate) store: S,
    pub(crate) entries: Vec<PartEntry>,
    pub(crate) associative: bool,
    pub(crate) id_threshold: u64,
    pub(crate) min_perimeter_left: Option<f64>,
    pub(crate) max_perimeter_right: Option<f64>,
}

impl<S: PartitionStore + Clone> QueryAggregate for PartitionAgg<S> {
    fn identity() -> Self {
        unreachable!("constructed by the engine with grid parameters")
    }

    fn absorb(&mut self, f: &RawFeature) {
        let left = f.id < self.id_threshold;
        // The combined query's perimeter pre-filters run here,
        // inside the partition pipeline (ordering filters before the
        // join, §7 "it can order filtering operations to minimise the
        // cost of joins").
        if left {
            if let Some(min) = self.min_perimeter_left {
                if measures::perimeter(&f.geometry, DistanceModel::Spherical) <= min {
                    return;
                }
            }
        } else if let Some(max) = self.max_perimeter_right {
            if measures::perimeter(&f.geometry, DistanceModel::Spherical) >= max {
                return;
            }
        }
        let entry = PartEntry::from_feature(f, left);
        if self.associative {
            for cell in self.grid.cells_for(&entry.mbr) {
                self.store.push(cell, entry);
            }
        } else {
            self.entries.push(entry);
        }
    }

    fn combine(mut self, mut other: Self) -> Self {
        if self.associative {
            let store = std::mem::replace(&mut self.store, S::new(0));
            self.store = store.merge(other.store);
        } else {
            self.entries.append(&mut other.entries);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::RunExt;
    use atgis_datagen::{write_geojson, write_wkt, OsmGenerator};

    fn dataset(n: usize, format: Format) -> Dataset {
        let ds = OsmGenerator::new(500).generate(n);
        let bytes = match format {
            Format::GeoJson => write_geojson(&ds),
            Format::Wkt => write_wkt(&ds),
            Format::OsmXml => atgis_datagen::write_osm_xml(&ds),
        };
        Dataset::from_bytes(bytes, format)
    }

    #[test]
    fn containment_whole_world_selects_everything() {
        let ds = dataset(80, Format::GeoJson);
        let engine = Engine::builder().threads(2).build();
        let q = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
        let r = engine.exec1(&q, &ds).unwrap();
        assert_eq!(r.matches().len(), 80);
    }

    #[test]
    fn containment_empty_region_selects_nothing() {
        let ds = dataset(50, Format::GeoJson);
        let engine = Engine::builder().build();
        let q = Query::containment(Mbr::new(100.0, -80.0, 101.0, -79.0));
        let r = engine.exec1(&q, &ds).unwrap();
        assert!(r.matches().is_empty());
    }

    #[test]
    fn fat_and_pat_agree_on_containment() {
        let ds = dataset(60, Format::GeoJson);
        let q = Query::containment(Mbr::new(-5.0, 45.0, 5.0, 55.0));
        let pat = Engine::builder().mode(Mode::Pat).threads(2).build();
        let fat = Engine::builder().mode(Mode::Fat).threads(2).build();
        let a = pat.exec1(&q, &ds).unwrap();
        let b = fat.exec1(&q, &ds).unwrap();
        assert_eq!(a.matches(), b.matches());
        assert!(!a.matches().is_empty(), "region should select something");
    }

    #[test]
    fn aggregation_counts_match_containment() {
        let ds = dataset(70, Format::GeoJson);
        let region = Mbr::new(-5.0, 45.0, 5.0, 55.0);
        let engine = Engine::builder().threads(2).build();
        let matches = engine
            .exec1(&Query::containment(region), &ds)
            .unwrap()
            .matches()
            .len() as u64;
        let agg = engine
            .exec1(&Query::aggregation(region), &ds)
            .unwrap()
            .aggregate()
            .unwrap();
        assert_eq!(agg.count, matches);
        assert!(agg.total_area > 0.0);
        assert!(agg.total_perimeter > 0.0);
    }

    #[test]
    fn formats_agree_on_aggregation() {
        let region = Mbr::new(-10.0, 40.0, 10.0, 60.0);
        let engine = Engine::builder().threads(2).build();
        let g = engine
            .exec1(&Query::aggregation(region), &dataset(40, Format::GeoJson))
            .unwrap()
            .aggregate()
            .unwrap();
        let w = engine
            .exec1(&Query::aggregation(region), &dataset(40, Format::Wkt))
            .unwrap()
            .aggregate()
            .unwrap();
        assert_eq!(g.count, w.count);
        assert!((g.total_area - w.total_area).abs() / g.total_area.max(1.0) < 1e-4);
    }

    #[test]
    fn join_finds_intersecting_pairs() {
        let ds = dataset(60, Format::GeoJson);
        let engine = Engine::builder().threads(2).cell_size(2.0).build();
        let r = engine.exec1(&Query::join(30), &ds).unwrap();
        // Pairs must respect the id partition.
        for p in r.joined() {
            assert!(p.left_id < 30, "{p:?}");
            assert!(p.right_id >= 30, "{p:?}");
        }
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        for p in r.joined() {
            assert!(seen.insert((p.left_offset, p.right_offset)), "dup {p:?}");
        }
    }

    #[test]
    fn join_matches_brute_force() {
        let gen = OsmGenerator::new(501).generate(50);
        let bytes = write_geojson(&gen);
        let ds = Dataset::from_bytes(bytes, Format::GeoJson);
        let engine = Engine::builder().threads(2).cell_size(1.0).build();
        let got: std::collections::HashSet<(u64, u64)> = engine
            .exec1(&Query::join(25), &ds)
            .unwrap()
            .joined()
            .iter()
            .map(|p| (p.left_id, p.right_id))
            .collect();
        let mut want = std::collections::HashSet::new();
        for a in &gen.objects {
            for b in &gen.objects {
                if a.id < 25 && b.id >= 25 && atgis_geometry::intersects(&a.geometry, &b.geometry) {
                    want.insert((a.id, b.id));
                }
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn join_store_kinds_agree() {
        let ds = dataset(50, Format::GeoJson);
        let q = Query::join(25);
        let array = Engine::builder()
            .store(StoreKind::Array)
            .cell_size(2.0)
            .build();
        let list = Engine::builder()
            .store(StoreKind::List)
            .cell_size(2.0)
            .build();
        let a = array.exec1(&q, &ds).unwrap();
        let l = list.exec1(&q, &ds).unwrap();
        assert_eq!(a.joined(), l.joined());
    }

    #[test]
    fn join_partition_phases_agree() {
        let ds = dataset(50, Format::GeoJson);
        let q = Query::join(25);
        let assoc = Engine::builder()
            .partition_phase(PartitionPhase::Associative)
            .cell_size(2.0)
            .build();
        let sep = Engine::builder()
            .partition_phase(PartitionPhase::Separate)
            .cell_size(2.0)
            .build();
        assert_eq!(
            assoc.exec1(&q, &ds).unwrap().joined(),
            sep.exec1(&q, &ds).unwrap().joined()
        );
    }

    #[test]
    fn wkt_join_agrees_with_geojson_join() {
        let gen = OsmGenerator::new(502).generate(40);
        let g = Dataset::from_bytes(write_geojson(&gen), Format::GeoJson);
        let w = Dataset::from_bytes(write_wkt(&gen), Format::Wkt);
        let engine = Engine::builder().cell_size(2.0).build();
        let q = Query::join(20);
        let pg: Vec<(u64, u64)> = engine
            .exec1(&q, &g)
            .unwrap()
            .joined()
            .iter()
            .map(|p| (p.left_id, p.right_id))
            .collect();
        let pw: Vec<(u64, u64)> = engine
            .exec1(&q, &w)
            .unwrap()
            .joined()
            .iter()
            .map(|p| (p.left_id, p.right_id))
            .collect();
        assert_eq!(pg, pw);
    }

    #[test]
    fn combined_query_produces_union_area() {
        let ds = dataset(60, Format::GeoJson);
        let engine = Engine::builder().cell_size(2.0).build();
        let r = engine
            .exec1(&Query::combined(30, 0.0, f64::INFINITY), &ds)
            .unwrap();
        match r {
            QueryResult::Combined {
                pairs,
                total_union_area,
            } => {
                if pairs > 0 {
                    assert!(total_union_area > 0.0);
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn combined_filters_reduce_pairs() {
        let ds = dataset(60, Format::GeoJson);
        let engine = Engine::builder().cell_size(2.0).build();
        let all = match engine
            .exec1(&Query::combined(30, 0.0, f64::INFINITY), &ds)
            .unwrap()
        {
            QueryResult::Combined { pairs, .. } => pairs,
            _ => unreachable!(),
        };
        let filtered = match engine
            .exec1(&Query::combined(30, 1e9, f64::INFINITY), &ds)
            .unwrap()
        {
            QueryResult::Combined { pairs, .. } => pairs,
            _ => unreachable!(),
        };
        assert!(filtered <= all);
        assert_eq!(filtered, 0, "1e9 m perimeter filter rejects everything");
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let ds = dataset(80, Format::GeoJson);
        let q = Query::aggregation(Mbr::new(-10.0, 40.0, 10.0, 60.0));
        let base = Engine::builder()
            .threads(1)
            .build()
            .exec1(&q, &ds)
            .unwrap()
            .aggregate()
            .unwrap();
        for threads in [2, 3, 8] {
            let got = Engine::builder()
                .threads(threads)
                .build()
                .exec1(&q, &ds)
                .unwrap()
                .aggregate()
                .unwrap();
            assert_eq!(got.count, base.count, "threads={threads}");
            assert!((got.total_area - base.total_area).abs() / base.total_area.max(1.0) < 1e-9);
        }
    }

    #[test]
    fn xml_containment_counts_objects() {
        let ds = dataset(40, Format::OsmXml);
        let engine = Engine::builder().threads(2).build();
        let q = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
        let r = engine.exec1(&q, &ds).unwrap();
        // Collections flatten into multiple ways, so >= is correct;
        // ways with <2 resolvable points are dropped.
        assert!(!r.matches().is_empty());
    }

    #[test]
    fn adaptive_partitioning_preserves_join_results() {
        let ds = dataset(120, Format::GeoJson);
        let q = Query::join(60);
        let uniform = Engine::builder()
            .threads(2)
            .cell_size(4.0)
            .partition_target(0)
            .build();
        // Tiny target to force splits on this small dataset.
        let adaptive = Engine::builder()
            .threads(2)
            .cell_size(4.0)
            .partition_target(4)
            .build();
        let (u, us) = uniform.run_single(&q, &ds, None).unwrap();
        let (a, ast) = adaptive.run_single(&q, &ds, None).unwrap();
        assert_eq!(u.joined(), a.joined());
        let ud = us.decisions.expect("join reports decisions");
        let ad = ast.decisions.expect("join reports decisions");
        assert_eq!(ud.map.split_cells, 0, "uniform never splits");
        assert!(ad.map.split_cells > 0, "tiny target must split: {ad:?}");
        assert!(ad.map.slots > ud.map.slots);
    }

    #[test]
    fn probe_strategies_agree_at_engine_level() {
        let ds = dataset(80, Format::GeoJson);
        let q = Query::join(40);
        let sweep = Engine::builder()
            .cell_size(4.0)
            .probe_strategy(crate::join::ProbeStrategy::Sweep)
            .build();
        let rtree = Engine::builder()
            .cell_size(4.0)
            .probe_strategy(crate::join::ProbeStrategy::RTree)
            .build();
        let (s, _) = sweep.run_single(&q, &ds, None).unwrap();
        let (r, rs) = rtree.run_single(&q, &ds, None).unwrap();
        assert_eq!(s.joined(), r.joined());
        let d = rs.decisions.unwrap();
        assert!(
            d.rtree_partitions > 0,
            "forced probe must be recorded: {d:?}"
        );
        assert_eq!(d.sweep_partitions, 0);
    }

    #[test]
    fn xml_join_runs() {
        let ds = dataset(30, Format::OsmXml);
        let engine = Engine::builder().cell_size(2.0).build();
        let r = engine.exec1(&Query::join(15), &ds).unwrap();
        for p in r.joined() {
            assert!(p.left_id < 15 && p.right_id >= 15);
        }
    }
}
