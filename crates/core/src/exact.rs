//! Exact (correctly-rounded) floating-point accumulation.
//!
//! The streaming execution path cuts the input at *chunk* boundaries
//! that have nothing to do with the buffered path's block boundaries,
//! so the two paths combine partial aggregates in different orders and
//! groupings. Plain `f64` addition is not associative, which would
//! make "streamed ≡ buffered, bit-identical" impossible to guarantee.
//! [`ExactSum`] restores associativity: it maintains Shewchuk-style
//! non-overlapping partials (every `add` is error-free), so the
//! rounded [`ExactSum::value`] is the **correctly-rounded true sum**
//! of everything ever added — a function of the input *multiset* only,
//! independent of addition order, merge shape, thread count or chunk
//! size. The final rounding follows CPython's `math.fsum` (including
//! the half-way correction), so two accumulators holding the same
//! multiset always round identically.
//!
//! Cost: `add` walks the partials vector, which stays tiny in practice
//! (a handful of entries for well-scaled geometric measures); the
//! aggregation pipelines pay a few nanoseconds per selected feature in
//! exchange for making every execution strategy bit-reproducible.

/// An exact running sum of `f64` values.
///
/// Not meaningful for inputs containing NaN or infinities (they
/// propagate, as with plain addition) or for sums whose *intermediate
/// exact value* overflows `f64::MAX`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExactSum {
    /// Non-overlapping partials in increasing magnitude order.
    partials: Vec<f64>,
}

impl ExactSum {
    /// The empty sum.
    pub fn new() -> Self {
        ExactSum::default()
    }

    /// Starts from one value.
    pub fn from_value(x: f64) -> Self {
        let mut s = ExactSum::new();
        s.add(x);
        s
    }

    /// Adds `x` exactly (error-free transformation cascade).
    pub fn add(&mut self, x: f64) {
        let mut x = x;
        let mut i = 0;
        for j in 0..self.partials.len() {
            let mut y = self.partials[j];
            if x.abs() < y.abs() {
                std::mem::swap(&mut x, &mut y);
            }
            let hi = x + y;
            let lo = y - (hi - x);
            if lo != 0.0 {
                self.partials[i] = lo;
                i += 1;
            }
            x = hi;
        }
        self.partials.truncate(i);
        // A zero running total is dropped (as in CPython's fsum): it
        // carries no information and would break the increasing-
        // magnitude invariant the final rounding relies on.
        if x != 0.0 {
            self.partials.push(x);
        }
    }

    /// Adds every partial of `other` — the associative combine. The
    /// resulting *value* equals the exact sum of both input multisets
    /// regardless of combine order or nesting.
    pub fn merge(&mut self, other: &ExactSum) {
        for &p in &other.partials {
            self.add(p);
        }
    }

    /// The correctly-rounded (round-half-even) sum of everything
    /// added, per CPython's `math.fsum` final-rounding step.
    pub fn value(&self) -> f64 {
        let p = &self.partials;
        let n = p.len();
        if n == 0 {
            return 0.0;
        }
        // Sum from the largest partial down, tracking the first
        // non-zero round-off; correct the half-way case by looking at
        // the next lower partial's sign.
        let mut hi = p[n - 1];
        let mut j = n - 1;
        let mut lo = 0.0;
        while j > 0 {
            j -= 1;
            let x = hi;
            let y = p[j];
            debug_assert!(x.abs() >= y.abs());
            hi = x + y;
            let yr = hi - x;
            lo = y - yr;
            if lo != 0.0 {
                break;
            }
        }
        if j > 0 && ((lo < 0.0 && p[j - 1] < 0.0) || (lo > 0.0 && p[j - 1] > 0.0)) {
            let y = lo * 2.0;
            let x = hi + y;
            let yr = x - hi;
            if y == yr {
                hi = x;
            }
        }
        hi
    }

    /// True when nothing has been added (or everything cancelled into
    /// the single partial `0.0` is still *not* considered empty —
    /// emptiness is about history, used only for cheap identity
    /// checks).
    pub fn is_empty(&self) -> bool {
        self.partials.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random f64s across wide magnitude ranges.
    fn values(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let mag = (state % 61) as i32 - 30;
                let frac = (state >> 11) as f64 / (1u64 << 53) as f64;
                (frac - 0.5) * 2f64.powi(mag)
            })
            .collect()
    }

    #[test]
    fn order_invariant_under_permutation_and_grouping() {
        let vals = values(200, 42);
        let mut forward = ExactSum::new();
        for &v in &vals {
            forward.add(v);
        }
        let mut backward = ExactSum::new();
        for &v in vals.iter().rev() {
            backward.add(v);
        }
        assert_eq!(forward.value().to_bits(), backward.value().to_bits());

        // Arbitrary tree groupings: pairwise tree vs odd-sized splits.
        for split in [1usize, 3, 7, 50, 199] {
            let mut a = ExactSum::new();
            for &v in &vals[..split] {
                a.add(v);
            }
            let mut b = ExactSum::new();
            for &v in &vals[split..] {
                b.add(v);
            }
            a.merge(&b);
            assert_eq!(
                a.value().to_bits(),
                forward.value().to_bits(),
                "split={split}"
            );
        }
    }

    #[test]
    fn matches_ill_conditioned_known_sums() {
        // 1 + 1e100 - 1e100 = 1 exactly.
        let mut s = ExactSum::new();
        s.add(1.0);
        s.add(1e100);
        s.add(-1e100);
        assert_eq!(s.value(), 1.0);

        // Many tiny values below one ulp of the big one still count.
        let mut s = ExactSum::new();
        s.add(1e16);
        for _ in 0..1000 {
            s.add(0.5f64.powi(30));
        }
        let exact = 1e16 + 1000.0 * 0.5f64.powi(30);
        assert_eq!(s.value(), exact);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(ExactSum::new().value(), 0.0);
        assert!(ExactSum::new().is_empty());
        let s = ExactSum::from_value(-3.25);
        assert_eq!(s.value(), -3.25);
        assert!(!s.is_empty());
    }

    #[test]
    fn half_even_rounding_is_representation_independent() {
        // A sum that lands exactly half-way between two doubles: build
        // it in two very different orders and demand the same bits.
        let vals = [1.0, 0.5f64.powi(53), 0.5f64.powi(54), -0.5f64.powi(54)];
        let mut a = ExactSum::new();
        for &v in &vals {
            a.add(v);
        }
        let mut b = ExactSum::new();
        for &v in vals.iter().rev() {
            b.add(v);
        }
        assert_eq!(a.value().to_bits(), b.value().to_bits());
    }

    #[test]
    fn merge_is_associative_bitwise() {
        let vals = values(90, 7);
        let thirds: Vec<ExactSum> = vals
            .chunks(30)
            .map(|c| {
                let mut s = ExactSum::new();
                for &v in c {
                    s.add(v);
                }
                s
            })
            .collect();
        let mut left = thirds[0].clone();
        left.merge(&thirds[1]);
        left.merge(&thirds[2]);
        let mut right = thirds[1].clone();
        right.merge(&thirds[2]);
        let mut outer = thirds[0].clone();
        outer.merge(&right);
        assert_eq!(left.value().to_bits(), outer.value().to_bits());
    }
}
