//! The unified request API: one [`ExecOptions`] consumed by one `run`
//! entry point per layer.
//!
//! The execution layers historically grew a combinatorial `execute*`
//! surface (`_timed` × `_cancellable` × `_isolated` × `_batch` ×
//! `_multi` × `_streaming` × `_prioritized` — ~30 names). Every axis
//! of that matrix is now a field on [`ExecOptions`]:
//!
//! | legacy axis          | [`ExecOptions`] field                    |
//! |----------------------|------------------------------------------|
//! | `_cancellable`       | `token: Some(..)` / `deadline: Some(..)` |
//! | `_timed`             | `timing: true`                           |
//! | `_isolated`          | `isolation: Isolation::PerQuery`         |
//! | `_prioritized`       | `priority` (scheduler layer)             |
//! | *(new)* shard fan-out| `shards: ShardPolicy`                    |
//!
//! and every layer keeps exactly one entry point:
//! [`crate::Engine::run`] / [`crate::Engine::run_streaming`],
//! [`crate::batch::QuerySession::run`], and
//! [`crate::scheduler::QueryScheduler::run`] /
//! [`crate::scheduler::QueryScheduler::run_multi`] /
//! [`crate::scheduler::QueryScheduler::run_streaming`]. All of them
//! return a [`RunOutcome`]. The legacy names survive as thin
//! `#[deprecated]` wrappers that delegate here and stay bit-identical.
//!
//! ```
//! use atgis::{Dataset, Engine, ExecOptions, Query};
//! use atgis_formats::Format;
//! use atgis_geometry::Mbr;
//!
//! let data = br#"{"type":"FeatureCollection","features":[
//!   {"type":"Feature","properties":{"building":"yes"},
//!    "geometry":{"type":"Polygon","coordinates":[[[0,0],[2,0],[2,2],[0,2],[0,0]]]}}]}"#;
//! let dataset = Dataset::from_bytes(data.to_vec(), Format::GeoJson);
//! let engine = Engine::builder().build();
//! let queries = [Query::containment(Mbr::new(-1.0, -1.0, 3.0, 3.0))];
//!
//! let outcome = engine.run(&queries, &dataset, &ExecOptions::new())?;
//! assert_eq!(outcome.outcomes.len(), 1);
//! # Ok::<(), atgis::Error>(())
//! ```

use std::time::Duration;

use crate::cancel::CancelToken;
#[cfg(test)]
use crate::result::QueryError;
use crate::result::{QueryOutcome, QueryResult};
use crate::scheduler::Priority;
use crate::stats::{BatchStats, SchedulerStats, ShardStats, StreamStats};
use crate::{Error, Result};

/// How query failures inside a batch surface to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Isolation {
    /// The first failing query fails the whole `run` call (the classic
    /// collapse semantics of `execute_batch`).
    #[default]
    WholeBatch,
    /// Failures are tombstoned per query: [`RunOutcome::outcomes`]
    /// carries an `Err` for the failing query and an `Ok` for every
    /// other (the `_isolated` semantics).
    PerQuery,
}

/// How a batch fans out across dataset shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShardPolicy {
    /// Single-node execution: one scan over the whole dataset.
    #[default]
    Single,
    /// Scatter–gather over exactly `n` byte-range shards (clamped to
    /// at least 1; the dataset may yield fewer marker-aligned shards
    /// than requested).
    Count(usize),
    /// Let the engine pick: one shard per worker thread, capped at 8.
    Auto,
}

impl ShardPolicy {
    /// The shard count this policy requests on an engine with
    /// `threads` workers.
    pub fn resolve(&self, threads: usize) -> usize {
        match *self {
            ShardPolicy::Single => 1,
            ShardPolicy::Count(n) => n.max(1),
            ShardPolicy::Auto => threads.clamp(1, 8),
        }
    }
}

/// One request shape for every execution layer. Construct with
/// [`ExecOptions::new`] and the builder methods, or as a struct
/// literal (all fields are public).
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Cooperative cancellation handle; `None` runs uncancellable.
    pub token: Option<CancelToken>,
    /// Time budget for the call. Composes with `token`: a child token
    /// is derived that trips on whichever comes first.
    pub deadline: Option<Duration>,
    /// Collect and return timing breakdowns ([`RunOutcome::batch`] /
    /// [`RunOutcome::scheduler`] / [`RunOutcome::stream`] stay `None`
    /// when `false`).
    pub timing: bool,
    /// Whole-batch failure vs per-query tombstoning.
    pub isolation: Isolation,
    /// SLO class applied to every query (scheduler layer; ignored by
    /// the engine/session layers, which have no admission control).
    pub priority: Priority,
    /// Scatter–gather fan-out (ignored by streaming entry points,
    /// which shard by chunk arrival instead).
    pub shards: ShardPolicy,
}

impl ExecOptions {
    /// Defaults: uncancellable, no deadline, no timing, whole-batch
    /// failure, interactive priority, single-node execution.
    pub fn new() -> Self {
        ExecOptions::default()
    }

    /// Attach a cancellation token (cloned; all clones share state).
    pub fn cancellable(mut self, token: &CancelToken) -> Self {
        self.token = Some(token.clone());
        self
    }

    /// Attach an optional cancellation token (convenience for callers
    /// holding `Option<&CancelToken>`).
    pub fn cancellable_opt(mut self, token: Option<&CancelToken>) -> Self {
        self.token = token.cloned();
        self
    }

    /// Set a time budget for the call.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Collect timing breakdowns.
    pub fn timed(mut self) -> Self {
        self.timing = true;
        self
    }

    /// Tombstone failures per query instead of failing the batch.
    pub fn isolated(mut self) -> Self {
        self.isolation = Isolation::PerQuery;
        self
    }

    /// Set the scheduler SLO class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Set the shard fan-out policy.
    pub fn with_shards(mut self, shards: ShardPolicy) -> Self {
        self.shards = shards;
        self
    }

    /// Scatter–gather over `n` shards (`ShardPolicy::Count(n)`).
    pub fn sharded(self, n: usize) -> Self {
        self.with_shards(ShardPolicy::Count(n))
    }

    /// The token execution actually polls: the caller's token, a
    /// deadline-derived child of it when both are set, or a fresh
    /// deadline token when only a budget is given.
    pub(crate) fn effective_token(&self) -> Option<CancelToken> {
        match (&self.token, self.deadline) {
            (Some(t), Some(d)) => Some(t.child_with_deadline(d)),
            (Some(t), None) => Some(t.clone()),
            (None, Some(d)) => Some(CancelToken::with_deadline(d)),
            (None, None) => None,
        }
    }
}

/// What a `run` call produced: per-query outcomes in submission order
/// plus whichever stats layers the call traversed (populated only when
/// [`ExecOptions::timing`] was set).
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// Per-query results, in submission order. Under
    /// [`Isolation::WholeBatch`] every entry is `Ok` (the call itself
    /// failed otherwise); under [`Isolation::PerQuery`] failed queries
    /// carry their [`crate::result::QueryError`] tombstone.
    pub outcomes: Vec<QueryOutcome>,
    /// Shared-scan batch breakdown (engine / session layers; the
    /// scheduler reports per-wave batches inside `scheduler` instead).
    pub batch: Option<BatchStats>,
    /// Scheduler accounting (dedup, cache hits, waves, latencies).
    pub scheduler: Option<SchedulerStats>,
    /// Streaming ingest accounting (streaming entry points only).
    pub stream: Option<StreamStats>,
}

impl RunOutcome {
    /// Unwraps every outcome, failing on the first tombstoned query —
    /// the bridge from [`Isolation::PerQuery`] back to collapse
    /// semantics.
    pub fn collapse(self) -> Result<Vec<QueryResult>> {
        self.outcomes
            .into_iter()
            .map(|o| o.map_err(Error::from))
            .collect()
    }

    /// Unwraps a single-query run.
    ///
    /// # Panics
    /// Panics when the run carried more than one query.
    pub fn into_single(self) -> Result<QueryResult> {
        assert!(
            self.outcomes.len() == 1,
            "into_single on a {}-query outcome",
            self.outcomes.len()
        );
        let mut outcomes = self.outcomes;
        outcomes.pop().expect("one outcome").map_err(Error::from)
    }

    /// The scatter–gather accounting, when the run was sharded and
    /// timed (from `batch`, or from the first sharded scheduler wave).
    pub fn shard_stats(&self) -> Option<&ShardStats> {
        if let Some(s) = self.batch.as_ref().and_then(|b| b.shards.as_ref()) {
            return Some(s);
        }
        self.scheduler
            .as_ref()?
            .waves
            .iter()
            .find_map(|w| w.batch.shards.as_ref())
    }
}

/// Applies isolation and timing policy to raw per-query outcomes —
/// the single exit path every `run` entry point funnels through.
pub(crate) fn finish_run(
    outcomes: Vec<QueryOutcome>,
    batch: Option<BatchStats>,
    scheduler: Option<SchedulerStats>,
    stream: Option<StreamStats>,
    opts: &ExecOptions,
) -> Result<RunOutcome> {
    if opts.isolation == Isolation::WholeBatch {
        if let Some(err) = outcomes.iter().find_map(|o| o.as_ref().err()) {
            return Err(Error::from(err.clone()));
        }
    }
    Ok(RunOutcome {
        outcomes,
        batch: if opts.timing { batch } else { None },
        scheduler: if opts.timing { scheduler } else { None },
        stream: if opts.timing { stream } else { None },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_policy_resolution() {
        assert_eq!(ShardPolicy::Single.resolve(16), 1);
        assert_eq!(ShardPolicy::Count(0).resolve(16), 1);
        assert_eq!(ShardPolicy::Count(4).resolve(1), 4);
        assert_eq!(ShardPolicy::Auto.resolve(1), 1);
        assert_eq!(ShardPolicy::Auto.resolve(4), 4);
        assert_eq!(ShardPolicy::Auto.resolve(64), 8);
    }

    #[test]
    fn effective_token_composes_token_and_deadline() {
        let opts = ExecOptions::new();
        assert!(opts.effective_token().is_none());

        let t = CancelToken::new();
        let opts = ExecOptions::new().cancellable(&t);
        let eff = opts.effective_token().unwrap();
        t.cancel();
        assert!(eff.is_cancelled(), "plain token passes through");

        let opts = ExecOptions::new().with_deadline(Duration::ZERO);
        let eff = opts.effective_token().unwrap();
        assert!(eff.check().is_err(), "deadline-only budget trips");

        let t = CancelToken::new();
        let opts = ExecOptions::new()
            .cancellable(&t)
            .with_deadline(Duration::from_secs(3600));
        let eff = opts.effective_token().unwrap();
        assert!(eff.check().is_ok());
        t.cancel();
        assert!(eff.is_cancelled(), "parent cancel reaches the child");
        assert!(opts.token.unwrap().deadline().is_none());
    }

    #[test]
    fn whole_batch_isolation_promotes_first_error() {
        let outcomes: Vec<QueryOutcome> = vec![
            Ok(QueryResult::Matches(Vec::new())),
            Err(QueryError::Panicked("boom".into())),
        ];
        let err = finish_run(outcomes.clone(), None, None, None, &ExecOptions::new())
            .expect_err("whole-batch fails");
        assert!(matches!(err, Error::TaskPanicked(_)));

        let out = finish_run(outcomes, None, None, None, &ExecOptions::new().isolated())
            .expect("per-query isolation keeps tombstones");
        assert_eq!(out.outcomes.len(), 2);
        assert!(out.outcomes[0].is_ok());
        assert!(out.outcomes[1].is_err());
    }

    #[test]
    fn timing_gate_strips_stats() {
        let stats = BatchStats {
            queries: 1,
            ..BatchStats::default()
        };
        let out = finish_run(
            Vec::new(),
            Some(stats.clone()),
            None,
            None,
            &ExecOptions::new(),
        )
        .unwrap();
        assert!(out.batch.is_none());
        let out = finish_run(
            Vec::new(),
            Some(stats),
            None,
            None,
            &ExecOptions::new().timed(),
        )
        .unwrap();
        assert_eq!(out.batch.unwrap().queries, 1);
    }
}
