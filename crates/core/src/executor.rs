//! The split → processing → merge execution phases (Fig. 5).
//!
//! "After a data block is formed, it is placed in a work queue for the
//! processing phase. … As ATs make the tasks independent, it can be
//! scaled to many parallel threads. The merge phase combines all of
//! the partial results from the processing phase." Each worker thread
//! runs the *entire* pipeline for its blocks (§1: "each thread
//! executes the entire pipeline, for separate blocks of the input
//! data"); only fragments cross thread boundaries.

use crate::stats::Timings;
use atgis_formats::Block;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Runs `process` over every block on `threads` worker threads, then
/// folds the per-block fragments **in block order** with `merge`.
/// Returns `Ok(None)` for an empty block list.
pub fn run_blocks<T, E, P, M>(
    blocks: &[Block],
    threads: usize,
    process: P,
    merge: M,
) -> (std::result::Result<Option<T>, E>, Timings)
where
    T: Send,
    E: Send,
    P: Fn(Block) -> std::result::Result<T, E> + Sync,
    M: Fn(T, T) -> std::result::Result<T, E>,
{
    let threads = threads.max(1);
    let mut timings = Timings::default();

    // Processing phase: a shared atomic cursor is the work queue —
    // workers claim the next unprocessed block until none remain.
    let started = Instant::now();
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<std::result::Result<T, E>>> =
        (0..blocks.len()).map(|_| None).collect();

    if threads == 1 || blocks.len() <= 1 {
        for (i, &b) in blocks.iter().enumerate() {
            slots[i] = Some(process(b));
        }
    } else {
        // Hand each worker a disjoint view of the result slots via
        // chunked raw splitting; the cursor orders claims.
        let slot_refs: Vec<parking_lot::Mutex<&mut Option<std::result::Result<T, E>>>> =
            slots.iter_mut().map(parking_lot::Mutex::new).collect();
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(blocks.len()) {
                scope.spawn(|_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= blocks.len() {
                        break;
                    }
                    let result = process(blocks[i]);
                    **slot_refs[i].lock() = Some(result);
                });
            }
        })
        .expect("worker thread panicked");
    }
    timings.process = started.elapsed();

    // Merge phase: in-order left fold (the fragments' ⊗ is
    // associative, so a tree merge would also be valid; the paper
    // merges after all blocks are available).
    let started = Instant::now();
    let mut acc: Option<T> = None;
    for slot in slots {
        let frag = match slot.expect("every block processed") {
            Ok(f) => f,
            Err(e) => {
                timings.merge = started.elapsed();
                return (Err(e), timings);
            }
        };
        acc = Some(match acc {
            None => frag,
            Some(a) => match merge(a, frag) {
                Ok(m) => m,
                Err(e) => {
                    timings.merge = started.elapsed();
                    return (Err(e), timings);
                }
            },
        });
    }
    timings.merge = started.elapsed();
    (Ok(acc), timings)
}

/// Runs `work` over the indices `0..n` on `threads` workers, collecting
/// outputs in index order. A simpler variant of [`run_blocks`] for
/// partition-parallel stages (the join pipeline fans out over
/// partitions, not blocks).
pub fn run_indexed<T, P>(n: usize, threads: usize, work: P) -> Vec<T>
where
    T: Send,
    P: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    if threads == 1 || n <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(work(i));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let slot_refs: Vec<parking_lot::Mutex<&mut Option<T>>> =
            slots.iter_mut().map(parking_lot::Mutex::new).collect();
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(n) {
                scope.spawn(|_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = work(i);
                    **slot_refs[i].lock() = Some(out);
                });
            }
        })
        .expect("worker thread panicked");
    }
    slots.into_iter().map(|s| s.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgis_formats::fixed_blocks;

    #[test]
    fn sums_blocks_in_order() {
        let blocks = fixed_blocks(100, 10);
        for threads in [1, 2, 4, 8] {
            let (result, _) = run_blocks(
                &blocks,
                threads,
                |b| Ok::<_, ()>(vec![b.index]),
                |mut a, b| {
                    a.extend(b);
                    Ok(a)
                },
            );
            let merged = result.unwrap().unwrap();
            assert_eq!(merged, (0..10).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn empty_blocks_yield_none() {
        let (result, _) = run_blocks(
            &[],
            4,
            |_| Ok::<_, ()>(0u64),
            |a, b| Ok(a + b),
        );
        assert_eq!(result.unwrap(), None);
    }

    #[test]
    fn process_errors_propagate() {
        let blocks = fixed_blocks(10, 5);
        let (result, _) = run_blocks(
            &blocks,
            2,
            |b| {
                if b.index == 3 {
                    Err("boom")
                } else {
                    Ok(b.index)
                }
            },
            |a, _| Ok(a),
        );
        assert_eq!(result.unwrap_err(), "boom");
    }

    #[test]
    fn merge_errors_propagate() {
        let blocks = fixed_blocks(10, 5);
        let (result, _) = run_blocks(
            &blocks,
            2,
            |b| Ok(b.index),
            |_, b| if b == 2 { Err("merge fail") } else { Ok(b) },
        );
        assert_eq!(result.unwrap_err(), "merge fail");
    }

    #[test]
    fn indexed_execution_preserves_order() {
        for threads in [1, 3, 7] {
            let out = run_indexed(20, threads, |i| i * i);
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn timings_are_recorded() {
        let blocks = fixed_blocks(1000, 4);
        let (_, t) = run_blocks(
            &blocks,
            2,
            |b| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                Ok::<_, ()>(b.len())
            },
            |a, b| Ok(a + b),
        );
        assert!(t.process >= std::time::Duration::from_millis(1));
    }
}
