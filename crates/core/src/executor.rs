//! The split → processing → merge execution phases (Fig. 5).
//!
//! "After a data block is formed, it is placed in a work queue for the
//! processing phase. … As ATs make the tasks independent, it can be
//! scaled to many parallel threads. The merge phase combines all of
//! the partial results from the processing phase." Each worker thread
//! runs the *entire* pipeline for its blocks (§1: "each thread
//! executes the entire pipeline, for separate blocks of the input
//! data"); only fragments cross thread boundaries.
//!
//! Two deliberate deviations from the paper's prototype, both for
//! sustained-traffic throughput:
//!
//! * threads are **persistent** ([`crate::pool::WorkerPool`]) instead
//!   of being re-created per query, and result slots are pre-sized and
//!   written lock-free (the work-queue cursor hands each slot exactly
//!   one writer);
//! * the merge phase is an **incremental left fold**
//!   ([`StreamMerger`]): each fragment is folded into its neighbours
//!   the moment its task completes, in whatever order completions
//!   arrive. Adjacent runs coalesce immediately, so live fragment
//!   memory is bounded by the number of *gaps* between completed runs
//!   — `O(in-flight tasks)`, i.e. `O(workers)`, never `O(blocks)`.
//!   Because ⊗ is associative (§3.2) and only **adjacent** fragments
//!   ever merge, the result is identical to a sequential left fold at
//!   every thread count, and the streaming execution path can feed the
//!   same merger with chunk fragments as they are scanned.

use crate::cancel::CancelToken;
use crate::pool::{available_parallelism, recover, JobFault, WorkerPool};
use crate::stats::Timings;
use atgis_formats::Block;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Resolves a configured thread count: `0` means "match the machine"
/// (`std::thread::available_parallelism`), anything else is taken
/// as-is. Guards against the oversubscription of spawning more workers
/// than there are result slots — the pool additionally clamps per-job
/// concurrency to the task count.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        available_parallelism()
    } else {
        threads
    }
}

/// The incremental, out-of-order fragment merger behind every merge
/// phase — buffered block scans and the streaming chunk scan alike.
///
/// Fragments arrive as `(index, fragment)` in *any* order (whichever
/// task finishes first). The merger keeps maximal runs of contiguous
/// indices, merging a new fragment into its adjacent runs immediately,
/// so at any instant it holds one fragment per contiguous run — at
/// most `in-flight tasks + 1`, never the total fragment count. Only
/// adjacent fragments are ever combined, in index order, which by
/// ⊗-associativity makes the final fold bit-identical to a sequential
/// left fold regardless of arrival order.
///
/// A merge or process error poisons the merger: held fragments are
/// dropped, later pushes are discarded, and [`StreamMerger::finish`]
/// reports the first error.
pub struct StreamMerger<T, E> {
    /// Maximal contiguous runs, keyed by start index, holding
    /// `(end_exclusive, folded_fragment)`.
    runs: BTreeMap<usize, (usize, T)>,
    error: Option<E>,
    /// Fragments temporarily owned by workers merging outside the
    /// lock ([`StreamMerger::push_shared`]); counted into the peak so
    /// the bounded-memory claim covers in-flight merges too.
    detached: usize,
    peak_runs: usize,
    merged: u64,
    merge_time: Duration,
}

impl<T, E> Default for StreamMerger<T, E> {
    fn default() -> Self {
        StreamMerger::new()
    }
}

impl<T, E> StreamMerger<T, E> {
    /// An empty merger.
    pub fn new() -> Self {
        StreamMerger {
            runs: BTreeMap::new(),
            error: None,
            detached: 0,
            peak_runs: 0,
            merged: 0,
            merge_time: Duration::ZERO,
        }
    }

    /// Folds fragment `index` in, coalescing with the runs ending at
    /// `index` and starting at `index + 1` if present.
    pub fn push<M>(&mut self, index: usize, frag: T, merge: M)
    where
        M: Fn(T, T) -> std::result::Result<T, E>,
    {
        if self.error.is_some() {
            return;
        }
        let started = Instant::now();
        let mut start = index;
        let mut end = index + 1;
        let mut frag = frag;
        // Left neighbour: the run ending exactly at `index`.
        if let Some((&ls, &(le, _))) = self.runs.range(..index).next_back() {
            if le == index {
                let (_, (_, left)) = self.runs.remove_entry(&ls).expect("run exists");
                self.merged += 1;
                match merge(left, frag) {
                    Ok(f) => {
                        frag = f;
                        start = ls;
                    }
                    Err(e) => {
                        self.poison(e);
                        self.merge_time += started.elapsed();
                        return;
                    }
                }
            }
        }
        // Right neighbour: the run starting exactly at `end`.
        if let Some((end_right, right)) = self.runs.remove(&end) {
            self.merged += 1;
            match merge(frag, right) {
                Ok(f) => {
                    frag = f;
                    end = end_right;
                }
                Err(e) => {
                    self.poison(e);
                    self.merge_time += started.elapsed();
                    return;
                }
            }
        }
        self.runs.insert(start, (end, frag));
        self.peak_runs = self.peak_runs.max(self.runs.len() + self.detached);
        self.merge_time += started.elapsed();
    }

    /// [`StreamMerger::push`] for a merger shared across pool workers:
    /// the lock is held only to detach adjacent runs and to reinsert
    /// the result — the `merge` calls themselves run **outside** the
    /// lock, so one expensive merge never stalls other workers from
    /// folding their own fragments or claiming the next task. The
    /// loop re-checks for new neighbours after every merge round
    /// (another worker may have completed the adjacent run meanwhile),
    /// so runs still coalesce maximally.
    pub fn push_shared<M>(this: &Mutex<Self>, index: usize, frag: T, merge: M)
    where
        M: Fn(T, T) -> std::result::Result<T, E>,
    {
        let mut start = index;
        let mut end = index + 1;
        let mut frag = frag;
        let mut merges = 0u64;
        let mut spent = Duration::ZERO;
        loop {
            let mut m = recover(this.lock());
            if m.error.is_some() {
                m.merged += merges;
                m.merge_time += spent;
                return; // poisoned: drop the fragment
            }
            // Detach the adjacent runs, if any, under the lock.
            let left = match m.runs.range(..start).next_back() {
                Some((&ls, &(le, _))) if le == start => {
                    let (_, (_, f)) = m.runs.remove_entry(&ls).expect("run exists");
                    Some((ls, f))
                }
                _ => None,
            };
            let right = m.runs.remove(&end);
            if left.is_none() && right.is_none() {
                m.runs.insert(start, (end, frag));
                m.merged += merges;
                m.merge_time += spent;
                m.peak_runs = m.peak_runs.max(m.runs.len() + m.detached);
                return;
            }
            // Count every live fragment this worker now owns — its
            // own plus each detached neighbour — so the observable
            // peak honestly covers in-flight merges.
            let owned = 1 + usize::from(left.is_some()) + usize::from(right.is_some());
            m.detached += owned;
            m.peak_runs = m.peak_runs.max(m.runs.len() + m.detached);
            drop(m);

            // Merge outside the lock.
            let started = Instant::now();
            let merged: std::result::Result<T, E> = (|| {
                let mut cur = frag;
                if let Some((ls, lf)) = left {
                    merges += 1;
                    cur = merge(lf, cur)?;
                    start = ls;
                }
                if let Some((re, rf)) = right {
                    merges += 1;
                    cur = merge(cur, rf)?;
                    end = re;
                }
                Ok(cur)
            })();
            spent += started.elapsed();
            let mut m = recover(this.lock());
            m.detached -= owned;
            match merged {
                // Loop: new neighbours may have landed while we merged.
                Ok(f) => frag = f,
                Err(e) => {
                    m.merged += merges;
                    m.merge_time += spent;
                    m.poison(e);
                    return;
                }
            }
        }
    }

    /// Poisons the merger with an error (used for process-phase
    /// failures too, so the first error of a run wins and fragments
    /// stop accumulating).
    pub fn poison(&mut self, e: E) {
        self.runs.clear();
        self.error.get_or_insert(e);
    }

    /// True when a poison error is pending.
    pub fn is_poisoned(&self) -> bool {
        self.error.is_some()
    }

    /// Largest number of live runs (fragments) ever held — the bounded
    /// memory claim of the streaming scan, observable.
    pub fn peak_runs(&self) -> usize {
        self.peak_runs
    }

    /// Number of pairwise merges performed.
    pub fn merges(&self) -> u64 {
        self.merged
    }

    /// Wall time spent inside `merge` calls (and run bookkeeping).
    pub fn merge_time(&self) -> Duration {
        self.merge_time
    }

    /// Finishes the fold. With every index `0..n` pushed exactly once
    /// this yields the single folded fragment (`None` when nothing was
    /// pushed); a pending error wins over any partial state.
    pub fn finish(mut self) -> std::result::Result<Option<T>, E> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        debug_assert!(
            self.runs.len() <= 1,
            "finish with {} disjoint runs — an index was never pushed",
            self.runs.len()
        );
        Ok(self.runs.into_iter().next().map(|(_, (_, f))| f))
    }
}

/// Runs `process` over every block on up to `threads` workers of
/// `pool`, folding the per-block fragments incrementally in block
/// order with `merge` as completions arrive (see [`StreamMerger`]).
/// Returns `Ok(None)` for an empty block list.
///
/// Workers poll `token` (when given) before each block, so a
/// cancelled or past-deadline scan stops within one in-flight block
/// per thread. Pool faults — a task panic, an interruption — convert
/// into `E` via its `From<JobFault>` impl, so callers see one error
/// channel for process errors, merge errors and execution faults
/// alike.
pub fn run_blocks_on<T, E, P, M>(
    pool: &WorkerPool,
    blocks: &[Block],
    threads: usize,
    token: Option<&CancelToken>,
    process: P,
    merge: M,
) -> (std::result::Result<Option<T>, E>, Timings)
where
    T: Send,
    E: Send + From<JobFault>,
    P: Fn(Block) -> std::result::Result<T, E> + Sync,
    M: Fn(T, T) -> std::result::Result<T, E> + Sync,
{
    let threads = resolve_threads(threads);
    let mut timings = Timings::default();

    // Processing phase: the pool's job cursor is the work queue. Each
    // completing task folds its fragment straight into the shared
    // merger, so merging overlaps processing on other workers and
    // fragments never pile up.
    let merger: Mutex<StreamMerger<T, E>> = Mutex::new(StreamMerger::new());
    let started = Instant::now();
    let fault = pool.run_cancellable(blocks.len(), threads, token, |i| {
        crate::fault_point!("executor.block");
        match process(blocks[i]) {
            Ok(frag) => StreamMerger::push_shared(&merger, i, frag, &merge),
            Err(e) => recover(merger.lock()).poison(e),
        }
    });
    let elapsed = started.elapsed();
    let merger = recover(merger.into_inner());
    // Attribution: merges ran inside the same wall interval, possibly
    // concurrently on several workers, so the summed merge time is
    // worker-time and can exceed the wall clock. Clamp it so the
    // reported phases always partition the actual elapsed wall time
    // (`total()` stays meaningful for figures and amortisation
    // ratios).
    timings.merge = merger.merge_time().min(elapsed);
    timings.process = elapsed - timings.merge;
    // A pool fault outranks the merger's contents: an interrupted or
    // panicked job has holes, so its partial fold must not be
    // finished (or even asserted on).
    let result = match fault {
        Err(f) => Err(E::from(f)),
        Ok(()) => merger.finish(),
    };
    (result, timings)
}

/// [`run_blocks_on`] against the process-wide shared pool — the
/// standalone API for callers without an engine. Not cancellable;
/// build an [`crate::Engine`] for token-carrying execution.
pub fn run_blocks<T, E, P, M>(
    blocks: &[Block],
    threads: usize,
    process: P,
    merge: M,
) -> (std::result::Result<Option<T>, E>, Timings)
where
    T: Send,
    E: Send + From<JobFault>,
    P: Fn(Block) -> std::result::Result<T, E> + Sync,
    M: Fn(T, T) -> std::result::Result<T, E> + Sync,
{
    run_blocks_on(WorkerPool::global(), blocks, threads, None, process, merge)
}

/// Runs `work` over the indices `0..n` on up to `threads` workers of
/// `pool`, collecting outputs in index order. A simpler variant of
/// [`run_blocks_on`] for partition-parallel stages (the join pipeline
/// fans out over partitions, not blocks). Returns the structured
/// fault when a task panicked or `token` tripped.
pub fn run_indexed_on<T, P>(
    pool: &WorkerPool,
    n: usize,
    threads: usize,
    token: Option<&CancelToken>,
    work: P,
) -> Result<Vec<T>, JobFault>
where
    T: Send,
    P: Fn(usize) -> T + Sync,
{
    pool.run_collect_cancellable(n, resolve_threads(threads), token, work)
}

/// [`run_indexed_on`] against the process-wide shared pool.
pub fn run_indexed<T, P>(n: usize, threads: usize, work: P) -> Result<Vec<T>, JobFault>
where
    T: Send,
    P: Fn(usize) -> T + Sync,
{
    run_indexed_on(WorkerPool::global(), n, threads, None, work)
}

/// Runs `work(outer, inner)` over the full `outer × inner` grid as
/// ONE flattened job space, collecting results outer-major. The batch
/// join stage fans out over (query, partition) pairs this way instead
/// of running per-query passes back to back: a query whose partitions
/// are few or cheap no longer leaves workers idle while its
/// predecessor finishes, because every worker drains one shared
/// cursor over all pairs. Returns the structured fault when a task
/// panicked or `token` tripped mid-grid.
pub fn run_grid_on<T, P>(
    pool: &WorkerPool,
    outer: usize,
    inner: usize,
    threads: usize,
    token: Option<&CancelToken>,
    work: P,
) -> Result<Vec<Vec<T>>, JobFault>
where
    T: Send,
    P: Fn(usize, usize) -> T + Sync,
{
    if outer == 0 || inner == 0 {
        return Ok((0..outer).map(|_| Vec::new()).collect());
    }
    let mut flat =
        pool.run_collect_cancellable(outer * inner, resolve_threads(threads), token, |i| {
            work(i / inner, i % inner)
        })?;
    // Split rows off the back so each split moves only one row, not
    // the whole remaining tail.
    let mut out = Vec::with_capacity(outer);
    for _ in 0..outer {
        let row = flat.split_off(flat.len() - inner);
        out.push(row);
    }
    out.reverse();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::Interrupt;
    use atgis_formats::fixed_blocks;

    /// Test error: a user-side message or a pool fault, so the tests
    /// can distinguish the two channels structurally.
    #[derive(Debug, PartialEq)]
    enum TErr {
        Msg(&'static str),
        Fault(JobFault),
    }

    impl From<JobFault> for TErr {
        fn from(f: JobFault) -> Self {
            TErr::Fault(f)
        }
    }

    #[test]
    fn sums_blocks_in_order() {
        let blocks = fixed_blocks(100, 10);
        for threads in [1, 2, 4, 8] {
            let (result, _) = run_blocks(
                &blocks,
                threads,
                |b| Ok::<_, JobFault>(vec![b.index]),
                |mut a, b| {
                    a.extend(b);
                    Ok(a)
                },
            );
            let merged = result.unwrap().unwrap();
            assert_eq!(merged, (0..10).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_means_machine_parallelism() {
        assert_eq!(resolve_threads(0), available_parallelism());
        assert_eq!(resolve_threads(3), 3);
        let blocks = fixed_blocks(50, 5);
        let (result, _) = run_blocks(&blocks, 0, |b| Ok::<_, JobFault>(b.len()), |a, b| Ok(a + b));
        assert_eq!(result.unwrap(), Some(50));
    }

    #[test]
    fn empty_blocks_yield_none() {
        let (result, _) = run_blocks(&[], 4, |_| Ok::<_, JobFault>(0u64), |a, b| Ok(a + b));
        assert_eq!(result.unwrap(), None);
    }

    #[test]
    fn process_errors_propagate() {
        let blocks = fixed_blocks(10, 5);
        let (result, _) = run_blocks(
            &blocks,
            2,
            |b| {
                if b.index == 3 {
                    Err(TErr::Msg("boom"))
                } else {
                    Ok(b.index)
                }
            },
            |a, _| Ok(a),
        );
        assert_eq!(result.unwrap_err(), TErr::Msg("boom"));
    }

    #[test]
    fn merge_errors_propagate() {
        let blocks = fixed_blocks(10, 5);
        // Merges coalesce adjacent runs in completion order: make the
        // failure reachable under any adjacency by failing whenever
        // block 2 is involved.
        let (result, _) = run_blocks(
            &blocks,
            2,
            |b| Ok(vec![b.index]),
            |a: Vec<usize>, b| {
                if a.contains(&2) || b.contains(&2) {
                    Err(TErr::Msg("merge fail"))
                } else {
                    Ok(a.into_iter().chain(b).collect())
                }
            },
        );
        assert_eq!(result.unwrap_err(), TErr::Msg("merge fail"));
    }

    #[test]
    fn task_panics_surface_as_faults_not_pool_death() {
        let pool = WorkerPool::new(2);
        let blocks = fixed_blocks(100, 10);
        let (result, _) = run_blocks_on(
            &pool,
            &blocks,
            3,
            None,
            |b| {
                if b.index == 4 {
                    panic!("process blew up");
                }
                Ok::<_, TErr>(b.index)
            },
            |a, _| Ok(a),
        );
        assert_eq!(
            result.unwrap_err(),
            TErr::Fault(JobFault::Panicked("process blew up".to_string()))
        );
        // The same pool still serves the next scan.
        let (ok, _) = run_blocks_on(
            &pool,
            &blocks,
            3,
            None,
            |b| Ok::<_, JobFault>(b.len()),
            |a, b| Ok(a + b),
        );
        assert_eq!(ok.unwrap(), Some(100));
    }

    #[test]
    fn cancelled_scan_interrupts_instead_of_finishing() {
        let pool = WorkerPool::new(2);
        let blocks = fixed_blocks(100, 10);
        let token = CancelToken::new();
        token.cancel();
        let (result, _) = run_blocks_on(
            &pool,
            &blocks,
            3,
            Some(&token),
            |b| Ok::<_, TErr>(b.len()),
            |a, b| Ok(a + b),
        );
        assert_eq!(
            result.unwrap_err(),
            TErr::Fault(JobFault::Interrupted(Interrupt::Cancelled))
        );
    }

    #[test]
    fn stream_merger_folds_out_of_order_pushes_in_index_order() {
        // Every permutation of 6 fragments must fold to the same
        // left-to-right concatenation.
        let perms: Vec<Vec<usize>> = vec![
            (0..6).collect(),
            (0..6).rev().collect(),
            vec![3, 0, 5, 2, 4, 1],
            vec![1, 3, 5, 0, 2, 4],
        ];
        for perm in perms {
            let mut m: StreamMerger<Vec<usize>, ()> = StreamMerger::new();
            for &i in &perm {
                m.push(i, vec![i], |mut a, b| {
                    a.extend(b);
                    Ok(a)
                });
            }
            assert_eq!(
                m.finish().unwrap().unwrap(),
                vec![0, 1, 2, 3, 4, 5],
                "{perm:?}"
            );
        }
    }

    #[test]
    fn stream_merger_memory_is_bounded_by_gaps() {
        // Pushing evens then odds: after the evens, runs == 3 gaps + …
        // — the peak equals the maximal number of disjoint runs, not
        // the fragment count.
        let mut m: StreamMerger<u64, ()> = StreamMerger::new();
        let n = 64usize;
        for i in (0..n).step_by(2) {
            m.push(i, 1, |a, b| Ok(a + b));
        }
        assert_eq!(m.peak_runs(), n / 2);
        for i in (1..n).step_by(2) {
            m.push(i, 1, |a, b| Ok(a + b));
        }
        // Coalescing kept the peak at the even-phase level.
        assert_eq!(m.peak_runs(), n / 2);
        assert_eq!(m.finish().unwrap(), Some(n as u64));
    }

    #[test]
    fn stream_merger_poison_discards_fragments() {
        let mut m: StreamMerger<u64, &'static str> = StreamMerger::new();
        m.push(0, 7, |a, b| Ok(a + b));
        m.poison("boom");
        assert!(m.is_poisoned());
        m.push(1, 9, |a, b| Ok(a + b)); // dropped
        assert_eq!(m.finish().unwrap_err(), "boom");
    }

    #[test]
    fn incremental_merge_agrees_with_left_fold_for_associative_ops() {
        for n in 0..24usize {
            let blocks = fixed_blocks(n.max(1) * 10, n.max(1));
            let (result, _) = run_blocks(
                &blocks,
                3,
                |b| Ok::<_, JobFault>(vec![b.index]),
                |mut a, b| {
                    a.extend(b);
                    Ok(a)
                },
            );
            let merged = result.unwrap().unwrap();
            assert_eq!(merged, (0..blocks_len(n)).collect::<Vec<_>>(), "n={n}");
        }

        fn blocks_len(n: usize) -> usize {
            fixed_blocks(n.max(1) * 10, n.max(1)).len()
        }
    }

    #[test]
    fn indexed_execution_preserves_order() {
        for threads in [1, 3, 7] {
            let out = run_indexed(20, threads, |i| i * i).unwrap();
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn grid_execution_is_outer_major_and_complete() {
        let pool = WorkerPool::global();
        for threads in [1, 2, 7] {
            let grid = run_grid_on(pool, 3, 5, threads, None, |o, i| (o, i, o * 100 + i)).unwrap();
            assert_eq!(grid.len(), 3);
            for (o, row) in grid.iter().enumerate() {
                assert_eq!(row.len(), 5);
                for (i, &(ro, ri, v)) in row.iter().enumerate() {
                    assert_eq!((ro, ri, v), (o, i, o * 100 + i), "threads={threads}");
                }
            }
        }
        assert_eq!(
            run_grid_on(pool, 0, 5, 2, None, |_, _| 0u8).unwrap().len(),
            0
        );
        let empty_inner = run_grid_on(pool, 4, 0, 2, None, |_, _| 0u8).unwrap();
        assert_eq!(empty_inner.len(), 4);
        assert!(empty_inner.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn grid_cancellation_returns_the_fault() {
        let pool = WorkerPool::global();
        let token = CancelToken::new();
        token.cancel();
        let fault = run_grid_on(pool, 3, 5, 2, Some(&token), |_, _| 0u8).unwrap_err();
        assert_eq!(fault, JobFault::Interrupted(Interrupt::Cancelled));
    }

    #[test]
    fn timings_are_recorded() {
        let blocks = fixed_blocks(1000, 4);
        let (_, t) = run_blocks(
            &blocks,
            2,
            |b| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                Ok::<_, JobFault>(b.len())
            },
            |a, b| Ok(a + b),
        );
        assert!(t.process >= std::time::Duration::from_millis(1));
    }
}
