//! The split → processing → merge execution phases (Fig. 5).
//!
//! "After a data block is formed, it is placed in a work queue for the
//! processing phase. … As ATs make the tasks independent, it can be
//! scaled to many parallel threads. The merge phase combines all of
//! the partial results from the processing phase." Each worker thread
//! runs the *entire* pipeline for its blocks (§1: "each thread
//! executes the entire pipeline, for separate blocks of the input
//! data"); only fragments cross thread boundaries.
//!
//! Two deliberate deviations from the paper's prototype, both for
//! sustained-traffic throughput:
//!
//! * threads are **persistent** ([`crate::pool::WorkerPool`]) instead
//!   of being re-created per query, and result slots are pre-sized and
//!   written lock-free (the work-queue cursor hands each slot exactly
//!   one writer);
//! * the merge phase is a **balanced tree fold** over adjacent
//!   fragments rather than a sequential left fold — valid because ⊗ is
//!   associative (§3.2), parallel across pool workers, and shaped only
//!   by the fragment count so results are bit-identical across thread
//!   counts.

use crate::pool::{available_parallelism, WorkerPool};
use crate::stats::Timings;
use atgis_formats::Block;
use std::sync::Mutex;
use std::time::Instant;

/// Resolves a configured thread count: `0` means "match the machine"
/// (`std::thread::available_parallelism`), anything else is taken
/// as-is. Guards against the oversubscription of spawning more workers
/// than there are result slots — the pool additionally clamps per-job
/// concurrency to the task count.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        available_parallelism()
    } else {
        threads
    }
}

/// Runs `process` over every block on up to `threads` workers of
/// `pool`, then folds the per-block fragments as a balanced tree in
/// block order with `merge`. Returns `Ok(None)` for an empty block
/// list.
pub fn run_blocks_on<T, E, P, M>(
    pool: &WorkerPool,
    blocks: &[Block],
    threads: usize,
    process: P,
    merge: M,
) -> (std::result::Result<Option<T>, E>, Timings)
where
    T: Send,
    E: Send,
    P: Fn(Block) -> std::result::Result<T, E> + Sync,
    M: Fn(T, T) -> std::result::Result<T, E> + Sync,
{
    let threads = resolve_threads(threads);
    let mut timings = Timings::default();

    // Processing phase: the pool's job cursor is the work queue;
    // results land in pre-sized lock-free slots.
    let started = Instant::now();
    let results = pool.run_collect(blocks.len(), threads, |i| process(blocks[i]));
    timings.process = started.elapsed();

    // Merge phase: balanced pairwise tree over adjacent fragments,
    // merged in parallel level by level. The tree's shape depends only
    // on the block count, so thread count cannot perturb results.
    let started = Instant::now();
    let mut layer: Vec<T> = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(f) => layer.push(f),
            Err(e) => {
                timings.merge = started.elapsed();
                return (Err(e), timings);
            }
        }
    }
    let merged = tree_merge(pool, threads, layer, &merge);
    timings.merge = started.elapsed();
    (merged, timings)
}

/// A pair of adjacent fragments awaiting merge; the `Option` lets the
/// owning parallel task take them out of the shared vector.
type MergeCell<T> = Mutex<Option<(T, Option<T>)>>;

/// One level-synchronous round of pairwise merges until a single
/// fragment remains.
fn tree_merge<T, E, M>(
    pool: &WorkerPool,
    threads: usize,
    mut layer: Vec<T>,
    merge: &M,
) -> std::result::Result<Option<T>, E>
where
    T: Send,
    E: Send,
    M: Fn(T, T) -> std::result::Result<T, E> + Sync,
{
    while layer.len() > 1 {
        // Move pairs into cells so parallel tasks can take ownership.
        let mut cells: Vec<MergeCell<T>> = Vec::with_capacity(layer.len() / 2 + 1);
        let mut it = layer.into_iter();
        while let Some(a) = it.next() {
            cells.push(Mutex::new(Some((a, it.next()))));
        }
        let merged = pool.run_collect(cells.len(), threads, |i| {
            let (a, b) = cells[i]
                .lock()
                .expect("merge cell poisoned")
                .take()
                .expect("each cell taken once");
            match b {
                Some(b) => merge(a, b),
                None => Ok(a), // Odd fragment carries to the next level.
            }
        });
        layer = Vec::with_capacity(merged.len());
        for r in merged {
            layer.push(r?);
        }
    }
    Ok(layer.pop())
}

/// [`run_blocks_on`] against the process-wide shared pool — the
/// standalone API for callers without an engine.
pub fn run_blocks<T, E, P, M>(
    blocks: &[Block],
    threads: usize,
    process: P,
    merge: M,
) -> (std::result::Result<Option<T>, E>, Timings)
where
    T: Send,
    E: Send,
    P: Fn(Block) -> std::result::Result<T, E> + Sync,
    M: Fn(T, T) -> std::result::Result<T, E> + Sync,
{
    run_blocks_on(WorkerPool::global(), blocks, threads, process, merge)
}

/// Runs `work` over the indices `0..n` on up to `threads` workers of
/// `pool`, collecting outputs in index order. A simpler variant of
/// [`run_blocks_on`] for partition-parallel stages (the join pipeline
/// fans out over partitions, not blocks).
pub fn run_indexed_on<T, P>(pool: &WorkerPool, n: usize, threads: usize, work: P) -> Vec<T>
where
    T: Send,
    P: Fn(usize) -> T + Sync,
{
    pool.run_collect(n, resolve_threads(threads), work)
}

/// [`run_indexed_on`] against the process-wide shared pool.
pub fn run_indexed<T, P>(n: usize, threads: usize, work: P) -> Vec<T>
where
    T: Send,
    P: Fn(usize) -> T + Sync,
{
    run_indexed_on(WorkerPool::global(), n, threads, work)
}

/// Runs `work(outer, inner)` over the full `outer × inner` grid as
/// ONE flattened job space, collecting results outer-major. The batch
/// join stage fans out over (query, partition) pairs this way instead
/// of running per-query passes back to back: a query whose partitions
/// are few or cheap no longer leaves workers idle while its
/// predecessor finishes, because every worker drains one shared
/// cursor over all pairs.
pub fn run_grid_on<T, P>(
    pool: &WorkerPool,
    outer: usize,
    inner: usize,
    threads: usize,
    work: P,
) -> Vec<Vec<T>>
where
    T: Send,
    P: Fn(usize, usize) -> T + Sync,
{
    if outer == 0 || inner == 0 {
        return (0..outer).map(|_| Vec::new()).collect();
    }
    let mut flat = pool.run_collect(outer * inner, resolve_threads(threads), |i| {
        work(i / inner, i % inner)
    });
    // Split rows off the back so each split moves only one row, not
    // the whole remaining tail.
    let mut out = Vec::with_capacity(outer);
    for _ in 0..outer {
        let row = flat.split_off(flat.len() - inner);
        out.push(row);
    }
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgis_formats::fixed_blocks;

    #[test]
    fn sums_blocks_in_order() {
        let blocks = fixed_blocks(100, 10);
        for threads in [1, 2, 4, 8] {
            let (result, _) = run_blocks(
                &blocks,
                threads,
                |b| Ok::<_, ()>(vec![b.index]),
                |mut a, b| {
                    a.extend(b);
                    Ok(a)
                },
            );
            let merged = result.unwrap().unwrap();
            assert_eq!(merged, (0..10).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_means_machine_parallelism() {
        assert_eq!(resolve_threads(0), available_parallelism());
        assert_eq!(resolve_threads(3), 3);
        let blocks = fixed_blocks(50, 5);
        let (result, _) = run_blocks(
            &blocks,
            0,
            |b| Ok::<_, ()>(b.len()),
            |a, b| Ok(a + b),
        );
        assert_eq!(result.unwrap(), Some(50));
    }

    #[test]
    fn empty_blocks_yield_none() {
        let (result, _) = run_blocks(
            &[],
            4,
            |_| Ok::<_, ()>(0u64),
            |a, b| Ok(a + b),
        );
        assert_eq!(result.unwrap(), None);
    }

    #[test]
    fn process_errors_propagate() {
        let blocks = fixed_blocks(10, 5);
        let (result, _) = run_blocks(
            &blocks,
            2,
            |b| {
                if b.index == 3 {
                    Err("boom")
                } else {
                    Ok(b.index)
                }
            },
            |a, _| Ok(a),
        );
        assert_eq!(result.unwrap_err(), "boom");
    }

    #[test]
    fn merge_errors_propagate() {
        let blocks = fixed_blocks(10, 5);
        // Merge is a tree fold: make the failure reachable under any
        // parenthesisation by failing whenever block 2 is involved.
        let (result, _) = run_blocks(
            &blocks,
            2,
            |b| Ok(vec![b.index]),
            |a: Vec<usize>, b| {
                if a.contains(&2) || b.contains(&2) {
                    Err("merge fail")
                } else {
                    Ok(a.into_iter().chain(b).collect())
                }
            },
        );
        assert_eq!(result.unwrap_err(), "merge fail");
    }

    #[test]
    fn tree_merge_agrees_with_left_fold_for_associative_ops() {
        for n in 0..24usize {
            let blocks = fixed_blocks(n.max(1) * 10, n.max(1));
            let (result, _) = run_blocks(
                &blocks,
                3,
                |b| Ok::<_, ()>(vec![b.index]),
                |mut a, b| {
                    a.extend(b);
                    Ok(a)
                },
            );
            let merged = result.unwrap().unwrap();
            assert_eq!(merged, (0..blocks_len(n)).collect::<Vec<_>>(), "n={n}");
        }

        fn blocks_len(n: usize) -> usize {
            fixed_blocks(n.max(1) * 10, n.max(1)).len()
        }
    }

    #[test]
    fn indexed_execution_preserves_order() {
        for threads in [1, 3, 7] {
            let out = run_indexed(20, threads, |i| i * i);
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn grid_execution_is_outer_major_and_complete() {
        let pool = WorkerPool::global();
        for threads in [1, 2, 7] {
            let grid = run_grid_on(pool, 3, 5, threads, |o, i| (o, i, o * 100 + i));
            assert_eq!(grid.len(), 3);
            for (o, row) in grid.iter().enumerate() {
                assert_eq!(row.len(), 5);
                for (i, &(ro, ri, v)) in row.iter().enumerate() {
                    assert_eq!((ro, ri, v), (o, i, o * 100 + i), "threads={threads}");
                }
            }
        }
        assert_eq!(run_grid_on(pool, 0, 5, 2, |_, _| 0u8).len(), 0);
        let empty_inner = run_grid_on(pool, 4, 0, 2, |_, _| 0u8);
        assert_eq!(empty_inner.len(), 4);
        assert!(empty_inner.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn timings_are_recorded() {
        let blocks = fixed_blocks(1000, 4);
        let (_, t) = run_blocks(
            &blocks,
            2,
            |b| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                Ok::<_, ()>(b.len())
            },
            |a, b| Ok(a + b),
        );
        assert!(t.process >= std::time::Duration::from_millis(1));
    }
}
