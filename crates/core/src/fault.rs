//! Fault injection for robustness testing (the `fault-injection`
//! feature): deterministic, seeded fault sources that drive the
//! engine's failure domains — transient I/O errors through the
//! streaming retry path, task panics through the pool's isolation
//! machinery, slow regions through the cancellation latency bound,
//! and chunk-boundary cancellation through the cooperative token.
//!
//! Everything here is deterministic from a seed (an [`XorShift64`]
//! generator — no external RNG dependency), so a failing run's seed
//! reproduces it exactly. The harness has two halves:
//!
//! * [`FaultyChunkSource`] wraps any [`ChunkSource`] and injects
//!   transient I/O errors and slow chunks at configurable rates.
//!   Consecutive injected errors are capped **below** the streaming
//!   driver's retry bound, so an un-cancelled query over a faulty
//!   source always completes — bit-identically to the clean run —
//!   while the injected faults show up in
//!   [`crate::StreamStats::retries`].
//! * A process-wide **failpoint registry**: named hooks compiled into
//!   hot paths (e.g. the executor's per-block task) that do nothing
//!   until a test arms them with a [`FaultAction`] — panic every
//!   time, panic with a seeded probability, or sleep. The disarmed
//!   fast path is a single relaxed atomic load.
//!
//! Nothing in this module exists unless the crate is built with
//! `--features fault-injection`; production builds compile the hooks
//! out entirely.

use crate::cancel::CancelToken;
use crate::pool::recover;
use crate::stream::ChunkSource;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// A tiny deterministic PRNG (xorshift64*): good enough mixing for
/// fault scheduling, zero dependencies, identical sequences on every
/// platform.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator (a zero seed is remapped — xorshift has a
    /// zero fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// `true` with probability `per_mille`/1000.
    pub fn chance(&mut self, per_mille: u16) -> bool {
        (self.next_u64() % 1000) < per_mille as u64
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

// ---------------------------------------------------------------------
// Failpoint registry
// ---------------------------------------------------------------------

/// What an armed failpoint does when its hook fires.
#[derive(Debug, Clone)]
pub enum FaultAction {
    /// Panic with this message on every hit — drives the pool's
    /// panic-isolation path deterministically.
    Panic(String),
    /// Panic with probability `per_mille`/1000 per hit, from a seeded
    /// per-failpoint RNG — randomized parse-task panics.
    PanicWithChance {
        /// Probability per hit, in 1/1000ths.
        per_mille: u16,
        /// RNG seed; the hit sequence is deterministic given it.
        seed: u64,
        /// Panic payload when the roll hits.
        message: String,
    },
    /// Sleep this long on every hit — slow regions, for cancellation
    /// latency tests.
    Sleep(Duration),
}

struct ArmedPoint {
    action: FaultAction,
    rng: XorShift64,
    hits: u64,
}

fn registry() -> &'static Mutex<HashMap<String, ArmedPoint>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, ArmedPoint>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Armed-failpoint count: the disarmed fast path of [`fire`] is this
/// single relaxed load.
static ARMED: AtomicUsize = AtomicUsize::new(0);

/// Arms failpoint `name` with `action` (replacing any previous
/// arming).
pub fn arm(name: &str, action: FaultAction) {
    let seed = match &action {
        FaultAction::PanicWithChance { seed, .. } => *seed,
        _ => 1,
    };
    let mut reg = recover(registry().lock());
    if reg
        .insert(
            name.to_string(),
            ArmedPoint {
                action,
                rng: XorShift64::new(seed),
                hits: 0,
            },
        )
        .is_none()
    {
        ARMED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Disarms failpoint `name`; returns how many times it fired while
/// armed (attempted hits, including probabilistic misses).
pub fn disarm(name: &str) -> u64 {
    let mut reg = recover(registry().lock());
    match reg.remove(name) {
        Some(p) => {
            ARMED.fetch_sub(1, Ordering::Relaxed);
            p.hits
        }
        None => 0,
    }
}

/// Disarms every failpoint (test teardown).
pub fn disarm_all() {
    let mut reg = recover(registry().lock());
    let n = reg.len();
    reg.clear();
    ARMED.fetch_sub(n, Ordering::Relaxed);
}

/// The hook compiled into instrumented hot paths (via the
/// `fault_point!` macro): a no-op unless `name` is armed. Panics
/// raised here unwind into the surrounding task body, exactly like a
/// real bug in the task would.
pub fn fire(name: &str) {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return;
    }
    enum Fire {
        Panic(String),
        Sleep(Duration),
    }
    let decision = {
        let mut reg = recover(registry().lock());
        let Some(point) = reg.get_mut(name) else {
            return;
        };
        point.hits += 1;
        match &point.action {
            FaultAction::Panic(m) => Some(Fire::Panic(m.clone())),
            FaultAction::PanicWithChance {
                per_mille, message, ..
            } => {
                let p = *per_mille;
                let m = message.clone();
                if point.rng.chance(p) {
                    Some(Fire::Panic(m))
                } else {
                    None
                }
            }
            FaultAction::Sleep(d) => Some(Fire::Sleep(*d)),
        }
        // The registry lock drops here, before any panic: a firing
        // failpoint must not poison the registry other tests share.
    };
    match decision {
        Some(Fire::Panic(m)) => panic!("{m}"),
        Some(Fire::Sleep(d)) => std::thread::sleep(d),
        None => {}
    }
}

// ---------------------------------------------------------------------
// Chunk-source wrappers
// ---------------------------------------------------------------------

/// Upper bound on consecutive injected transient errors — strictly
/// below the streaming driver's retry bound, so injection alone can
/// never fail an un-cancelled stream.
const MAX_CONSECUTIVE_INJECTED: u32 = 2;

/// A [`ChunkSource`] wrapper that injects deterministic, seeded
/// transient I/O errors and slow chunks. The payload bytes are never
/// altered — an un-cancelled query over a faulty source completes
/// bit-identically to the clean run, with the injected faults visible
/// in [`crate::StreamStats::retries`].
pub struct FaultyChunkSource<S> {
    inner: S,
    rng: XorShift64,
    transient_per_mille: u16,
    slow_per_mille: u16,
    slow: Duration,
    consecutive_errors: u32,
    injected_errors: u64,
    injected_slow: u64,
}

impl<S: ChunkSource> FaultyChunkSource<S> {
    /// Wraps `inner` with the default fault rates: 20% transient
    /// errors, 5% slow chunks of 1 ms.
    pub fn new(inner: S, seed: u64) -> Self {
        FaultyChunkSource {
            inner,
            rng: XorShift64::new(seed),
            transient_per_mille: 200,
            slow_per_mille: 50,
            slow: Duration::from_millis(1),
            consecutive_errors: 0,
            injected_errors: 0,
            injected_slow: 0,
        }
    }

    /// Sets the transient-error injection rate (per 1000 reads).
    pub fn with_transient_errors(mut self, per_mille: u16) -> Self {
        self.transient_per_mille = per_mille;
        self
    }

    /// Sets the slow-chunk injection rate and stall duration.
    pub fn with_slow_chunks(mut self, per_mille: u16, stall: Duration) -> Self {
        self.slow_per_mille = per_mille;
        self.slow = stall;
        self
    }

    /// Transient errors injected so far (each one forced a retry).
    pub fn injected_errors(&self) -> u64 {
        self.injected_errors
    }

    /// Slow chunks injected so far.
    pub fn injected_slow_chunks(&self) -> u64 {
        self.injected_slow
    }
}

impl<S: ChunkSource> ChunkSource for FaultyChunkSource<S> {
    fn next_chunk(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        if self.consecutive_errors < MAX_CONSECUTIVE_INJECTED
            && self.rng.chance(self.transient_per_mille)
        {
            self.consecutive_errors += 1;
            self.injected_errors += 1;
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected transient fault",
            ));
        }
        self.consecutive_errors = 0;
        if self.rng.chance(self.slow_per_mille) {
            self.injected_slow += 1;
            std::thread::sleep(self.slow);
        }
        self.inner.next_chunk()
    }

    fn size_hint(&self) -> Option<usize> {
        self.inner.size_hint()
    }
}

/// A [`ChunkSource`] wrapper that cancels a [`CancelToken`] at an
/// exact chunk boundary — the deterministic driver for
/// "cancellation at every chunk boundary never deadlocks or leaks"
/// sweeps.
pub struct CancelAfterChunks<S> {
    inner: S,
    token: CancelToken,
    after: u64,
    seen: u64,
}

impl<S: ChunkSource> CancelAfterChunks<S> {
    /// Cancels `token` immediately before reading chunk `after`
    /// (0-based): `after == 0` cancels before any byte arrives.
    pub fn new(inner: S, token: CancelToken, after: u64) -> Self {
        CancelAfterChunks {
            inner,
            token,
            after,
            seen: 0,
        }
    }
}

impl<S: ChunkSource> ChunkSource for CancelAfterChunks<S> {
    fn next_chunk(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        if self.seen == self.after {
            self.token.cancel();
        }
        self.seen += 1;
        self.inner.next_chunk()
    }

    fn size_hint(&self) -> Option<usize> {
        self.inner.size_hint()
    }
}

/// The top-level harness: one seed, reproducible faults. Prints
/// nothing itself — tests print the seed so a CI failure names its
/// reproduction.
pub struct FaultInjector {
    seed: u64,
}

impl FaultInjector {
    /// A harness deriving every fault schedule from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector { seed }
    }

    /// The harness seed (print it in tests for reproduction).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Wraps `source` in a [`FaultyChunkSource`] seeded from the
    /// harness.
    pub fn faulty_source<S: ChunkSource>(&self, source: S) -> FaultyChunkSource<S> {
        FaultyChunkSource::new(source, self.seed ^ 0xA5A5_A5A5_A5A5_A5A5)
    }

    /// Arms `name` to panic with probability `per_mille`/1000 per
    /// hit, seeded from the harness.
    pub fn arm_random_panic(&self, name: &str, per_mille: u16) {
        arm(
            name,
            FaultAction::PanicWithChance {
                per_mille,
                seed: self.seed ^ 0x5A5A_5A5A_5A5A_5A5A,
                message: format!("injected panic at {name}"),
            },
        );
    }

    /// A seeded RNG derived from the harness, for test-local
    /// randomization (chunk sizes, cancellation points).
    pub fn rng(&self) -> XorShift64 {
        XorShift64::new(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SliceChunkSource;

    #[test]
    fn xorshift_is_deterministic_and_nonzero_safe() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0, "zero seed must be remapped");
        let mut c = XorShift64::new(7);
        assert!((0..100).all(|_| c.below(10) < 10));
    }

    #[test]
    fn faulty_source_preserves_payload_and_counts_injections() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let mut src = FaultyChunkSource::new(SliceChunkSource::new(&data, 64), 1234)
            .with_transient_errors(300)
            .with_slow_chunks(0, Duration::ZERO);
        assert_eq!(src.size_hint(), Some(data.len()));
        let mut out = Vec::new();
        let mut consecutive = 0u32;
        loop {
            match src.next_chunk() {
                Ok(Some(c)) => {
                    consecutive = 0;
                    out.extend(c);
                }
                Ok(None) => break,
                Err(e) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::Interrupted);
                    consecutive += 1;
                    assert!(
                        consecutive <= MAX_CONSECUTIVE_INJECTED,
                        "injection must stay below the retry bound"
                    );
                }
            }
        }
        assert_eq!(out, data, "payload bytes are never altered");
        assert!(src.injected_errors() > 0, "rate 300‰ over 64+ reads");
    }

    #[test]
    fn failpoints_fire_only_while_armed() {
        // Unarmed: a no-op.
        fire("fault.test.unarmed");
        arm("fault.test.sleepy", FaultAction::Sleep(Duration::ZERO));
        fire("fault.test.sleepy");
        fire("fault.test.sleepy");
        assert_eq!(disarm("fault.test.sleepy"), 2);
        assert_eq!(disarm("fault.test.sleepy"), 0, "already disarmed");

        arm(
            "fault.test.bomb",
            FaultAction::Panic("fault.test.bomb fired".into()),
        );
        let p = std::panic::catch_unwind(|| fire("fault.test.bomb"));
        assert!(p.is_err(), "armed panic failpoint must panic");
        // The registry survives the panic (no poisoned lock).
        assert_eq!(disarm("fault.test.bomb"), 1);
    }

    #[test]
    fn probabilistic_failpoints_are_seeded() {
        let count_hits = |seed: u64| {
            arm(
                "fault.test.random",
                FaultAction::PanicWithChance {
                    per_mille: 500,
                    seed,
                    message: "boom".into(),
                },
            );
            let mut panics = 0;
            for _ in 0..64 {
                if std::panic::catch_unwind(|| fire("fault.test.random")).is_err() {
                    panics += 1;
                }
            }
            disarm("fault.test.random");
            panics
        };
        let a = count_hits(99);
        let b = count_hits(99);
        assert_eq!(a, b, "same seed, same panic schedule");
        assert!(a > 0 && a < 64, "500‰ should hit sometimes, not always");
    }

    #[test]
    fn cancel_after_chunks_trips_at_the_exact_boundary() {
        let data = vec![7u8; 1000];
        let token = CancelToken::new();
        let mut src = CancelAfterChunks::new(SliceChunkSource::new(&data, 100), token.clone(), 3);
        for i in 0..3 {
            assert!(src.next_chunk().unwrap().is_some());
            assert!(token.interrupted().is_none(), "not yet at boundary {i}");
        }
        let _ = src.next_chunk();
        assert!(
            token.interrupted().is_some(),
            "cancelled exactly at chunk 3"
        );
    }
}
