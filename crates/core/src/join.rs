//! The PBSM join pipeline (§4.5, Fig. 8).
//!
//! The second pipeline of a join query consumes the spatial partitions
//! produced by the first pass and emits joined pairs:
//!
//! 1. **MBR COMPARE** — per partition, find all intersecting
//!    left/right MBR pairs with a sort + sweep;
//! 2. **SORT** — buffer candidates up to a threshold, then order them
//!    by the input-file offset of the *larger* side so that objects
//!    needing re-parsing are processed adjacently and stay in memory
//!    only briefly;
//! 3. **PARSER/BUFFER** — re-parse geometries on demand from their
//!    offsets; a hash map caches the non-adjacent stream and is
//!    cleared after each sorted batch;
//! 4. **REFINE** — the exact geometry intersection test;
//! 5. duplicate elimination — objects replicated into several
//!    partitions can match repeatedly; pairs are sorted by offsets and
//!    deduplicated before the result returns (§4.5).

use crate::executor::run_indexed_on;
use crate::partition::{PartEntry, PartitionStore};
use crate::pool::WorkerPool;
use crate::result::JoinPair;
use atgis_formats::ParseError;
use atgis_geometry::relate::intersects;
use atgis_geometry::Geometry;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Re-parses one object from its offset span (format-specific; the
/// engine provides it, for OSM XML it captures the node table).
pub type Reparser<'a> = dyn Fn(u64, u32) -> Result<Geometry, ParseError> + Sync + 'a;

/// Join pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct JoinOptions {
    /// Worker threads for the partition-parallel phase.
    pub threads: usize,
    /// SORT-stage batch size: candidates per sorted block. Smaller
    /// values bound memory at the cost of repeated parsing (§4.5:
    /// "By adjusting the threshold in SORT, the number of stored
    /// objects can be reduced").
    pub sort_batch: usize,
}

impl Default for JoinOptions {
    fn default() -> Self {
        JoinOptions {
            threads: 1,
            sort_batch: 1 << 16,
        }
    }
}

/// Executes the join pipeline over every partition, returning
/// deduplicated pairs plus the time spent on duplicate elimination.
/// Runs on the process-wide shared pool; the engine uses
/// [`pbsm_join_on`] with its own persistent pool.
pub fn pbsm_join<S: PartitionStore + Sync>(
    store: &S,
    reparse: &Reparser<'_>,
    options: JoinOptions,
) -> Result<(Vec<JoinPair>, Duration), ParseError> {
    pbsm_join_on(WorkerPool::global(), store, reparse, options)
}

/// [`pbsm_join`] on a caller-supplied worker pool.
pub fn pbsm_join_on<S: PartitionStore + Sync>(
    pool: &WorkerPool,
    store: &S,
    reparse: &Reparser<'_>,
    options: JoinOptions,
) -> Result<(Vec<JoinPair>, Duration), ParseError> {
    let cells = store.num_cells();
    let per_cell: Vec<Result<Vec<JoinPair>, ParseError>> = run_indexed_on(
        pool,
        cells,
        options.threads,
        |cell| join_partition(store, cell, reparse, options.sort_batch),
    );
    let mut pairs = Vec::new();
    for r in per_cell {
        pairs.extend(r?);
    }
    // Duplicate elimination (sequential step, timed separately).
    let started = Instant::now();
    pairs.sort_unstable();
    pairs.dedup();
    let dedup = started.elapsed();
    Ok((pairs, dedup))
}

/// Joins one partition: MBR compare → sort → re-parse → refine.
fn join_partition<S: PartitionStore>(
    store: &S,
    cell: usize,
    reparse: &Reparser<'_>,
    sort_batch: usize,
) -> Result<Vec<JoinPair>, ParseError> {
    let mut lefts: Vec<PartEntry> = Vec::new();
    let mut rights: Vec<PartEntry> = Vec::new();
    store.for_each(cell, |e| {
        if e.left_side {
            lefts.push(*e);
        } else {
            rights.push(*e);
        }
    });
    if lefts.is_empty() || rights.is_empty() {
        return Ok(Vec::new());
    }

    // MBR COMPARE: sweep over min_x.
    let mut candidates = mbr_compare(&lefts, &rights);
    if candidates.is_empty() {
        return Ok(Vec::new());
    }

    // The larger side becomes the adjacent (sequentially re-parsed)
    // stream; the smaller is cached in the hash map.
    let adjacent_left = lefts.len() >= rights.len();

    let mut out = Vec::new();
    let mut start = 0;
    while start < candidates.len() {
        let end = (start + sort_batch.max(1)).min(candidates.len());
        let batch = &mut candidates[start..end];
        // SORT by the adjacent side's offset.
        if adjacent_left {
            batch.sort_unstable_by_key(|(l, _)| l.offset);
        } else {
            batch.sort_unstable_by_key(|(_, r)| r.offset);
        }
        // PARSER/BUFFER + REFINE.
        let mut cache: HashMap<u64, Geometry> = HashMap::new();
        let mut adj_geom: Option<(u64, Geometry)> = None;
        for (l, r) in batch.iter() {
            let (adj, other) = if adjacent_left { (l, r) } else { (r, l) };
            // The adjacent stream is offset-sorted: reuse the last
            // parse when consecutive candidates share an object.
            let adj_g = match &adj_geom {
                Some((off, g)) if *off == adj.offset => g.clone(),
                _ => {
                    let g = reparse(adj.offset, adj.len)?;
                    adj_geom = Some((adj.offset, g.clone()));
                    g
                }
            };
            let other_g = match cache.get(&other.offset) {
                Some(g) => g.clone(),
                None => {
                    let g = reparse(other.offset, other.len)?;
                    cache.insert(other.offset, g.clone());
                    g
                }
            };
            let (lg, rg) = if adjacent_left {
                (&adj_g, &other_g)
            } else {
                (&other_g, &adj_g)
            };
            if intersects(lg, rg) {
                out.push(JoinPair {
                    left_id: l.id,
                    right_id: r.id,
                    left_offset: l.offset,
                    right_offset: r.offset,
                });
            }
        }
        // "Once a block is processed, the hash map is cleared."
        start = end;
    }
    Ok(out)
}

/// Finds all MBR-intersecting (left, right) pairs with a
/// sort-and-sweep over min_x.
fn mbr_compare(lefts: &[PartEntry], rights: &[PartEntry]) -> Vec<(PartEntry, PartEntry)> {
    let mut ls: Vec<&PartEntry> = lefts.iter().collect();
    let mut rs: Vec<&PartEntry> = rights.iter().collect();
    let key = |e: &&PartEntry| e.mbr.min_x;
    ls.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap_or(std::cmp::Ordering::Equal));
    rs.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap_or(std::cmp::Ordering::Equal));

    let mut out = Vec::new();
    let mut ri = 0usize;
    for l in &ls {
        // Advance past rights that end before this left begins — they
        // can never match this or any later left.
        while ri < rs.len() && rs[ri].mbr.max_x < l.mbr.min_x {
            // Only safe to drop when the right also ends before every
            // later left's start; since lefts are sorted by min_x,
            // l.mbr.min_x is non-decreasing, so it is safe.
            ri += 1;
        }
        for r in &rs[ri..] {
            if r.mbr.min_x > l.mbr.max_x {
                break;
            }
            if l.mbr.intersects(&r.mbr) {
                out.push((**l, **r));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{ArrayStore, GridSpec, ListStore};
    use atgis_geometry::{Mbr, Point, Polygon};

    fn entry(id: u64, x: f64, y: f64, size: f64, left: bool) -> PartEntry {
        PartEntry {
            id,
            offset: id,
            len: 0,
            mbr: Mbr::new(x, y, x + size, y + size),
            left_side: left,
        }
    }

    /// Reparser that reconstructs a square from the entry's offset (we
    /// encode position in the id for tests).
    fn square_reparser(
        squares: HashMap<u64, Polygon>,
    ) -> impl Fn(u64, u32) -> Result<Geometry, ParseError> + Sync {
        move |offset, _len| {
            Ok(Geometry::Polygon(
                squares.get(&offset).expect("known offset").clone(),
            ))
        }
    }

    fn square_at(x: f64, y: f64, size: f64) -> Polygon {
        Polygon::from_exterior(vec![
            Point::new(x, y),
            Point::new(x + size, y),
            Point::new(x + size, y + size),
            Point::new(x, y + size),
        ])
    }

    #[test]
    fn mbr_compare_finds_all_intersections() {
        let lefts = vec![
            entry(1, 0.0, 0.0, 2.0, true),
            entry(2, 5.0, 5.0, 1.0, true),
        ];
        let rights = vec![
            entry(10, 1.0, 1.0, 2.0, false),
            entry(11, 9.0, 9.0, 1.0, false),
            entry(12, 5.5, 5.5, 0.2, false),
        ];
        let mut pairs: Vec<(u64, u64)> = mbr_compare(&lefts, &rights)
            .iter()
            .map(|(l, r)| (l.id, r.id))
            .collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 10), (2, 12)]);
    }

    #[test]
    fn mbr_compare_brute_force_agreement() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mk = |id: u64, left: bool, rng: &mut rand::rngs::StdRng| {
            entry(
                id,
                rng.gen_range(-10.0..10.0),
                rng.gen_range(-10.0..10.0),
                rng.gen_range(0.1..3.0),
                left,
            )
        };
        let lefts: Vec<PartEntry> = (0..40).map(|i| mk(i, true, &mut rng)).collect();
        let rights: Vec<PartEntry> = (100..160).map(|i| mk(i, false, &mut rng)).collect();
        let mut got: Vec<(u64, u64)> = mbr_compare(&lefts, &rights)
            .iter()
            .map(|(l, r)| (l.id, r.id))
            .collect();
        got.sort_unstable();
        let mut want = Vec::new();
        for l in &lefts {
            for r in &rights {
                if l.mbr.intersects(&r.mbr) {
                    want.push((l.id, r.id));
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got, want);
    }

    fn join_fixture<S: PartitionStore + Sync>() -> (S, HashMap<u64, Polygon>) {
        // Grid of 2 cells; squares 1 and 2 on the left side, 10-12 on
        // the right. Square 1 overlaps 10; square 2 overlaps nothing;
        // square 1 also straddles both cells to create duplicates.
        let grid = GridSpec::new(Mbr::new(0.0, 0.0, 4.0, 2.0), 2.0);
        let mut store = S::new(grid.num_cells());
        let mut squares = HashMap::new();
        let mut add = |store: &mut S, id: u64, x: f64, y: f64, size: f64, left: bool| {
            let poly = square_at(x, y, size);
            let e = PartEntry {
                id,
                offset: id,
                len: 0,
                mbr: poly.mbr(),
                left_side: left,
            };
            for cell in grid.cells_for(&e.mbr) {
                store.push(cell, e);
            }
            squares.insert(id, poly);
        };
        add(&mut store, 1, 1.5, 0.5, 1.0, true); // straddles cells 0 and 1
        add(&mut store, 2, 0.1, 1.5, 0.3, true);
        add(&mut store, 10, 2.0, 0.8, 1.0, false); // overlaps 1
        add(&mut store, 11, 3.5, 1.5, 0.4, false);
        add(&mut store, 12, 0.5, 0.1, 0.2, false);
        (store, squares)
    }

    #[test]
    fn pbsm_join_finds_pairs_and_dedups() {
        let (store, squares) = join_fixture::<ArrayStore>();
        let reparse = square_reparser(squares);
        let (pairs, _) = pbsm_join(&store, &reparse, JoinOptions::default()).unwrap();
        assert_eq!(pairs.len(), 1, "exactly one intersecting pair: {pairs:?}");
        assert_eq!((pairs[0].left_id, pairs[0].right_id), (1, 10));
    }

    #[test]
    fn list_store_join_agrees_with_array_store() {
        let (astore, squares) = join_fixture::<ArrayStore>();
        let (lstore, _) = join_fixture::<ListStore>();
        let reparse = square_reparser(squares);
        let (a, _) = pbsm_join(&astore, &reparse, JoinOptions::default()).unwrap();
        let (l, _) = pbsm_join(&lstore, &reparse, JoinOptions::default()).unwrap();
        assert_eq!(a, l);
    }

    #[test]
    fn small_sort_batches_do_not_change_results() {
        let (store, squares) = join_fixture::<ArrayStore>();
        let reparse = square_reparser(squares);
        let base = pbsm_join(&store, &reparse, JoinOptions::default())
            .unwrap()
            .0;
        for sort_batch in [1, 2, 3] {
            let got = pbsm_join(
                &store,
                &reparse,
                JoinOptions {
                    threads: 1,
                    sort_batch,
                },
            )
            .unwrap()
            .0;
            assert_eq!(got, base, "sort_batch={sort_batch}");
        }
    }

    #[test]
    fn multithreaded_join_is_deterministic() {
        let (store, squares) = join_fixture::<ArrayStore>();
        let reparse = square_reparser(squares);
        let single = pbsm_join(
            &store,
            &reparse,
            JoinOptions {
                threads: 1,
                sort_batch: 1 << 16,
            },
        )
        .unwrap()
        .0;
        let multi = pbsm_join(
            &store,
            &reparse,
            JoinOptions {
                threads: 4,
                sort_batch: 1 << 16,
            },
        )
        .unwrap()
        .0;
        assert_eq!(single, multi);
    }

    #[test]
    fn empty_sides_produce_no_pairs() {
        let store = ArrayStore::new(4);
        let reparse = square_reparser(HashMap::new());
        let (pairs, _) = pbsm_join(&store, &reparse, JoinOptions::default()).unwrap();
        assert!(pairs.is_empty());
    }
}
