//! The PBSM join pipeline (§4.5, Fig. 8).
//!
//! The second pipeline of a join query consumes the spatial partitions
//! produced by the first pass and emits joined pairs:
//!
//! 1. **MBR COMPARE** — per partition, find all intersecting
//!    left/right MBR pairs; a cost-based choice picks a sort + sweep
//!    or, for badly asymmetric sides, an STR-bulk-loaded R-tree over
//!    the smaller side probed with the larger (see
//!    [`ProbeStrategy`]);
//! 2. **SORT** — buffer candidates up to a threshold, then order them
//!    by the input-file offset of the *larger* side so that objects
//!    needing re-parsing are processed adjacently and stay in memory
//!    only briefly;
//! 3. **PARSER/BUFFER** — re-parse geometries on demand from their
//!    offsets; a hash map caches the non-adjacent stream and is
//!    cleared after each sorted batch;
//! 4. **REFINE** — the exact geometry intersection test;
//! 5. duplicate elimination — objects replicated into several
//!    partitions can match repeatedly; pairs are sorted by offsets and
//!    deduplicated before the result returns (§4.5).

use crate::cancel::CancelToken;
use crate::executor::run_indexed_on;
use crate::partition::{PartEntry, PartitionMap, PartitionStore};
use crate::pool::{recover, WorkerPool};
use crate::result::JoinPair;
use crate::stats::JoinDecisions;
use crate::Error;
use atgis_formats::ParseError;
use atgis_geometry::relate::intersects;
use atgis_geometry::{measures, DistanceModel, Geometry};
use atgis_rtree::RTree;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A sharded offset→geometry memo shared by every partition of one
/// join execution — and, in batch execution, by every *query* of one
/// batch over the same dataset: an object replicated into many
/// partitions (the adaptive map's hot-cell sub-slots, or plain cell
/// straddling) or probed by many queries is re-parsed once instead of
/// once per partition per query. Shards bound lock contention; each
/// shard clears itself at a capacity bound, keeping the §4.5
/// bounded-memory contract of the PARSER/BUFFER stage.
pub struct ReparseCache {
    shards: Vec<Mutex<HashMap<u64, Geometry>>>,
    per_shard_cap: usize,
}

impl ReparseCache {
    /// Creates a cache sized for `sort_batch`-candidate batches.
    pub fn new(sort_batch: usize) -> Self {
        let n = 16usize;
        ReparseCache {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_cap: (sort_batch / n).max(64),
        }
    }

    pub(crate) fn get_or_parse(
        &self,
        offset: u64,
        len: u32,
        reparse: &Reparser<'_>,
    ) -> Result<Geometry, ParseError> {
        let shard = &self.shards[(offset as usize) & (self.shards.len() - 1)];
        if let Some(g) = recover(shard.lock()).get(&offset) {
            return Ok(g.clone());
        }
        // Parse outside the lock; a racing duplicate parse is rare and
        // harmless (both produce the same geometry).
        let g = reparse(offset, len)?;
        let mut m = recover(shard.lock());
        if m.len() >= self.per_shard_cap {
            m.clear();
        }
        m.insert(offset, g.clone());
        Ok(g)
    }
}

/// Re-parses one object from its offset span (format-specific; the
/// engine provides it, for OSM XML it captures the node table).
pub type Reparser<'a> = dyn Fn(u64, u32) -> Result<Geometry, ParseError> + Sync + 'a;

/// How a partition entry's join side is decided.
#[derive(Debug, Clone, Copy)]
pub enum SideRule {
    /// Entries were tagged during the partition pass
    /// ([`PartEntry::left_side`]) — the single-query path, where the
    /// pass knows the query's threshold.
    Tagged,
    /// Side derived from the object id at join time (`id < threshold`
    /// is left) — the batch path, where one side-agnostic partition
    /// index serves queries with different thresholds.
    Threshold(u64),
}

impl SideRule {
    #[inline]
    fn is_left(&self, e: &PartEntry) -> bool {
        match self {
            SideRule::Tagged => e.left_side,
            SideRule::Threshold(t) => e.id < *t,
        }
    }
}

/// The per-query semantics of one join execution over a (possibly
/// shared) partition index: side resolution plus the combined query's
/// perimeter bounds. In the single-query path the bounds are enforced
/// during the partition pass (filter-before-join ordering); over a
/// shared index they move to the refinement stage, where the parsed
/// geometry is in hand anyway — the accepted pair set is identical
/// because both filters are per-object predicates.
#[derive(Debug, Clone, Copy)]
pub struct JoinSpec {
    /// Side resolution.
    pub side: SideRule,
    /// Keep left objects only when their perimeter exceeds this.
    pub min_perimeter_left: Option<f64>,
    /// Keep right objects only when their perimeter is below this.
    pub max_perimeter_right: Option<f64>,
}

impl JoinSpec {
    /// The single-query spec: sides tagged at partition time, no
    /// refine-stage filters.
    pub fn tagged() -> Self {
        JoinSpec {
            side: SideRule::Tagged,
            min_perimeter_left: None,
            max_perimeter_right: None,
        }
    }

    /// A batch spec: sides from the id threshold.
    pub fn threshold(t: u64) -> Self {
        JoinSpec {
            side: SideRule::Threshold(t),
            min_perimeter_left: None,
            max_perimeter_right: None,
        }
    }

    /// Adds the combined query's perimeter bounds.
    pub fn with_perimeter_bounds(mut self, min_left: Option<f64>, max_right: Option<f64>) -> Self {
        self.min_perimeter_left = min_left;
        self.max_perimeter_right = max_right;
        self
    }

    fn filters_perimeter(&self) -> bool {
        self.min_perimeter_left.is_some() || self.max_perimeter_right.is_some()
    }
}

/// How MBR COMPARE finds intersecting pairs within one partition.
///
/// The sort + sweep costs `O(L log L + R log R)` to sort plus a window
/// scan that degrades toward `O(L·R)` when the two sides' x-extents
/// overlap heavily. Bulk-loading the smaller side into an R-tree costs
/// `O(S log S)` once and `O(log S + k)` per probe, which wins when the
/// sides are badly asymmetric — the shape skewed inputs produce after
/// hot-cell splitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeStrategy {
    /// Cost-based choice per partition (see [`JoinOptions::rtree_ratio`]).
    #[default]
    Auto,
    /// Always sort + sweep (the paper's prototype behaviour).
    Sweep,
    /// Always STR bulk-load the smaller side and probe with the larger.
    RTree,
}

/// Join pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct JoinOptions {
    /// Worker threads for the partition-parallel phase. `0` (the
    /// default) inherits the machine parallelism
    /// (`std::thread::available_parallelism`), matching what an
    /// engine-owned pool would provide — joins never silently run
    /// single-threaded.
    pub threads: usize,
    /// SORT-stage batch size: candidates per sorted block. Smaller
    /// values bound memory at the cost of repeated parsing (§4.5:
    /// "By adjusting the threshold in SORT, the number of stored
    /// objects can be reduced").
    pub sort_batch: usize,
    /// MBR COMPARE algorithm selection.
    pub probe: ProbeStrategy,
    /// [`ProbeStrategy::Auto`] asymmetry threshold: the R-tree probe
    /// is chosen when the larger side is at least this many times the
    /// smaller (and the smaller is big enough for the build to pay).
    pub rtree_ratio: usize,
    /// [`ProbeStrategy::Auto`] density threshold, in objects per
    /// square degree of the partition's owned region: partitions at
    /// least this dense prefer the R-tree even when the sides are
    /// symmetric, because tightly packed MBRs overlap heavily in x and
    /// degrade the sweep's window scans toward `O(L·R)`. Only
    /// partition maps that know their grid geometry can derive a
    /// density; `f64::INFINITY` disables the heuristic.
    pub density_threshold: f64,
}

impl Default for JoinOptions {
    fn default() -> Self {
        JoinOptions {
            threads: 0,
            sort_batch: 1 << 16,
            probe: ProbeStrategy::Auto,
            rtree_ratio: 8,
            density_threshold: 512.0,
        }
    }
}

/// The MBR COMPARE algorithm one partition ran, with the cost-model
/// input that picked it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProbeChoice {
    /// Sort + sweep.
    Sweep,
    /// R-tree probe forced by [`ProbeStrategy::RTree`].
    RTreeForced,
    /// R-tree probe chosen by the side-asymmetry rule.
    RTreeAsymmetry,
    /// R-tree probe chosen by the partition-density rule alone.
    RTreeDensity,
}

/// One partition's result: its pairs, which compare algorithm ran
/// (`None` when the partition was trivially empty on one side), and
/// the partition's observed density (objects per square degree; 0
/// when unknown).
pub(crate) type SlotResult = Result<(Vec<JoinPair>, Option<ProbeChoice>, f64), ParseError>;

/// Everything one join execution produced.
#[derive(Debug, Clone)]
pub struct JoinOutcome {
    /// Deduplicated joined pairs.
    pub pairs: Vec<JoinPair>,
    /// Time spent on the final duplicate elimination.
    pub dedup: Duration,
    /// Partition-map shape and per-partition algorithm decisions.
    pub decisions: JoinDecisions,
}

/// Executes the join pipeline over every partition, returning
/// deduplicated pairs plus the time spent on duplicate elimination.
/// Runs on the process-wide shared pool; the engine uses
/// [`pbsm_join_on`] with its own persistent pool.
pub fn pbsm_join<S: PartitionStore + Sync>(
    store: &S,
    reparse: &Reparser<'_>,
    options: JoinOptions,
) -> crate::Result<(Vec<JoinPair>, Duration)> {
    pbsm_join_on(WorkerPool::global(), store, reparse, options)
}

/// [`pbsm_join`] on a caller-supplied worker pool (uniform map: one
/// partition per grid cell).
pub fn pbsm_join_on<S: PartitionStore + Sync>(
    pool: &WorkerPool,
    store: &S,
    reparse: &Reparser<'_>,
    options: JoinOptions,
) -> crate::Result<(Vec<JoinPair>, Duration)> {
    let map = PartitionMap::uniform(store);
    pbsm_join_mapped_on(pool, store, &map, reparse, options, None).map(|o| (o.pairs, o.dedup))
}

/// The full join pipeline over an explicit (possibly skew-adaptive)
/// partition map — the single-query engine entry point (sides tagged
/// at partition time, private re-parse cache). The optional
/// [`CancelToken`] is observed between partitions: a tripped token
/// skips every not-yet-started partition and the join returns
/// [`Error::Cancelled`] / [`Error::DeadlineExceeded`].
pub fn pbsm_join_mapped_on<S: PartitionStore + Sync>(
    pool: &WorkerPool,
    store: &S,
    map: &PartitionMap,
    reparse: &Reparser<'_>,
    options: JoinOptions,
    token: Option<&CancelToken>,
) -> crate::Result<JoinOutcome> {
    let cache = ReparseCache::new(options.sort_batch);
    pbsm_join_spec_on(
        pool,
        store,
        map,
        &JoinSpec::tagged(),
        reparse,
        &cache,
        options,
        token,
    )
}

/// The join pipeline with explicit per-query semantics and a
/// caller-owned [`ReparseCache`] — the batch entry point: N queries
/// over one shared partition index pass their own [`JoinSpec`]s and
/// share one cache, so replicated objects parse once per *batch*.
#[allow(clippy::too_many_arguments)]
pub fn pbsm_join_spec_on<S: PartitionStore + Sync>(
    pool: &WorkerPool,
    store: &S,
    map: &PartitionMap,
    spec: &JoinSpec,
    reparse: &Reparser<'_>,
    cache: &ReparseCache,
    options: JoinOptions,
    token: Option<&CancelToken>,
) -> crate::Result<JoinOutcome> {
    // Fan out over occupied slots only: the default grid is sparse
    // (tens of thousands of cells, a handful holding entries) and an
    // empty slot contributes nothing to the fold.
    let occupied = map.occupied_slots(store);
    let per_slot: Vec<SlotResult> =
        run_indexed_on(pool, occupied.len(), options.threads, token, |i| {
            join_partition(store, map, occupied[i], spec, reparse, cache, &options)
        })?;
    fold_slot_results(map, per_slot.into_iter()).map_err(Error::Parse)
}

/// Folds per-partition results into the deduplicated outcome —
/// shared by the slot-parallel path above and the batch layer's
/// flattened (query × slot) fan-out.
pub(crate) fn fold_slot_results(
    map: &PartitionMap,
    per_slot: impl Iterator<Item = SlotResult>,
) -> Result<JoinOutcome, ParseError> {
    let mut pairs = Vec::new();
    let mut decisions = JoinDecisions::from_map(map.stats());
    for r in per_slot {
        let (p, probed, density) = r?;
        pairs.extend(p);
        if density > decisions.max_partition_density {
            decisions.max_partition_density = density;
        }
        match probed {
            Some(ProbeChoice::Sweep) => decisions.sweep_partitions += 1,
            Some(ProbeChoice::RTreeForced) => decisions.rtree_partitions += 1,
            Some(ProbeChoice::RTreeAsymmetry) => {
                decisions.rtree_partitions += 1;
                decisions.rtree_by_asymmetry += 1;
            }
            Some(ProbeChoice::RTreeDensity) => {
                decisions.rtree_partitions += 1;
                decisions.rtree_by_density += 1;
            }
            None => {}
        }
    }
    // Duplicate elimination (sequential step, timed separately).
    let started = Instant::now();
    pairs.sort_unstable();
    pairs.dedup();
    let dedup = started.elapsed();
    Ok(JoinOutcome {
        pairs,
        dedup,
        decisions,
    })
}

/// Joins one partition: MBR compare → sort → re-parse → refine.
/// Returns the pairs plus which compare algorithm ran (`None` when the
/// partition was trivially empty on one side) and the partition's
/// density.
pub(crate) fn join_partition<S: PartitionStore>(
    store: &S,
    map: &PartitionMap,
    slot: usize,
    spec: &JoinSpec,
    reparse: &Reparser<'_>,
    cache: &ReparseCache,
    options: &JoinOptions,
) -> SlotResult {
    let sort_batch = options.sort_batch;
    let mut lefts: Vec<PartEntry> = Vec::new();
    let mut rights: Vec<PartEntry> = Vec::new();
    map.for_each_entry(store, slot, |e| {
        if spec.side.is_left(e) {
            lefts.push(*e);
        } else {
            rights.push(*e);
        }
    });
    // Partition density: total entries over the owned region's area
    // (0 when the map has no grid geometry to derive areas from).
    let density = match map.slot_area(slot) {
        Some(area) if area > 0.0 => (lefts.len() + rights.len()) as f64 / area,
        _ => 0.0,
    };
    if lefts.is_empty() || rights.is_empty() {
        return Ok((Vec::new(), None, density));
    }

    // MBR COMPARE: cost-based sweep vs R-tree probe.
    let choice = use_rtree(options, lefts.len(), rights.len(), density);
    let mut candidates = if choice != ProbeChoice::Sweep {
        mbr_compare_rtree(&lefts, &rights)
    } else {
        mbr_compare(&lefts, &rights)
    };
    // Reference-point duplicate filter: a pair replicated into several
    // partitions is kept only by the slot owning the bottom-left
    // corner of the MBR intersection, so re-parsing and refinement run
    // once per pair instead of once per copy.
    if map.supports_owner_filter() {
        candidates.retain(|(l, r)| {
            map.owns_point(
                slot,
                l.mbr.min_x.max(r.mbr.min_x),
                l.mbr.min_y.max(r.mbr.min_y),
            )
        });
    }
    if candidates.is_empty() {
        return Ok((Vec::new(), Some(choice), density));
    }

    // The larger side becomes the adjacent (sequentially re-parsed)
    // stream; the smaller is cached in the hash map.
    let adjacent_left = lefts.len() >= rights.len();

    // Per-object perimeter memo for the combined query's refine-stage
    // bounds (only allocated when the spec carries filters).
    let mut perimeters: HashMap<u64, f64> = HashMap::new();
    let mut perimeter_of = |offset: u64, g: &Geometry| -> f64 {
        *perimeters
            .entry(offset)
            .or_insert_with(|| measures::perimeter(g, DistanceModel::Spherical))
    };

    let mut out = Vec::new();
    let mut start = 0;
    while start < candidates.len() {
        let end = (start + sort_batch.max(1)).min(candidates.len());
        let batch = &mut candidates[start..end];
        // SORT by the adjacent side's offset.
        if adjacent_left {
            batch.sort_unstable_by_key(|(l, _)| l.offset);
        } else {
            batch.sort_unstable_by_key(|(_, r)| r.offset);
        }
        // PARSER/BUFFER + REFINE. Parses go through the join-wide
        // shared cache so replicated objects parse once per join, not
        // once per partition.
        let mut adj_geom: Option<(u64, Geometry)> = None;
        for (l, r) in batch.iter() {
            let (adj, other) = if adjacent_left { (l, r) } else { (r, l) };
            // The adjacent stream is offset-sorted: reuse the last
            // parse when consecutive candidates share an object.
            let adj_g = match &adj_geom {
                Some((off, g)) if *off == adj.offset => g.clone(),
                _ => {
                    let g = cache.get_or_parse(adj.offset, adj.len, reparse)?;
                    adj_geom = Some((adj.offset, g.clone()));
                    g
                }
            };
            let other_g = cache.get_or_parse(other.offset, other.len, reparse)?;
            let (lg, rg) = if adjacent_left {
                (&adj_g, &other_g)
            } else {
                (&other_g, &adj_g)
            };
            // The combined query's perimeter bounds, enforced here
            // when the partition pass could not (shared index): the
            // predicates are per-object, so rejecting pairs whose
            // member fails is identical to never partitioning it.
            if spec.filters_perimeter() {
                if let Some(min) = spec.min_perimeter_left {
                    if perimeter_of(l.offset, lg) <= min {
                        continue;
                    }
                }
                if let Some(max) = spec.max_perimeter_right {
                    if perimeter_of(r.offset, rg) >= max {
                        continue;
                    }
                }
            }
            if intersects(lg, rg) {
                out.push(JoinPair {
                    left_id: l.id,
                    right_id: r.id,
                    left_offset: l.offset,
                    right_offset: r.offset,
                });
            }
        }
        // "Once a block is processed, the hash map is cleared."
        start = end;
    }
    Ok((out, Some(choice), density))
}

/// Resolves the per-partition MBR COMPARE algorithm choice from side
/// asymmetry *and* partition density (objects per square degree).
fn use_rtree(options: &JoinOptions, lefts: usize, rights: usize, density: f64) -> ProbeChoice {
    match options.probe {
        ProbeStrategy::Sweep => ProbeChoice::Sweep,
        ProbeStrategy::RTree => ProbeChoice::RTreeForced,
        ProbeStrategy::Auto => {
            let small = lefts.min(rights);
            let large = lefts.max(rights);
            // The build must amortise: the small side (the one bulk
            // loaded) has to be non-trivial either way.
            if small < 64 {
                return ProbeChoice::Sweep;
            }
            // Asymmetry rule: per-probe log cost beats the sweep's
            // window scans when one side dwarfs the other.
            if large >= small.saturating_mul(options.rtree_ratio.max(1)) {
                return ProbeChoice::RTreeAsymmetry;
            }
            // Density rule: dense partitions pack MBRs so tightly
            // that x-intervals overlap pervasively and the sweep's
            // window scan degrades toward O(L·R) even for symmetric
            // sides; the R-tree keeps discriminating on both axes.
            if density >= options.density_threshold {
                return ProbeChoice::RTreeDensity;
            }
            ProbeChoice::Sweep
        }
    }
}

/// Finds all MBR-intersecting (left, right) pairs by STR-bulk-loading
/// the smaller side into an R-tree and probing it with every entry of
/// the larger side.
fn mbr_compare_rtree(lefts: &[PartEntry], rights: &[PartEntry]) -> Vec<(PartEntry, PartEntry)> {
    let small_is_left = lefts.len() <= rights.len();
    let (small, large) = if small_is_left {
        (lefts, rights)
    } else {
        (rights, lefts)
    };
    let tree = RTree::bulk_load(
        small
            .iter()
            .enumerate()
            .map(|(i, e)| (e.mbr, i as u64))
            .collect(),
    );
    let mut out = Vec::new();
    let mut hits = Vec::new();
    for probe in large {
        hits.clear();
        tree.query_into(&probe.mbr, &mut hits);
        for &h in &hits {
            let s = small[h as usize];
            out.push(if small_is_left {
                (s, *probe)
            } else {
                (*probe, s)
            });
        }
    }
    out
}

/// Finds all MBR-intersecting (left, right) pairs with a
/// sort-and-sweep over min_x.
fn mbr_compare(lefts: &[PartEntry], rights: &[PartEntry]) -> Vec<(PartEntry, PartEntry)> {
    let mut ls: Vec<&PartEntry> = lefts.iter().collect();
    let mut rs: Vec<&PartEntry> = rights.iter().collect();
    let key = |e: &&PartEntry| e.mbr.min_x;
    ls.sort_by(|a, b| {
        key(a)
            .partial_cmp(&key(b))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rs.sort_by(|a, b| {
        key(a)
            .partial_cmp(&key(b))
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut out = Vec::new();
    let mut ri = 0usize;
    for l in &ls {
        // Advance past rights that end before this left begins — they
        // can never match this or any later left.
        while ri < rs.len() && rs[ri].mbr.max_x < l.mbr.min_x {
            // Only safe to drop when the right also ends before every
            // later left's start; since lefts are sorted by min_x,
            // l.mbr.min_x is non-decreasing, so it is safe.
            ri += 1;
        }
        for r in &rs[ri..] {
            if r.mbr.min_x > l.mbr.max_x {
                break;
            }
            if l.mbr.intersects(&r.mbr) {
                out.push((**l, **r));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{ArrayStore, GridSpec, ListStore};
    use atgis_geometry::{Mbr, Point, Polygon};

    fn entry(id: u64, x: f64, y: f64, size: f64, left: bool) -> PartEntry {
        PartEntry {
            id,
            offset: id,
            len: 0,
            mbr: Mbr::new(x, y, x + size, y + size),
            left_side: left,
        }
    }

    /// Reparser that reconstructs a square from the entry's offset (we
    /// encode position in the id for tests).
    fn square_reparser(
        squares: HashMap<u64, Polygon>,
    ) -> impl Fn(u64, u32) -> Result<Geometry, ParseError> + Sync {
        move |offset, _len| {
            Ok(Geometry::Polygon(
                squares.get(&offset).expect("known offset").clone(),
            ))
        }
    }

    fn square_at(x: f64, y: f64, size: f64) -> Polygon {
        Polygon::from_exterior(vec![
            Point::new(x, y),
            Point::new(x + size, y),
            Point::new(x + size, y + size),
            Point::new(x, y + size),
        ])
    }

    #[test]
    fn mbr_compare_finds_all_intersections() {
        let lefts = vec![entry(1, 0.0, 0.0, 2.0, true), entry(2, 5.0, 5.0, 1.0, true)];
        let rights = vec![
            entry(10, 1.0, 1.0, 2.0, false),
            entry(11, 9.0, 9.0, 1.0, false),
            entry(12, 5.5, 5.5, 0.2, false),
        ];
        let mut pairs: Vec<(u64, u64)> = mbr_compare(&lefts, &rights)
            .iter()
            .map(|(l, r)| (l.id, r.id))
            .collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 10), (2, 12)]);
    }

    #[test]
    fn mbr_compare_brute_force_agreement() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mk = |id: u64, left: bool, rng: &mut rand::rngs::StdRng| {
            entry(
                id,
                rng.gen_range(-10.0..10.0),
                rng.gen_range(-10.0..10.0),
                rng.gen_range(0.1..3.0),
                left,
            )
        };
        let lefts: Vec<PartEntry> = (0..40).map(|i| mk(i, true, &mut rng)).collect();
        let rights: Vec<PartEntry> = (100..160).map(|i| mk(i, false, &mut rng)).collect();
        let mut got: Vec<(u64, u64)> = mbr_compare(&lefts, &rights)
            .iter()
            .map(|(l, r)| (l.id, r.id))
            .collect();
        got.sort_unstable();
        let mut want = Vec::new();
        for l in &lefts {
            for r in &rights {
                if l.mbr.intersects(&r.mbr) {
                    want.push((l.id, r.id));
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got, want);
    }

    fn join_fixture<S: PartitionStore + Sync>() -> (S, HashMap<u64, Polygon>) {
        // Grid of 2 cells; squares 1 and 2 on the left side, 10-12 on
        // the right. Square 1 overlaps 10; square 2 overlaps nothing;
        // square 1 also straddles both cells to create duplicates.
        let grid = GridSpec::new(Mbr::new(0.0, 0.0, 4.0, 2.0), 2.0);
        let mut store = S::new(grid.num_cells());
        let mut squares = HashMap::new();
        let mut add = |store: &mut S, id: u64, x: f64, y: f64, size: f64, left: bool| {
            let poly = square_at(x, y, size);
            let e = PartEntry {
                id,
                offset: id,
                len: 0,
                mbr: poly.mbr(),
                left_side: left,
            };
            for cell in grid.cells_for(&e.mbr) {
                store.push(cell, e);
            }
            squares.insert(id, poly);
        };
        add(&mut store, 1, 1.5, 0.5, 1.0, true); // straddles cells 0 and 1
        add(&mut store, 2, 0.1, 1.5, 0.3, true);
        add(&mut store, 10, 2.0, 0.8, 1.0, false); // overlaps 1
        add(&mut store, 11, 3.5, 1.5, 0.4, false);
        add(&mut store, 12, 0.5, 0.1, 0.2, false);
        (store, squares)
    }

    #[test]
    fn pbsm_join_finds_pairs_and_dedups() {
        let (store, squares) = join_fixture::<ArrayStore>();
        let reparse = square_reparser(squares);
        let (pairs, _) = pbsm_join(&store, &reparse, JoinOptions::default()).unwrap();
        assert_eq!(pairs.len(), 1, "exactly one intersecting pair: {pairs:?}");
        assert_eq!((pairs[0].left_id, pairs[0].right_id), (1, 10));
    }

    #[test]
    fn list_store_join_agrees_with_array_store() {
        let (astore, squares) = join_fixture::<ArrayStore>();
        let (lstore, _) = join_fixture::<ListStore>();
        let reparse = square_reparser(squares);
        let (a, _) = pbsm_join(&astore, &reparse, JoinOptions::default()).unwrap();
        let (l, _) = pbsm_join(&lstore, &reparse, JoinOptions::default()).unwrap();
        assert_eq!(a, l);
    }

    #[test]
    fn small_sort_batches_do_not_change_results() {
        let (store, squares) = join_fixture::<ArrayStore>();
        let reparse = square_reparser(squares);
        let base = pbsm_join(&store, &reparse, JoinOptions::default())
            .unwrap()
            .0;
        for sort_batch in [1, 2, 3] {
            let got = pbsm_join(
                &store,
                &reparse,
                JoinOptions {
                    threads: 1,
                    sort_batch,
                    ..JoinOptions::default()
                },
            )
            .unwrap()
            .0;
            assert_eq!(got, base, "sort_batch={sort_batch}");
        }
    }

    #[test]
    fn multithreaded_join_is_deterministic() {
        let (store, squares) = join_fixture::<ArrayStore>();
        let reparse = square_reparser(squares);
        let single = pbsm_join(
            &store,
            &reparse,
            JoinOptions {
                threads: 1,
                ..JoinOptions::default()
            },
        )
        .unwrap()
        .0;
        let multi = pbsm_join(
            &store,
            &reparse,
            JoinOptions {
                threads: 4,
                ..JoinOptions::default()
            },
        )
        .unwrap()
        .0;
        assert_eq!(single, multi);
    }

    #[test]
    fn empty_sides_produce_no_pairs() {
        let store = ArrayStore::new(4);
        let reparse = square_reparser(HashMap::new());
        let (pairs, _) = pbsm_join(&store, &reparse, JoinOptions::default()).unwrap();
        assert!(pairs.is_empty());
    }

    #[test]
    fn default_join_options_inherit_machine_parallelism() {
        // 0 = available_parallelism at execution time; joins must not
        // silently run single-threaded (satellite fix).
        assert_eq!(JoinOptions::default().threads, 0);
    }

    #[test]
    fn rtree_compare_agrees_with_sweep() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mk = |id: u64, left: bool, rng: &mut rand::rngs::StdRng| {
            entry(
                id,
                rng.gen_range(-10.0..10.0),
                rng.gen_range(-10.0..10.0),
                rng.gen_range(0.1..4.0),
                left,
            )
        };
        for (nl, nr) in [(1usize, 50usize), (80, 10), (60, 60), (200, 3)] {
            let lefts: Vec<PartEntry> = (0..nl as u64).map(|i| mk(i, true, &mut rng)).collect();
            let rights: Vec<PartEntry> = (1000..1000 + nr as u64)
                .map(|i| mk(i, false, &mut rng))
                .collect();
            let mut sweep: Vec<(u64, u64)> = mbr_compare(&lefts, &rights)
                .iter()
                .map(|(l, r)| (l.id, r.id))
                .collect();
            let mut rtree: Vec<(u64, u64)> = mbr_compare_rtree(&lefts, &rights)
                .iter()
                .map(|(l, r)| (l.id, r.id))
                .collect();
            sweep.sort_unstable();
            rtree.sort_unstable();
            assert_eq!(sweep, rtree, "nl={nl} nr={nr}");
        }
    }

    #[test]
    fn auto_probe_requires_asymmetry_and_volume() {
        let opts = JoinOptions::default();
        assert_eq!(
            use_rtree(&opts, 100, 100, 0.0),
            ProbeChoice::Sweep,
            "symmetric: sweep"
        );
        assert_eq!(
            use_rtree(&opts, 10, 1000, 0.0),
            ProbeChoice::Sweep,
            "small side too small to pay the build"
        );
        assert_eq!(
            use_rtree(&opts, 64, 64 * 8, 0.0),
            ProbeChoice::RTreeAsymmetry,
            "asymmetric and big: rtree"
        );
        let forced = JoinOptions {
            probe: ProbeStrategy::RTree,
            ..JoinOptions::default()
        };
        assert_eq!(use_rtree(&forced, 1, 1, 0.0), ProbeChoice::RTreeForced);
        let sweep = JoinOptions {
            probe: ProbeStrategy::Sweep,
            ..JoinOptions::default()
        };
        assert_eq!(use_rtree(&sweep, 64, 1000, 1e9), ProbeChoice::Sweep);
    }

    #[test]
    fn auto_probe_factors_partition_density() {
        let opts = JoinOptions::default();
        // Dense symmetric partitions flip to the R-tree...
        assert_eq!(
            use_rtree(&opts, 200, 200, opts.density_threshold),
            ProbeChoice::RTreeDensity
        );
        // ...sparse ones stay with the sweep...
        assert_eq!(
            use_rtree(&opts, 200, 200, opts.density_threshold * 0.5),
            ProbeChoice::Sweep
        );
        // ...tiny partitions never pay the build regardless of density...
        assert_eq!(use_rtree(&opts, 8, 8, 1e12), ProbeChoice::Sweep);
        // ...and asymmetry is attributed before density.
        assert_eq!(
            use_rtree(&opts, 64, 64 * 8, 1e12),
            ProbeChoice::RTreeAsymmetry
        );
        // An unknown density (0: no grid geometry) never triggers.
        let inf = JoinOptions {
            density_threshold: f64::INFINITY,
            ..JoinOptions::default()
        };
        assert_eq!(use_rtree(&inf, 500, 500, 1e12), ProbeChoice::Sweep);
    }

    #[test]
    fn threshold_side_rule_matches_tagged_partitioning() {
        // A side-agnostic index (all entries tagged left) joined with
        // SideRule::Threshold must equal the tagged fixture join.
        let (store, squares) = join_fixture::<ArrayStore>();
        let grid = GridSpec::new(Mbr::new(0.0, 0.0, 4.0, 2.0), 2.0);
        let mut untagged = ArrayStore::new(grid.num_cells());
        for cell in 0..grid.num_cells() {
            store.for_each(cell, |e| {
                untagged.push(
                    cell,
                    PartEntry {
                        left_side: true,
                        ..*e
                    },
                )
            });
        }
        let reparse = square_reparser(squares);
        let pool = WorkerPool::global();
        let map = PartitionMap::uniform(&store);
        let tagged =
            pbsm_join_mapped_on(pool, &store, &map, &reparse, JoinOptions::default(), None)
                .unwrap();
        let cache = ReparseCache::new(JoinOptions::default().sort_batch);
        // The fixture puts ids < 10 on the left.
        let spec = JoinSpec::threshold(10);
        let by_threshold = pbsm_join_spec_on(
            pool,
            &untagged,
            &map,
            &spec,
            &reparse,
            &cache,
            JoinOptions::default(),
            None,
        )
        .unwrap();
        assert_eq!(tagged.pairs, by_threshold.pairs);
        assert!(!tagged.pairs.is_empty());
    }

    #[test]
    fn refine_stage_perimeter_bounds_filter_pairs() {
        let (store, squares) = join_fixture::<ArrayStore>();
        let reparse = square_reparser(squares);
        let pool = WorkerPool::global();
        let map = PartitionMap::uniform(&store);
        let cache = ReparseCache::new(64);
        let unfiltered = pbsm_join_spec_on(
            pool,
            &store,
            &map,
            &JoinSpec::tagged(),
            &reparse,
            &cache,
            JoinOptions::default(),
            None,
        )
        .unwrap();
        assert!(!unfiltered.pairs.is_empty());
        let strict = JoinSpec::tagged().with_perimeter_bounds(Some(1e12), None);
        let filtered = pbsm_join_spec_on(
            pool,
            &store,
            &map,
            &strict,
            &reparse,
            &cache,
            JoinOptions::default(),
            None,
        )
        .unwrap();
        assert!(
            filtered.pairs.is_empty(),
            "an impossible left bound rejects every pair"
        );
    }

    #[test]
    fn probe_strategies_agree_on_join_results() {
        let (store, squares) = join_fixture::<ArrayStore>();
        let reparse = square_reparser(squares);
        let mut results = Vec::new();
        for probe in [
            ProbeStrategy::Auto,
            ProbeStrategy::Sweep,
            ProbeStrategy::RTree,
        ] {
            let (pairs, _) = pbsm_join(
                &store,
                &reparse,
                JoinOptions {
                    probe,
                    ..JoinOptions::default()
                },
            )
            .unwrap();
            results.push(pairs);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn adaptive_map_join_agrees_with_uniform() {
        use crate::partition::AdaptiveConfig;
        // A skewed store: one hot cell packed with overlapping squares
        // on both sides.
        let grid = GridSpec::new(Mbr::new(0.0, 0.0, 4.0, 2.0), 2.0);
        let mut store = ArrayStore::new(grid.num_cells());
        let mut squares = HashMap::new();
        for i in 0..60u64 {
            let left = i % 2 == 0;
            let x = (i % 10) as f64 * 0.18;
            let y = (i / 10) as f64 * 0.3;
            let poly = square_at(x, y, 0.25);
            let e = PartEntry {
                id: i,
                offset: i,
                len: 0,
                mbr: poly.mbr(),
                left_side: left,
            };
            for cell in grid.cells_for(&e.mbr) {
                store.push(cell, e);
            }
            squares.insert(i, poly);
        }
        let reparse = square_reparser(squares);
        let pool = WorkerPool::global();
        let uniform = PartitionMap::uniform(&store);
        let adaptive = PartitionMap::adaptive(
            &grid,
            &store,
            &AdaptiveConfig {
                target_per_cell: 8,
                ..AdaptiveConfig::default()
            },
        );
        assert!(adaptive.stats().split_cells > 0, "{:?}", adaptive.stats());
        let a = pbsm_join_mapped_on(
            pool,
            &store,
            &uniform,
            &reparse,
            JoinOptions::default(),
            None,
        )
        .unwrap();
        let b = pbsm_join_mapped_on(
            pool,
            &store,
            &adaptive,
            &reparse,
            JoinOptions::default(),
            None,
        )
        .unwrap();
        assert_eq!(a.pairs, b.pairs);
        assert!(!a.pairs.is_empty(), "fixture must produce pairs");
        assert_eq!(
            b.decisions.map.split_cells,
            adaptive.stats().split_cells,
            "decisions carry the map shape"
        );
        assert!(
            b.decisions.sweep_partitions + b.decisions.rtree_partitions > 0,
            "probe tallies recorded"
        );
    }
}
