//! # AT-GIS: highly parallel spatial query processing
//!
//! A reproduction of *AT-GIS: Highly Parallel Spatial Query Processing
//! with Associative Transducers* (Ogden, Thomas, Pietzuch — SIGMOD
//! 2016). AT-GIS executes containment, aggregation, spatial-join and
//! combined queries **directly over raw spatial files** (GeoJSON, WKT,
//! OSM XML) with no load or indexing phase, using associative
//! transducers to parallelise parsing and query execution across CPU
//! cores.
//!
//! ## Quickstart
//!
//! Every entry point takes an [`ExecOptions`] request describing *how*
//! to execute — cancellation, deadline, timing, fault isolation,
//! priority and sharding — instead of a method-name permutation:
//!
//! ```
//! use atgis::{Dataset, Engine, ExecOptions, Query};
//! use atgis_formats::{Format, Mode};
//! use atgis_geometry::Mbr;
//!
//! // Generate a small in-memory GeoJSON dataset.
//! let data = atgis_datagen::write_geojson(&atgis_datagen::OsmGenerator::new(1).generate(100));
//! let dataset = Dataset::from_bytes(data, Format::GeoJson);
//!
//! let engine = Engine::builder().threads(2).mode(Mode::Pat).build();
//! let region = Mbr::new(-10.0, 40.0, 10.0, 60.0);
//! let queries = vec![Query::containment(region)];
//! let result = engine
//!     .run(&queries, &dataset, &ExecOptions::new())
//!     .unwrap()
//!     .into_single()
//!     .unwrap();
//! assert!(!result.matches().is_empty());
//!
//! // The same request, scatter–gathered over 4 intra-process shards
//! // with timing: bit-identical results, per-shard stats.
//! let sharded = engine
//!     .run(&queries, &dataset, &ExecOptions::new().sharded(4).timed())
//!     .unwrap();
//! assert_eq!(sharded.outcomes[0].as_ref().unwrap(), &result);
//! ```
//!
//! ## Architecture (§4 of the paper)
//!
//! See `ARCHITECTURE.md` at the repository root for the full
//! four-layer map (transducer → formats → core scan/merge →
//! batch/stream/scheduler), the ingest → seal → query lifecycle and
//! the data-flow diagram of a scheduled batch.
//!
//! Execution is layered **plan → shared scan → per-query aggregate**:
//! a query (or a whole batch of queries) is compiled into per-query
//! aggregate sinks, ONE structural scan drives every sink from the
//! same parse pass, and per-query work happens in the sinks and the
//! join pipelines behind them.
//!
//! * [`scheduler`] — the **multi-tenant scheduling layer** above the
//!   batch: [`scheduler::QueryScheduler`] deduplicates identical
//!   predicates (one sink, fanned out to every submitter), serves
//!   repeated single-pass traffic from a bounded
//!   [`scheduler::AggregateCache`] keyed by predicate × dataset
//!   generation (updates bump the generation, so stale aggregates are
//!   impossible), admission-controls batches into waves so a
//!   scan-heavy outlier cannot stall the cheap majority, and lifts
//!   batches to **multiple datasets** in one call
//!   ([`scheduler::QueryScheduler::run_multi`]).
//! * [`batch`] — the **shared-scan batch layer**: a batched
//!   [`Engine::run`] fans every submitted query's aggregate out of a
//!   single parse pass (the [`pipeline::MultiSink`] fan-out),
//!   join-class queries share one side-agnostic partition index +
//!   re-parse cache, and [`batch::QuerySession`] keeps the index
//!   cache warm across batches. A `QuerySession` has two lifecycles:
//!   **pinned** — build an [`Engine`], pin a [`Dataset`]
//!   (`QuerySession::new`), serve repeated `QuerySession::run` calls
//!   (the first join-class batch pays one partition pass, later ones
//!   reuse the cached
//!   [`PartitionMap`]); and **streaming** — `QuerySession::streaming`
//!   → `ingest_chunk`* → `finish`: **ingest** appends chunks to the
//!   session's stream buffer while a partition sink rides the
//!   incremental scan and single-pass queries answer over the
//!   feature-complete prefix; **seal** (`finish`) refines the
//!   incrementally-fed store into the partition index with no extra
//!   pass; **query** — join-class traffic then serves from the warm
//!   cache exactly as in a pinned session. Results are bit-identical
//!   to per-query execution in both lifecycles.
//! * [`shard`] — **intra-process sharded scatter–gather**: a
//!   [`ShardSet`] splits a dataset into marker-aligned byte-range
//!   shards bounded by per-shard MBRs; [`ExecOptions::sharded`]
//!   scatters a batch across them (pruning shards a region query
//!   cannot touch), gathers per-query sinks with the associative
//!   member-wise combine, and stays bit-identical to single-node
//!   execution at every shard count.
//! * [`stream`] — **chunk-fed streaming execution**: a
//!   [`stream::ChunkSource`] (file, reader, bounded in-memory channel)
//!   feeds an append-only stable-address [`StreamBuffer`], and
//!   [`Engine::run_streaming`] scans regions as bytes
//!   arrive — PAT regions cut at the last seen record marker, FAT
//!   regions anywhere — overlapping ingest I/O, scanning and fragment
//!   merging. Live fragments stay `O(workers)` (see `executor`), and
//!   streamed results are bit-identical to buffered execution for
//!   every format × mode × chunk size.
//! * [`pool`] — the **persistent execution runtime**: one
//!   [`pool::WorkerPool`] per engine, spawned in
//!   `EngineBuilder::build` and reused by every query. Jobs drain an
//!   atomic work-queue cursor; results land in pre-sized slots written
//!   lock-free (each index has exactly one writer), so serving heavy
//!   query traffic costs no thread churn and no per-slot locks.
//! * [`executor`] — the split / processing / merge phases of Fig. 5 on
//!   top of the pool. The merge phase is an **incremental out-of-order
//!   left fold** ([`executor::StreamMerger`]): each fragment folds
//!   into its neighbours the moment its task completes, coalescing
//!   adjacent runs, so live fragments are bounded by in-flight tasks
//!   (`O(workers)`, never `O(blocks)` or `O(chunks)`) and merging
//!   overlaps processing. Only adjacent fragments combine, in index
//!   order — by ⊗-associativity (§3.2) and the exact numeric
//!   aggregates ([`exact::ExactSum`]) results are identical at every
//!   thread count, block count and chunking. `threads == 0` means
//!   "match the machine", and per-job concurrency is always clamped
//!   to the number of work items.
//! * [`pipeline`] — per-block query processing: parse fragments from
//!   `atgis-formats` composed with query aggregates (Fig. 6's
//!   stages), including the streaming vs buffered filter trade-off of
//!   Fig. 7.
//! * [`partition`] — spatial grid partitioning with array- and
//!   list-backed stores (§4.4's data-structure trade-off), plus the
//!   **skew-adaptive two-level partition map**: per-cell load
//!   statistics recursively split hot cells into sub-grids so
//!   clustered data (Fig. 14) cannot serialise the join, with
//!   reference-point filtering keeping exactly one copy of every
//!   replicated candidate pair.
//! * [`join`] — the two-pass PBSM join pipeline of Fig. 8 (MBR
//!   compare → sort → re-parse/buffer → refine → dedup), with a
//!   cost-based per-partition choice between the sort+sweep and an
//!   `atgis-rtree` STR bulk-load + probe for badly asymmetric sides,
//!   and a join-wide sharded re-parse cache.
//! * [`query`] / [`result`] — Table 3's query forms and their results.
//! * [`dataset`] — raw bytes plus format; heap-owned, memory-mapped
//!   ([`Dataset::mmap`]) so multi-GB inputs don't double resident
//!   memory, or a zero-copy view over a streaming ingest buffer
//!   ([`StreamBuffer`] — prefix views mid-ingest, the sealed full view
//!   after; `Dataset::from_reader` builds one straight from any
//!   reader, so the streaming path never holds the input twice).
//!
//! ## The scan fast path
//!
//! All format scanning funnels through two vectorised primitives:
//! `atgis-transducer`'s per-state skip classes (structural lexing
//! skips 8 bytes per iteration between interesting bytes — see the
//! `atgis_transducer::dfa` docs) and `atgis-formats`' SWAR
//! `memchr`/`find_marker` (marker-aligned splitting, string scanning,
//! XML tag seeking). The speculative byte-at-a-time slow path still
//! runs in exactly one place: the *pre-convergence* prefix of a FAT
//! block, where multiple lexer states advance in lockstep; once the
//! runs converge — typically within a few bytes of a block start — the
//! single shared run proceeds through the bulk scanner.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod cancel;
pub mod dataset;
pub mod engine;
pub mod exact;
pub mod exec;
pub mod executor;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod join;
pub mod operators;
pub mod partition;
pub mod persist;
pub mod pipeline;
pub mod pool;
pub mod query;
pub mod result;
pub mod scheduler;
pub mod shard;
pub mod stats;
pub mod stream;
#[cfg(test)]
pub(crate) mod testutil;

pub use batch::{IndexCache, PartitionIndex, QuerySession};
pub use cancel::{CancelToken, Interrupt};
pub use dataset::{Dataset, StreamBuffer};
pub use engine::{Engine, EngineBuilder};
pub use exact::ExactSum;
pub use exec::{ExecOptions, Isolation, RunOutcome, ShardPolicy};
pub use join::{JoinOptions, ProbeStrategy};
pub use partition::{AdaptiveConfig, PartitionMap, PartitionMapStats};
pub use persist::{PersistError, PersistStats, PersistStore, Snapshot};
pub use query::{FilterStrategy, Metric, Query, ScanClass};
pub use result::{AggregateValues, JoinPair, MatchRecord, QueryError, QueryOutcome, QueryResult};
pub use scheduler::{
    AggregateCache, AggregateCacheStats, DatasetId, Priority, QueryScheduler, ScheduledQuery,
    SchedulerConfig,
};
pub use shard::ShardSet;
pub use stats::{
    BatchQueryStats, BatchStats, JoinDecisions, SchedulerStats, ShardStats, ShardTiming,
    StreamStats, Timings, WaveStats,
};
pub use stream::{
    chunk_channel, ChannelChunkSource, ChunkSender, ChunkSource, FileChunkSource,
    ReaderChunkSource, SliceChunkSource,
};

/// A named fault-injection hook. Compiles to nothing unless the
/// `fault-injection` feature is on; with it, the hook consults the
/// `fault` module's failpoint registry (a single relaxed atomic load
/// while disarmed) and may panic or stall as the armed `FaultAction`
/// dictates. Place only inside worker task bodies, where a panic is
/// caught and isolated by the pool.
#[macro_export]
macro_rules! fault_point {
    ($name:expr) => {
        #[cfg(feature = "fault-injection")]
        $crate::fault::fire($name);
    };
}

/// Crate-level error type.
#[derive(Debug)]
pub enum Error {
    /// Parsing of the raw input failed.
    Parse(atgis_formats::ParseError),
    /// I/O failure while reading a dataset file.
    Io(std::io::Error),
    /// The query is not supported for this dataset/mode combination.
    Unsupported(String),
    /// The call violated an object's lifecycle (e.g. a join on a
    /// mid-ingest streaming session, querying a failed session).
    InvalidState(String),
    /// Execution was cancelled via a [`cancel::CancelToken`].
    Cancelled,
    /// The [`cancel::CancelToken`] deadline elapsed mid-execution.
    DeadlineExceeded,
    /// A worker task panicked; the payload is the panic message. The
    /// pool, the engine and every shared cache survive — only the
    /// affected query fails.
    TaskPanicked(String),
}

impl Error {
    /// The per-query [`QueryError`] form of this error, when it has
    /// one (the cloneable cancellation/deadline/panic subset used by
    /// fault-isolated batch results).
    pub fn as_query_error(&self) -> Option<QueryError> {
        match self {
            Error::Cancelled => Some(QueryError::Cancelled),
            Error::DeadlineExceeded => Some(QueryError::DeadlineExceeded),
            Error::TaskPanicked(m) => Some(QueryError::Panicked(m.clone())),
            _ => None,
        }
    }
}

impl From<atgis_formats::ParseError> for Error {
    fn from(e: atgis_formats::ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<Interrupt> for Error {
    fn from(i: Interrupt) -> Self {
        match i {
            Interrupt::Cancelled => Error::Cancelled,
            Interrupt::DeadlineExceeded => Error::DeadlineExceeded,
        }
    }
}

impl From<pool::JobFault> for Error {
    fn from(f: pool::JobFault) -> Self {
        match f {
            pool::JobFault::Panicked(m) => Error::TaskPanicked(m),
            pool::JobFault::Interrupted(i) => i.into(),
        }
    }
}

impl From<QueryError> for Error {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::Cancelled => Error::Cancelled,
            QueryError::DeadlineExceeded => Error::DeadlineExceeded,
            QueryError::Panicked(m) => Error::TaskPanicked(m),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse error: {e}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::InvalidState(m) => write!(f, "invalid state: {m}"),
            Error::Cancelled => write!(f, "cancelled"),
            Error::DeadlineExceeded => write!(f, "deadline exceeded"),
            Error::TaskPanicked(m) => write!(f, "worker task panicked: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
