//! The Table 1 operator catalogue: every OGC Simple Feature Access
//! spatial operator the paper maps onto an associative transducer,
//! with its transducer class and associativity. The table is
//! executable — [`SpatialOperator::transducer_class`] and
//! [`SpatialOperator::associativity`] reproduce the paper's columns,
//! and the `evaluate_*` methods dispatch to the geometry substrate.

use atgis_geometry::{
    boundary, buffer, contains, convex_hull, crosses, difference, disjoint, intersection,
    intersects, is_simple, overlaps, relate, sym_difference, touches, union, within, Geometry,
    Polygon,
};

/// Transducer classes of §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransducerClass {
    /// Stateless transducer (map/filter).
    Slt,
    /// Aggregation transducer.
    Agt,
    /// Periodically flushing transducer.
    Pft,
}

/// Associativity granularity (Table 1's last column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Associativity {
    /// Work on a single shape can be distributed across threads.
    InShape,
    /// Each shape must be processed by a single thread; shapes
    /// distribute across threads.
    BetweenShapes,
}

/// All Table 1 operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SpatialOperator {
    // (i) single geometry properties
    IsEmpty,
    IsSimple,
    Envelope,
    ConvexHull,
    Boundary,
    // (ii) geometry relations
    Disjoint,
    Intersects,
    Touches,
    Crosses,
    Within,
    Contains,
    Overlaps,
    Relate,
    Distance,
    // (iii) set-theoretic operations
    Intersection,
    Difference,
    Union,
    SymDifference,
    Buffer,
}

impl SpatialOperator {
    /// Every operator, in Table 1 order.
    pub const ALL: [SpatialOperator; 19] = [
        SpatialOperator::IsEmpty,
        SpatialOperator::IsSimple,
        SpatialOperator::Envelope,
        SpatialOperator::ConvexHull,
        SpatialOperator::Boundary,
        SpatialOperator::Disjoint,
        SpatialOperator::Intersects,
        SpatialOperator::Touches,
        SpatialOperator::Crosses,
        SpatialOperator::Within,
        SpatialOperator::Contains,
        SpatialOperator::Overlaps,
        SpatialOperator::Relate,
        SpatialOperator::Distance,
        SpatialOperator::Intersection,
        SpatialOperator::Difference,
        SpatialOperator::Union,
        SpatialOperator::SymDifference,
        SpatialOperator::Buffer,
    ];

    /// The transducer class Table 1 assigns when one operand is a
    /// query parameter.
    pub fn transducer_class(&self) -> TransducerClass {
        use SpatialOperator::*;
        match self {
            IsSimple | Boundary | Intersection | Difference | Union | SymDifference | Buffer => {
                TransducerClass::Slt
            }
            _ => TransducerClass::Pft,
        }
    }

    /// Table 1's associativity column.
    pub fn associativity(&self) -> Associativity {
        match self.transducer_class() {
            TransducerClass::Slt => Associativity::BetweenShapes,
            _ => Associativity::InShape,
        }
    }

    /// The PostGIS-style name (`ST_*`).
    pub fn name(&self) -> &'static str {
        use SpatialOperator::*;
        match self {
            IsEmpty => "ST_IsEmpty",
            IsSimple => "ST_IsSimple",
            Envelope => "ST_Envelope",
            ConvexHull => "ST_ConvexHull",
            Boundary => "ST_Boundary",
            Disjoint => "ST_Disjoint",
            Intersects => "ST_Intersects",
            Touches => "ST_Touches",
            Crosses => "ST_Crosses",
            Within => "ST_Within",
            Contains => "ST_Contains",
            Overlaps => "ST_Overlaps",
            Relate => "ST_Relate",
            Distance => "ST_Distance",
            Intersection => "ST_Intersection",
            Difference => "ST_Difference",
            Union => "ST_Union",
            SymDifference => "ST_SymDifference",
            Buffer => "ST_Buffer",
        }
    }

    /// Evaluates a relation predicate between two geometries; `None`
    /// for non-predicate operators.
    pub fn evaluate_predicate(&self, a: &Geometry, b: &Geometry) -> Option<bool> {
        use SpatialOperator::*;
        Some(match self {
            Disjoint => disjoint(a, b),
            Intersects => intersects(a, b),
            Touches => touches(a, b),
            Crosses => crosses(a, b),
            Within => within(a, b),
            Contains => contains(a, b),
            Overlaps => overlaps(a, b),
            _ => return None,
        })
    }

    /// Evaluates a single-geometry property; `None` for other
    /// operators.
    pub fn evaluate_property(&self, g: &Geometry) -> Option<PropertyValue> {
        use SpatialOperator::*;
        Some(match self {
            IsEmpty => PropertyValue::Bool(g.num_points() == 0),
            IsSimple => PropertyValue::Bool(is_simple(g)),
            Envelope => PropertyValue::Geometry(Geometry::Polygon(Polygon::from_mbr(&g.mbr()))),
            ConvexHull => PropertyValue::Geometry(Geometry::Polygon(Polygon::new(
                convex_hull(&g.points()),
                Vec::new(),
            ))),
            Boundary => PropertyValue::Geometry(boundary(g)),
            _ => return None,
        })
    }

    /// Evaluates a set-theoretic operation on two polygons; `None`
    /// for other operators.
    pub fn evaluate_setop(&self, a: &Polygon, b: &Polygon) -> Option<Geometry> {
        use SpatialOperator::*;
        Some(match self {
            Intersection => Geometry::MultiPolygon(intersection(a, b)),
            Difference => Geometry::MultiPolygon(difference(a, b)),
            Union => Geometry::MultiPolygon(union(a, b)),
            SymDifference => Geometry::MultiPolygon(sym_difference(a, b)),
            Buffer => Geometry::Polygon(buffer(a, 0.1, 8)),
            _ => return None,
        })
    }

    /// Computes the DE-9IM relation (ST_Relate).
    pub fn evaluate_relate(a: &Geometry, b: &Geometry) -> String {
        relate(a, b).to_de9im_string()
    }

    /// Computes the minimum planar distance (ST_Distance).
    pub fn evaluate_distance(a: &Geometry, b: &Geometry) -> f64 {
        atgis_geometry::distance(a, b)
    }
}

/// Result of a single-geometry property operator.
#[derive(Debug, Clone)]
pub enum PropertyValue {
    /// Boolean property.
    Bool(bool),
    /// Geometry-valued property.
    Geometry(Geometry),
}

/// Computes `ST_Area(ST_Union(a, b))` for a joined pair — the
/// combined query's final aggregation, shared by the single-query and
/// batch execution paths. Non-polygon members fall back to the
/// inclusion–exclusion approximation using the MBR-free sum
/// (documented deviation: exact union is defined on polygons).
pub fn union_area(a: &Geometry, b: &Geometry) -> f64 {
    use atgis_geometry::{measures, DistanceModel};
    match (a, b) {
        (Geometry::Polygon(pa), Geometry::Polygon(pb)) => measures::area(
            &Geometry::MultiPolygon(union(pa, pb)),
            DistanceModel::Spherical,
        ),
        _ => {
            measures::area(a, DistanceModel::Spherical)
                + measures::area(b, DistanceModel::Spherical)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgis_geometry::polygon::unit_square;
    use atgis_geometry::{Mbr, Point};

    #[test]
    fn table1_classes_match_paper() {
        use SpatialOperator::*;
        // (i) single-geometry: PFT except IsSimple/Boundary.
        assert_eq!(IsEmpty.transducer_class(), TransducerClass::Pft);
        assert_eq!(IsSimple.transducer_class(), TransducerClass::Slt);
        assert_eq!(Envelope.transducer_class(), TransducerClass::Pft);
        assert_eq!(ConvexHull.transducer_class(), TransducerClass::Pft);
        assert_eq!(Boundary.transducer_class(), TransducerClass::Slt);
        // (ii) relations: all PFT, in-shape.
        for op in [
            Disjoint, Intersects, Touches, Crosses, Within, Contains, Overlaps, Relate, Distance,
        ] {
            assert_eq!(op.transducer_class(), TransducerClass::Pft, "{}", op.name());
            assert_eq!(op.associativity(), Associativity::InShape);
        }
        // (iii) set ops: all SLT, between shapes.
        for op in [Intersection, Difference, Union, SymDifference, Buffer] {
            assert_eq!(op.transducer_class(), TransducerClass::Slt, "{}", op.name());
            assert_eq!(op.associativity(), Associativity::BetweenShapes);
        }
    }

    #[test]
    fn all_has_19_operators_like_table1() {
        assert_eq!(SpatialOperator::ALL.len(), 19);
        let names: std::collections::HashSet<&str> =
            SpatialOperator::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), 19, "names unique");
        assert!(names.iter().all(|n| n.starts_with("ST_")));
    }

    #[test]
    fn predicates_dispatch() {
        let a = Geometry::Polygon(unit_square());
        let b = Geometry::Polygon(Polygon::from_mbr(&Mbr::new(0.5, 0.5, 2.0, 2.0)));
        assert_eq!(
            SpatialOperator::Intersects.evaluate_predicate(&a, &b),
            Some(true)
        );
        assert_eq!(
            SpatialOperator::Disjoint.evaluate_predicate(&a, &b),
            Some(false)
        );
        assert_eq!(SpatialOperator::Union.evaluate_predicate(&a, &b), None);
    }

    #[test]
    fn properties_dispatch() {
        let g = Geometry::Polygon(unit_square());
        match SpatialOperator::Envelope.evaluate_property(&g) {
            Some(PropertyValue::Geometry(env)) => assert_eq!(env.mbr(), g.mbr()),
            other => panic!("{other:?}"),
        }
        match SpatialOperator::IsSimple.evaluate_property(&g) {
            Some(PropertyValue::Bool(true)) => {}
            other => panic!("{other:?}"),
        }
        assert!(SpatialOperator::Intersects.evaluate_property(&g).is_none());
    }

    #[test]
    fn setops_dispatch() {
        let a = unit_square();
        let b = Polygon::from_mbr(&Mbr::new(0.5, 0.5, 1.5, 1.5));
        match SpatialOperator::Intersection.evaluate_setop(&a, &b) {
            Some(g) => assert!((g.area() - 0.25).abs() < 1e-9),
            None => panic!("intersection must evaluate"),
        }
        assert!(SpatialOperator::Intersects.evaluate_setop(&a, &b).is_none());
    }

    #[test]
    fn union_area_of_disjoint_squares_sums() {
        let a = Geometry::Polygon(unit_square());
        let b = Geometry::Polygon(Polygon::from_mbr(&Mbr::new(5.0, 5.0, 6.0, 6.0)));
        let sum = union_area(&a, &b);
        let solo = union_area(&a, &a.clone());
        // Disjoint squares: union area is the sum of both; a square
        // unioned with itself keeps its own area.
        assert!(sum > solo * 1.5, "{sum} vs {solo}");
        assert!(solo > 0.0);
    }

    #[test]
    fn relate_produces_de9im_string() {
        let a = Geometry::Polygon(unit_square());
        let b = Geometry::Point(Point::new(0.5, 0.5));
        let s = SpatialOperator::evaluate_relate(&a, &b);
        assert_eq!(s.len(), 9);
    }
}
