//! Spatial grid partitioning (§4.4 stage 3 and §5.6).
//!
//! Partitioning terminates the first pipeline of a join: geometries
//! (their MBRs plus source offsets) are scattered into fixed-size grid
//! cells; geometries straddling cell boundaries are replicated into
//! every cell they touch (the non-disjoint partitions whose duplicate
//! results the join removes later). Two store layouts implement the
//! paper's data-structure trade-off:
//!
//! * [`ArrayStore`] — one flat `Vec` per cell: best locality, but
//!   merging two stores copies every entry (linear-time merge);
//! * [`ListStore`] — a per-cell *list of chunks*: constant-time merge
//!   (chunk handles are moved, never copied) at the cost of pointer-
//!   chasing during reads.
//!
//! # The two-level skew-adaptive partition map
//!
//! A uniform grid serialises skewed joins: when the data clusters (the
//! Fig. 14 experiment), a handful of hot cells hold most of the
//! entries and their per-partition MBR-compare work — superlinear in
//! the cell population — dominates the whole join while every other
//! worker idles. [`PartitionMap`] fixes this with a second level:
//! after the partition pipeline has filled a [`PartitionStore`],
//! per-cell load statistics pick out cells holding more than a target
//! number of objects, and each hot cell is recursively split into its
//! own sub-grid whose resolution is derived from the cell's load
//! (`⌈√(load/target)⌉` sub-cells per axis, capped by
//! [`AdaptiveConfig::max_subdiv`]). Entries of a split cell are
//! scattered into every sub-cell their MBR touches — the same
//! replicate-and-deduplicate contract as the base grid, so the join's
//! duplicate elimination already guarantees identical results.
//!
//! Correctness of the refinement relies only on monotone index
//! clamping: two MBRs that intersect map to overlapping sub-cell index
//! rectangles under *any* sub-grid extent, so every candidate pair of
//! a hot cell survives into at least one of its sub-slots.
//!
//! A split is rolled back when it replicates entries beyond
//! [`AdaptiveConfig::max_replication`] — the pathological case of a
//! cell whose entries all mutually overlap, where refinement would
//! multiply work instead of dividing it.
//!
//! The resulting map is a flat list of *slots* — unsplit base cells
//! read straight from the store, plus materialised sub-cells of split
//! cells — which the join pipeline fans out over instead of base
//! cells. [`PartitionMapStats`] records what the builder decided so
//! `stats.rs` can surface split decisions per query.

use atgis_formats::RawFeature;
use atgis_geometry::Mbr;

/// One partition entry: everything the join pipeline needs without
/// re-parsing (§4.5: "The partition has two lists of MBRs and the
/// offset in the original data of the corresponding object").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartEntry {
    /// Source object id.
    pub id: u64,
    /// Byte offset for re-parsing.
    pub offset: u64,
    /// Byte length for re-parsing.
    pub len: u32,
    /// The object's bounding box.
    pub mbr: Mbr,
    /// Join side: true = left (id < threshold).
    pub left_side: bool,
}

impl PartEntry {
    /// Builds an entry from a parsed feature.
    pub fn from_feature(f: &RawFeature, left_side: bool) -> Self {
        PartEntry {
            id: f.id,
            offset: f.offset,
            len: f.len,
            mbr: f.geometry.mbr(),
            left_side,
        }
    }
}

/// The partition grid: cell size in degrees over a fixed extent
/// (§5.6 sweeps cell sizes 0.25°–4°).
#[derive(Debug, Clone, Copy)]
pub struct GridSpec {
    /// Covered extent.
    pub extent: Mbr,
    /// Cell edge length in degrees.
    pub cell_deg: f64,
}

impl GridSpec {
    /// Creates a grid covering `extent` with `cell_deg` cells.
    pub fn new(extent: Mbr, cell_deg: f64) -> Self {
        assert!(cell_deg > 0.0, "cell size must be positive");
        GridSpec { extent, cell_deg }
    }

    /// Grid dimensions (columns, rows).
    pub fn dims(&self) -> (usize, usize) {
        let nx = (self.extent.width() / self.cell_deg).ceil().max(1.0) as usize;
        let ny = (self.extent.height() / self.cell_deg).ceil().max(1.0) as usize;
        (nx, ny)
    }

    /// Total cell count.
    pub fn num_cells(&self) -> usize {
        let (nx, ny) = self.dims();
        nx * ny
    }

    /// Indices of every cell a box overlaps (clamped to the extent).
    pub fn cells_for(&self, mbr: &Mbr) -> Vec<usize> {
        if mbr.is_empty() {
            return Vec::new();
        }
        let (nx, ny) = self.dims();
        let clamp = |v: f64, hi: usize| -> usize {
            if v < 0.0 {
                0
            } else {
                (v as usize).min(hi - 1)
            }
        };
        let x0 = clamp((mbr.min_x - self.extent.min_x) / self.cell_deg, nx);
        let x1 = clamp((mbr.max_x - self.extent.min_x) / self.cell_deg, nx);
        let y0 = clamp((mbr.min_y - self.extent.min_y) / self.cell_deg, ny);
        let y1 = clamp((mbr.max_y - self.extent.min_y) / self.cell_deg, ny);
        let mut out = Vec::with_capacity((x1 - x0 + 1) * (y1 - y0 + 1));
        for y in y0..=y1 {
            for x in x0..=x1 {
                out.push(y * nx + x);
            }
        }
        out
    }

    /// The cell owning a point, using the same clamp-to-extent mapping
    /// as [`GridSpec::cells_for`] — so the cell of any point inside an
    /// MBR is one of the cells the MBR replicates into.
    pub fn cell_of_point(&self, x: f64, y: f64) -> usize {
        let (nx, ny) = self.dims();
        let clamp = |v: f64, hi: usize| -> usize {
            if v < 0.0 {
                0
            } else {
                (v as usize).min(hi - 1)
            }
        };
        let cx = clamp((x - self.extent.min_x) / self.cell_deg, nx);
        let cy = clamp((y - self.extent.min_y) / self.cell_deg, ny);
        cy * nx + cx
    }

    /// The rectangle covered by a cell (edge cells are clipped to the
    /// extent).
    pub fn cell_rect(&self, cell: usize) -> Mbr {
        let (nx, _) = self.dims();
        let x = cell % nx;
        let y = cell / nx;
        let min_x = self.extent.min_x + x as f64 * self.cell_deg;
        let min_y = self.extent.min_y + y as f64 * self.cell_deg;
        Mbr::new(
            min_x,
            min_y,
            (min_x + self.cell_deg).min(self.extent.max_x),
            (min_y + self.cell_deg).min(self.extent.max_y),
        )
    }
}

/// Configuration of the skew-adaptive second-level split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdaptiveConfig {
    /// Target objects per join partition: base cells holding more
    /// entries than this are split into a second-level grid. `0`
    /// disables splitting (pure uniform grid).
    pub target_per_cell: usize,
    /// Upper bound on a split cell's sub-grid edge (sub-cells per
    /// axis), bounding the worst-case replication fan-out per level.
    pub max_subdiv: usize,
    /// Replication budget: a split level is rolled back when
    /// scattering its entries into sub-cells grows them by more than
    /// this factor (a hot cell whose entries all mutually overlap
    /// gains nothing from splitting).
    pub max_replication: usize,
    /// Maximum recursion depth: a sub-cell that is still hot (a
    /// cluster much tighter than the base grid) is split again up to
    /// this many levels.
    pub max_depth: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            target_per_cell: 1024,
            max_subdiv: 16,
            max_replication: 3,
            max_depth: 4,
        }
    }
}

impl AdaptiveConfig {
    /// A config that never splits (uniform-grid behaviour).
    pub fn disabled() -> Self {
        AdaptiveConfig {
            target_per_cell: 0,
            ..AdaptiveConfig::default()
        }
    }

    /// True when splitting can happen at all.
    pub fn enabled(&self) -> bool {
        self.target_per_cell > 0
    }
}

/// What the [`PartitionMap`] builder decided, for `stats.rs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionMapStats {
    /// Cells of the first-level grid.
    pub base_cells: u64,
    /// Hot cells split into a second-level grid.
    pub split_cells: u64,
    /// Join partitions after refinement (unsplit cells + sub-slots).
    pub slots: u64,
    /// Largest per-cell entry count before refinement.
    pub max_cell_entries: u64,
    /// Largest per-slot entry count after refinement.
    pub max_slot_entries: u64,
}

/// One level of a refined slot's ownership chain: the sub-grid laid
/// over the parent region plus this slot's cell index within it.
pub(crate) type ChainLink = (GridSpec, usize);

/// One join partition of the refined map.
#[derive(Debug, Clone)]
pub(crate) enum Slot {
    /// An unsplit base cell, read straight from the store.
    Base(usize),
    /// A (possibly deep) sub-cell of a split hot cell: materialised
    /// entries plus the grid/cell chain below the base level that
    /// identifies the region this slot *owns*.
    Refined {
        entries: Vec<PartEntry>,
        chain: Vec<ChainLink>,
    },
}

/// The two-level partition map: the non-uniform set of join
/// partitions produced by splitting hot cells (see the module docs).
///
/// When built over a known [`GridSpec`] the map also supports the
/// *reference-point* duplicate filter: a replicated candidate pair is
/// owned by exactly one slot — the one whose region contains the
/// bottom-left corner of the two MBRs' intersection
/// ([`PartitionMap::owns_point`]) — so the join refines each pair once
/// regardless of how many partitions both objects were copied into.
#[derive(Debug, Clone)]
pub struct PartitionMap {
    pub(crate) grid: Option<GridSpec>,
    pub(crate) slots: Vec<Slot>,
    pub(crate) stats: PartitionMapStats,
}

impl PartitionMap {
    /// The identity map: one slot per base cell, nothing split. Built
    /// without grid geometry, so the join falls back to end-of-run
    /// duplicate elimination instead of the reference-point filter.
    /// Per-cell load statistics are not collected (they would cost an
    /// extra pass over every entry and nothing reads them here); use
    /// [`PartitionMap::adaptive`] for a stats-bearing map.
    pub fn uniform<S: PartitionStore>(store: &S) -> Self {
        let cells = store.num_cells();
        PartitionMap {
            grid: None,
            slots: (0..cells).map(Slot::Base).collect(),
            stats: PartitionMapStats {
                base_cells: cells as u64,
                split_cells: 0,
                slots: cells as u64,
                max_cell_entries: 0,
                max_slot_entries: 0,
            },
        }
    }

    /// Builds the skew-adaptive map: per-cell loads are measured and
    /// cells holding more than `cfg.target_per_cell` entries are split
    /// into a `k × k` second-level grid with `k = ⌈√(load/target)⌉`
    /// (clamped to `[2, cfg.max_subdiv]`), recursively while sub-cells
    /// stay hot. With splitting disabled this still returns a
    /// grid-aware uniform map (reference-point filter active).
    pub fn adaptive<S: PartitionStore>(grid: &GridSpec, store: &S, cfg: &AdaptiveConfig) -> Self {
        let cells = store.num_cells();
        let mut slots = Vec::with_capacity(cells);
        let mut stats = PartitionMapStats {
            base_cells: cells as u64,
            ..PartitionMapStats::default()
        };
        for cell in 0..cells {
            let mut load = 0usize;
            store.for_each(cell, |_| load += 1);
            stats.max_cell_entries = stats.max_cell_entries.max(load as u64);
            if !cfg.enabled() || load <= cfg.target_per_cell {
                stats.max_slot_entries = stats.max_slot_entries.max(load as u64);
                slots.push(Slot::Base(cell));
                continue;
            }
            match split_cell(grid, store, cell, load, cfg) {
                Some(sub_slots) => {
                    stats.split_cells += 1;
                    for (entries, chain) in sub_slots {
                        stats.max_slot_entries = stats.max_slot_entries.max(entries.len() as u64);
                        slots.push(Slot::Refined { entries, chain });
                    }
                }
                None => {
                    // Replication budget exceeded: keep the cell whole.
                    stats.max_slot_entries = stats.max_slot_entries.max(load as u64);
                    slots.push(Slot::Base(cell));
                }
            }
        }
        stats.slots = slots.len() as u64;
        PartitionMap {
            grid: Some(*grid),
            slots,
            stats,
        }
    }

    /// Number of join partitions.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// What the builder decided.
    pub fn stats(&self) -> PartitionMapStats {
        self.stats
    }

    /// True when the map can decide slot ownership of a point — i.e.
    /// the join may use the reference-point duplicate filter instead
    /// of end-of-run deduplication.
    pub fn supports_owner_filter(&self) -> bool {
        self.grid.is_some()
    }

    /// The reference-point test: does `slot` own the point `(x, y)`?
    /// Exactly one slot owns any point (clamping maps out-of-extent
    /// points to edge cells at every level), and the owning slot of a
    /// point inside an entry's MBR always holds that entry, so
    /// filtering candidate pairs by ownership of their intersection
    /// corner keeps exactly one copy of every result. Always true for
    /// maps without grid geometry.
    pub fn owns_point(&self, slot: usize, x: f64, y: f64) -> bool {
        let Some(grid) = &self.grid else {
            return true;
        };
        match &self.slots[slot] {
            Slot::Base(cell) => grid.cell_of_point(x, y) == *cell,
            Slot::Refined { chain, .. } => chain
                .iter()
                .all(|(spec, cell)| spec.cell_of_point(x, y) == *cell),
        }
    }

    /// The area (in square degrees) of the region a slot owns, when
    /// the map knows its grid geometry — the denominator of the join's
    /// partition-density probe heuristic. `None` for maps built
    /// without a [`GridSpec`] (e.g. [`PartitionMap::uniform`]), where
    /// density cannot be derived.
    pub fn slot_area(&self, slot: usize) -> Option<f64> {
        let grid = self.grid.as_ref()?;
        match &self.slots[slot] {
            Slot::Base(cell) => Some(grid.cell_rect(*cell).area()),
            Slot::Refined { chain, .. } => chain
                .last()
                .map(|(spec, cell)| spec.cell_rect(*cell).area()),
        }
    }

    /// Number of entries in one slot, answered without visiting them
    /// (O(1) for the array store, O(#chunks) for the list store).
    pub fn slot_len<S: PartitionStore>(&self, store: &S, slot: usize) -> usize {
        match &self.slots[slot] {
            Slot::Base(cell) => store.cell_len(*cell),
            Slot::Refined { entries, .. } => entries.len(),
        }
    }

    /// The slots holding at least one entry. On the sparse grids the
    /// default extent produces (tens of thousands of cells, a handful
    /// occupied) the join fans out over this list instead of every
    /// slot — an empty slot can only produce the empty
    /// [`crate::join::JoinOutcome`] contribution, so skipping it is
    /// observationally free.
    pub fn occupied_slots<S: PartitionStore>(&self, store: &S) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&s| self.slot_len(store, s) > 0)
            .collect()
    }

    /// Visits every entry of one slot (insertion order for base cells,
    /// scatter order for refined sub-cells).
    pub fn for_each_entry<S: PartitionStore>(
        &self,
        store: &S,
        slot: usize,
        mut f: impl FnMut(&PartEntry),
    ) {
        match &self.slots[slot] {
            Slot::Base(cell) => store.for_each(*cell, f),
            Slot::Refined { entries, .. } => {
                for e in entries {
                    f(e);
                }
            }
        }
    }
}

/// Scatters a hot cell's entries into its second-level grid,
/// recursively re-splitting sub-cells that stay hot (clusters much
/// tighter than the base grid). Returns `None` when no level managed
/// to split — the caller keeps the cell whole.
fn split_cell<S: PartitionStore>(
    grid: &GridSpec,
    store: &S,
    cell: usize,
    load: usize,
    cfg: &AdaptiveConfig,
) -> Option<Vec<(Vec<PartEntry>, Vec<ChainLink>)>> {
    let mut entries = Vec::with_capacity(load);
    store.for_each(cell, |e| entries.push(*e));
    let mut out = Vec::new();
    let chain = vec![(*grid, cell)];
    split_entries(grid.cell_rect(cell), entries, chain, cfg, 0, &mut out);
    // A single output slot means no level split anything.
    if out.len() <= 1 {
        None
    } else {
        Some(out)
    }
}

/// One recursion level of the adaptive split: choose a `k × k`
/// sub-grid from this slot's load, scatter, and recurse into sub-cells
/// that remain above target. Rolls this level back (emitting the slot
/// whole) when the scatter exceeds the replication budget or the depth
/// bound is hit.
fn split_entries(
    rect: Mbr,
    entries: Vec<PartEntry>,
    chain: Vec<ChainLink>,
    cfg: &AdaptiveConfig,
    depth: usize,
    out: &mut Vec<(Vec<PartEntry>, Vec<ChainLink>)>,
) {
    let load = entries.len();
    let edge = rect.width().max(rect.height());
    // `edge` can be NaN for a degenerate rect; only a strictly
    // positive edge may split.
    let splittable_edge = edge > 0.0;
    if load <= cfg.target_per_cell || depth >= cfg.max_depth.max(1) || !splittable_edge {
        out.push((entries, chain));
        return;
    }
    let k = ((load as f64 / cfg.target_per_cell.max(1) as f64)
        .sqrt()
        .ceil() as usize)
        .clamp(2, cfg.max_subdiv.max(2));
    let sub = GridSpec::new(rect, edge / k as f64);
    let mut sub_slots: Vec<Vec<PartEntry>> = vec![Vec::new(); sub.num_cells()];
    let mut replicated = 0usize;
    let budget = load.saturating_mul(cfg.max_replication.max(1));
    for e in &entries {
        for c in sub.cells_for(&e.mbr) {
            sub_slots[c].push(*e);
            replicated += 1;
        }
        if replicated > budget {
            out.push((entries, chain));
            return;
        }
    }
    for (c, slot) in sub_slots.into_iter().enumerate() {
        if slot.is_empty() {
            continue;
        }
        // Recursion on the smaller rect separates clusters tighter
        // than this level's resolution; the depth bound terminates it
        // even when a sub-cell inherited every entry.
        let mut child = chain.clone();
        child.push((sub, c));
        split_entries(sub.cell_rect(c), slot, child, cfg, depth + 1, out);
    }
}

/// A partition store: per-cell entry collections with an associative
/// merge (the Fig. 3 aggregation transducer).
pub trait PartitionStore: Send + Sync + Sized {
    /// Creates an empty store for `cells` cells.
    fn new(cells: usize) -> Self;
    /// Appends an entry to a cell.
    fn push(&mut self, cell: usize, entry: PartEntry);
    /// Associative merge (concatenates per-cell lists in order).
    fn merge(self, other: Self) -> Self;
    /// Visits every entry of a cell in insertion order.
    fn for_each(&self, cell: usize, f: impl FnMut(&PartEntry));
    /// Number of cells.
    fn num_cells(&self) -> usize;
    /// Total entries across all cells.
    fn len(&self) -> usize;
    /// Number of entries in one cell. The default counts through
    /// [`PartitionStore::for_each`]; stores with per-cell storage
    /// should answer in O(1) — the join fan-out probes every slot for
    /// emptiness before spawning tasks.
    fn cell_len(&self, cell: usize) -> usize {
        let mut n = 0;
        self.for_each(cell, |_| n += 1);
        n
    }
    /// True when no entries are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Materialises a cell into a vector (used by the join pipeline).
    fn cell_entries(&self, cell: usize) -> Vec<PartEntry> {
        let mut v = Vec::new();
        self.for_each(cell, |e| v.push(*e));
        v
    }
}

/// Flat array store: contiguous per-cell vectors.
#[derive(Debug, Clone)]
pub struct ArrayStore {
    pub(crate) cells: Vec<Vec<PartEntry>>,
}

impl PartitionStore for ArrayStore {
    fn new(cells: usize) -> Self {
        ArrayStore {
            cells: vec![Vec::new(); cells],
        }
    }

    fn push(&mut self, cell: usize, entry: PartEntry) {
        self.cells[cell].push(entry);
    }

    fn merge(mut self, other: Self) -> Self {
        // Linear-time: every entry of `other` is copied.
        for (mine, mut theirs) in self.cells.iter_mut().zip(other.cells) {
            mine.append(&mut theirs);
        }
        self
    }

    fn for_each(&self, cell: usize, mut f: impl FnMut(&PartEntry)) {
        for e in &self.cells[cell] {
            f(e);
        }
    }

    fn num_cells(&self) -> usize {
        self.cells.len()
    }

    fn len(&self) -> usize {
        self.cells.iter().map(Vec::len).sum()
    }

    fn cell_len(&self, cell: usize) -> usize {
        self.cells[cell].len()
    }
}

/// Chunk-list store: each cell holds a list of chunk handles; merging
/// moves handles without copying entries (the constant-time merge of
/// §4.4's linked lists, at chunk granularity).
#[derive(Debug, Clone)]
pub struct ListStore {
    pub(crate) cells: Vec<Vec<Vec<PartEntry>>>,
}

impl PartitionStore for ListStore {
    fn new(cells: usize) -> Self {
        ListStore {
            cells: vec![Vec::new(); cells],
        }
    }

    fn push(&mut self, cell: usize, entry: PartEntry) {
        let chunks = &mut self.cells[cell];
        match chunks.last_mut() {
            Some(last) => last.push(entry),
            None => chunks.push(vec![entry]),
        }
    }

    fn merge(mut self, other: Self) -> Self {
        for (mine, theirs) in self.cells.iter_mut().zip(other.cells) {
            // O(#chunks), not O(#entries): handles move, data stays.
            mine.extend(theirs);
        }
        self
    }

    fn for_each(&self, cell: usize, mut f: impl FnMut(&PartEntry)) {
        for chunk in &self.cells[cell] {
            for e in chunk {
                f(e);
            }
        }
    }

    fn num_cells(&self) -> usize {
        self.cells.len()
    }

    fn len(&self) -> usize {
        self.cells.iter().flatten().map(Vec::len).sum()
    }

    fn cell_len(&self, cell: usize) -> usize {
        self.cells[cell].iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn entry(id: u64, x: f64, y: f64, size: f64) -> PartEntry {
        PartEntry {
            id,
            offset: id * 10,
            len: 5,
            mbr: Mbr::new(x, y, x + size, y + size),
            left_side: id.is_multiple_of(2),
        }
    }

    #[test]
    fn grid_dims_and_cells() {
        let g = GridSpec::new(Mbr::new(0.0, 0.0, 4.0, 2.0), 1.0);
        assert_eq!(g.dims(), (4, 2));
        assert_eq!(g.num_cells(), 8);
        // A unit box inside cell (1,0).
        assert_eq!(g.cells_for(&Mbr::new(1.1, 0.1, 1.9, 0.9)), vec![1]);
        // A box straddling four cells.
        let cells = g.cells_for(&Mbr::new(0.5, 0.5, 1.5, 1.5));
        assert_eq!(cells, vec![0, 1, 4, 5]);
    }

    #[test]
    fn out_of_extent_boxes_clamp() {
        let g = GridSpec::new(Mbr::new(0.0, 0.0, 2.0, 2.0), 1.0);
        assert_eq!(g.cells_for(&Mbr::new(-5.0, -5.0, -4.0, -4.0)), vec![0]);
        assert_eq!(g.cells_for(&Mbr::new(9.0, 9.0, 10.0, 10.0)), vec![3]);
        assert!(g.cells_for(&Mbr::EMPTY).is_empty());
    }

    fn check_store<S: PartitionStore>(mut s: S) {
        s.push(0, entry(1, 0.0, 0.0, 1.0));
        s.push(0, entry(2, 0.5, 0.5, 1.0));
        s.push(3, entry(3, 3.0, 3.0, 1.0));
        assert_eq!(s.len(), 3);
        assert_eq!(s.cell_entries(0).len(), 2);
        assert_eq!(s.cell_entries(1).len(), 0);
        assert_eq!(s.cell_entries(3)[0].id, 3);
    }

    #[test]
    fn array_store_basics() {
        check_store(ArrayStore::new(4));
    }

    #[test]
    fn list_store_basics() {
        check_store(ListStore::new(4));
    }

    fn fill<S: PartitionStore>(ids: &[u64]) -> S {
        let mut s = S::new(4);
        for &id in ids {
            s.push((id % 4) as usize, entry(id, id as f64, 0.0, 1.0));
        }
        s
    }

    #[test]
    fn stores_merge_identically() {
        let a1: ArrayStore = fill(&[1, 2, 3]);
        let a2: ArrayStore = fill(&[4, 5]);
        let l1: ListStore = fill(&[1, 2, 3]);
        let l2: ListStore = fill(&[4, 5]);
        let am = a1.merge(a2);
        let lm = l1.merge(l2);
        assert_eq!(am.len(), lm.len());
        for cell in 0..4 {
            assert_eq!(am.cell_entries(cell), lm.cell_entries(cell));
        }
    }

    #[test]
    fn cell_rect_covers_extent() {
        let g = GridSpec::new(Mbr::new(0.0, 0.0, 4.0, 2.0), 1.0);
        assert_eq!(g.cell_rect(0), Mbr::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(g.cell_rect(5), Mbr::new(1.0, 1.0, 2.0, 2.0));
        // Edge cells clip to the extent when it is not a multiple of
        // the cell edge.
        let g = GridSpec::new(Mbr::new(0.0, 0.0, 2.5, 1.0), 1.0);
        assert_eq!(g.cell_rect(2), Mbr::new(2.0, 0.0, 2.5, 1.0));
    }

    #[test]
    fn uniform_map_is_identity() {
        let mut s = ArrayStore::new(4);
        s.push(0, entry(1, 0.0, 0.0, 1.0));
        s.push(0, entry(2, 0.5, 0.5, 1.0));
        s.push(3, entry(3, 3.0, 3.0, 1.0));
        let map = PartitionMap::uniform(&s);
        assert_eq!(map.num_slots(), 4);
        let stats = map.stats();
        assert_eq!(stats.base_cells, 4);
        assert_eq!(stats.split_cells, 0);
        let mut ids = Vec::new();
        map.for_each_entry(&s, 0, |e| ids.push(e.id));
        assert_eq!(ids, vec![1, 2]);
    }

    /// A hot cell: many small entries clustered inside base cell 0 of
    /// a 2×1 grid.
    fn hot_store(n: usize) -> (GridSpec, ArrayStore) {
        let grid = GridSpec::new(Mbr::new(0.0, 0.0, 2.0, 1.0), 1.0);
        let mut s = ArrayStore::new(grid.num_cells());
        for i in 0..n {
            let x = (i % 10) as f64 * 0.1;
            let y = (i / 10 % 10) as f64 * 0.1;
            let e = entry(i as u64, x, y, 0.03);
            for c in grid.cells_for(&e.mbr) {
                s.push(c, e);
            }
        }
        (grid, s)
    }

    #[test]
    fn adaptive_map_splits_hot_cells() {
        let (grid, s) = hot_store(200);
        let cfg = AdaptiveConfig {
            target_per_cell: 16,
            ..AdaptiveConfig::default()
        };
        let map = PartitionMap::adaptive(&grid, &s, &cfg);
        let stats = map.stats();
        assert_eq!(stats.base_cells, 2);
        assert_eq!(stats.split_cells, 1, "only cell 0 is hot");
        assert!(stats.slots > 2, "sub-slots were created: {stats:?}");
        assert!(
            stats.max_slot_entries < stats.max_cell_entries,
            "splitting reduced the hottest partition: {stats:?}"
        );
        // Every original entry survives in at least one slot.
        let mut seen = std::collections::HashSet::new();
        for slot in 0..map.num_slots() {
            map.for_each_entry(&s, slot, |e| {
                seen.insert(e.id);
            });
        }
        assert_eq!(seen.len(), 200);
    }

    #[test]
    fn adaptive_disabled_is_uniform() {
        let (grid, s) = hot_store(100);
        let map = PartitionMap::adaptive(&grid, &s, &AdaptiveConfig::disabled());
        assert_eq!(map.num_slots(), 2);
        assert_eq!(map.stats().split_cells, 0);
    }

    #[test]
    fn recursion_resolves_tight_hotspots() {
        // 300 tiny entries inside a 0.05°-wide hotspot of a 1° cell: a
        // single split level cannot separate them, recursion can.
        let grid = GridSpec::new(Mbr::new(0.0, 0.0, 2.0, 1.0), 1.0);
        let mut s = ArrayStore::new(grid.num_cells());
        for i in 0..300u64 {
            let x = 0.5 + (i % 20) as f64 * 0.0025;
            let y = 0.5 + (i / 20) as f64 * 0.0025;
            s.push(0, entry(i, x, y, 0.001));
        }
        let cfg = AdaptiveConfig {
            target_per_cell: 32,
            ..AdaptiveConfig::default()
        };
        let map = PartitionMap::adaptive(&grid, &s, &cfg);
        let stats = map.stats();
        assert_eq!(stats.split_cells, 1);
        assert!(
            stats.max_slot_entries <= 4 * 32,
            "recursion must keep splitting the tight cluster: {stats:?}"
        );
    }

    #[test]
    fn adaptive_rolls_back_pathological_splits() {
        // Entries all covering the whole cell: any split replicates
        // every entry into every sub-cell; the budget keeps the cell
        // whole.
        let grid = GridSpec::new(Mbr::new(0.0, 0.0, 2.0, 1.0), 1.0);
        let mut s = ArrayStore::new(grid.num_cells());
        for i in 0..100u64 {
            s.push(0, entry(i, 0.0, 0.0, 1.0));
        }
        let cfg = AdaptiveConfig {
            target_per_cell: 8,
            ..AdaptiveConfig::default()
        };
        let map = PartitionMap::adaptive(&grid, &s, &cfg);
        assert_eq!(map.stats().split_cells, 0, "split must roll back");
        assert_eq!(map.num_slots(), 2);
    }

    proptest! {
        #[test]
        fn adaptive_map_preserves_entry_coverage(
            xs in prop::collection::vec((0.0..1.9f64, 0.0..0.9f64, 0.01..0.3f64), 1..80),
            target in 1usize..12,
        ) {
            let grid = GridSpec::new(Mbr::new(0.0, 0.0, 2.0, 1.0), 1.0);
            let mut s = ArrayStore::new(grid.num_cells());
            for (i, (x, y, size)) in xs.iter().enumerate() {
                let e = entry(i as u64, *x, *y, *size);
                for c in grid.cells_for(&e.mbr) {
                    s.push(c, e);
                }
            }
            let cfg = AdaptiveConfig { target_per_cell: target, ..AdaptiveConfig::default() };
            let map = PartitionMap::adaptive(&grid, &s, &cfg);
            let mut seen = std::collections::HashSet::new();
            for slot in 0..map.num_slots() {
                map.for_each_entry(&s, slot, |e| { seen.insert(e.id); });
            }
            prop_assert_eq!(seen.len(), xs.len());
        }
    }

    proptest! {
        #[test]
        fn merge_order_is_preserved(
            left in prop::collection::vec(0u64..100, 0..40),
            right in prop::collection::vec(0u64..100, 0..40),
        ) {
            let a: ArrayStore = fill(&left);
            let b: ArrayStore = fill(&right);
            let merged = a.merge(b);
            for cell in 0..4 {
                let ids: Vec<u64> = merged.cell_entries(cell).iter().map(|e| e.id).collect();
                let expect: Vec<u64> = left
                    .iter()
                    .chain(&right)
                    .copied()
                    .filter(|id| (id % 4) as usize == cell)
                    .collect();
                prop_assert_eq!(ids, expect);
            }
        }

        #[test]
        fn list_and_array_agree(
            batches in prop::collection::vec(
                prop::collection::vec(0u64..50, 0..20), 1..6),
        ) {
            let arrays: Vec<ArrayStore> = batches.iter().map(|b| fill(b)).collect();
            let lists: Vec<ListStore> = batches.iter().map(|b| fill(b)).collect();
            let am = arrays.into_iter().reduce(|a, b| a.merge(b)).unwrap();
            let lm = lists.into_iter().reduce(|a, b| a.merge(b)).unwrap();
            for cell in 0..4 {
                prop_assert_eq!(am.cell_entries(cell), lm.cell_entries(cell));
            }
        }
    }
}
