//! Spatial grid partitioning (§4.4 stage 3 and §5.6).
//!
//! Partitioning terminates the first pipeline of a join: geometries
//! (their MBRs plus source offsets) are scattered into fixed-size grid
//! cells; geometries straddling cell boundaries are replicated into
//! every cell they touch (the non-disjoint partitions whose duplicate
//! results the join removes later). Two store layouts implement the
//! paper's data-structure trade-off:
//!
//! * [`ArrayStore`] — one flat `Vec` per cell: best locality, but
//!   merging two stores copies every entry (linear-time merge);
//! * [`ListStore`] — a per-cell *list of chunks*: constant-time merge
//!   (chunk handles are moved, never copied) at the cost of pointer-
//!   chasing during reads.

use atgis_formats::RawFeature;
use atgis_geometry::Mbr;

/// One partition entry: everything the join pipeline needs without
/// re-parsing (§4.5: "The partition has two lists of MBRs and the
/// offset in the original data of the corresponding object").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartEntry {
    /// Source object id.
    pub id: u64,
    /// Byte offset for re-parsing.
    pub offset: u64,
    /// Byte length for re-parsing.
    pub len: u32,
    /// The object's bounding box.
    pub mbr: Mbr,
    /// Join side: true = left (id < threshold).
    pub left_side: bool,
}

impl PartEntry {
    /// Builds an entry from a parsed feature.
    pub fn from_feature(f: &RawFeature, left_side: bool) -> Self {
        PartEntry {
            id: f.id,
            offset: f.offset,
            len: f.len,
            mbr: f.geometry.mbr(),
            left_side,
        }
    }
}

/// The partition grid: cell size in degrees over a fixed extent
/// (§5.6 sweeps cell sizes 0.25°–4°).
#[derive(Debug, Clone, Copy)]
pub struct GridSpec {
    /// Covered extent.
    pub extent: Mbr,
    /// Cell edge length in degrees.
    pub cell_deg: f64,
}

impl GridSpec {
    /// Creates a grid covering `extent` with `cell_deg` cells.
    pub fn new(extent: Mbr, cell_deg: f64) -> Self {
        assert!(cell_deg > 0.0, "cell size must be positive");
        GridSpec { extent, cell_deg }
    }

    /// Grid dimensions (columns, rows).
    pub fn dims(&self) -> (usize, usize) {
        let nx = (self.extent.width() / self.cell_deg).ceil().max(1.0) as usize;
        let ny = (self.extent.height() / self.cell_deg).ceil().max(1.0) as usize;
        (nx, ny)
    }

    /// Total cell count.
    pub fn num_cells(&self) -> usize {
        let (nx, ny) = self.dims();
        nx * ny
    }

    /// Indices of every cell a box overlaps (clamped to the extent).
    pub fn cells_for(&self, mbr: &Mbr) -> Vec<usize> {
        if mbr.is_empty() {
            return Vec::new();
        }
        let (nx, ny) = self.dims();
        let clamp = |v: f64, hi: usize| -> usize {
            if v < 0.0 {
                0
            } else {
                (v as usize).min(hi - 1)
            }
        };
        let x0 = clamp((mbr.min_x - self.extent.min_x) / self.cell_deg, nx);
        let x1 = clamp((mbr.max_x - self.extent.min_x) / self.cell_deg, nx);
        let y0 = clamp((mbr.min_y - self.extent.min_y) / self.cell_deg, ny);
        let y1 = clamp((mbr.max_y - self.extent.min_y) / self.cell_deg, ny);
        let mut out = Vec::with_capacity((x1 - x0 + 1) * (y1 - y0 + 1));
        for y in y0..=y1 {
            for x in x0..=x1 {
                out.push(y * nx + x);
            }
        }
        out
    }
}

/// A partition store: per-cell entry collections with an associative
/// merge (the Fig. 3 aggregation transducer).
pub trait PartitionStore: Send + Sync + Sized {
    /// Creates an empty store for `cells` cells.
    fn new(cells: usize) -> Self;
    /// Appends an entry to a cell.
    fn push(&mut self, cell: usize, entry: PartEntry);
    /// Associative merge (concatenates per-cell lists in order).
    fn merge(self, other: Self) -> Self;
    /// Visits every entry of a cell in insertion order.
    fn for_each(&self, cell: usize, f: impl FnMut(&PartEntry));
    /// Number of cells.
    fn num_cells(&self) -> usize;
    /// Total entries across all cells.
    fn len(&self) -> usize;
    /// True when no entries are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Materialises a cell into a vector (used by the join pipeline).
    fn cell_entries(&self, cell: usize) -> Vec<PartEntry> {
        let mut v = Vec::new();
        self.for_each(cell, |e| v.push(*e));
        v
    }
}

/// Flat array store: contiguous per-cell vectors.
#[derive(Debug, Clone)]
pub struct ArrayStore {
    cells: Vec<Vec<PartEntry>>,
}

impl PartitionStore for ArrayStore {
    fn new(cells: usize) -> Self {
        ArrayStore {
            cells: vec![Vec::new(); cells],
        }
    }

    fn push(&mut self, cell: usize, entry: PartEntry) {
        self.cells[cell].push(entry);
    }

    fn merge(mut self, other: Self) -> Self {
        // Linear-time: every entry of `other` is copied.
        for (mine, mut theirs) in self.cells.iter_mut().zip(other.cells) {
            mine.append(&mut theirs);
        }
        self
    }

    fn for_each(&self, cell: usize, mut f: impl FnMut(&PartEntry)) {
        for e in &self.cells[cell] {
            f(e);
        }
    }

    fn num_cells(&self) -> usize {
        self.cells.len()
    }

    fn len(&self) -> usize {
        self.cells.iter().map(Vec::len).sum()
    }
}

/// Chunk-list store: each cell holds a list of chunk handles; merging
/// moves handles without copying entries (the constant-time merge of
/// §4.4's linked lists, at chunk granularity).
#[derive(Debug, Clone)]
pub struct ListStore {
    cells: Vec<Vec<Vec<PartEntry>>>,
}

impl PartitionStore for ListStore {
    fn new(cells: usize) -> Self {
        ListStore {
            cells: vec![Vec::new(); cells],
        }
    }

    fn push(&mut self, cell: usize, entry: PartEntry) {
        let chunks = &mut self.cells[cell];
        match chunks.last_mut() {
            Some(last) => last.push(entry),
            None => chunks.push(vec![entry]),
        }
    }

    fn merge(mut self, other: Self) -> Self {
        for (mine, theirs) in self.cells.iter_mut().zip(other.cells) {
            // O(#chunks), not O(#entries): handles move, data stays.
            mine.extend(theirs);
        }
        self
    }

    fn for_each(&self, cell: usize, mut f: impl FnMut(&PartEntry)) {
        for chunk in &self.cells[cell] {
            for e in chunk {
                f(e);
            }
        }
    }

    fn num_cells(&self) -> usize {
        self.cells.len()
    }

    fn len(&self) -> usize {
        self.cells.iter().flatten().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn entry(id: u64, x: f64, y: f64, size: f64) -> PartEntry {
        PartEntry {
            id,
            offset: id * 10,
            len: 5,
            mbr: Mbr::new(x, y, x + size, y + size),
            left_side: id.is_multiple_of(2),
        }
    }

    #[test]
    fn grid_dims_and_cells() {
        let g = GridSpec::new(Mbr::new(0.0, 0.0, 4.0, 2.0), 1.0);
        assert_eq!(g.dims(), (4, 2));
        assert_eq!(g.num_cells(), 8);
        // A unit box inside cell (1,0).
        assert_eq!(g.cells_for(&Mbr::new(1.1, 0.1, 1.9, 0.9)), vec![1]);
        // A box straddling four cells.
        let cells = g.cells_for(&Mbr::new(0.5, 0.5, 1.5, 1.5));
        assert_eq!(cells, vec![0, 1, 4, 5]);
    }

    #[test]
    fn out_of_extent_boxes_clamp() {
        let g = GridSpec::new(Mbr::new(0.0, 0.0, 2.0, 2.0), 1.0);
        assert_eq!(g.cells_for(&Mbr::new(-5.0, -5.0, -4.0, -4.0)), vec![0]);
        assert_eq!(g.cells_for(&Mbr::new(9.0, 9.0, 10.0, 10.0)), vec![3]);
        assert!(g.cells_for(&Mbr::EMPTY).is_empty());
    }

    fn check_store<S: PartitionStore>(mut s: S) {
        s.push(0, entry(1, 0.0, 0.0, 1.0));
        s.push(0, entry(2, 0.5, 0.5, 1.0));
        s.push(3, entry(3, 3.0, 3.0, 1.0));
        assert_eq!(s.len(), 3);
        assert_eq!(s.cell_entries(0).len(), 2);
        assert_eq!(s.cell_entries(1).len(), 0);
        assert_eq!(s.cell_entries(3)[0].id, 3);
    }

    #[test]
    fn array_store_basics() {
        check_store(ArrayStore::new(4));
    }

    #[test]
    fn list_store_basics() {
        check_store(ListStore::new(4));
    }

    fn fill<S: PartitionStore>(ids: &[u64]) -> S {
        let mut s = S::new(4);
        for &id in ids {
            s.push((id % 4) as usize, entry(id, id as f64, 0.0, 1.0));
        }
        s
    }

    #[test]
    fn stores_merge_identically() {
        let a1: ArrayStore = fill(&[1, 2, 3]);
        let a2: ArrayStore = fill(&[4, 5]);
        let l1: ListStore = fill(&[1, 2, 3]);
        let l2: ListStore = fill(&[4, 5]);
        let am = a1.merge(a2);
        let lm = l1.merge(l2);
        assert_eq!(am.len(), lm.len());
        for cell in 0..4 {
            assert_eq!(am.cell_entries(cell), lm.cell_entries(cell));
        }
    }

    proptest! {
        #[test]
        fn merge_order_is_preserved(
            left in prop::collection::vec(0u64..100, 0..40),
            right in prop::collection::vec(0u64..100, 0..40),
        ) {
            let a: ArrayStore = fill(&left);
            let b: ArrayStore = fill(&right);
            let merged = a.merge(b);
            for cell in 0..4 {
                let ids: Vec<u64> = merged.cell_entries(cell).iter().map(|e| e.id).collect();
                let expect: Vec<u64> = left
                    .iter()
                    .chain(&right)
                    .copied()
                    .filter(|id| (id % 4) as usize == cell)
                    .collect();
                prop_assert_eq!(ids, expect);
            }
        }

        #[test]
        fn list_and_array_agree(
            batches in prop::collection::vec(
                prop::collection::vec(0u64..50, 0..20), 1..6),
        ) {
            let arrays: Vec<ArrayStore> = batches.iter().map(|b| fill(b)).collect();
            let lists: Vec<ListStore> = batches.iter().map(|b| fill(b)).collect();
            let am = arrays.into_iter().reduce(|a, b| a.merge(b)).unwrap();
            let lm = lists.into_iter().reduce(|a, b| a.merge(b)).unwrap();
            for cell in 0..4 {
                prop_assert_eq!(am.cell_entries(cell), lm.cell_entries(cell));
            }
        }
    }
}
