//! Little-endian wire primitives for snapshot files.
//!
//! The same defensive posture as the server's `protocol.rs`: the
//! [`Reader`] never trusts a length or count it has not validated
//! against the bytes actually present. Every collection is prefixed
//! by an element count, and the count is checked against the minimum
//! encoded size of one element **before** any allocation — a crafted
//! or corrupted header cannot make decode reserve gigabytes. Reads
//! past the end yield [`PersistError::Truncated`], never a panic.

use super::PersistError;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `bytes`, seeded by `seed` (chain with the previous
/// digest to checksum discontiguous regions).
pub(crate) fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = if seed == 0 { FNV_OFFSET } else { seed };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Append-only encoder for snapshot payloads.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn bytes(&self) -> &[u8] {
        &self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        // Bit pattern, not value: NaNs and signed zeros round-trip
        // exactly, which the bit-identity contract requires.
        self.u64(v.to_bits());
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Element count of a collection about to be written.
    pub(crate) fn count(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("snapshot collection exceeds u32::MAX entries"));
    }

    pub(crate) fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked decoder over a snapshot payload.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub(crate) fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                what,
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, PersistError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u16(&mut self, what: &'static str) -> Result<u16, PersistError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, PersistError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, PersistError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn f64(&mut self, what: &'static str) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    pub(crate) fn bool(&mut self, what: &'static str) -> Result<bool, PersistError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(PersistError::Malformed {
                what,
                detail: format!("boolean byte {v}"),
            }),
        }
    }

    /// A `usize` encoded as u64, rejected when it does not fit the
    /// host's pointer width.
    pub(crate) fn usize(&mut self, what: &'static str) -> Result<usize, PersistError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| PersistError::Malformed {
            what,
            detail: format!("{v} exceeds the host usize"),
        })
    }

    /// Reads a collection's element count, validated against the
    /// bytes actually remaining: `n` elements of at least
    /// `min_elem_size` bytes each must fit, so a corrupted count can
    /// never drive a huge allocation.
    pub(crate) fn count(
        &mut self,
        min_elem_size: usize,
        what: &'static str,
    ) -> Result<usize, PersistError> {
        let n = self.u32(what)? as usize;
        let need = n.saturating_mul(min_elem_size.max(1));
        if need > self.remaining() {
            return Err(PersistError::Truncated {
                what,
                needed: need,
                available: self.remaining(),
            });
        }
        Ok(n)
    }

    pub(crate) fn raw(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], PersistError> {
        self.take(n, what)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(513);
        w.u32(70_000);
        w.u64(1 << 40);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 513);
        assert_eq!(r.u32("c").unwrap(), 70_000);
        assert_eq!(r.u64("d").unwrap(), 1 << 40);
        assert_eq!(r.f64("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64("f").unwrap().is_nan());
        assert!(r.bool("g").unwrap());
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_are_structured() {
        let mut r = Reader::new(&[1, 2]);
        let err = r.u64("header").unwrap_err();
        assert!(matches!(
            err,
            PersistError::Truncated {
                what: "header",
                needed: 8,
                available: 2
            }
        ));
    }

    #[test]
    fn oversized_count_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.count(16, "entries"),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_bool_is_malformed() {
        let mut r = Reader::new(&[9]);
        assert!(matches!(
            r.bool("flag"),
            Err(PersistError::Malformed { what: "flag", .. })
        ));
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned reference digest (FNV-1a 64 of the empty string and
        // of "a" are published constants): the on-disk format depends
        // on this exact function never changing.
        assert_eq!(fnv1a(0, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(0, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(0, b"atgis"), fnv1a(0, b"atgia"));
        assert_ne!(fnv1a(1, b"x"), fnv1a(2, b"x"));
    }
}
