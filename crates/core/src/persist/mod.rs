//! The persistent index + aggregate store: the disk tier under the
//! process-lifetime caches.
//!
//! The paper's premise is querying raw files in situ — no load phase —
//! but everything the engine *derives* from a dataset (sealed
//! partition indexes, the XML offset→geometry table, cached
//! [`crate::ShardSet`] MBR probes, finished aggregates) lived only as
//! long as the process. This module spills that derived state to disk
//! as one **snapshot** per dataset and restores it on the next boot,
//! so a restarted server answers its first join query with **zero
//! parse passes** over the raw bytes.
//!
//! # Keying and invalidation
//!
//! [`crate::scheduler::DatasetId`]s are process-local, so they cannot
//! name files across restarts. Snapshots are instead
//! **content-addressed**: the file name is the FNV-1a 64 fingerprint
//! of (format tag ‖ dataset bytes), and the fingerprint plus dataset
//! length are embedded in the header and re-checked at load. The
//! scheduler's generation story carries over exactly: `update()`
//! deletes the outgoing dataset's snapshot *before* swapping the
//! entry, and changed bytes hash to a different file anyway — a
//! stale-generation snapshot can never serve.
//!
//! # Failure contract
//!
//! *Writes are atomic*: encode → unique tmp file → fsync → rename.
//! A crash at any point leaves either the old snapshot, no snapshot,
//! or an orphan `*.tmp*` file that [`PersistStore::open`] sweeps —
//! never a half-written file a later boot could half-trust. *Reads
//! are defensive*: every header field and section payload is
//! checksummed, every length and count is validated against the bytes
//! present before any allocation, and any inconsistency surfaces as a
//! structured [`PersistError`] that callers treat as "no snapshot" —
//! corruption degrades to a cold parse, never a panic or a wrong
//! answer. The failpoints `persist.write.0` / `persist.write.1` /
//! `persist.read.0` (under the `fault-injection` feature) drive the
//! crash-mid-spill and unreadable-store paths deterministically.

mod codec;
pub mod snapshot;

pub use snapshot::{Snapshot, SNAPSHOT_VERSION};

use crate::dataset::Dataset;
use crate::pool::recover;
use atgis_formats::Format;
use codec::fnv1a;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Why a snapshot could not be written or read back. Load-side errors
/// all mean the same thing to callers — "treat as no snapshot, parse
/// cold" — but stay distinct so tests can pin *which* defence fired.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure (also models an injected crash).
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file is a snapshot, but of a different format version.
    VersionSkew {
        /// The version the file declares.
        found: u16,
    },
    /// Fewer bytes than a declared length or count requires.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Bytes (or worst-case bytes, for counts) required.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// A checksummed region does not match its declared digest.
    ChecksumMismatch {
        /// Which region failed.
        what: &'static str,
    },
    /// Bytes that are structurally impossible (bad tag, out-of-range
    /// cell, boolean byte that is neither 0 nor 1, trailing garbage).
    Malformed {
        /// What was being read.
        what: &'static str,
        /// The offending value.
        detail: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot I/O: {e}"),
            PersistError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            PersistError::VersionSkew { found } => write!(
                f,
                "snapshot version {found} (this build reads {SNAPSHOT_VERSION})"
            ),
            PersistError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated snapshot: {what} needs {needed} bytes, {available} remain"
            ),
            PersistError::ChecksumMismatch { what } => {
                write!(f, "snapshot checksum mismatch in {what}")
            }
            PersistError::Malformed { what, detail } => {
                write!(f, "malformed snapshot: {what}: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Format tag mixed into the dataset fingerprint: the same bytes
/// parsed as WKT and as GeoJSON derive different state.
fn format_tag(format: Format) -> u8 {
    match format {
        Format::GeoJson => 1,
        Format::Wkt => 2,
        Format::OsmXml => 3,
    }
}

/// Content address of a dataset: FNV-1a 64 over the format tag then
/// the raw bytes. This is the snapshot's file name and its identity
/// check at load.
pub(crate) fn dataset_fingerprint(bytes: &[u8], format: Format) -> u64 {
    let seeded = fnv1a(0, &[format_tag(format)]);
    fnv1a(seeded, bytes)
}

/// Observed store activity, for tests and serving diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Snapshots written (tmp + rename completed).
    pub saves: u64,
    /// Save attempts that failed (crash injection, full disk, …).
    pub save_failures: u64,
    /// Loads that returned a validated snapshot.
    pub loads: u64,
    /// Loads that found no snapshot file.
    pub misses: u64,
    /// Loads that found a file but rejected it (corruption, version
    /// skew, identity mismatch) — each one fell back to a cold parse.
    pub load_failures: u64,
    /// Loads served from the resident cache without touching disk.
    pub resident_hits: u64,
    /// Resident entries evicted to respect the byte budget.
    pub resident_evictions: u64,
    /// Snapshot bytes currently resident in memory.
    pub resident_bytes: usize,
    /// Snapshots currently resident in memory.
    pub resident_entries: usize,
}

/// Resident-page accounting: recently written/read snapshot bytes
/// kept in memory under a byte budget, LRU-evicted. Holding the bytes
/// (not the decoded state) keeps the invariant simple: `bytes` is the
/// sum of entry lengths and never exceeds `max(budget, largest single
/// entry)` — one oversized snapshot may be resident alone, because
/// evicting it for nothing would make the cache useless for exactly
/// the datasets that benefit most.
#[derive(Debug)]
pub(crate) struct ResidentCache {
    entries: HashMap<u64, (Arc<Vec<u8>>, u64)>,
    bytes: usize,
    budget: usize,
    tick: u64,
    evictions: u64,
}

impl ResidentCache {
    pub(crate) fn new(budget: usize) -> Self {
        ResidentCache {
            entries: HashMap::new(),
            bytes: 0,
            budget,
            tick: 0,
            evictions: 0,
        }
    }

    pub(crate) fn get(&mut self, fp: u64) -> Option<Arc<Vec<u8>>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&fp).map(|(bytes, at)| {
            *at = tick;
            Arc::clone(bytes)
        })
    }

    pub(crate) fn insert(&mut self, fp: u64, bytes: Arc<Vec<u8>>) {
        self.tick += 1;
        if let Some((old, _)) = self.entries.insert(fp, (Arc::clone(&bytes), self.tick)) {
            self.bytes -= old.len();
        }
        self.bytes += bytes.len();
        // Evict least-recently-used entries down to the budget, always
        // keeping the newest insert even when it alone exceeds it.
        while self.bytes > self.budget && self.entries.len() > 1 {
            let lru = self
                .entries
                .iter()
                .filter(|(k, _)| **k != fp)
                .min_by_key(|(_, (_, at))| *at)
                .map(|(k, _)| *k);
            let Some(victim) = lru else { break };
            if let Some((old, _)) = self.entries.remove(&victim) {
                self.bytes -= old.len();
                self.evictions += 1;
            }
        }
    }

    pub(crate) fn remove(&mut self, fp: u64) {
        if let Some((old, _)) = self.entries.remove(&fp) {
            self.bytes -= old.len();
        }
    }

    pub(crate) fn resident_bytes(&self) -> usize {
        self.bytes
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// Default resident budget: a handful of medium snapshots.
const DEFAULT_RESIDENT_BUDGET: usize = 64 << 20;

/// An injected-crash hook: under `fault-injection`, an armed
/// `persist.*` failpoint's panic is caught here and surfaced as the
/// I/O error the aborted syscall would have produced — the protocol
/// around it must survive exactly as it would a real kill.
fn persist_fault(name: &str) -> Result<(), PersistError> {
    #[cfg(feature = "fault-injection")]
    {
        if std::panic::catch_unwind(|| crate::fault::fire(name)).is_err() {
            return Err(PersistError::Io(std::io::Error::other(format!(
                "injected fault at {name}"
            ))));
        }
    }
    let _ = name;
    Ok(())
}

/// The on-disk snapshot store: one directory, one `<fingerprint>.snap`
/// file per dataset, plus a resident cache of recently touched
/// snapshot bytes. Shared by every session of an [`crate::Engine`]
/// built with [`crate::EngineBuilder::persist_path`].
#[derive(Debug)]
pub struct PersistStore {
    root: PathBuf,
    resident: Mutex<ResidentCache>,
    saves: AtomicU64,
    save_failures: AtomicU64,
    loads: AtomicU64,
    misses: AtomicU64,
    load_failures: AtomicU64,
    resident_hits: AtomicU64,
    tmp_seq: AtomicU64,
}

impl PersistStore {
    /// Opens (creating if needed) the store rooted at `root` and
    /// sweeps orphan `*.tmp*` files a killed writer may have left.
    pub fn open(root: impl Into<PathBuf>) -> Result<PersistStore, PersistError> {
        PersistStore::open_with_budget(root, DEFAULT_RESIDENT_BUDGET)
    }

    /// [`PersistStore::open`] with an explicit resident-cache byte
    /// budget.
    pub fn open_with_budget(
        root: impl Into<PathBuf>,
        budget: usize,
    ) -> Result<PersistStore, PersistError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        // Orphan tmp files are dead by construction (the rename never
        // happened), so sweeping them is always safe.
        for entry in fs::read_dir(&root)? {
            let path = entry?.path();
            if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".tmp"))
            {
                let _ = fs::remove_file(&path);
            }
        }
        Ok(PersistStore {
            root,
            resident: Mutex::new(ResidentCache::new(budget)),
            saves: AtomicU64::new(0),
            save_failures: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            load_failures: AtomicU64::new(0),
            resident_hits: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where the snapshot for a dataset lives (whether or not one
    /// exists yet) — torture tests corrupt the file at this path.
    pub fn snapshot_path(&self, bytes: &[u8], format: Format) -> PathBuf {
        self.root
            .join(format!("{:016x}.snap", dataset_fingerprint(bytes, format)))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PersistStats {
        let resident = recover(self.resident.lock());
        PersistStats {
            saves: self.saves.load(Ordering::Relaxed),
            save_failures: self.save_failures.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            load_failures: self.load_failures.load(Ordering::Relaxed),
            resident_hits: self.resident_hits.load(Ordering::Relaxed),
            resident_evictions: resident.evictions(),
            resident_bytes: resident.resident_bytes(),
            resident_entries: resident.len(),
        }
    }

    /// Writes `snap` atomically: encode → unique tmp file → fsync →
    /// rename over any previous snapshot. Callers on the query path
    /// ignore the result (a failed spill costs only future warm
    /// starts); tests assert on it.
    pub fn save(&self, snap: &Snapshot) -> Result<(), PersistError> {
        let outcome = self.save_inner(snap);
        match &outcome {
            Ok(()) => self.saves.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.save_failures.fetch_add(1, Ordering::Relaxed),
        };
        outcome
    }

    fn save_inner(&self, snap: &Snapshot) -> Result<(), PersistError> {
        let encoded = Arc::new(snapshot::encode(snap));
        persist_fault("persist.write.0")?;
        let final_path = self.root.join(format!("{:016x}.snap", snap.fingerprint));
        // Unique per process *and* per attempt, so concurrent spills
        // (or a sweep racing a live writer) never collide.
        let tmp_path = self.root.join(format!(
            "{:016x}.tmp.{}.{}",
            snap.fingerprint,
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        let write = (|| -> Result<(), PersistError> {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&encoded)?;
            f.sync_all()?;
            persist_fault("persist.write.1")?;
            fs::rename(&tmp_path, &final_path)?;
            Ok(())
        })();
        if write.is_err() {
            // The rename never happened: the orphan carries no
            // observable state, remove it eagerly (open() would sweep
            // it anyway).
            let _ = fs::remove_file(&tmp_path);
            return write;
        }
        recover(self.resident.lock()).insert(snap.fingerprint, encoded);
        Ok(())
    }

    /// Loads and validates the snapshot for a dataset. `Ok(None)`
    /// means no snapshot exists; `Err` means one exists but could not
    /// be trusted (corruption, version skew, identity mismatch,
    /// injected read fault) — callers treat both as "parse cold".
    pub fn load(&self, bytes: &[u8], format: Format) -> Result<Option<Snapshot>, PersistError> {
        let outcome = self.load_inner(bytes, format);
        match &outcome {
            Ok(Some(_)) => self.loads.fetch_add(1, Ordering::Relaxed),
            Ok(None) => self.misses.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.load_failures.fetch_add(1, Ordering::Relaxed),
        };
        outcome
    }

    fn load_inner(&self, bytes: &[u8], format: Format) -> Result<Option<Snapshot>, PersistError> {
        persist_fault("persist.read.0")?;
        let fp = dataset_fingerprint(bytes, format);
        let resident = recover(self.resident.lock()).get(fp);
        let encoded = match resident {
            Some(encoded) => {
                self.resident_hits.fetch_add(1, Ordering::Relaxed);
                encoded
            }
            None => {
                let path = self.root.join(format!("{fp:016x}.snap"));
                match fs::read(&path) {
                    Ok(encoded) => Arc::new(encoded),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
                    Err(e) => return Err(e.into()),
                }
            }
        };
        let snap = match snapshot::decode(&encoded) {
            Ok(snap) => snap,
            Err(e) => {
                // Never serve rejected bytes again from memory.
                recover(self.resident.lock()).remove(fp);
                return Err(e);
            }
        };
        // Identity check: the embedded fingerprint and length must
        // match the dataset in hand — a snapshot renamed over another
        // dataset's address can never serve.
        if snap.fingerprint != fp || snap.dataset_len != bytes.len() as u64 {
            recover(self.resident.lock()).remove(fp);
            return Err(PersistError::Malformed {
                what: "snapshot identity",
                detail: format!(
                    "snapshot is of dataset {:016x} ({} bytes), asked for {:016x} ({} bytes)",
                    snap.fingerprint,
                    snap.dataset_len,
                    fp,
                    bytes.len()
                ),
            });
        }
        recover(self.resident.lock()).insert(fp, encoded);
        Ok(Some(snap))
    }

    /// Deletes a dataset's snapshot (scheduler `update()`: the old
    /// bytes' derived state must never serve again). Best-effort — a
    /// missing file is already the goal state.
    pub fn remove(&self, bytes: &[u8], format: Format) {
        let fp = dataset_fingerprint(bytes, format);
        recover(self.resident.lock()).remove(fp);
        let _ = fs::remove_file(self.root.join(format!("{fp:016x}.snap")));
    }

    /// Convenience: [`PersistStore::load`] against a [`Dataset`].
    pub(crate) fn load_dataset(&self, dataset: &Dataset) -> Result<Option<Snapshot>, PersistError> {
        self.load(dataset.bytes(), dataset.format())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartEntry;
    use crate::result::{AggregateValues, QueryResult};
    use crate::scheduler::{QueryKey, RegionKey};
    use crate::shard::{Shard, ShardSet};
    use atgis_geometry::Mbr;
    use proptest::prelude::*;

    fn tmp_root(name: &str) -> PathBuf {
        // CARGO_TARGET_TMPDIR exists only for integration tests, so
        // unit tests nest under the system temp dir, namespaced by
        // pid to keep concurrent `cargo test` runs apart.
        let root =
            std::env::temp_dir().join(format!("atgis-persist-unit-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    fn shard_snapshot(fp: u64, dataset_len: u64) -> Snapshot {
        Snapshot {
            generation: 3,
            dataset_len,
            fingerprint: fp,
            indexes: Vec::new(),
            shard_sets: vec![(
                2,
                Arc::new(ShardSet::from_shards(vec![
                    Shard {
                        start: 0,
                        end: dataset_len as usize / 2,
                        mbr: Some(Mbr::new(0.0, 0.0, 1.0, 1.0)),
                        features: 4,
                    },
                    Shard {
                        start: dataset_len as usize / 2,
                        end: dataset_len as usize,
                        mbr: None,
                        features: 0,
                    },
                ])),
            )],
            aggregates: vec![(
                QueryKey::Containment {
                    region: RegionKey(vec![vec![(1, 2), (3, 4)]]),
                },
                QueryResult::Aggregate(AggregateValues {
                    count: 7,
                    total_area: 1.5,
                    total_perimeter: -0.0,
                }),
            )],
        }
    }

    #[test]
    fn save_load_round_trip_and_identity_check() {
        let store = PersistStore::open(tmp_root("round-trip")).unwrap();
        let data = b"dataset bytes".to_vec();
        let fp = dataset_fingerprint(&data, Format::Wkt);
        store.save(&shard_snapshot(fp, data.len() as u64)).unwrap();

        let snap = store.load(&data, Format::Wkt).unwrap().expect("saved");
        assert_eq!(snap.generation(), 3);
        assert_eq!(snap.shard_set_count(), 1);
        assert_eq!(snap.aggregate_count(), 1);

        // The same bytes under a different format are a different
        // dataset: no snapshot.
        assert!(store.load(&data, Format::GeoJson).unwrap().is_none());
        // Different bytes: no snapshot.
        assert!(store.load(b"other", Format::Wkt).unwrap().is_none());
        assert_eq!(store.stats().loads, 1);
        assert_eq!(store.stats().misses, 2);
    }

    #[test]
    fn renamed_snapshot_fails_the_identity_check() {
        let store = PersistStore::open(tmp_root("rename")).unwrap();
        let a = b"dataset a".to_vec();
        let b = b"dataset b!".to_vec();
        let fp_a = dataset_fingerprint(&a, Format::Wkt);
        store.save(&shard_snapshot(fp_a, a.len() as u64)).unwrap();
        fs::rename(
            store.snapshot_path(&a, Format::Wkt),
            store.snapshot_path(&b, Format::Wkt),
        )
        .unwrap();
        let err = store.load(&b, Format::Wkt).unwrap_err();
        assert!(matches!(
            err,
            PersistError::Malformed {
                what: "snapshot identity",
                ..
            }
        ));
        assert_eq!(store.stats().load_failures, 1);
    }

    #[test]
    fn open_sweeps_orphan_tmp_files() {
        let root = tmp_root("sweep");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join("0123.tmp.99.0"), b"half a snapshot").unwrap();
        fs::write(root.join("keep.snap"), b"not tmp").unwrap();
        let _store = PersistStore::open(&root).unwrap();
        assert!(!root.join("0123.tmp.99.0").exists(), "orphan swept");
        assert!(root.join("keep.snap").exists(), "snapshots untouched");
    }

    #[test]
    fn corrupt_file_is_a_structured_error_and_resident_entry_is_dropped() {
        let store = PersistStore::open(tmp_root("corrupt")).unwrap();
        let data = b"dataset bytes".to_vec();
        let fp = dataset_fingerprint(&data, Format::Wkt);
        store.save(&shard_snapshot(fp, data.len() as u64)).unwrap();
        // Flip one payload byte on disk; the resident copy is still
        // clean, so loads keep succeeding until it is dropped.
        let path = store.snapshot_path(&data, Format::Wkt);
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() - 3;
        bytes[at] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(&data, Format::Wkt).unwrap().is_some());

        // A fresh store (cold resident cache) must reject the file.
        let cold = PersistStore::open(store.root()).unwrap();
        assert!(cold.load(&data, Format::Wkt).is_err());
        // And having rejected it, it must not have cached the bad
        // bytes: the next load re-reads and re-rejects.
        assert!(cold.load(&data, Format::Wkt).is_err());
        assert_eq!(cold.stats().resident_hits, 0);
    }

    proptest! {
        /// Canonical encoding: decoding any encoded snapshot and
        /// re-encoding it reproduces the bytes exactly.
        #[test]
        fn encode_decode_encode_is_identity(
            entries in prop::collection::vec(
                (0u64..1000, 0u64..10_000, 1u32..500,
                 -10.0..10.0f64, -10.0..10.0f64, 0.0..5.0f64),
                0..40),
            shard_cuts in prop::collection::vec(0u64..10_000, 0..6),
            generation in 1u64..100,
        ) {
            let mut cells: Vec<Vec<PartEntry>> = vec![Vec::new(); 4];
            for (i, (id, offset, len, x, y, size)) in entries.iter().enumerate() {
                cells[i % 4].push(PartEntry {
                    id: *id,
                    offset: *offset,
                    len: *len,
                    mbr: Mbr::new(*x, *y, *x + *size, *y + *size),
                    left_side: id % 2 == 0,
                });
            }
            let dataset_len = 10_000u64;
            let mut bounds: Vec<u64> = shard_cuts.clone();
            bounds.push(0);
            bounds.push(dataset_len);
            bounds.sort_unstable();
            bounds.dedup();
            let shards: Vec<Shard> = bounds
                .windows(2)
                .map(|w| Shard {
                    start: w[0] as usize,
                    end: w[1] as usize,
                    mbr: (w[0] % 2 == 0).then(|| Mbr::new(0.0, 0.0, 1.0, 1.0)),
                    features: w[1] - w[0],
                })
                .collect();
            let snap = Snapshot {
                generation,
                dataset_len,
                fingerprint: 0xfeed_beef,
                indexes: Vec::new(),
                shard_sets: vec![(shards.len().max(1), Arc::new(ShardSet::from_shards(shards)))],
                aggregates: vec![
                    (QueryKey::Join { threshold: generation },
                     QueryResult::Aggregate(AggregateValues {
                         count: entries.len() as u64,
                         total_area: f64::NAN,
                         total_perimeter: -0.0,
                     })),
                ],
            };
            // The cells above stand in for index payloads in spirit;
            // full PartitionIndex round-trips are pinned by the
            // integration differential suite. Here the property is
            // byte-level canonicality of the container.
            let first = snapshot::encode(&snap);
            let decoded = snapshot::decode(&first).unwrap();
            let second = snapshot::encode(&decoded);
            prop_assert_eq!(first, second);
            prop_assert_eq!(decoded.generation(), generation);
        }

        /// Resident accounting never exceeds max(budget, largest
        /// entry), stays exact under inserts/updates/removes, and
        /// keeps at least the newest entry.
        #[test]
        fn resident_budget_invariants(
            ops in prop::collection::vec((0u64..8, 1usize..600, prop::bool::ANY), 1..80),
            budget in 64usize..1500,
        ) {
            let mut cache = ResidentCache::new(budget);
            let mut largest = 0usize;
            for (key, size, is_insert) in ops {
                if is_insert {
                    largest = largest.max(size);
                    cache.insert(key, Arc::new(vec![0u8; size]));
                    prop_assert!(cache.len() >= 1, "newest insert always resident");
                } else {
                    cache.remove(key);
                }
                prop_assert!(
                    cache.resident_bytes() <= budget.max(largest),
                    "{} bytes resident exceeds max(budget {budget}, largest {largest})",
                    cache.resident_bytes(),
                );
            }
        }
    }

    #[cfg(feature = "fault-injection")]
    mod faults {
        use super::*;
        use crate::fault::{arm, disarm, FaultAction};

        #[test]
        fn injected_write_fault_aborts_cleanly() {
            let store = PersistStore::open(tmp_root("fault-write")).unwrap();
            let data = b"dataset bytes".to_vec();
            let fp = dataset_fingerprint(&data, Format::Wkt);

            arm("persist.write.0", FaultAction::Panic("killed".into()));
            let err = store.save(&shard_snapshot(fp, data.len() as u64));
            assert!(disarm("persist.write.0") >= 1);
            assert!(matches!(err, Err(PersistError::Io(_))));
            assert!(
                store.load(&data, Format::Wkt).unwrap().is_none(),
                "aborted save left no snapshot"
            );
            assert_eq!(store.stats().save_failures, 1);

            // Without the fault the same save goes through.
            store.save(&shard_snapshot(fp, data.len() as u64)).unwrap();
            assert!(store.load(&data, Format::Wkt).unwrap().is_some());
        }
    }
}
