//! The snapshot format: one file per dataset fingerprint holding
//! every piece of derived state a serving process would otherwise
//! rebuild by parsing — sealed partition indexes (per partitioning
//! configuration), cached [`ShardSet`] MBR probes (per requested
//! shard count) and finished single-pass aggregates (per predicate).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "ATGS" | version u16 | generation u64 | dataset_len u64
//!   | fingerprint u64 | header checksum u64
//! section count u32
//! per section: id u16 | payload_len u64 | payload checksum u64 | payload
//! ```
//!
//! Every region is covered by a checksum (the header by its own, each
//! section payload by its own), so a torn write, a bit flip or a
//! truncation surfaces as a structured [`PersistError`] — decode
//! validates lengths and counts before allocating and **never**
//! panics on foreign bytes. Encoding is canonical: entries are sorted
//! by their encoded key, so the same in-memory state always produces
//! the same file bytes.

use super::codec::{fnv1a, Reader, Writer};
use super::PersistError;
use crate::batch::{IndexKey, IndexStore, PartitionIndex};
use crate::engine::{PartitionPhase, StoreKind};
use crate::partition::{
    AdaptiveConfig, ArrayStore, GridSpec, ListStore, PartEntry, PartitionMap, PartitionMapStats,
    PartitionStore, Slot,
};
use crate::result::QueryResult;
use crate::result::{AggregateValues, JoinPair, MatchRecord};
use crate::scheduler::{QueryKey, RegionKey};
use crate::shard::{Shard, ShardSet};
use atgis_geometry::polygon::{LineString, MultiPolygon, Ring};
use atgis_geometry::{Geometry, Mbr, Point, Polygon};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// File magic: "ATGS".
const MAGIC: [u8; 4] = *b"ATGS";
/// Current format version. Bump on any layout change; a mismatched
/// snapshot is ignored (cold parse), never misread.
pub const SNAPSHOT_VERSION: u16 = 1;
/// Fixed header size: magic + version + generation + dataset_len +
/// fingerprint + header checksum.
const HEADER_LEN: usize = 4 + 2 + 8 + 8 + 8 + 8;

/// Section ids.
const SECTION_INDEXES: u16 = 1;
const SECTION_SHARD_SETS: u16 = 2;
const SECTION_AGGREGATES: u16 = 3;

/// Nesting bound for recursive geometry decode: a crafted collection
/// chain deeper than this is malformed, not a stack overflow.
const MAX_GEOMETRY_DEPTH: usize = 32;

/// The decoded (or to-be-encoded) contents of one snapshot file: the
/// derived state of one dataset, keyed by its content fingerprint.
pub struct Snapshot {
    pub(crate) generation: u64,
    pub(crate) dataset_len: u64,
    pub(crate) fingerprint: u64,
    pub(crate) indexes: Vec<(IndexKey, Arc<PartitionIndex>)>,
    pub(crate) shard_sets: Vec<(usize, Arc<ShardSet>)>,
    pub(crate) aggregates: Vec<(QueryKey, QueryResult)>,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("generation", &self.generation)
            .field("dataset_len", &self.dataset_len)
            .field("fingerprint", &format_args!("{:016x}", self.fingerprint))
            .field("indexes", &self.indexes.len())
            .field("shard_sets", &self.shard_sets.len())
            .field("aggregates", &self.aggregates.len())
            .finish()
    }
}

impl Snapshot {
    /// The dataset generation embedded at save time.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Partition indexes captured (one per partitioning config).
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Shard layouts captured (one per requested shard count).
    pub fn shard_set_count(&self) -> usize {
        self.shard_sets.len()
    }

    /// Finished single-pass aggregates captured.
    pub fn aggregate_count(&self) -> usize {
        self.aggregates.len()
    }
}

// ---------------------------------------------------------------- encode

/// Encodes a snapshot into its canonical file bytes.
pub(crate) fn encode(snap: &Snapshot) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(&MAGIC);
    w.u16(SNAPSHOT_VERSION);
    w.u64(snap.generation);
    w.u64(snap.dataset_len);
    w.u64(snap.fingerprint);
    let digest = fnv1a(0, w.bytes());
    w.u64(digest);

    let sections = [
        (SECTION_INDEXES, encode_indexes(&snap.indexes)),
        (SECTION_SHARD_SETS, encode_shard_sets(&snap.shard_sets)),
        (SECTION_AGGREGATES, encode_aggregates(&snap.aggregates)),
    ];
    w.count(sections.len());
    for (id, payload) in sections {
        w.u16(id);
        w.u64(payload.len() as u64);
        w.u64(fnv1a(0, &payload));
        w.raw(&payload);
    }
    w.into_bytes()
}

fn encode_indexes(indexes: &[(IndexKey, Arc<PartitionIndex>)]) -> Vec<u8> {
    // Canonical order: sort by the encoded key bytes (the in-memory
    // cache is an unordered map).
    let mut entries: Vec<(Vec<u8>, &Arc<PartitionIndex>)> = indexes
        .iter()
        .map(|(k, v)| {
            let mut kw = Writer::new();
            encode_index_key(&mut kw, k);
            (kw.into_bytes(), v)
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut w = Writer::new();
    w.count(entries.len());
    for (key_bytes, index) in entries {
        w.raw(&key_bytes);
        encode_partition_index(&mut w, index);
    }
    w.into_bytes()
}

fn encode_index_key(w: &mut Writer, key: &IndexKey) {
    w.u64(key.cell_deg);
    for v in key.extent {
        w.u64(v);
    }
    w.u8(match key.store {
        StoreKind::Array => 0,
        StoreKind::List => 1,
    });
    w.u8(match key.phase {
        PartitionPhase::Associative => 0,
        PartitionPhase::Separate => 1,
    });
    w.u64(key.adaptive.target_per_cell as u64);
    w.u64(key.adaptive.max_subdiv as u64);
    w.u64(key.adaptive.max_replication as u64);
    w.u64(key.adaptive.max_depth as u64);
}

fn encode_partition_index(w: &mut Writer, index: &PartitionIndex) {
    match &index.store {
        IndexStore::Array(s) => {
            w.u8(0);
            w.count(s.cells.len());
            for cell in &s.cells {
                w.count(cell.len());
                for e in cell {
                    encode_part_entry(w, e);
                }
            }
        }
        IndexStore::List(s) => {
            w.u8(1);
            w.count(s.cells.len());
            for chunks in &s.cells {
                w.count(chunks.len());
                for chunk in chunks {
                    w.count(chunk.len());
                    for e in chunk {
                        encode_part_entry(w, e);
                    }
                }
            }
        }
    }
    encode_partition_map(w, &index.map);
    w.u64(index.refine.as_nanos().min(u128::from(u64::MAX)) as u64);
    match &index.xml_table {
        Some(table) => {
            w.bool(true);
            // Canonical order: the map iterates nondeterministically.
            let mut entries: Vec<(&u64, &Geometry)> = table.iter().collect();
            entries.sort_by_key(|(off, _)| **off);
            w.count(entries.len());
            for (offset, geometry) in entries {
                w.u64(*offset);
                encode_geometry(w, geometry);
            }
        }
        None => w.bool(false),
    }
}

fn encode_part_entry(w: &mut Writer, e: &PartEntry) {
    w.u64(e.id);
    w.u64(e.offset);
    w.u32(e.len);
    encode_mbr(w, &e.mbr);
    w.bool(e.left_side);
}

fn encode_mbr(w: &mut Writer, m: &Mbr) {
    w.f64(m.min_x);
    w.f64(m.min_y);
    w.f64(m.max_x);
    w.f64(m.max_y);
}

fn encode_grid(w: &mut Writer, g: &GridSpec) {
    encode_mbr(w, &g.extent);
    w.f64(g.cell_deg);
}

fn encode_partition_map(w: &mut Writer, map: &PartitionMap) {
    match &map.grid {
        Some(g) => {
            w.bool(true);
            encode_grid(w, g);
        }
        None => w.bool(false),
    }
    w.count(map.slots.len());
    for slot in &map.slots {
        match slot {
            Slot::Base(cell) => {
                w.u8(0);
                w.u64(*cell as u64);
            }
            Slot::Refined { entries, chain } => {
                w.u8(1);
                w.count(entries.len());
                for e in entries {
                    encode_part_entry(w, e);
                }
                w.count(chain.len());
                for (spec, cell) in chain {
                    encode_grid(w, spec);
                    w.u64(*cell as u64);
                }
            }
        }
    }
    let s = map.stats;
    w.u64(s.base_cells);
    w.u64(s.split_cells);
    w.u64(s.slots);
    w.u64(s.max_cell_entries);
    w.u64(s.max_slot_entries);
}

fn encode_geometry(w: &mut Writer, g: &Geometry) {
    match g {
        Geometry::Point(p) => {
            w.u8(0);
            w.f64(p.x);
            w.f64(p.y);
        }
        Geometry::LineString(ls) => {
            w.u8(1);
            encode_points(w, &ls.points);
        }
        Geometry::Polygon(p) => {
            w.u8(2);
            encode_polygon(w, p);
        }
        Geometry::MultiPolygon(mp) => {
            w.u8(3);
            w.count(mp.polygons.len());
            for p in &mp.polygons {
                encode_polygon(w, p);
            }
        }
        Geometry::Collection(gs) => {
            w.u8(4);
            w.count(gs.len());
            for g in gs {
                encode_geometry(w, g);
            }
        }
    }
}

fn encode_polygon(w: &mut Writer, p: &Polygon) {
    encode_points(w, &p.exterior.points);
    w.count(p.holes.len());
    for h in &p.holes {
        encode_points(w, &h.points);
    }
}

fn encode_points(w: &mut Writer, points: &[Point]) {
    w.count(points.len());
    for p in points {
        w.f64(p.x);
        w.f64(p.y);
    }
}

fn encode_shard_sets(sets: &[(usize, Arc<ShardSet>)]) -> Vec<u8> {
    let mut entries: Vec<(usize, &Arc<ShardSet>)> =
        sets.iter().map(|(count, set)| (*count, set)).collect();
    entries.sort_by_key(|(count, _)| *count);
    let mut w = Writer::new();
    w.count(entries.len());
    for (requested, set) in entries {
        w.u64(requested as u64);
        w.count(set.shards().len());
        for s in set.shards() {
            w.u64(s.start as u64);
            w.u64(s.end as u64);
            match &s.mbr {
                Some(m) => {
                    w.bool(true);
                    encode_mbr(&mut w, m);
                }
                None => w.bool(false),
            }
            w.u64(s.features);
        }
    }
    w.into_bytes()
}

fn encode_aggregates(aggregates: &[(QueryKey, QueryResult)]) -> Vec<u8> {
    let mut entries: Vec<(Vec<u8>, &QueryResult)> = aggregates
        .iter()
        .map(|(k, r)| {
            let mut kw = Writer::new();
            encode_query_key(&mut kw, k);
            (kw.into_bytes(), r)
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut w = Writer::new();
    w.count(entries.len());
    for (key_bytes, result) in entries {
        w.raw(&key_bytes);
        encode_query_result(&mut w, result);
    }
    w.into_bytes()
}

fn encode_query_key(w: &mut Writer, key: &QueryKey) {
    match key {
        QueryKey::Containment { region } => {
            w.u8(0);
            encode_region_key(w, region);
        }
        QueryKey::Aggregation {
            region,
            want_area,
            want_perimeter,
            model,
            strategy,
        } => {
            w.u8(1);
            encode_region_key(w, region);
            w.bool(*want_area);
            w.bool(*want_perimeter);
            w.u8(*model);
            w.u8(*strategy);
        }
        QueryKey::Join { threshold } => {
            w.u8(2);
            w.u64(*threshold);
        }
        QueryKey::Combined {
            threshold,
            min_perimeter,
            max_perimeter,
        } => {
            w.u8(3);
            w.u64(*threshold);
            w.u64(*min_perimeter);
            w.u64(*max_perimeter);
        }
    }
}

fn encode_region_key(w: &mut Writer, region: &RegionKey) {
    w.count(region.0.len());
    for ring in &region.0 {
        w.count(ring.len());
        for (x, y) in ring {
            w.u64(*x);
            w.u64(*y);
        }
    }
}

fn encode_query_result(w: &mut Writer, result: &QueryResult) {
    match result {
        QueryResult::Matches(matches) => {
            w.u8(0);
            w.count(matches.len());
            for m in matches {
                w.u64(m.id);
                w.u64(m.offset);
                w.u32(m.len);
                encode_mbr(w, &m.mbr);
            }
        }
        QueryResult::Aggregate(v) => {
            w.u8(1);
            w.u64(v.count);
            w.f64(v.total_area);
            w.f64(v.total_perimeter);
        }
        QueryResult::Joined(pairs) => {
            w.u8(2);
            w.count(pairs.len());
            for p in pairs {
                w.u64(p.left_id);
                w.u64(p.right_id);
                w.u64(p.left_offset);
                w.u64(p.right_offset);
            }
        }
        QueryResult::Combined {
            pairs,
            total_union_area,
        } => {
            w.u8(3);
            w.u64(*pairs);
            w.f64(*total_union_area);
        }
    }
}

// ---------------------------------------------------------------- decode

/// Decodes snapshot file bytes, validating the header checksum, the
/// format version and every section checksum before touching any
/// payload. Any inconsistency is a structured [`PersistError`];
/// nothing in here panics on foreign bytes.
pub fn decode(bytes: &[u8]) -> Result<Snapshot, PersistError> {
    if bytes.len() < HEADER_LEN {
        return Err(PersistError::Truncated {
            what: "snapshot header",
            needed: HEADER_LEN,
            available: bytes.len(),
        });
    }
    let mut r = Reader::new(bytes);
    let magic = r.raw(4, "magic")?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u16("version")?;
    if version != SNAPSHOT_VERSION {
        return Err(PersistError::VersionSkew { found: version });
    }
    let generation = r.u64("generation")?;
    let dataset_len = r.u64("dataset_len")?;
    let fingerprint = r.u64("fingerprint")?;
    let declared = r.u64("header checksum")?;
    if fnv1a(0, &bytes[..HEADER_LEN - 8]) != declared {
        return Err(PersistError::ChecksumMismatch {
            what: "snapshot header",
        });
    }

    let mut snap = Snapshot {
        generation,
        dataset_len,
        fingerprint,
        indexes: Vec::new(),
        shard_sets: Vec::new(),
        aggregates: Vec::new(),
    };
    // Frame overhead per section: id + len + checksum.
    let sections = r.count(2 + 8 + 8, "section table")?;
    for _ in 0..sections {
        let id = r.u16("section id")?;
        let len = r.u64("section length")?;
        let len = usize::try_from(len).map_err(|_| PersistError::Malformed {
            what: "section length",
            detail: format!("{len} exceeds the host usize"),
        })?;
        let declared = r.u64("section checksum")?;
        let payload = r.raw(len, "section payload")?;
        if fnv1a(0, payload) != declared {
            return Err(PersistError::ChecksumMismatch {
                what: "section payload",
            });
        }
        let mut pr = Reader::new(payload);
        match id {
            SECTION_INDEXES => snap.indexes = decode_indexes(&mut pr)?,
            SECTION_SHARD_SETS => snap.shard_sets = decode_shard_sets(&mut pr, dataset_len)?,
            SECTION_AGGREGATES => snap.aggregates = decode_aggregates(&mut pr)?,
            // Unknown section under a matching version: reject rather
            // than guess (versions change when sections do).
            other => {
                return Err(PersistError::Malformed {
                    what: "section id",
                    detail: format!("unknown section {other}"),
                })
            }
        }
        if !pr.is_empty() {
            return Err(PersistError::Malformed {
                what: "section payload",
                detail: format!("{} trailing bytes", pr.remaining()),
            });
        }
    }
    if !r.is_empty() {
        return Err(PersistError::Malformed {
            what: "snapshot",
            detail: format!("{} trailing bytes", r.remaining()),
        });
    }
    Ok(snap)
}

fn decode_indexes(
    r: &mut Reader<'_>,
) -> Result<Vec<(IndexKey, Arc<PartitionIndex>)>, PersistError> {
    // Minimum entry: key (74 bytes) + store tag + empty store + map.
    let n = r.count(75, "index entries")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let key = decode_index_key(r)?;
        let index = decode_partition_index(r)?;
        out.push((key, Arc::new(index)));
    }
    Ok(out)
}

fn decode_index_key(r: &mut Reader<'_>) -> Result<IndexKey, PersistError> {
    let cell_deg = r.u64("index key cell size")?;
    let extent = [
        r.u64("index key extent")?,
        r.u64("index key extent")?,
        r.u64("index key extent")?,
        r.u64("index key extent")?,
    ];
    let store = match r.u8("index key store kind")? {
        0 => StoreKind::Array,
        1 => StoreKind::List,
        v => {
            return Err(PersistError::Malformed {
                what: "index key store kind",
                detail: format!("tag {v}"),
            })
        }
    };
    let phase = match r.u8("index key partition phase")? {
        0 => PartitionPhase::Associative,
        1 => PartitionPhase::Separate,
        v => {
            return Err(PersistError::Malformed {
                what: "index key partition phase",
                detail: format!("tag {v}"),
            })
        }
    };
    let adaptive = AdaptiveConfig {
        target_per_cell: r.usize("adaptive target")?,
        max_subdiv: r.usize("adaptive max_subdiv")?,
        max_replication: r.usize("adaptive max_replication")?,
        max_depth: r.usize("adaptive max_depth")?,
    };
    Ok(IndexKey {
        cell_deg,
        extent,
        store,
        phase,
        adaptive,
    })
}

/// Encoded size of one [`PartEntry`]: id + offset + len + mbr + side.
const PART_ENTRY_LEN: usize = 8 + 8 + 4 + 32 + 1;

fn decode_part_entry(r: &mut Reader<'_>) -> Result<PartEntry, PersistError> {
    Ok(PartEntry {
        id: r.u64("entry id")?,
        offset: r.u64("entry offset")?,
        len: r.u32("entry length")?,
        mbr: decode_mbr(r)?,
        left_side: r.bool("entry side")?,
    })
}

fn decode_mbr(r: &mut Reader<'_>) -> Result<Mbr, PersistError> {
    Ok(Mbr {
        min_x: r.f64("mbr")?,
        min_y: r.f64("mbr")?,
        max_x: r.f64("mbr")?,
        max_y: r.f64("mbr")?,
    })
}

fn decode_grid(r: &mut Reader<'_>) -> Result<GridSpec, PersistError> {
    let extent = decode_mbr(r)?;
    let cell_deg = r.f64("grid cell size")?;
    // GridSpec arithmetic divides by the cell size; a snapshot can
    // only hold grids a running engine actually built.
    if !(cell_deg.is_finite() && cell_deg > 0.0) {
        return Err(PersistError::Malformed {
            what: "grid cell size",
            detail: format!("{cell_deg}"),
        });
    }
    Ok(GridSpec { extent, cell_deg })
}

fn decode_partition_index(r: &mut Reader<'_>) -> Result<PartitionIndex, PersistError> {
    let store = match r.u8("store tag")? {
        0 => {
            let cells = r.count(4, "array store cells")?;
            let mut s = ArrayStore::new(cells);
            for cell in 0..cells {
                let n = r.count(PART_ENTRY_LEN, "array store entries")?;
                for _ in 0..n {
                    s.push(cell, decode_part_entry(r)?);
                }
            }
            IndexStore::Array(s)
        }
        1 => {
            let cells = r.count(4, "list store cells")?;
            let mut s = ListStore::new(cells);
            for cell in 0..cells {
                let chunks = r.count(4, "list store chunks")?;
                let mut rebuilt = Vec::with_capacity(chunks);
                for _ in 0..chunks {
                    let n = r.count(PART_ENTRY_LEN, "list store entries")?;
                    let mut chunk = Vec::with_capacity(n);
                    for _ in 0..n {
                        chunk.push(decode_part_entry(r)?);
                    }
                    rebuilt.push(chunk);
                }
                s.cells[cell] = rebuilt;
            }
            IndexStore::List(s)
        }
        v => {
            return Err(PersistError::Malformed {
                what: "store tag",
                detail: format!("tag {v}"),
            })
        }
    };
    let num_cells = match &store {
        IndexStore::Array(s) => s.num_cells(),
        IndexStore::List(s) => s.num_cells(),
    };
    let map = decode_partition_map(r, num_cells)?;
    let refine = Duration::from_nanos(r.u64("refine nanos")?);
    let xml_table = if r.bool("xml table flag")? {
        let n = r.count(8 + 1, "xml table entries")?;
        let mut table = HashMap::with_capacity(n);
        for _ in 0..n {
            let offset = r.u64("xml table offset")?;
            let geometry = decode_geometry(r, 0)?;
            table.insert(offset, geometry);
        }
        Some(Arc::new(table))
    } else {
        None
    };
    Ok(PartitionIndex {
        store,
        map,
        refine,
        xml_table,
    })
}

fn decode_partition_map(
    r: &mut Reader<'_>,
    num_cells: usize,
) -> Result<PartitionMap, PersistError> {
    let grid = if r.bool("map grid flag")? {
        Some(decode_grid(r)?)
    } else {
        None
    };
    let slots = r.count(1 + 8, "map slots")?;
    let mut rebuilt = Vec::with_capacity(slots);
    for _ in 0..slots {
        match r.u8("slot tag")? {
            0 => {
                let cell = r.usize("base slot cell")?;
                // A base slot reads straight from the store: an
                // out-of-range cell would index past the store's
                // vectors at query time.
                if cell >= num_cells {
                    return Err(PersistError::Malformed {
                        what: "base slot cell",
                        detail: format!("cell {cell} of {num_cells}"),
                    });
                }
                rebuilt.push(Slot::Base(cell));
            }
            1 => {
                let n = r.count(PART_ENTRY_LEN, "refined slot entries")?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(decode_part_entry(r)?);
                }
                let links = r.count(40 + 8, "refined slot chain")?;
                let mut chain = Vec::with_capacity(links);
                for _ in 0..links {
                    let spec = decode_grid(r)?;
                    let cell = r.usize("chain cell")?;
                    chain.push((spec, cell));
                }
                rebuilt.push(Slot::Refined { entries, chain });
            }
            v => {
                return Err(PersistError::Malformed {
                    what: "slot tag",
                    detail: format!("tag {v}"),
                })
            }
        }
    }
    let stats = PartitionMapStats {
        base_cells: r.u64("map stats")?,
        split_cells: r.u64("map stats")?,
        slots: r.u64("map stats")?,
        max_cell_entries: r.u64("map stats")?,
        max_slot_entries: r.u64("map stats")?,
    };
    Ok(PartitionMap {
        grid,
        slots: rebuilt,
        stats,
    })
}

fn decode_geometry(r: &mut Reader<'_>, depth: usize) -> Result<Geometry, PersistError> {
    if depth > MAX_GEOMETRY_DEPTH {
        return Err(PersistError::Malformed {
            what: "geometry",
            detail: format!("nesting deeper than {MAX_GEOMETRY_DEPTH}"),
        });
    }
    Ok(match r.u8("geometry tag")? {
        0 => Geometry::Point(Point {
            x: r.f64("point")?,
            y: r.f64("point")?,
        }),
        1 => Geometry::LineString(LineString {
            points: decode_points(r)?,
        }),
        2 => Geometry::Polygon(decode_polygon(r)?),
        3 => {
            let n = r.count(4, "multipolygon members")?;
            let mut polygons = Vec::with_capacity(n);
            for _ in 0..n {
                polygons.push(decode_polygon(r)?);
            }
            Geometry::MultiPolygon(MultiPolygon { polygons })
        }
        4 => {
            let n = r.count(1, "collection members")?;
            let mut members = Vec::with_capacity(n);
            for _ in 0..n {
                members.push(decode_geometry(r, depth + 1)?);
            }
            Geometry::Collection(members)
        }
        v => {
            return Err(PersistError::Malformed {
                what: "geometry tag",
                detail: format!("tag {v}"),
            })
        }
    })
}

fn decode_polygon(r: &mut Reader<'_>) -> Result<Polygon, PersistError> {
    let exterior = Ring {
        points: decode_points(r)?,
    };
    let n = r.count(4, "polygon holes")?;
    let mut holes = Vec::with_capacity(n);
    for _ in 0..n {
        holes.push(Ring {
            points: decode_points(r)?,
        });
    }
    Ok(Polygon { exterior, holes })
}

fn decode_points(r: &mut Reader<'_>) -> Result<Vec<Point>, PersistError> {
    let n = r.count(16, "points")?;
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        points.push(Point {
            x: r.f64("point")?,
            y: r.f64("point")?,
        });
    }
    Ok(points)
}

fn decode_shard_sets(
    r: &mut Reader<'_>,
    dataset_len: u64,
) -> Result<Vec<(usize, Arc<ShardSet>)>, PersistError> {
    let n = r.count(8 + 4, "shard sets")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let requested = r.usize("requested shard count")?;
        let shards = r.count(8 + 8 + 1 + 8, "shards")?;
        let mut rebuilt = Vec::with_capacity(shards);
        for _ in 0..shards {
            let start = r.usize("shard start")?;
            let end = r.usize("shard end")?;
            // A shard is a byte range the scan will slice out of the
            // dataset: it must stay inside the bytes it was built for.
            if start > end || end as u64 > dataset_len {
                return Err(PersistError::Malformed {
                    what: "shard range",
                    detail: format!("[{start}, {end}) of {dataset_len} bytes"),
                });
            }
            let mbr = if r.bool("shard mbr flag")? {
                Some(decode_mbr(r)?)
            } else {
                None
            };
            let features = r.u64("shard features")?;
            rebuilt.push(Shard {
                start,
                end,
                mbr,
                features,
            });
        }
        out.push((requested, Arc::new(ShardSet::from_shards(rebuilt))));
    }
    Ok(out)
}

fn decode_aggregates(r: &mut Reader<'_>) -> Result<Vec<(QueryKey, QueryResult)>, PersistError> {
    let n = r.count(1 + 1, "aggregates")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let key = decode_query_key(r)?;
        let result = decode_query_result(r)?;
        out.push((key, result));
    }
    Ok(out)
}

fn decode_query_key(r: &mut Reader<'_>) -> Result<QueryKey, PersistError> {
    Ok(match r.u8("query key tag")? {
        0 => QueryKey::Containment {
            region: decode_region_key(r)?,
        },
        1 => QueryKey::Aggregation {
            region: decode_region_key(r)?,
            want_area: r.bool("query key")?,
            want_perimeter: r.bool("query key")?,
            model: r.u8("query key")?,
            strategy: r.u8("query key")?,
        },
        2 => QueryKey::Join {
            threshold: r.u64("query key")?,
        },
        3 => QueryKey::Combined {
            threshold: r.u64("query key")?,
            min_perimeter: r.u64("query key")?,
            max_perimeter: r.u64("query key")?,
        },
        v => {
            return Err(PersistError::Malformed {
                what: "query key tag",
                detail: format!("tag {v}"),
            })
        }
    })
}

fn decode_region_key(r: &mut Reader<'_>) -> Result<RegionKey, PersistError> {
    let rings = r.count(4, "region rings")?;
    let mut out = Vec::with_capacity(rings);
    for _ in 0..rings {
        let n = r.count(16, "region points")?;
        let mut ring = Vec::with_capacity(n);
        for _ in 0..n {
            ring.push((r.u64("region point")?, r.u64("region point")?));
        }
        out.push(ring);
    }
    Ok(RegionKey(out))
}

fn decode_query_result(r: &mut Reader<'_>) -> Result<QueryResult, PersistError> {
    Ok(match r.u8("result tag")? {
        0 => {
            let n = r.count(8 + 8 + 4 + 32, "match records")?;
            let mut matches = Vec::with_capacity(n);
            for _ in 0..n {
                matches.push(MatchRecord {
                    id: r.u64("match")?,
                    offset: r.u64("match")?,
                    len: r.u32("match")?,
                    mbr: decode_mbr(r)?,
                });
            }
            QueryResult::Matches(matches)
        }
        1 => QueryResult::Aggregate(AggregateValues {
            count: r.u64("aggregate")?,
            total_area: r.f64("aggregate")?,
            total_perimeter: r.f64("aggregate")?,
        }),
        2 => {
            let n = r.count(32, "join pairs")?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push(JoinPair {
                    left_id: r.u64("pair")?,
                    right_id: r.u64("pair")?,
                    left_offset: r.u64("pair")?,
                    right_offset: r.u64("pair")?,
                });
            }
            QueryResult::Joined(pairs)
        }
        3 => QueryResult::Combined {
            pairs: r.u64("combined")?,
            total_union_area: r.f64("combined")?,
        },
        v => {
            return Err(PersistError::Malformed {
                what: "result tag",
                detail: format!("tag {v}"),
            })
        }
    })
}

/// Byte offsets of the structural boundaries of an encoded snapshot:
/// the header end, then each section frame start and each payload
/// start/end. Torture tests truncate at exactly these offsets (plus
/// seeded interior positions) to hit every framing edge.
pub fn section_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut out = vec![HEADER_LEN.min(bytes.len())];
    let mut r = Reader::new(bytes);
    if r.raw(HEADER_LEN, "header").is_err() {
        return out;
    }
    let Ok(sections) = r.count(2 + 8 + 8, "sections") else {
        return out;
    };
    out.push(r.position());
    for _ in 0..sections {
        if r.u16("id").is_err() {
            break;
        }
        let Ok(len) = r.u64("len") else { break };
        if r.u64("checksum").is_err() {
            break;
        }
        out.push(r.position());
        if r.raw(len as usize, "payload").is_err() {
            break;
        }
        out.push(r.position());
    }
    out
}
