//! Per-block query pipelines (Fig. 6): parse → transform/filter →
//! aggregate, composed per §3.2 by storing downstream aggregates on
//! the parse fragments' tapes.
//!
//! The [`QueryAggregate`] trait is the downstream transducer: it
//! absorbs features the moment a block (or a fragment merge) completes
//! them and combines associatively, so feature buffers never span the
//! whole input. In FAT mode one aggregate is kept per speculated lexer
//! start state, mirroring the paper's predicated tapes.

use crate::exact::ExactSum;
use crate::query::{FilterStrategy, Metric};
use crate::result::{AggregateValues, MatchRecord};
use atgis_formats::feature::{MetadataFilter, RawFeature};
use atgis_formats::geojson::fat::BlockFragment;
use atgis_formats::wkt::WktFragment;
use atgis_formats::{Block, ParseError};
use atgis_geometry::relate::intersects;
use atgis_geometry::{measures, DistanceModel, Geometry, Polygon};
use std::any::Any;

/// The downstream (transform + aggregation) stages of a single-pass
/// pipeline, as an associative aggregate over completed features.
pub trait QueryAggregate: Send + Sync + Clone {
    /// The empty aggregate.
    fn identity() -> Self;
    /// Folds one completed feature in.
    fn absorb(&mut self, feature: &RawFeature);
    /// Associative combination (self covers earlier input).
    fn combine(self, other: Self) -> Self;
}

/// Object-safe view of a [`QueryAggregate`], so aggregates of
/// *different* concrete types can ride one scan together (the
/// shared-scan batch fan-out). Implemented for every
/// `QueryAggregate + 'static` via the blanket impl below; positionally
/// paired sinks must be the same concrete type — [`MultiSink`]
/// guarantees this by always combining position `i` with position `i`.
pub trait AggregateSink: Send + Sync {
    /// Folds one completed feature in.
    fn absorb_feature(&mut self, feature: &RawFeature);
    /// Associative combination with a sink of the same concrete type.
    fn combine_sink(self: Box<Self>, other: Box<dyn AggregateSink>) -> Box<dyn AggregateSink>;
    /// Deep clone (fragment prototypes are cloned per block).
    fn clone_sink(&self) -> Box<dyn AggregateSink>;
    /// Downcast support for result extraction.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
    /// The panic message when this sink is the tombstone a panicked
    /// [`MultiSink`] member was replaced with; `None` for live sinks.
    /// Extraction code must check this before downcasting.
    fn panic_message(&self) -> Option<&str> {
        None
    }
}

impl<A: QueryAggregate + 'static> AggregateSink for A {
    fn absorb_feature(&mut self, feature: &RawFeature) {
        self.absorb(feature);
    }

    fn combine_sink(self: Box<Self>, other: Box<dyn AggregateSink>) -> Box<dyn AggregateSink> {
        let other = other
            .into_any()
            .downcast::<A>()
            .expect("combined sinks share one concrete type per position");
        Box::new((*self).combine(*other))
    }

    fn clone_sink(&self) -> Box<dyn AggregateSink> {
        Box::new(self.clone())
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Takes a finished sink back to its concrete aggregate type.
pub fn downcast_sink<A: 'static>(sink: Box<dyn AggregateSink>) -> A {
    *sink
        .into_any()
        .downcast::<A>()
        .expect("sink extraction requested the wrong aggregate type")
}

/// Tombstone for a [`MultiSink`] member whose aggregate panicked
/// mid-scan: it absorbs nothing, combines to itself (failure is
/// sticky, the earliest message wins), and reports the panic via
/// [`AggregateSink::panic_message`]. This is how a panic in one
/// query's sink fails only that query — the scan, its batch mates and
/// the worker pool all complete normally.
pub(crate) struct FailedSink {
    message: String,
}

impl FailedSink {
    /// A tombstone carrying the panic payload of the member it
    /// replaced (minted in `MultiSink` when a member sink panics, and
    /// in the sharded gather when one shard's scan panics).
    pub(crate) fn new(message: impl Into<String>) -> Self {
        FailedSink {
            message: message.into(),
        }
    }
}

impl AggregateSink for FailedSink {
    fn absorb_feature(&mut self, _feature: &RawFeature) {}

    fn combine_sink(self: Box<Self>, _other: Box<dyn AggregateSink>) -> Box<dyn AggregateSink> {
        self
    }

    fn clone_sink(&self) -> Box<dyn AggregateSink> {
        Box::new(FailedSink {
            message: self.message.clone(),
        })
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn panic_message(&self) -> Option<&str> {
        Some(&self.message)
    }
}

/// The multi-sink fan-out of the shared-scan batch layer: one
/// aggregate that dispatches every completed feature to N per-query
/// member sinks and combines member-wise. Because it implements
/// [`QueryAggregate`], it flows through every existing execution path
/// unchanged — PAT block scans, the speculated FAT fragments
/// ([`FatGeoJsonFrag`] / [`FatWktFrag`]) and the parallel tree merge —
/// so one parse pass serves every member query.
///
/// Member order is the fan-out contract: `combine` zips positionally,
/// so member `i` sees exactly the absorb/combine sequence it would
/// have seen running alone. Results are therefore bit-identical to
/// per-query execution.
pub struct MultiSink {
    sinks: Vec<Box<dyn AggregateSink>>,
}

impl MultiSink {
    /// Builds the fan-out over per-query prototype sinks.
    pub fn new(sinks: Vec<Box<dyn AggregateSink>>) -> Self {
        MultiSink { sinks }
    }

    /// Number of member sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True when no queries ride this scan.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// Surrenders the member sinks, in construction order, for
    /// per-query result extraction.
    pub fn into_sinks(self) -> Vec<Box<dyn AggregateSink>> {
        self.sinks
    }
}

impl Clone for MultiSink {
    fn clone(&self) -> Self {
        MultiSink {
            sinks: self.sinks.iter().map(|s| s.clone_sink()).collect(),
        }
    }
}

impl QueryAggregate for MultiSink {
    fn identity() -> Self {
        // A width-0 sink would silently zip-truncate real members in
        // `combine`; the fan-out width is batch state, like the other
        // parameterized aggregates here.
        unreachable!("use MultiSink::new — the member sinks are query state")
    }

    fn absorb(&mut self, feature: &RawFeature) {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        for sink in &mut self.sinks {
            // Member-level failure domain: a panicking member becomes
            // a FailedSink tombstone and the scan keeps feeding its
            // batch mates. AssertUnwindSafe is sound because the
            // half-mutated member is replaced, never observed again.
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| sink.absorb_feature(feature))) {
                *sink = Box::new(FailedSink {
                    message: crate::pool::panic_message(&*p),
                });
            }
        }
    }

    fn combine(self, other: Self) -> Self {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        debug_assert_eq!(
            self.sinks.len(),
            other.sinks.len(),
            "fan-out width is fixed for one scan"
        );
        MultiSink {
            sinks: self
                .sinks
                .into_iter()
                .zip(other.sinks)
                .map(|(a, b)| {
                    // Sticky failure, earliest (document-order) side
                    // wins — checked up front so a live sink never
                    // tries to downcast a tombstone.
                    if a.panic_message().is_some() {
                        return a;
                    }
                    if b.panic_message().is_some() {
                        return b;
                    }
                    match catch_unwind(AssertUnwindSafe(|| a.combine_sink(b))) {
                        Ok(s) => s,
                        Err(p) => Box::new(FailedSink {
                            message: crate::pool::panic_message(&*p),
                        }),
                    }
                })
                .collect(),
        }
    }
}

/// Containment-query aggregate: buffers matching records (§4.4: "it
/// is also used for containment queries to store the output of the
/// transformation stage").
#[derive(Debug, Clone)]
pub struct ContainmentAgg {
    region: std::sync::Arc<Polygon>,
    /// Matches found so far.
    pub matches: Vec<MatchRecord>,
}

impl ContainmentAgg {
    /// Creates the aggregate for a reference region.
    pub fn new(region: std::sync::Arc<Polygon>) -> Self {
        ContainmentAgg {
            region,
            matches: Vec::new(),
        }
    }
}

impl QueryAggregate for ContainmentAgg {
    fn identity() -> Self {
        unreachable!("use ContainmentAgg::new — the region is a query parameter")
    }

    fn absorb(&mut self, f: &RawFeature) {
        let mbr = f.geometry.mbr();
        // MBR pre-filter, then exact geometry refinement (§2.3's
        // filter-refine pattern).
        if !mbr.intersects(&self.region.mbr()) {
            return;
        }
        if intersects(&f.geometry, &Geometry::Polygon((*self.region).clone())) {
            self.matches.push(MatchRecord {
                id: f.id,
                offset: f.offset,
                len: f.len,
                mbr,
            });
        }
    }

    fn combine(mut self, mut other: Self) -> Self {
        self.matches.append(&mut other.matches);
        self
    }
}

/// Aggregation-query aggregate: containment test plus numeric
/// summarisation, with the streaming/buffered trade-off of Fig. 7.
///
/// Sums accumulate in [`ExactSum`]s, so the reported values are the
/// correctly-rounded true sums — identical bits no matter how the scan
/// was chunked, blocked or threaded. That invariance is what lets the
/// streaming execution path promise results bit-identical to the
/// buffered path.
#[derive(Debug, Clone)]
pub struct MetricsAgg {
    region: std::sync::Arc<Polygon>,
    model: DistanceModel,
    strategy: FilterStrategy,
    want_area: bool,
    want_perimeter: bool,
    count: u64,
    area: ExactSum,
    perimeter: ExactSum,
}

impl MetricsAgg {
    /// Creates the aggregate.
    pub fn new(
        region: std::sync::Arc<Polygon>,
        metrics: &[Metric],
        model: DistanceModel,
        strategy: FilterStrategy,
    ) -> Self {
        MetricsAgg {
            region,
            model,
            strategy,
            want_area: metrics.contains(&Metric::Area),
            want_perimeter: metrics.contains(&Metric::Perimeter),
            count: 0,
            area: ExactSum::new(),
            perimeter: ExactSum::new(),
        }
    }

    /// The aggregated values (sums correctly rounded).
    pub fn values(&self) -> AggregateValues {
        AggregateValues {
            count: self.count,
            total_area: self.area.value(),
            total_perimeter: self.perimeter.value(),
        }
    }

    fn passes(&self, f: &RawFeature) -> bool {
        f.geometry.mbr().intersects(&self.region.mbr())
            && intersects(&f.geometry, &Geometry::Polygon((*self.region).clone()))
    }
}

impl QueryAggregate for MetricsAgg {
    fn identity() -> Self {
        unreachable!("use MetricsAgg::new — parameters are query state")
    }

    fn absorb(&mut self, f: &RawFeature) {
        match self.strategy {
            FilterStrategy::Streaming => {
                // Compute the metrics unconditionally, concurrent with
                // the test; discard on failure (Fig. 7b).
                let area = if self.want_area {
                    measures::area(&f.geometry, self.model)
                } else {
                    0.0
                };
                let perimeter = if self.want_perimeter {
                    measures::perimeter(&f.geometry, self.model)
                } else {
                    0.0
                };
                if self.passes(f) {
                    self.count += 1;
                    self.area.add(area);
                    self.perimeter.add(perimeter);
                }
            }
            FilterStrategy::Buffered | FilterStrategy::Auto => {
                // Buffer the geometry until the filter decides, then
                // compute metrics from the buffered copy (Fig. 7a).
                // The copy is the buffering overhead the paper weighs
                // against streaming's redundant computation; `Auto`
                // resolution happens in the engine, here it behaves as
                // buffered.
                if self.passes(f) {
                    let buffered: Geometry = f.geometry.clone();
                    self.count += 1;
                    if self.want_area {
                        self.area.add(measures::area(&buffered, self.model));
                    }
                    if self.want_perimeter {
                        self.perimeter
                            .add(measures::perimeter(&buffered, self.model));
                    }
                }
            }
        }
    }

    fn combine(mut self, other: Self) -> Self {
        self.count += other.count;
        self.area.merge(&other.area);
        self.perimeter.merge(&other.perimeter);
        self
    }
}

/// The FAT GeoJSON pipeline fragment: the parse fragment composed with
/// one downstream aggregate per speculated lexer start state (§3.2's
/// "the first transducer now stores a predicated set of fragments
/// from the second transducer").
pub struct FatGeoJsonFrag<A: QueryAggregate> {
    parse: BlockFragment,
    /// `(lexer start state, aggregate)` pairs.
    aggs: Vec<(u8, A)>,
}

impl<A: QueryAggregate> FatGeoJsonFrag<A> {
    /// Lexes, parses and aggregates one block.
    pub fn process(
        input: &[u8],
        block: Block,
        filter: &MetadataFilter,
        proto: &A,
    ) -> Result<Self, ParseError> {
        let mut parse = atgis_formats::geojson::fat::process_block(input, block, filter)?;
        let aggs = parse
            .drain_features()
            .into_iter()
            .map(|(state, features)| {
                let mut a = proto.clone();
                for f in &features {
                    a.absorb(f);
                }
                (state, a)
            })
            .collect();
        Ok(FatGeoJsonFrag { parse, aggs })
    }

    /// Fragment merge: compose the parse relation, absorb
    /// boundary-spanning features, combine aggregates along each
    /// speculation chain.
    pub fn merge(
        self,
        other: Self,
        input: &[u8],
        filter: &MetadataFilter,
    ) -> Result<Self, ParseError> {
        let finals = self.parse.entry_finals();
        let mut parse = self.parse.merge(other.parse, input, filter)?;
        let spanning = parse.drain_features();
        let aggs = self
            .aggs
            .into_iter()
            .map(|(start, left)| {
                let mid = finals
                    .iter()
                    .find(|(s, _)| *s == start)
                    .map(|(_, f)| *f)
                    .expect("entry exists");
                let mut combined = left;
                if let Some((_, mids)) = spanning.iter().find(|(s, _)| *s == start) {
                    for f in mids {
                        combined.absorb(f);
                    }
                }
                let right = other
                    .aggs
                    .iter()
                    .find(|(s, _)| *s == mid)
                    .map(|(_, a)| a.clone())
                    .expect("right entry exists");
                (start, combined.combine(right))
            })
            .collect();
        Ok(FatGeoJsonFrag { parse, aggs })
    }

    /// Resolves the speculation and finishes the pipeline.
    pub fn finalize(self, input: &[u8], filter: &MetadataFilter) -> Result<A, ParseError> {
        let mut agg = self
            .aggs
            .into_iter()
            .find(|(s, _)| *s == atgis_formats::geojson::lexer::STATE_OUT)
            .map(|(_, a)| a)
            .expect("STATE_OUT entry");
        for f in self.parse.finalize(input, filter)? {
            agg.absorb(&f);
        }
        Ok(agg)
    }
}

/// The FAT WKT pipeline fragment (no speculation — a single chain).
pub struct FatWktFrag<A: QueryAggregate> {
    parse: WktFragment,
    agg: A,
}

impl<A: QueryAggregate> FatWktFrag<A> {
    /// Parses and aggregates one block.
    pub fn process(
        input: &[u8],
        block: Block,
        filter: &MetadataFilter,
        proto: &A,
    ) -> Result<Self, ParseError> {
        let mut parse = atgis_formats::wkt::process_block(input, block, filter)?;
        let mut agg = proto.clone();
        for f in parse.drain_features() {
            agg.absorb(&f);
        }
        Ok(FatWktFrag { parse, agg })
    }

    /// Fragment merge.
    pub fn merge(
        self,
        other: Self,
        input: &[u8],
        filter: &MetadataFilter,
    ) -> Result<Self, ParseError> {
        let mut parse = self.parse.merge(other.parse, input, filter)?;
        let mut agg = self.agg;
        for f in parse.drain_features() {
            agg.absorb(&f);
        }
        Ok(FatWktFrag {
            parse,
            agg: agg.combine(other.agg),
        })
    }

    /// Finishes the pipeline.
    pub fn finalize(self, input: &[u8], filter: &MetadataFilter) -> Result<A, ParseError> {
        let mut agg = self.agg;
        for f in self.parse.finalize(input, filter)? {
            agg.absorb(&f);
        }
        Ok(agg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgis_formats::fixed_blocks;
    use atgis_geometry::Mbr;
    use std::sync::Arc;

    fn region() -> Arc<Polygon> {
        Arc::new(Polygon::from_mbr(&Mbr::new(-0.5, -0.5, 0.5, 0.5)))
    }

    fn feature(id: u64, x: f64, y: f64) -> RawFeature {
        RawFeature {
            id,
            geometry: Geometry::Point(atgis_geometry::Point::new(x, y)),
            offset: id * 100,
            len: 50,
        }
    }

    #[test]
    fn containment_agg_filters_by_region() {
        let mut agg = ContainmentAgg::new(region());
        agg.absorb(&feature(1, 0.0, 0.0)); // inside
        agg.absorb(&feature(2, 5.0, 5.0)); // outside
        agg.absorb(&feature(3, 0.5, 0.5)); // on boundary
        assert_eq!(agg.matches.len(), 2);
        assert_eq!(agg.matches[0].id, 1);
    }

    #[test]
    fn containment_combine_preserves_order() {
        let mut a = ContainmentAgg::new(region());
        a.absorb(&feature(1, 0.0, 0.0));
        let mut b = ContainmentAgg::new(region());
        b.absorb(&feature(2, 0.1, 0.1));
        let c = a.combine(b);
        assert_eq!(c.matches.iter().map(|m| m.id).collect::<Vec<_>>(), [1, 2]);
    }

    #[test]
    fn metrics_agg_streaming_equals_buffered() {
        let square = RawFeature {
            id: 1,
            geometry: Geometry::Polygon(atgis_geometry::polygon::unit_square()),
            offset: 0,
            len: 10,
        };
        let outside = RawFeature {
            id: 2,
            geometry: Geometry::Polygon(Polygon::from_mbr(&Mbr::new(10.0, 10.0, 11.0, 11.0))),
            offset: 100,
            len: 10,
        };
        let reg = Arc::new(Polygon::from_mbr(&Mbr::new(-1.0, -1.0, 2.0, 2.0)));
        let metrics = [Metric::Area, Metric::Perimeter, Metric::Count];
        let mut streaming = MetricsAgg::new(
            reg.clone(),
            &metrics,
            DistanceModel::Planar,
            FilterStrategy::Streaming,
        );
        let mut buffered = MetricsAgg::new(
            reg,
            &metrics,
            DistanceModel::Planar,
            FilterStrategy::Buffered,
        );
        for f in [&square, &outside] {
            streaming.absorb(f);
            buffered.absorb(f);
        }
        assert_eq!(streaming.values(), buffered.values());
        assert_eq!(streaming.values().count, 1);
        assert_eq!(streaming.values().total_area, 1.0);
        assert_eq!(streaming.values().total_perimeter, 4.0);
    }

    #[test]
    fn multi_sink_members_match_solo_runs() {
        let reg = region();
        let metrics = [Metric::Area, Metric::Perimeter, Metric::Count];
        let features: Vec<RawFeature> = (0..20)
            .map(|i| feature(i, (i as f64) * 0.07 - 0.5, 0.0))
            .collect();

        // Solo runs.
        let mut solo_c = ContainmentAgg::new(reg.clone());
        let mut solo_m = MetricsAgg::new(
            reg.clone(),
            &metrics,
            DistanceModel::Planar,
            FilterStrategy::Streaming,
        );
        for f in &features {
            solo_c.absorb(f);
            solo_m.absorb(f);
        }

        // The same queries riding one fan-out, split over two halves
        // combined associatively (as a two-block scan would).
        let proto = MultiSink::new(vec![
            Box::new(ContainmentAgg::new(reg.clone())),
            Box::new(MetricsAgg::new(
                reg,
                &metrics,
                DistanceModel::Planar,
                FilterStrategy::Streaming,
            )),
        ]);
        let mut left = proto.clone();
        let mut right = proto.clone();
        for f in &features[..9] {
            left.absorb(f);
        }
        for f in &features[9..] {
            right.absorb(f);
        }
        let merged = left.combine(right);
        let mut sinks = merged.into_sinks().into_iter();
        let c: ContainmentAgg = downcast_sink(sinks.next().unwrap());
        let m: MetricsAgg = downcast_sink(sinks.next().unwrap());
        assert_eq!(c.matches, solo_c.matches);
        assert_eq!(m.values(), solo_m.values());
    }

    #[test]
    fn multi_sink_clone_is_deep() {
        let proto = MultiSink::new(vec![Box::new(ContainmentAgg::new(region()))]);
        let mut a = proto.clone();
        a.absorb(&feature(1, 0.0, 0.0));
        let b = proto.clone();
        let a_c: ContainmentAgg = downcast_sink(a.into_sinks().pop().unwrap());
        let b_c: ContainmentAgg = downcast_sink(b.into_sinks().pop().unwrap());
        assert_eq!(a_c.matches.len(), 1);
        assert!(b_c.matches.is_empty(), "prototype must stay untouched");
    }

    /// Aggregate that panics on a specific feature id — the fault
    /// model for member-isolation tests.
    #[derive(Clone)]
    struct BombAgg {
        bomb_id: u64,
        seen: u64,
    }

    impl QueryAggregate for BombAgg {
        fn identity() -> Self {
            BombAgg {
                bomb_id: u64::MAX,
                seen: 0,
            }
        }

        fn absorb(&mut self, f: &RawFeature) {
            assert!(f.id != self.bomb_id, "sink bomb");
            self.seen += 1;
        }

        fn combine(mut self, other: Self) -> Self {
            self.seen += other.seen;
            self
        }
    }

    #[test]
    fn panicking_member_fails_alone_and_batch_mates_survive() {
        let mut multi = MultiSink::new(vec![
            Box::new(ContainmentAgg::new(region())),
            Box::new(BombAgg {
                bomb_id: 1,
                seen: 0,
            }),
            Box::new(ContainmentAgg::new(region())),
        ]);
        for i in 0..5 {
            multi.absorb(&feature(i, 0.0, 0.0));
        }
        let sinks = multi.into_sinks();
        assert!(sinks[0].panic_message().is_none());
        let msg = sinks[2].panic_message();
        assert!(sinks[1]
            .panic_message()
            .expect("bombed")
            .contains("sink bomb"));
        assert!(msg.is_none());
        let healthy: ContainmentAgg = downcast_sink(sinks.into_iter().next().unwrap());
        assert_eq!(healthy.matches.len(), 5, "batch mates saw every feature");
    }

    #[test]
    fn failure_is_sticky_across_combines() {
        let proto = MultiSink::new(vec![Box::new(BombAgg {
            bomb_id: 7,
            seen: 0,
        })]);
        let mut left = proto.clone();
        let mut right = proto.clone();
        left.absorb(&feature(7, 0.0, 0.0)); // bombs the left member
        right.absorb(&feature(8, 0.0, 0.0));
        let merged = left.combine(right);
        let sinks = merged.into_sinks();
        assert!(
            sinks[0]
                .panic_message()
                .expect("sticky")
                .contains("sink bomb"),
            "a failed member stays failed through combine"
        );
    }

    #[test]
    fn fat_geojson_pipeline_matches_direct_parse() {
        let ds = atgis_datagen::OsmGenerator::new(77).generate(60);
        let input = atgis_datagen::write_geojson(&ds);
        let filter = MetadataFilter::All;
        let reg = Arc::new(Polygon::from_mbr(&Mbr::new(-180.0, -90.0, 180.0, 90.0)));
        let proto = ContainmentAgg::new(reg);

        for blocks in [1, 3, 9] {
            let mut merged: Option<FatGeoJsonFrag<ContainmentAgg>> = None;
            for b in fixed_blocks(input.len(), blocks) {
                let f = FatGeoJsonFrag::process(&input, b, &filter, &proto).unwrap();
                merged = Some(match merged {
                    None => f,
                    Some(acc) => acc.merge(f, &input, &filter).unwrap(),
                });
            }
            let agg = merged.unwrap().finalize(&input, &filter).unwrap();
            assert_eq!(agg.matches.len(), 60, "blocks={blocks}");
        }
    }

    #[test]
    fn fat_wkt_pipeline_matches_direct_parse() {
        let ds = atgis_datagen::OsmGenerator::new(78).generate(40);
        let input = atgis_datagen::write_wkt(&ds);
        let filter = MetadataFilter::All;
        let reg = Arc::new(Polygon::from_mbr(&Mbr::new(-180.0, -90.0, 180.0, 90.0)));
        let proto = ContainmentAgg::new(reg);
        for blocks in [1, 4, 11] {
            let mut merged: Option<FatWktFrag<ContainmentAgg>> = None;
            for b in fixed_blocks(input.len(), blocks) {
                let f = FatWktFrag::process(&input, b, &filter, &proto).unwrap();
                merged = Some(match merged {
                    None => f,
                    Some(acc) => acc.merge(f, &input, &filter).unwrap(),
                });
            }
            let agg = merged.unwrap().finalize(&input, &filter).unwrap();
            assert_eq!(agg.matches.len(), 40, "blocks={blocks}");
        }
    }
}
