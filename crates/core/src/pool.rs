//! The persistent execution runtime: a process-lifetime worker pool
//! replacing the per-query thread churn of the original Fig. 5
//! executor.
//!
//! The paper's prototype re-creates its processing threads for every
//! query; under heavy traffic that costs a `clone`/`join` pair plus a
//! mutex per result slot per query. Here the [`Engine`] owns one
//! [`WorkerPool`] built once in `EngineBuilder::build`; queries submit
//! *jobs* (an indexed task set drained through one atomic cursor) and
//! workers park between jobs. Result slots are written lock-free: the
//! cursor hands every index to exactly one claimant, so each slot has
//! a unique writer and plain pointer writes suffice.
//!
//! [`Engine`]: crate::engine::Engine

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Type-erased pointer to the job closure. The pointee is guaranteed
/// by [`WorkerPool::run`] to outlive every access: `run` does not
/// return until all `n` task completions are counted, and workers
/// never dereference after the cursor is exhausted.
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is Sync (bound on construction) and the pointer
// is only dereferenced while the submitting thread keeps the closure
// alive (see `run`'s completion barrier).
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// One submitted job: `n` indexed tasks drained via an atomic cursor.
struct Job {
    /// Monotonic id so a worker runs each job at most once.
    epoch: u64,
    task: TaskPtr,
    n: usize,
    cursor: AtomicUsize,
    /// Pool-worker seats (the submitting thread always participates on
    /// top of these); bounds per-job concurrency below pool size.
    seats: usize,
    seats_taken: AtomicUsize,
    /// Lock-free completion count; the mutex/condvar pair below is
    /// touched only by the final task and the waiting submitter.
    done_count: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
    panicked: AtomicBool,
}

impl Job {
    /// Claims and runs tasks until the cursor is exhausted.
    fn execute(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                break;
            }
            // SAFETY: see TaskPtr — the closure outlives the job.
            let task = unsafe { &*self.task.0 };
            if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            // AcqRel: completing task publishes its slot write; the
            // final task (and the waiting submitter) acquire all of
            // them.
            if self.done_count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
                // Lock before notify so the submitter cannot miss the
                // wakeup between its check and its wait.
                let mut finished = self.done.lock().expect("pool poisoned");
                *finished = true;
                self.done_cv.notify_all();
            }
        }
    }
}

struct PoolState {
    job: Option<Arc<Job>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

/// A persistent pool of worker threads. Workers park between jobs;
/// submitting a job wakes exactly the workers it can use.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    next_epoch: AtomicUsize,
    /// Serialises job submissions: the pool publishes one job at a
    /// time, so concurrent `run` calls from clones of an engine queue
    /// up instead of silently stealing each other's workers.
    submit: Mutex<()>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `workers` persistent threads. Zero workers is
    /// valid: every job then runs inline on the submitting thread.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("atgis-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            next_epoch: AtomicUsize::new(1),
            submit: Mutex::new(()),
        }
    }

    /// The process-wide shared pool used by the free-function executor
    /// API, sized to the machine (`available_parallelism - 1` workers,
    /// the submitting thread being the remaining unit).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(available_parallelism().saturating_sub(1)))
    }

    /// Number of persistent worker threads (the submitting thread adds
    /// one more unit of parallelism on top during a job).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f(0..n)` with at most `concurrency` total threads (pool
    /// workers plus the calling thread), blocking until every index has
    /// completed. Panics in tasks are re-raised here after the job
    /// drains.
    pub fn run<F: Fn(usize) + Sync>(&self, n: usize, concurrency: usize, f: F) {
        if n == 0 {
            return;
        }
        let conc = concurrency.max(1).min(n);
        if conc == 1 || self.handles.is_empty() {
            for i in 0..n {
                f(i);
            }
            return;
        }
        // SAFETY: erase the closure's lifetime; `run` upholds the
        // TaskPtr contract (no access after the completion barrier).
        let task: *const (dyn Fn(usize) + Sync + 'static) = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(&f as *const F as *const (dyn Fn(usize) + Sync + '_))
        };
        let job = Arc::new(Job {
            epoch: self.next_epoch.fetch_add(1, Ordering::Relaxed) as u64,
            task: TaskPtr(task),
            n,
            cursor: AtomicUsize::new(0),
            seats: (conc - 1).min(self.handles.len()),
            seats_taken: AtomicUsize::new(0),
            done_count: AtomicUsize::new(0),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        // One published job at a time. Must not be called from inside
        // a pool task of the same pool (queries never nest jobs).
        let _submit = self.submit.lock().expect("pool poisoned");
        {
            let mut st = self.shared.state.lock().expect("pool poisoned");
            st.job = Some(Arc::clone(&job));
        }
        self.shared.work_ready.notify_all();

        // The submitting thread is always a participant.
        job.execute();

        // Completion barrier: workers may still be finishing claimed
        // tasks after the cursor drained.
        {
            let mut finished = job.done.lock().expect("pool poisoned");
            while !*finished && job.done_count.load(Ordering::Acquire) < job.n {
                finished = job.done_cv.wait(finished).expect("pool poisoned");
            }
        }
        {
            let mut st = self.shared.state.lock().expect("pool poisoned");
            if st
                .job
                .as_ref()
                .map(|j| j.epoch == job.epoch)
                .unwrap_or(false)
            {
                st.job = None;
            }
        }
        // Release the submission slot before re-raising a task panic,
        // so the panic does not poison the submit mutex and kill the
        // pool for later jobs.
        drop(_submit);
        if job.panicked.load(Ordering::Acquire) {
            panic!("worker thread panicked");
        }
    }

    /// Runs `f` over `0..n` and collects the outputs in index order.
    /// Slots are pre-sized and written lock-free (each index has a
    /// unique claimant via the job cursor).
    pub fn run_collect<T: Send, F: Fn(usize) -> T + Sync>(
        &self,
        n: usize,
        concurrency: usize,
        f: F,
    ) -> Vec<T> {
        let mut slots: Vec<Option<T>> = Vec::new();
        slots.resize_with(n, || None);
        let writer = SlotWriter(slots.as_mut_ptr());
        self.run(n, concurrency, |i| {
            // SAFETY: `i` is claimed by exactly one task, so this slot
            // has a unique writer; the Vec outlives the job because
            // `run` blocks until all tasks complete.
            unsafe { *writer.slot(i) = Some(f(i)) };
        });
        slots
            .into_iter()
            .map(|s| s.expect("every index completed"))
            .collect()
    }
}

/// Raw pointer into the slot vector; `Sync` because slot claims are
/// disjoint (see `run_collect`).
struct SlotWriter<T>(*mut Option<T>);

unsafe impl<T: Send> Send for SlotWriter<T> {}
unsafe impl<T: Send> Sync for SlotWriter<T> {}

impl<T> SlotWriter<T> {
    /// The unique writer pointer for slot `i`.
    ///
    /// # Safety
    /// Caller must hold the exclusive claim on index `i`.
    unsafe fn slot(&self, i: usize) -> *mut Option<T> {
        self.0.add(i)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool poisoned");
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(job) = st.job.as_ref() {
                    if job.epoch != last_epoch {
                        break Arc::clone(job);
                    }
                }
                st = shared.work_ready.wait(st).expect("pool poisoned");
            }
        };
        last_epoch = job.epoch;
        if job.seats_taken.fetch_add(1, Ordering::Relaxed) < job.seats {
            job.execute();
        }
    }
}

/// `std::thread::available_parallelism` with a serial fallback.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        let hits = AtomicU64::new(0);
        pool.run(10, 4, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn collect_preserves_index_order() {
        let pool = WorkerPool::new(3);
        for n in [0usize, 1, 2, 17, 100] {
            let out = pool.run_collect(n, 4, |i| i * 3);
            assert_eq!(out, (0..n).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = WorkerPool::new(2);
        for round in 0..50usize {
            let out = pool.run_collect(8, 3, move |i| i + round);
            assert_eq!(out, (0..8).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn concurrency_is_clamped() {
        let pool = WorkerPool::new(2);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.run(32, 2, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "peak > concurrency");
    }

    #[test]
    fn concurrent_submissions_serialise_without_losing_work() {
        let pool = Arc::new(WorkerPool::new(3));
        let total = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                scope.spawn(move || {
                    for _ in 0..20 {
                        pool.run(16, 4, |_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 20 * 16);
    }

    #[test]
    fn task_panic_propagates_after_drain() {
        let pool = WorkerPool::new(2);
        let ran = AtomicU64::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(10, 3, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 4 {
                    panic!("task boom");
                }
            })
        }));
        assert!(result.is_err());
        assert_eq!(ran.load(Ordering::Relaxed), 10, "all tasks still drained");
        // The pool survives a panicked job.
        let out = pool.run_collect(4, 2, |i| i);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }
}
