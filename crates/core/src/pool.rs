//! The persistent execution runtime: a process-lifetime worker pool
//! replacing the per-query thread churn of the original Fig. 5
//! executor.
//!
//! The paper's prototype re-creates its processing threads for every
//! query; under heavy traffic that costs a `clone`/`join` pair plus a
//! mutex per result slot per query. Here the [`Engine`] owns one
//! [`WorkerPool`] built once in `EngineBuilder::build`; queries submit
//! *jobs* (an indexed task set drained through one atomic cursor) and
//! workers park between jobs. Result slots are written lock-free: the
//! cursor hands every index to exactly one claimant, so each slot has
//! a unique writer and plain pointer writes suffice.
//!
//! **Failure domain.** A panic inside a task is caught per-task
//! ([`catch_unwind`]), recorded, and surfaced to the submitter as a
//! structured [`JobFault::Panicked`] after the job drains — it never
//! unwinds through the pool, never poisons the pool's mutexes, and
//! never takes down sibling tasks or later jobs. A job may also carry
//! a [`CancelToken`]: once the token trips, workers keep *claiming*
//! indices (so the completion barrier still counts to `n` and the
//! submitter can never deadlock) but skip the task bodies, so a
//! cancelled job stops within one in-flight work unit per thread.
//! Should a lock nevertheless be found poisoned (a bug elsewhere, an
//! older binary), every lock site here recovers the guard instead of
//! cascading the historical panic into unrelated queries.
//!
//! [`Engine`]: crate::engine::Engine

use crate::cancel::{CancelToken, Interrupt};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// Why a job did not complete normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFault {
    /// At least one task panicked; the payload is the first captured
    /// panic message. Every other task still ran to completion.
    Panicked(String),
    /// The job's [`CancelToken`] tripped; remaining task bodies were
    /// skipped. A task panic takes precedence when both occurred.
    Interrupted(Interrupt),
}

impl std::fmt::Display for JobFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFault::Panicked(m) => write!(f, "task panicked: {m}"),
            JobFault::Interrupted(i) => write!(f, "job interrupted: {i}"),
        }
    }
}

/// Best-effort text of a panic payload (`&str` / `String` payloads
/// verbatim, a placeholder otherwise).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Recovers a lock guard from a poisoned mutex/condvar result: the
/// per-task [`catch_unwind`] means no user code can unwind while a
/// pool lock is held, so the guarded state is always consistent and
/// the poison flag carries no information worth dying for. Shared
/// crate-wide: every execution-layer lock follows the same discipline
/// (panics are confined to task bodies, never raised under a lock),
/// so one historical panic can never cascade into unrelated queries.
pub(crate) fn recover<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

const TRIP_NONE: u8 = 0;
const TRIP_CANCELLED: u8 = 1;
const TRIP_DEADLINE: u8 = 2;

/// Type-erased pointer to the job closure. The pointee is guaranteed
/// by [`WorkerPool::run`] to outlive every access: `run` does not
/// return until all `n` task completions are counted, and workers
/// never dereference after the cursor is exhausted.
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is Sync (bound on construction) and the pointer
// is only dereferenced while the submitting thread keeps the closure
// alive (see `run`'s completion barrier).
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// One submitted job: `n` indexed tasks drained via an atomic cursor.
struct Job {
    /// Monotonic id so a worker runs each job at most once.
    epoch: u64,
    task: TaskPtr,
    n: usize,
    cursor: AtomicUsize,
    /// Pool-worker seats (the submitting thread always participates on
    /// top of these); bounds per-job concurrency below pool size.
    seats: usize,
    seats_taken: AtomicUsize,
    /// Lock-free completion count; the mutex/condvar pair below is
    /// touched only by the final task and the waiting submitter.
    done_count: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
    panicked: AtomicBool,
    /// First captured panic message (first writer wins).
    panic_msg: Mutex<Option<String>>,
    /// Cooperative cancellation for this job, when the submitter
    /// passed a token.
    token: Option<CancelToken>,
    /// Cached trip state (`TRIP_*`): once set, claimants skip task
    /// bodies without re-reading the token or the clock.
    tripped: AtomicU8,
}

impl Job {
    /// Whether the job's token has tripped; caches the first observed
    /// trip so subsequent claims cost one relaxed load.
    fn is_tripped(&self) -> bool {
        if self.tripped.load(Ordering::Relaxed) != TRIP_NONE {
            return true;
        }
        let Some(token) = &self.token else {
            return false;
        };
        match token.interrupted() {
            Some(Interrupt::Cancelled) => {
                self.tripped.store(TRIP_CANCELLED, Ordering::Relaxed);
                true
            }
            Some(Interrupt::DeadlineExceeded) => {
                self.tripped.store(TRIP_DEADLINE, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Records a task panic (first message wins).
    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = recover(self.panic_msg.lock());
        if slot.is_none() {
            *slot = Some(panic_message(payload.as_ref()));
        }
        drop(slot);
        self.panicked.store(true, Ordering::Release);
    }

    /// The structured outcome once the job has drained.
    fn fault(&self) -> Result<(), JobFault> {
        if self.panicked.load(Ordering::Acquire) {
            let msg = recover(self.panic_msg.lock())
                .clone()
                .unwrap_or_else(|| "unknown panic".to_string());
            return Err(JobFault::Panicked(msg));
        }
        match self.tripped.load(Ordering::Relaxed) {
            TRIP_CANCELLED => Err(JobFault::Interrupted(Interrupt::Cancelled)),
            TRIP_DEADLINE => Err(JobFault::Interrupted(Interrupt::DeadlineExceeded)),
            _ => Ok(()),
        }
    }

    /// Claims and runs tasks until the cursor is exhausted. Once the
    /// job's token trips, remaining indices are still claimed and
    /// counted — the completion barrier must reach `n` — but their
    /// task bodies are skipped.
    fn execute(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                break;
            }
            if !self.is_tripped() {
                // SAFETY: see TaskPtr — the closure outlives the job.
                let task = unsafe { &*self.task.0 };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                    self.record_panic(payload);
                }
            }
            // AcqRel: completing task publishes its slot write; the
            // final task (and the waiting submitter) acquire all of
            // them.
            if self.done_count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
                // Lock before notify so the submitter cannot miss the
                // wakeup between its check and its wait.
                let mut finished = recover(self.done.lock());
                *finished = true;
                self.done_cv.notify_all();
            }
        }
    }
}

struct PoolState {
    job: Option<Arc<Job>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

/// A persistent pool of worker threads. Workers park between jobs;
/// submitting a job wakes exactly the workers it can use.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    next_epoch: AtomicUsize,
    /// Serialises job submissions: the pool publishes one job at a
    /// time, so concurrent `run` calls from clones of an engine queue
    /// up instead of silently stealing each other's workers.
    submit: Mutex<()>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `workers` persistent threads. Zero workers is
    /// valid: every job then runs inline on the submitting thread.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("atgis-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            next_epoch: AtomicUsize::new(1),
            submit: Mutex::new(()),
        }
    }

    /// The process-wide shared pool used by the free-function executor
    /// API, sized to the machine (`available_parallelism - 1` workers,
    /// the submitting thread being the remaining unit).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(available_parallelism().saturating_sub(1)))
    }

    /// Number of persistent worker threads (the submitting thread adds
    /// one more unit of parallelism on top during a job).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f(0..n)` with at most `concurrency` total threads (pool
    /// workers plus the calling thread), blocking until every index
    /// has completed. A task panic is caught per-task and surfaced as
    /// [`JobFault::Panicked`] after the job drains — the pool itself
    /// always survives.
    pub fn run<F: Fn(usize) + Sync>(
        &self,
        n: usize,
        concurrency: usize,
        f: F,
    ) -> Result<(), JobFault> {
        self.run_cancellable(n, concurrency, None, f)
    }

    /// [`WorkerPool::run`] with cooperative cancellation: every
    /// claimant polls `token` before each task body, so once the token
    /// trips the job stops within one in-flight work unit per thread
    /// (remaining indices are claimed-and-skipped to keep the
    /// completion barrier sound) and the call returns
    /// [`JobFault::Interrupted`].
    pub fn run_cancellable<F: Fn(usize) + Sync>(
        &self,
        n: usize,
        concurrency: usize,
        token: Option<&CancelToken>,
        f: F,
    ) -> Result<(), JobFault> {
        if n == 0 {
            return Ok(());
        }
        let conc = concurrency.max(1).min(n);
        if conc == 1 || self.handles.is_empty() {
            let mut first_panic: Option<String> = None;
            for i in 0..n {
                if let Some(t) = token {
                    if let Some(interrupt) = t.interrupted() {
                        // A recorded panic outranks the interrupt,
                        // matching the pooled path's precedence.
                        return match first_panic {
                            Some(msg) => Err(JobFault::Panicked(msg)),
                            None => Err(JobFault::Interrupted(interrupt)),
                        };
                    }
                }
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i))) {
                    first_panic.get_or_insert_with(|| panic_message(payload.as_ref()));
                }
            }
            return match first_panic {
                Some(msg) => Err(JobFault::Panicked(msg)),
                None => Ok(()),
            };
        }
        // SAFETY: erase the closure's lifetime; `run` upholds the
        // TaskPtr contract (no access after the completion barrier).
        let task: *const (dyn Fn(usize) + Sync + 'static) = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(&f as *const F as *const (dyn Fn(usize) + Sync + '_))
        };
        let job = Arc::new(Job {
            epoch: self.next_epoch.fetch_add(1, Ordering::Relaxed) as u64,
            task: TaskPtr(task),
            n,
            cursor: AtomicUsize::new(0),
            seats: (conc - 1).min(self.handles.len()),
            seats_taken: AtomicUsize::new(0),
            done_count: AtomicUsize::new(0),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panicked: AtomicBool::new(false),
            panic_msg: Mutex::new(None),
            token: token.cloned(),
            tripped: AtomicU8::new(TRIP_NONE),
        });
        // One published job at a time. Must not be called from inside
        // a pool task of the same pool (queries never nest jobs).
        let _submit = recover(self.submit.lock());
        {
            let mut st = recover(self.shared.state.lock());
            st.job = Some(Arc::clone(&job));
        }
        self.shared.work_ready.notify_all();

        // The submitting thread is always a participant.
        job.execute();

        // Completion barrier: workers may still be finishing claimed
        // tasks after the cursor drained.
        {
            let mut finished = recover(job.done.lock());
            while !*finished && job.done_count.load(Ordering::Acquire) < job.n {
                finished = recover(job.done_cv.wait(finished));
            }
        }
        {
            let mut st = recover(self.shared.state.lock());
            if st
                .job
                .as_ref()
                .map(|j| j.epoch == job.epoch)
                .unwrap_or(false)
            {
                st.job = None;
            }
        }
        drop(_submit);
        job.fault()
    }

    /// Runs `f` over `0..n` and collects the outputs in index order.
    /// Slots are pre-sized and written lock-free (each index has a
    /// unique claimant via the job cursor). Returns the fault instead
    /// of the (necessarily incomplete) outputs when a task panicked.
    pub fn run_collect<T: Send, F: Fn(usize) -> T + Sync>(
        &self,
        n: usize,
        concurrency: usize,
        f: F,
    ) -> Result<Vec<T>, JobFault> {
        self.run_collect_cancellable(n, concurrency, None, f)
    }

    /// [`WorkerPool::run_collect`] with cooperative cancellation (see
    /// [`WorkerPool::run_cancellable`]). On interruption the partial
    /// outputs are discarded and the fault is returned.
    pub fn run_collect_cancellable<T: Send, F: Fn(usize) -> T + Sync>(
        &self,
        n: usize,
        concurrency: usize,
        token: Option<&CancelToken>,
        f: F,
    ) -> Result<Vec<T>, JobFault> {
        let mut slots: Vec<Option<T>> = Vec::new();
        slots.resize_with(n, || None);
        let writer = SlotWriter(slots.as_mut_ptr());
        self.run_cancellable(n, concurrency, token, |i| {
            // SAFETY: `i` is claimed by exactly one task, so this slot
            // has a unique writer; the Vec outlives the job because
            // `run` blocks until all tasks complete.
            unsafe { *writer.slot(i) = Some(f(i)) };
        })?;
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every index completed"))
            .collect())
    }
}

/// Raw pointer into the slot vector; `Sync` because slot claims are
/// disjoint (see `run_collect`).
struct SlotWriter<T>(*mut Option<T>);

unsafe impl<T: Send> Send for SlotWriter<T> {}
unsafe impl<T: Send> Sync for SlotWriter<T> {}

impl<T> SlotWriter<T> {
    /// The unique writer pointer for slot `i`.
    ///
    /// # Safety
    /// Caller must hold the exclusive claim on index `i`.
    unsafe fn slot(&self, i: usize) -> *mut Option<T> {
        self.0.add(i)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = recover(self.shared.state.lock());
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = recover(shared.state.lock());
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(job) = st.job.as_ref() {
                    if job.epoch != last_epoch {
                        break Arc::clone(job);
                    }
                }
                st = recover(shared.work_ready.wait(st));
            }
        };
        last_epoch = job.epoch;
        if job.seats_taken.fetch_add(1, Ordering::Relaxed) < job.seats {
            job.execute();
        }
    }
}

/// `std::thread::available_parallelism` with a serial fallback.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        let hits = AtomicU64::new(0);
        pool.run(10, 4, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn collect_preserves_index_order() {
        let pool = WorkerPool::new(3);
        for n in [0usize, 1, 2, 17, 100] {
            let out = pool.run_collect(n, 4, |i| i * 3).unwrap();
            assert_eq!(out, (0..n).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = WorkerPool::new(2);
        for round in 0..50usize {
            let out = pool.run_collect(8, 3, move |i| i + round).unwrap();
            assert_eq!(out, (0..8).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn concurrency_is_clamped() {
        let pool = WorkerPool::new(2);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.run(32, 2, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            live.fetch_sub(1, Ordering::SeqCst);
        })
        .unwrap();
        assert!(peak.load(Ordering::SeqCst) <= 2, "peak > concurrency");
    }

    #[test]
    fn concurrent_submissions_serialise_without_losing_work() {
        let pool = Arc::new(WorkerPool::new(3));
        let total = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                scope.spawn(move || {
                    for _ in 0..20 {
                        pool.run(16, 4, |_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        })
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 20 * 16);
    }

    #[test]
    fn task_panic_surfaces_structured_after_drain() {
        let pool = WorkerPool::new(2);
        let ran = AtomicU64::new(0);
        let fault = pool
            .run(10, 3, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 4 {
                    panic!("task boom");
                }
            })
            .unwrap_err();
        assert_eq!(fault, JobFault::Panicked("task boom".to_string()));
        assert_eq!(
            ran.load(Ordering::Relaxed),
            10,
            "sibling tasks still drained"
        );
        // The pool survives a panicked job: no poisoned mutexes, no
        // dead workers.
        let out = pool.run_collect(4, 2, |i| i).unwrap();
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn inline_path_catches_panics_too() {
        let pool = WorkerPool::new(0);
        let ran = AtomicU64::new(0);
        let fault = pool
            .run(6, 1, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 2 {
                    panic!("inline boom");
                }
            })
            .unwrap_err();
        assert_eq!(fault, JobFault::Panicked("inline boom".to_string()));
        assert_eq!(ran.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn pre_cancelled_job_skips_every_task_body() {
        let pool = WorkerPool::new(2);
        let token = CancelToken::new();
        token.cancel();
        let ran = AtomicU64::new(0);
        let fault = pool
            .run_cancellable(64, 3, Some(&token), |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        assert_eq!(fault, JobFault::Interrupted(Interrupt::Cancelled));
        assert_eq!(ran.load(Ordering::Relaxed), 0, "no task body may run");
        // The barrier still drained and the pool still serves.
        let out = pool.run_collect(3, 2, |i| i).unwrap();
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn mid_job_cancellation_stops_within_inflight_work() {
        let pool = WorkerPool::new(2);
        let token = CancelToken::new();
        let ran = AtomicU64::new(0);
        let cancel_at = 5u64;
        let t = &token;
        let fault = pool
            .run_cancellable(1000, 3, Some(t), |_| {
                if ran.fetch_add(1, Ordering::Relaxed) + 1 == cancel_at {
                    t.cancel();
                }
            })
            .unwrap_err();
        assert_eq!(fault, JobFault::Interrupted(Interrupt::Cancelled));
        // Each of the ≤3 claimants can have at most one task in
        // flight when the token trips (a small slack absorbs relaxed
        // store visibility).
        let total = ran.load(Ordering::Relaxed);
        assert!(
            total < cancel_at + 16,
            "cancellation must stop within in-flight work, ran {total} of 1000"
        );
    }

    #[test]
    fn elapsed_deadline_interrupts_a_job() {
        let pool = WorkerPool::new(2);
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        let fault = pool
            .run_cancellable(16, 3, Some(&token), |_| {})
            .unwrap_err();
        assert_eq!(fault, JobFault::Interrupted(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn collect_cancellation_discards_partial_output() {
        let pool = WorkerPool::new(2);
        let token = CancelToken::new();
        token.cancel();
        let fault = pool
            .run_collect_cancellable(8, 3, Some(&token), |i| i)
            .unwrap_err();
        assert_eq!(fault, JobFault::Interrupted(Interrupt::Cancelled));
    }

    #[test]
    fn panic_outranks_interrupt_when_both_occur() {
        let pool = WorkerPool::new(0); // inline: deterministic order
        let token = CancelToken::new();
        let t = &token;
        let fault = pool
            .run_cancellable(4, 1, Some(t), |i| {
                if i == 1 {
                    t.cancel();
                    panic!("boom then cancel");
                }
            })
            .unwrap_err();
        assert_eq!(fault, JobFault::Panicked("boom then cancel".to_string()));
    }

    #[test]
    fn panic_messages_render_from_any_payload() {
        assert_eq!(panic_message(&"static"), "static");
        assert_eq!(panic_message(&"owned".to_string()), "owned");
        assert_eq!(panic_message(&42u32), "non-string panic payload");
    }
}
