//! The query forms of Table 3.

use atgis_geometry::{DistanceModel, Mbr, Polygon};

/// Numeric metrics an aggregation query can compute over the selected
/// geometries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Total area (spherical by default, per §5 "we perform all of our
    /// computation using a spherical coordinate system").
    Area,
    /// Total perimeter.
    Perimeter,
    /// Number of selected geometries.
    Count,
}

/// How selection interacts with metric computation (§4.4, Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FilterStrategy {
    /// Compute metrics concurrently with the filter test; discard the
    /// result if the test fails. Wins when selectivity is high
    /// (most geometries pass).
    Streaming,
    /// Buffer the geometry until the filter decides, computing metrics
    /// only for accepted geometries. Wins for selective queries.
    Buffered,
    /// Pick per the paper's ~25% crossover using the region/dataset
    /// area ratio as the selectivity estimate.
    #[default]
    Auto,
}

/// A spatial query (Table 3's four forms).
#[derive(Debug, Clone)]
pub enum Query {
    /// `SELECT * FROM data WHERE ST_Intersects(geom, ref)`
    Containment {
        /// The reference region.
        region: Polygon,
    },
    /// `SELECT ST_Area(geom), ST_Perimeter(geom) WHERE
    /// ST_Intersects(geom, ref)`
    Aggregation {
        /// The reference region.
        region: Polygon,
        /// Which metrics to compute.
        metrics: Vec<Metric>,
        /// Distance model for perimeter computation (Fig. 13 compares
        /// spherical projection against Andoyer's algorithm).
        model: DistanceModel,
        /// Streaming vs buffered filtering.
        strategy: FilterStrategy,
    },
    /// `SELECT * FROM data d1, data d2 WHERE d1.id < t AND d2.id >= t
    /// AND ST_Intersects(d1.geom, d2.geom)`
    Join {
        /// The id threshold carving the two disjoint subsets.
        id_threshold: u64,
    },
    /// The combined query: perimeter filters on both join sides, then
    /// an aggregation over the joined pairs
    /// (`SELECT ST_Area(ST_Union(d1.geom, d2.geom)) … WHERE
    /// ST_Perimeter(d1.geom) > t1 AND ST_Perimeter(d2.geom) < t2 AND
    /// ST_Intersects(…)`).
    Combined {
        /// The id threshold carving the two subsets.
        id_threshold: u64,
        /// Lower perimeter bound on the left side (metres).
        min_perimeter_left: f64,
        /// Upper perimeter bound on the right side (metres).
        max_perimeter_right: f64,
    },
}

impl Query {
    /// Containment query against a bounding box.
    pub fn containment(region: Mbr) -> Query {
        Query::Containment {
            region: Polygon::from_mbr(&region),
        }
    }

    /// Containment query against an arbitrary polygon.
    pub fn containment_polygon(region: Polygon) -> Query {
        Query::Containment { region }
    }

    /// The paper's aggregation query: total area and perimeter of the
    /// geometries intersecting `region`.
    pub fn aggregation(region: Mbr) -> Query {
        Query::Aggregation {
            region: Polygon::from_mbr(&region),
            metrics: vec![Metric::Area, Metric::Perimeter, Metric::Count],
            model: DistanceModel::Spherical,
            strategy: FilterStrategy::Auto,
        }
    }

    /// Aggregation with explicit knobs.
    pub fn aggregation_with(
        region: Mbr,
        metrics: Vec<Metric>,
        model: DistanceModel,
        strategy: FilterStrategy,
    ) -> Query {
        Query::Aggregation {
            region: Polygon::from_mbr(&region),
            metrics,
            model,
            strategy,
        }
    }

    /// Self-join splitting the dataset at `id_threshold`.
    pub fn join(id_threshold: u64) -> Query {
        Query::Join { id_threshold }
    }

    /// The combined query.
    pub fn combined(id_threshold: u64, min_left: f64, max_right: f64) -> Query {
        Query::Combined {
            id_threshold,
            min_perimeter_left: min_left,
            max_perimeter_right: max_right,
        }
    }

    /// The scan work a query needs — what the batch planner groups by.
    pub fn scan_class(&self) -> ScanClass {
        match self {
            Query::Containment { .. } | Query::Aggregation { .. } => ScanClass::SinglePass,
            Query::Join { .. } | Query::Combined { .. } => ScanClass::Join,
        }
    }

    /// The id threshold of join-class queries; `None` for single-pass
    /// queries.
    pub fn join_threshold(&self) -> Option<u64> {
        match self {
            Query::Join { id_threshold } | Query::Combined { id_threshold, .. } => {
                Some(*id_threshold)
            }
            _ => None,
        }
    }
}

/// How a query consumes the structural scan — the grouping key of the
/// shared-scan batch planner. Every class rides the same parse pass;
/// join-class queries additionally need the partition index and a
/// second (join) pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanClass {
    /// Answered entirely by per-feature aggregation during the scan
    /// (containment, aggregation).
    SinglePass,
    /// Needs the partition index plus the PBSM join pipeline (join,
    /// combined).
    Join,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_produce_expected_variants() {
        let r = Mbr::new(0.0, 0.0, 1.0, 1.0);
        assert!(matches!(Query::containment(r), Query::Containment { .. }));
        match Query::aggregation(r) {
            Query::Aggregation { metrics, model, .. } => {
                assert_eq!(metrics.len(), 3);
                assert_eq!(model, DistanceModel::Spherical);
            }
            q => panic!("{q:?}"),
        }
        assert!(matches!(Query::join(10), Query::Join { id_threshold: 10 }));
        assert!(matches!(
            Query::combined(5, 1.0, 2.0),
            Query::Combined { .. }
        ));
    }

    #[test]
    fn scan_classes_partition_the_query_forms() {
        let r = Mbr::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(Query::containment(r).scan_class(), ScanClass::SinglePass);
        assert_eq!(Query::aggregation(r).scan_class(), ScanClass::SinglePass);
        assert_eq!(Query::join(4).scan_class(), ScanClass::Join);
        assert_eq!(Query::combined(4, 0.0, 1.0).scan_class(), ScanClass::Join);
        assert_eq!(Query::containment(r).join_threshold(), None);
        assert_eq!(Query::join(4).join_threshold(), Some(4));
        assert_eq!(Query::combined(9, 0.0, 1.0).join_threshold(), Some(9));
    }

    #[test]
    fn containment_region_covers_mbr() {
        let r = Mbr::new(1.0, 2.0, 3.0, 4.0);
        if let Query::Containment { region } = Query::containment(r) {
            assert_eq!(region.mbr(), r);
        } else {
            unreachable!()
        }
    }
}
