//! Query results and match records.

use atgis_geometry::Mbr;

/// One geometry selected by a containment query. Carries the byte
/// offset (the object's unique identity per §4.2) so callers can
/// re-parse the full geometry on demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchRecord {
    /// Source object id.
    pub id: u64,
    /// Byte offset of the object in the raw input.
    pub offset: u64,
    /// Byte length of the object.
    pub len: u32,
    /// The object's bounding box.
    pub mbr: Mbr,
}

/// One joined pair, identified by the two objects' ids and offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct JoinPair {
    /// Left object id (id < threshold subset).
    pub left_id: u64,
    /// Right object id.
    pub right_id: u64,
    /// Left object byte offset.
    pub left_offset: u64,
    /// Right object byte offset.
    pub right_offset: u64,
}

/// Aggregated numeric results.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AggregateValues {
    /// Number of selected geometries.
    pub count: u64,
    /// Total area (m² under spherical models, coordinate² under
    /// planar).
    pub total_area: f64,
    /// Total perimeter (m under spherical models).
    pub total_perimeter: f64,
}

/// Why one query of a fault-isolated batch failed while its batch
/// mates kept running. Unlike [`crate::Error`] this is `Clone` +
/// `PartialEq`: a deduplicated predicate's failure fans out to every
/// submitter exactly like a success would, and tests compare failure
/// shapes structurally.
///
/// The failure **domain** is the point: a `Panicked` sink takes down
/// only its own query (the pool, the session and the shared caches
/// all survive), and `Cancelled`/`DeadlineExceeded` report
/// cooperative early exit via a [`crate::cancel::CancelToken`], not a
/// fault in the engine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum QueryError {
    /// The query's [`crate::cancel::CancelToken`] was cancelled.
    Cancelled,
    /// The query's [`crate::cancel::CancelToken`] deadline elapsed.
    DeadlineExceeded,
    /// The query's own sink (or a task working solely for it)
    /// panicked; the payload is the panic message.
    Panicked(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            QueryError::Panicked(m) => write!(f, "query task panicked: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// One query's outcome in a fault-isolated batch (`*_isolated` entry
/// points): the result, or the query-attributable failure that took
/// down only this member.
pub type QueryOutcome = std::result::Result<QueryResult, QueryError>;

/// The result of executing a [`crate::Query`]. `PartialEq` compares
/// results exactly (including float aggregates bit-for-bit) — the
/// contract the batch layer is held to: `execute_batch(qs)` must
/// equal `qs.map(execute)` member-wise.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Containment query output.
    Matches(Vec<MatchRecord>),
    /// Aggregation query output.
    Aggregate(AggregateValues),
    /// Join query output.
    Joined(Vec<JoinPair>),
    /// Combined query output: joined pair count plus the union-area
    /// aggregate.
    Combined {
        /// Number of joined pairs that passed all filters.
        pairs: u64,
        /// Total `ST_Area(ST_Union(d1, d2))` over the pairs.
        total_union_area: f64,
    },
}

impl QueryResult {
    /// The matches of a containment query; empty for other variants.
    pub fn matches(&self) -> &[MatchRecord] {
        match self {
            QueryResult::Matches(m) => m,
            _ => &[],
        }
    }

    /// The aggregate of an aggregation query.
    pub fn aggregate(&self) -> Option<AggregateValues> {
        match self {
            QueryResult::Aggregate(a) => Some(*a),
            _ => None,
        }
    }

    /// The joined pairs of a join query; empty for other variants.
    pub fn joined(&self) -> &[JoinPair] {
        match self {
            QueryResult::Joined(p) => p,
            _ => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_select_the_right_variant() {
        let m = QueryResult::Matches(vec![MatchRecord {
            id: 1,
            offset: 0,
            len: 10,
            mbr: Mbr::new(0.0, 0.0, 1.0, 1.0),
        }]);
        assert_eq!(m.matches().len(), 1);
        assert!(m.aggregate().is_none());
        assert!(m.joined().is_empty());

        let a = QueryResult::Aggregate(AggregateValues {
            count: 2,
            total_area: 1.0,
            total_perimeter: 4.0,
        });
        assert_eq!(a.aggregate().unwrap().count, 2);
        assert!(a.matches().is_empty());
    }
}
