//! Multi-tenant query scheduling: admission control, predicate
//! deduplication and cross-batch aggregate reuse over the shared-scan
//! batch layer.
//!
//! [`crate::batch`] amortises the structural scan *within* one batch;
//! this module decides **what each batch should contain** and reuses
//! work *across* batches and *across* tenants. A [`QueryScheduler`]
//! sits between callers (a multi-tenant server front end) and
//! [`QuerySession`]/[`Engine::execute_batch`], applying three policies
//! before any work is dispatched:
//!
//! 1. **Predicate deduplication** — queries with an identical
//!    (region, operator-class) key (the full predicate: region
//!    geometry, requested metrics, distance model, join threshold,
//!    perimeter bounds) share **one** aggregate sink in the underlying
//!    shared scan; the finished result fans out to every submitter on
//!    completion. Ten tenants asking for the same tile cost one
//!    query's work.
//! 2. **Cross-batch aggregate reuse** — a bounded [`AggregateCache`]
//!    keyed by predicate × dataset **generation** holds finished
//!    single-pass results (containment matches, aggregation values),
//!    so repeated traffic skips the scan entirely — the single-pass
//!    mirror of the join-side [`crate::batch::IndexCache`]. Replacing
//!    a dataset ([`QueryScheduler::update`]) bumps its generation and
//!    drops every cached aggregate for it, so a mutated or re-ingested
//!    dataset can never serve stale answers.
//! 3. **Admission control** — each query is costed (in
//!    scan-equivalents, from the dataset's size, the query region's
//!    selectivity against the partition-grid extent, and — once a join
//!    has run — the measured join/scan cost ratio of this dataset).
//!    A scan-heavy outlier is admitted into its **own wave** so the
//!    cheap majority amortises one shared pass without stalling behind
//!    it; per-wave [`crate::stats::WaveStats`] and the scheduler-level
//!    completion-latency percentiles make the stall-free claim
//!    measurable.
//!
//! Because every wave executes through the bit-exact shared-scan
//! batch machinery, deduplication shares the *same* sink a solo run
//! would build, and cached results are the deterministic outputs of
//! earlier identical executions, scheduled results are
//! **bit-identical** to per-query [`Engine::execute`] — the
//! differential suite holds the scheduler to that across threads ×
//! modes × formats.
//!
//! The scheduler also lifts batch execution to **multiple datasets**
//! in one call: [`QueryScheduler::execute_multi`] takes
//! `(dataset, query)` pairs, groups them per dataset, routes each
//! group through the policies above, and returns results in
//! submission order (see also [`Engine::execute_multi_batch`] for the
//! engine-level one-shot form).
//!
//! ```
//! use atgis::{Dataset, Engine, ExecOptions, Query, QueryScheduler};
//! use atgis_formats::Format;
//! use atgis_geometry::Mbr;
//!
//! let bytes = atgis_datagen::write_geojson(&atgis_datagen::OsmGenerator::new(7).generate(120));
//! let dataset = Dataset::from_bytes(bytes, Format::GeoJson);
//! let scheduler = QueryScheduler::new(Engine::builder().threads(2).build());
//! let id = scheduler.register(dataset);
//!
//! // Four tenants, two distinct predicates: one shared scan, two sinks.
//! let tile = Query::aggregation(Mbr::new(-10.0, 40.0, 10.0, 60.0));
//! let world = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
//! let batch = vec![tile.clone(), world.clone(), tile.clone(), world.clone()];
//! let out = scheduler.run(id, &batch, &ExecOptions::new().timed()).unwrap();
//! let stats = out.scheduler.clone().unwrap();
//! let results = out.collapse().unwrap();
//! assert_eq!(results[0], results[2]);
//! assert_eq!(stats.dedup_hits, 2);
//!
//! // The same traffic again: served from the aggregate cache, no scan.
//! let warm = scheduler.run(id, &batch, &ExecOptions::new().timed()).unwrap();
//! let warm = warm.scheduler.clone().unwrap();
//! assert_eq!(warm.cache_hits, 4);
//! assert_eq!(warm.scan_passes, 0);
//! ```

use crate::batch::QuerySession;
use crate::cancel::CancelToken;
use crate::dataset::Dataset;
use crate::engine::Engine;
use crate::exec::{self, ExecOptions, RunOutcome};
use crate::pool::recover;
use crate::query::{FilterStrategy, Metric, Query, ScanClass};
use crate::result::{QueryError, QueryOutcome, QueryResult};
use crate::stats::{SchedulerStats, StreamStats, WaveStats};
use crate::stream::ChunkSource;
use crate::{Error, Result};
use atgis_formats::Format;
use atgis_geometry::Polygon;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Handle to a dataset registered with a [`QueryScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatasetId(u64);

/// The SLO class of a scheduled query — what a tenant *bought*, as
/// opposed to what the query *costs* (admission's scan-equivalents).
/// Admission orders waves **by class before cost**: every
/// `Interactive` wave runs before any `Batch` wave, so an interactive
/// query never queues behind a batch outlier's solo wave, and a
/// serving front end can reject `Batch` submissions under load
/// (backpressure) while still admitting interactive traffic.
///
/// The derived order (`Interactive < Batch`) is the scheduling order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Latency-sensitive traffic: scheduled ahead of every batch
    /// wave. The default — an unclassified query is someone waiting.
    #[default]
    Interactive,
    /// Throughput traffic: runs after interactive waves and is the
    /// class load-shedding rejects first.
    Batch,
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Priority::Interactive => write!(f, "interactive"),
            Priority::Batch => write!(f, "batch"),
        }
    }
}

/// One `(dataset, query)` pair of a multi-dataset batch
/// ([`QueryScheduler::execute_multi`]), carrying the submitting
/// tenant's SLO class.
#[derive(Debug, Clone)]
pub struct ScheduledQuery {
    /// Which registered dataset the query runs against.
    pub dataset: DatasetId,
    /// The query itself.
    pub query: Query,
    /// The SLO class admission orders waves by
    /// ([`Priority::Interactive`] by default).
    pub priority: Priority,
}

impl ScheduledQuery {
    /// Pairs a query with the dataset it targets, at
    /// [`Priority::Interactive`].
    pub fn new(dataset: DatasetId, query: Query) -> Self {
        ScheduledQuery {
            dataset,
            query,
            priority: Priority::Interactive,
        }
    }

    /// Pairs a query with its dataset at an explicit SLO class.
    pub fn with_priority(dataset: DatasetId, query: Query, priority: Priority) -> Self {
        ScheduledQuery {
            dataset,
            query,
            priority,
        }
    }
}

/// Scheduling policy knobs. The defaults enable every policy with
/// conservative thresholds: dedup and caching always help (they are
/// bit-exact), and admission only isolates a query when it is
/// expected to out-cost the **rest of its batch combined**, because a
/// split wave pays an extra structural pass.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Share one sink between queries with identical predicates.
    pub dedup: bool,
    /// Serve repeated single-pass predicates from the
    /// [`AggregateCache`].
    pub cache: bool,
    /// Maximum finished aggregates the cache retains (least recently
    /// used entries are evicted beyond this).
    pub cache_capacity: usize,
    /// Split scan-heavy outliers into their own waves.
    pub admission: bool,
    /// A query is admitted to the shared wave only while its
    /// estimated cost stays within this ratio of the wave built so
    /// far (ascending-cost admission); costlier queries are isolated
    /// into their own waves.
    pub outlier_ratio: f64,
    /// Prior cost of a join-class query, in scan-equivalents, used
    /// until the scheduler has observed a real join on the dataset.
    pub join_cost_weight: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            dedup: true,
            cache: true,
            cache_capacity: 256,
            admission: true,
            outlier_ratio: 4.0,
            join_cost_weight: 4.0,
        }
    }
}

/// The canonical identity of a query's predicate — the dedup and
/// cache key. Two queries with equal keys are guaranteed to produce
/// bit-identical results on the same dataset generation, because the
/// key covers every parameter their aggregate sinks read.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum QueryKey {
    Containment {
        region: RegionKey,
    },
    Aggregation {
        region: RegionKey,
        want_area: bool,
        want_perimeter: bool,
        model: u8,
        strategy: u8,
    },
    Join {
        threshold: u64,
    },
    Combined {
        threshold: u64,
        min_perimeter: u64,
        max_perimeter: u64,
    },
}

/// A polygon (exterior ring + holes) as exact f64 bit patterns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct RegionKey(pub(crate) Vec<Vec<(u64, u64)>>);

fn region_key(region: &Polygon) -> RegionKey {
    let ring = |r: &atgis_geometry::polygon::Ring| {
        r.points
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect::<Vec<_>>()
    };
    let mut rings = Vec::with_capacity(1 + region.holes.len());
    rings.push(ring(&region.exterior));
    rings.extend(region.holes.iter().map(ring));
    RegionKey(rings)
}

fn query_key(q: &Query) -> QueryKey {
    match q {
        Query::Containment { region } => QueryKey::Containment {
            region: region_key(region),
        },
        Query::Aggregation {
            region,
            metrics,
            model,
            strategy,
        } => QueryKey::Aggregation {
            region: region_key(region),
            // MetricsAgg only reads whether area/perimeter are
            // requested (count is always tracked), so the key
            // normalises the metric list to exactly that.
            want_area: metrics.contains(&Metric::Area),
            want_perimeter: metrics.contains(&Metric::Perimeter),
            model: *model as u8,
            strategy: match strategy {
                FilterStrategy::Streaming => 0,
                FilterStrategy::Buffered => 1,
                FilterStrategy::Auto => 2,
            },
        },
        Query::Join { id_threshold } => QueryKey::Join {
            threshold: *id_threshold,
        },
        Query::Combined {
            id_threshold,
            min_perimeter_left,
            max_perimeter_right,
        } => QueryKey::Combined {
            threshold: *id_threshold,
            min_perimeter: min_perimeter_left.to_bits(),
            max_perimeter: max_perimeter_right.to_bits(),
        },
    }
}

/// Cache key: predicate × dataset × dataset generation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct AggCacheKey {
    dataset: DatasetId,
    generation: u64,
    query: QueryKey,
}

struct CachedAggregate {
    result: QueryResult,
    last_used: u64,
}

struct AggCacheInner {
    map: HashMap<AggCacheKey, CachedAggregate>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

/// Bounded cache of finished single-pass aggregates, keyed by
/// predicate × dataset generation — the single-pass counterpart of
/// the join-side [`crate::batch::IndexCache`]. Entries are evicted
/// least-recently-used beyond the configured capacity, and every
/// entry of a dataset is dropped the moment its generation moves
/// ([`QueryScheduler::update`]), so a re-ingested dataset can never
/// serve stale aggregates.
pub struct AggregateCache {
    inner: Mutex<AggCacheInner>,
    capacity: usize,
}

/// Observability counters of an [`AggregateCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregateCacheStats {
    /// Live entries.
    pub entries: usize,
    /// Capacity bound (entries).
    pub capacity: usize,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries dropped by generation invalidation.
    pub invalidations: u64,
}

impl AggregateCache {
    /// An empty cache retaining at most `capacity` aggregates.
    pub fn new(capacity: usize) -> Self {
        AggregateCache {
            inner: Mutex::new(AggCacheInner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                invalidations: 0,
            }),
            capacity,
        }
    }

    /// Counters snapshot.
    pub fn stats(&self) -> AggregateCacheStats {
        let inner = recover(self.inner.lock());
        AggregateCacheStats {
            entries: inner.map.len(),
            capacity: self.capacity,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            invalidations: inner.invalidations,
        }
    }

    fn get(&self, key: &AggCacheKey) -> Option<QueryResult> {
        let mut inner = recover(self.inner.lock());
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let r = entry.result.clone();
                inner.hits += 1;
                Some(r)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    fn insert(&self, key: AggCacheKey, result: QueryResult) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = recover(self.inner.lock());
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            CachedAggregate {
                result,
                last_used: tick,
            },
        );
        while inner.map.len() > self.capacity {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, v)| v.last_used)
                .map(|(k, _)| k.clone())
                .expect("cache over capacity is non-empty");
            inner.map.remove(&oldest);
            inner.evictions += 1;
        }
    }

    /// Every cached aggregate belonging to `dataset`, for snapshot
    /// encoding. Entries of superseded generations were dropped at
    /// invalidation time, so everything returned is current.
    pub(crate) fn export_dataset(&self, dataset: DatasetId) -> Vec<(QueryKey, QueryResult)> {
        let inner = recover(self.inner.lock());
        inner
            .map
            .iter()
            .filter(|(k, _)| k.dataset == dataset)
            .map(|(k, v)| (k.query.clone(), v.result.clone()))
            .collect()
    }

    /// Drops every cached aggregate belonging to `dataset` (any
    /// generation).
    fn invalidate_dataset(&self, dataset: DatasetId) {
        let mut inner = recover(self.inner.lock());
        let before = inner.map.len();
        inner.map.retain(|k, _| k.dataset != dataset);
        inner.invalidations += (before - inner.map.len()) as u64;
    }
}

/// Per-dataset scheduling state: the serving session (with its warm
/// partition-index cache), the generation counter the aggregate cache
/// keys on, and the measured join cost the admission model refines
/// itself with.
struct SchedEntry {
    session: QuerySession,
    generation: u64,
    /// Exponentially-weighted measured cost of a join-class query on
    /// this dataset, in scan-equivalents. `None` until a join has
    /// actually run; admission then stops guessing
    /// ([`SchedulerConfig::join_cost_weight`]) and uses evidence.
    observed_join_cost: Mutex<Option<f64>>,
}

impl SchedEntry {
    fn observe_join_cost(&self, scan: Duration, join_wall: Duration, threads: usize) {
        let scan_s = scan.as_secs_f64();
        if scan_s <= 0.0 {
            return;
        }
        // `join_wall` sums **worker time** across the flattened
        // (query × partition) fan-out, while `scan` is elapsed phase
        // time; divide by the worker count so the ratio compares
        // elapsed-equivalents — otherwise a parallel join would be
        // costed ~`threads`× too high and permanently isolated.
        let wall_s = join_wall.as_secs_f64() / threads.max(1) as f64;
        let units = (wall_s / scan_s).max(1.0);
        let mut slot = recover(self.observed_join_cost.lock());
        *slot = Some(match *slot {
            Some(prev) => 0.5 * prev + 0.5 * units,
            None => units,
        });
    }
}

/// The multi-tenant scheduler: owns one [`Engine`], any number of
/// registered datasets (each a [`QuerySession`] with a warm partition
/// index), a shared [`AggregateCache`], and the admission/dedup
/// policies of [`SchedulerConfig`]. See the module docs for the
/// policy walk-through and a usage example.
pub struct QueryScheduler {
    engine: Engine,
    config: SchedulerConfig,
    cache: AggregateCache,
    entries: Mutex<HashMap<DatasetId, Arc<SchedEntry>>>,
    next_id: AtomicU64,
}

impl QueryScheduler {
    /// A scheduler with the default policy configuration.
    pub fn new(engine: Engine) -> Self {
        QueryScheduler::with_config(engine, SchedulerConfig::default())
    }

    /// A scheduler with explicit policy knobs.
    pub fn with_config(engine: Engine, config: SchedulerConfig) -> Self {
        let cache = AggregateCache::new(if config.cache {
            config.cache_capacity
        } else {
            0
        });
        QueryScheduler {
            engine,
            config,
            cache,
            entries: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// The scheduler's engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The active policy configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Aggregate-cache counters (hits, evictions, invalidations).
    pub fn cache_stats(&self) -> AggregateCacheStats {
        self.cache.stats()
    }

    /// Registers a dataset for scheduled serving, pinning it in a
    /// fresh [`QuerySession`] (generation 1).
    pub fn register(&self, dataset: Dataset) -> DatasetId {
        self.install(QuerySession::new(self.engine.clone(), dataset), 1)
    }

    /// Adopts an existing session — typically a **streaming** session
    /// that has been sealed (`ingest_chunk`* → `finish`), so its warm
    /// partition index carries over into scheduled serving. Errors if
    /// the session is still ingesting or failed to seal: the
    /// scheduler never serves partial data.
    pub fn adopt(&self, session: QuerySession) -> Result<DatasetId> {
        if !session.is_sealed() {
            return Err(Error::Unsupported(
                "only sealed sessions can be scheduled; finish() the stream first".into(),
            ));
        }
        Ok(self.install(session, 1))
    }

    fn install(&self, session: QuerySession, generation: u64) -> DatasetId {
        let id = DatasetId(self.next_id.fetch_add(1, Ordering::Relaxed));
        // Warm-start the aggregate cache: a snapshot's aggregates were
        // computed from exactly these bytes (the store's fingerprint
        // check says so), so re-keying them under the fresh process-
        // local id and generation is sound. The session itself already
        // restored its indexes/shard layouts in QuerySession::new.
        self.restore_aggregates(id, generation, &session);
        recover(self.entries.lock()).insert(
            id,
            Arc::new(SchedEntry {
                session,
                generation,
                observed_join_cost: Mutex::new(None),
            }),
        );
        id
    }

    /// Re-inserts a snapshot's finished aggregates under `id` ×
    /// `generation`. Any load failure silently restores nothing —
    /// queries just recompute.
    fn restore_aggregates(&self, id: DatasetId, generation: u64, session: &QuerySession) {
        if !self.config.cache {
            return;
        }
        let Some(store) = self.engine.persist() else {
            return;
        };
        if let Ok(Some(snap)) = store.load_dataset(session.dataset()) {
            for (query, result) in snap.aggregates {
                self.cache.insert(
                    AggCacheKey {
                        dataset: id,
                        generation,
                        query,
                    },
                    result,
                );
            }
        }
    }

    /// Spills a dataset's current derived state — the session's
    /// indexes and shard layouts plus every cached aggregate — through
    /// the session's write-through path. Best-effort, called after
    /// waves that produced something new.
    fn spill_entry(&self, id: DatasetId, entry: &SchedEntry) {
        entry
            .session
            .write_through(entry.generation, self.cache.export_dataset(id));
    }

    /// Replaces the dataset behind `id` with new content, **bumping
    /// its generation**: every cached aggregate and the session's
    /// partition-index cache for the old bytes are dropped, so no
    /// query can ever observe the old dataset again.
    pub fn update(&self, id: DatasetId, dataset: Dataset) -> Result<()> {
        let mut entries = recover(self.entries.lock());
        let entry = entries
            .get(&id)
            .ok_or_else(|| Error::Unsupported(format!("unknown dataset id {id:?}")))?;
        let generation = entry.generation + 1;
        // The outgoing bytes' snapshot dies with the generation —
        // deleted *before* the swap, so no restart can ever warm-start
        // from state this update invalidated.
        if let Some(store) = self.engine.persist() {
            let old = entry.session.dataset();
            store.remove(old.bytes(), old.format());
        }
        entries.insert(
            id,
            Arc::new(SchedEntry {
                session: QuerySession::new(self.engine.clone(), dataset),
                generation,
                observed_join_cost: Mutex::new(None),
            }),
        );
        drop(entries);
        self.cache.invalidate_dataset(id);
        // The replacement bytes may themselves have a snapshot (e.g. a
        // rollback to previously served content whose file still
        // exists); adopt its aggregates under the new generation.
        if let Ok(e) = self.entry(id) {
            self.restore_aggregates(id, generation, &e.session);
        }
        Ok(())
    }

    /// Unregisters a dataset, dropping its session and cached
    /// aggregates.
    pub fn remove(&self, id: DatasetId) -> Result<()> {
        let removed = recover(self.entries.lock()).remove(&id).is_some();
        if !removed {
            return Err(Error::Unsupported(format!("unknown dataset id {id:?}")));
        }
        self.cache.invalidate_dataset(id);
        Ok(())
    }

    /// The current generation of a registered dataset (1 for a fresh
    /// registration, +1 per [`QueryScheduler::update`]).
    pub fn generation(&self, id: DatasetId) -> Option<u64> {
        recover(self.entries.lock()).get(&id).map(|e| e.generation)
    }

    fn entry(&self, id: DatasetId) -> Result<Arc<SchedEntry>> {
        recover(self.entries.lock())
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::Unsupported(format!("unknown dataset id {id:?}")))
    }

    /// Caches a finished aggregate only while `id` is still registered
    /// at `generation`. The registry lock is held across the check and
    /// the insert, so a concurrent [`QueryScheduler::update`] /
    /// [`QueryScheduler::remove`] either runs its invalidation *after*
    /// this insert (and drops it) or has already swapped the entry
    /// (and the insert is skipped) — an in-flight batch can never park
    /// a dead generation's result in the bounded cache.
    fn insert_if_current(
        &self,
        id: DatasetId,
        generation: u64,
        key: AggCacheKey,
        result: QueryResult,
    ) {
        let entries = recover(self.entries.lock());
        if entries.get(&id).map(|e| e.generation) == Some(generation) {
            self.cache.insert(key, result);
        }
    }

    /// The unified entry point: schedules `queries` against one
    /// registered dataset under one [`ExecOptions`] request. The full
    /// policy stack applies — aggregate-cache probe, predicate dedup,
    /// admission waves ordered by [`ExecOptions::priority`] class —
    /// and [`ExecOptions::shards`] scatter–gathers every wave across
    /// the session's cached shard layout. Results are bit-identical
    /// to single-node, unscheduled execution.
    pub fn run(&self, id: DatasetId, queries: &[Query], opts: &ExecOptions) -> Result<RunOutcome> {
        // The caller named the dataset explicitly, so an unknown id is
        // an error even for an empty batch (run_multi only resolves
        // ids that actually carry queries).
        self.entry(id)?;
        let batch: Vec<ScheduledQuery> = queries
            .iter()
            .map(|q| ScheduledQuery::with_priority(id, q.clone(), opts.priority))
            .collect();
        self.run_multi(&batch, opts)
    }

    /// [`QueryScheduler::run`] spanning **multiple datasets** (and
    /// per-query priorities) in one call: pairs group by dataset,
    /// each group runs through the full policy stack, and outcomes
    /// return in submission order.
    pub fn run_multi(&self, batch: &[ScheduledQuery], opts: &ExecOptions) -> Result<RunOutcome> {
        let token = opts.effective_token();
        let shards = opts.shards.resolve(self.engine.threads());
        let started = Instant::now();
        let mut stats = SchedulerStats::new(batch.len());
        // Group by dataset, preserving submission order within each
        // group (first-appearance order across groups).
        let mut order: Vec<DatasetId> = Vec::new();
        #[allow(clippy::type_complexity)]
        let mut groups: HashMap<DatasetId, (Vec<usize>, Vec<Query>, Vec<Priority>)> =
            HashMap::new();
        for (i, sq) in batch.iter().enumerate() {
            let (indexes, queries, classes) = groups.entry(sq.dataset).or_insert_with(|| {
                order.push(sq.dataset);
                (Vec::new(), Vec::new(), Vec::new())
            });
            indexes.push(i);
            queries.push(sq.query.clone());
            classes.push(sq.priority);
        }
        // Fail fast: resolve every dataset id before any work is
        // dispatched, so an unknown (or concurrently removed) id
        // cannot discard earlier groups' finished results.
        let resolved: Vec<(DatasetId, Arc<SchedEntry>)> = order
            .iter()
            .map(|&id| Ok((id, self.entry(id)?)))
            .collect::<Result<_>>()?;
        let mut results: Vec<Option<QueryOutcome>> = (0..batch.len()).map(|_| None).collect();
        for (id, entry) in resolved {
            let (indexes, queries, classes) = groups.remove(&id).expect("group exists");
            let mut group_stats = SchedulerStats::new(queries.len());
            let group_results = self.run_group(
                &entry,
                id,
                &queries,
                &classes,
                started,
                &mut group_stats,
                token.as_ref(),
                shards,
            )?;
            for (slot, result) in indexes.iter().zip(group_results) {
                results[*slot] = Some(result);
            }
            for (slot, latency) in indexes.iter().zip(group_stats.latencies) {
                stats.latencies[*slot] = latency;
            }
            for (slot, class) in indexes.iter().zip(classes) {
                stats.classes[*slot] = class;
            }
            stats.unique_queries += group_stats.unique_queries;
            stats.dedup_hits += group_stats.dedup_hits;
            stats.cache_hits += group_stats.cache_hits;
            stats.scan_passes += group_stats.scan_passes;
            stats.waves.extend(group_stats.waves);
        }
        let outcomes: Vec<QueryOutcome> = results
            .into_iter()
            .map(|r| r.expect("every query produced a result"))
            .collect();
        for r in &outcomes {
            match r {
                Err(QueryError::Cancelled) => stats.cancelled += 1,
                Err(QueryError::DeadlineExceeded) => stats.deadline_exceeded += 1,
                Err(QueryError::Panicked(_)) => stats.task_panics += 1,
                Ok(_) => {}
            }
        }
        exec::finish_run(outcomes, None, Some(stats), None, opts)
    }

    /// Schedules one query (a batch of one still benefits from the
    /// aggregate cache and the session's partition index).
    #[deprecated(note = "use QueryScheduler::run with ExecOptions")]
    pub fn execute(&self, id: DatasetId, query: &Query) -> Result<QueryResult> {
        self.run(id, std::slice::from_ref(query), &ExecOptions::new())?
            .into_single()
    }

    /// Schedules a batch against one dataset: predicates deduplicate,
    /// cached aggregates short-circuit, the rest is admitted in waves
    /// (see the module docs). Results come back in submission order,
    /// bit-identical to per-query [`Engine::execute`].
    #[deprecated(note = "use QueryScheduler::run with ExecOptions")]
    pub fn execute_batch(&self, id: DatasetId, queries: &[Query]) -> Result<Vec<QueryResult>> {
        self.run(id, queries, &ExecOptions::new())?.collapse()
    }

    /// [`QueryScheduler::execute_batch`] with the scheduling
    /// breakdown: dedup/cache hits, per-wave batch stats, completion
    /// latencies.
    #[deprecated(note = "use QueryScheduler::run with ExecOptions::new().timed()")]
    pub fn execute_batch_timed(
        &self,
        id: DatasetId,
        queries: &[Query],
    ) -> Result<(Vec<QueryResult>, SchedulerStats)> {
        let out = self.run(id, queries, &ExecOptions::new().timed())?;
        let stats = out
            .scheduler
            .clone()
            .expect("timed run reports scheduler stats");
        Ok((out.collapse()?, stats))
    }

    /// [`QueryScheduler::execute_batch`] under a cooperative
    /// [`CancelToken`] (optionally deadline-carrying) shared by the
    /// whole batch: the token is observed at region/partition
    /// granularity inside every wave, so a cancelled or past-deadline
    /// batch stops within one in-flight work unit per worker and
    /// returns [`Error::Cancelled`] / [`Error::DeadlineExceeded`].
    #[deprecated(note = "use QueryScheduler::run with ExecOptions::new().cancellable(token)")]
    pub fn execute_batch_cancellable(
        &self,
        id: DatasetId,
        queries: &[Query],
        token: &CancelToken,
    ) -> Result<Vec<QueryResult>> {
        self.run(id, queries, &ExecOptions::new().cancellable(token))?
            .collapse()
    }

    /// The **fault-isolated** scheduled batch: per-query `Result`s
    /// plus the scheduling breakdown. A panic in one query's
    /// aggregate sink fails only that query (and its dedup
    /// duplicates, which share the sink) with
    /// [`QueryError::Panicked`]; batch mates complete bit-identically
    /// to solo execution and the scheduler stays fully serviceable.
    /// When the `token` trips mid-batch, queries already resolved
    /// keep their results and the rest report
    /// [`QueryError::Cancelled`] / [`QueryError::DeadlineExceeded`].
    /// [`SchedulerStats::cancelled`],
    /// [`SchedulerStats::deadline_exceeded`] and
    /// [`SchedulerStats::task_panics`] tally the failures. Only
    /// non-query failures (unknown id, I/O or parse errors) surface
    /// as the outer `Err`.
    #[deprecated(note = "use QueryScheduler::run with ExecOptions::new().isolated().timed()")]
    pub fn execute_batch_isolated_timed(
        &self,
        id: DatasetId,
        queries: &[Query],
        token: Option<&CancelToken>,
    ) -> Result<(
        Vec<std::result::Result<QueryResult, QueryError>>,
        SchedulerStats,
    )> {
        let out = self.run(
            id,
            queries,
            &ExecOptions::new().isolated().timed().cancellable_opt(token),
        )?;
        let stats = out.scheduler.expect("timed run reports scheduler stats");
        Ok((out.outcomes, stats))
    }

    /// [`QueryScheduler::execute_batch_isolated_timed`] with an
    /// explicit SLO class per query (`classes` parallels `queries`).
    /// Admission forms waves **per class, interactive first**: every
    /// [`Priority::Interactive`] wave (shared wave, then outliers by
    /// ascending cost) completes before any [`Priority::Batch`] wave
    /// starts, so an interactive query never queues behind a batch
    /// outlier's solo wave. A predicate submitted at both classes is
    /// deduplicated into its **highest-priority** submission's wave —
    /// sharing a sink can only move a query *earlier*. Per-class
    /// completion-latency percentiles come back via
    /// [`SchedulerStats::class_latency_percentiles`].
    #[deprecated(note = "use QueryScheduler::run_multi with per-query ScheduledQuery priorities")]
    pub fn execute_batch_prioritized(
        &self,
        id: DatasetId,
        queries: &[Query],
        classes: &[Priority],
        token: Option<&CancelToken>,
    ) -> Result<(
        Vec<std::result::Result<QueryResult, QueryError>>,
        SchedulerStats,
    )> {
        if classes.len() != queries.len() {
            return Err(Error::Unsupported(format!(
                "{} queries but {} priority classes",
                queries.len(),
                classes.len()
            )));
        }
        let batch: Vec<ScheduledQuery> = queries
            .iter()
            .zip(classes)
            .map(|(q, &c)| ScheduledQuery::with_priority(id, q.clone(), c))
            .collect();
        let out = self.run_multi(
            &batch,
            &ExecOptions::new().isolated().timed().cancellable_opt(token),
        )?;
        let stats = out.scheduler.expect("timed run reports scheduler stats");
        Ok((out.outcomes, stats))
    }

    /// Schedules a batch spanning **multiple datasets** in one call:
    /// pairs group by dataset, each group runs through the full
    /// policy stack, and results return in submission order.
    #[deprecated(note = "use QueryScheduler::run_multi with ExecOptions")]
    pub fn execute_multi(&self, batch: &[ScheduledQuery]) -> Result<Vec<QueryResult>> {
        self.run_multi(batch, &ExecOptions::new())?.collapse()
    }

    /// [`QueryScheduler::execute_multi`] with the combined scheduling
    /// breakdown (waves of all groups, latencies in submission
    /// order).
    #[deprecated(note = "use QueryScheduler::run_multi with ExecOptions::new().timed()")]
    pub fn execute_multi_timed(
        &self,
        batch: &[ScheduledQuery],
    ) -> Result<(Vec<QueryResult>, SchedulerStats)> {
        let out = self.run_multi(batch, &ExecOptions::new().timed())?;
        let stats = out
            .scheduler
            .clone()
            .expect("timed run reports scheduler stats");
        Ok((out.collapse()?, stats))
    }

    /// Schedules a batch over a **one-shot streamed** dataset:
    /// predicates deduplicate so every distinct sink rides the single
    /// chunk-fed pass ([`Engine::execute_streaming_batch`]), and the
    /// duplicates fan out on completion. A stream is consumed exactly
    /// once, so admission cannot split waves and nothing persists for
    /// the aggregate cache — for repeated traffic over streamed data,
    /// seal a [`QuerySession::streaming`] session and
    /// [`QueryScheduler::adopt`] it instead.
    #[deprecated(note = "use QueryScheduler::run_streaming with ExecOptions")]
    pub fn execute_streaming_batch(
        &self,
        queries: &[Query],
        source: &mut dyn ChunkSource,
        format: Format,
    ) -> Result<(Vec<QueryResult>, SchedulerStats, StreamStats)> {
        let out = self.run_streaming(queries, source, format, &ExecOptions::new().timed())?;
        let stats = out
            .scheduler
            .clone()
            .expect("timed run reports scheduler stats");
        let stream = out
            .stream
            .clone()
            .expect("streaming run reports stream stats");
        Ok((out.collapse()?, stats, stream))
    }

    /// Streaming counterpart of [`QueryScheduler::run`]: deduplicates
    /// `queries`, runs the unique predicates through **one chunk-fed
    /// pass** ([`Engine::run_streaming`]), and fans the finished
    /// results out to every submitter. One-shot streams admit no
    /// cross-batch caching (the bytes are gone afterwards) and no
    /// sharding ([`ExecOptions::shards`] is ignored — the input has no
    /// byte length to split until the scan is over), but cancellation,
    /// deadlines and per-query isolation all apply.
    pub fn run_streaming(
        &self,
        queries: &[Query],
        source: &mut dyn ChunkSource,
        format: Format,
        opts: &ExecOptions,
    ) -> Result<RunOutcome> {
        let token = opts.effective_token();
        let started = Instant::now();
        let mut stats = SchedulerStats::new(queries.len());
        let keys: Vec<QueryKey> = queries.iter().map(query_key).collect();
        let key_refs: Vec<&QueryKey> = keys.iter().collect();
        let (unique, representative) = self.dedup_plan(&key_refs, &mut stats);
        let unique_queries: Vec<Query> = unique.iter().map(|&i| queries[i].clone()).collect();
        let cache = crate::batch::IndexCache::new();
        let (unique_outcomes, batch_stats, stream_stats) =
            crate::batch::execute_streaming_batch_impl(
                &self.engine,
                &unique_queries,
                source,
                format,
                &cache,
                token.as_ref(),
            )?;
        let elapsed = started.elapsed();
        stats.scan_passes = batch_stats.scan_passes;
        stats.waves.push(WaveStats {
            queries: unique.len() as u64,
            priority: Priority::default(),
            estimated_cost: 0.0,
            elapsed,
            batch: batch_stats,
        });
        let mut results: Vec<Option<QueryOutcome>> = (0..queries.len()).map(|_| None).collect();
        for (&qi, outcome) in unique.iter().zip(unique_outcomes) {
            results[qi] = Some(outcome);
            stats.latencies[qi] = elapsed;
        }
        for (i, rep) in representative.iter().enumerate() {
            if results[i].is_none() {
                results[i] = Some(
                    results[*rep]
                        .clone()
                        .expect("representative resolved before its duplicates"),
                );
                stats.latencies[i] = elapsed;
            }
        }
        let outcomes: Vec<QueryOutcome> = results
            .into_iter()
            .map(|r| r.expect("every query produced a result"))
            .collect();
        for r in &outcomes {
            match r {
                Err(QueryError::Cancelled) => stats.cancelled += 1,
                Err(QueryError::DeadlineExceeded) => stats.deadline_exceeded += 1,
                Err(QueryError::Panicked(_)) => stats.task_panics += 1,
                Ok(_) => {}
            }
        }
        exec::finish_run(outcomes, None, Some(stats), Some(stream_stats), opts)
    }

    /// Deduplicates a list of predicate keys: returns the indexes of
    /// the unique representatives (submission order) and, for every
    /// entry, the index of its representative (itself when unique).
    /// With dedup disabled every query represents itself.
    fn dedup_plan(
        &self,
        keys: &[&QueryKey],
        stats: &mut SchedulerStats,
    ) -> (Vec<usize>, Vec<usize>) {
        let mut unique: Vec<usize> = Vec::with_capacity(keys.len());
        let mut representative: Vec<usize> = Vec::with_capacity(keys.len());
        if !self.config.dedup {
            unique.extend(0..keys.len());
            representative.extend(0..keys.len());
            stats.unique_queries = keys.len() as u64;
            return (unique, representative);
        }
        let mut seen: HashMap<&QueryKey, usize> = HashMap::new();
        for (i, key) in keys.iter().enumerate() {
            match seen.entry(key) {
                std::collections::hash_map::Entry::Occupied(rep) => {
                    representative.push(*rep.get());
                    stats.dedup_hits += 1;
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(i);
                    representative.push(i);
                    unique.push(i);
                }
            }
        }
        stats.unique_queries = unique.len() as u64;
        (unique, representative)
    }

    /// Estimated cost of one query against a registered dataset, in
    /// scan-equivalents — exactly what the admission controller would
    /// charge it. Single-pass queries cost a fraction of the scan
    /// proportional to their selectivity against the partition-grid
    /// extent; join-class queries cost the measured join/scan ratio
    /// of this dataset when one has run, or the configured prior. A
    /// serving front end reuses this as its backpressure currency:
    /// queued cost summed in the same units the wave former reasons
    /// in, compared against a load-shedding budget.
    pub fn estimate_query_cost(&self, id: DatasetId, query: &Query) -> Result<f64> {
        let entry = self.entry(id)?;
        Ok(self.estimate_cost(&entry, query))
    }

    fn estimate_cost(&self, entry: &SchedEntry, q: &Query) -> f64 {
        match q.scan_class() {
            ScanClass::SinglePass => {
                let extent = self.engine.grid_extent_area();
                let sel = match q {
                    Query::Containment { region } | Query::Aggregation { region, .. } => {
                        let area = region.mbr().area();
                        if extent > 0.0 {
                            (area / extent).clamp(0.0, 1.0)
                        } else {
                            1.0
                        }
                    }
                    _ => 1.0,
                };
                0.15 + 0.85 * sel
            }
            ScanClass::Join => {
                recover(entry.observed_join_cost.lock()).unwrap_or(self.config.join_cost_weight)
            }
        }
    }

    /// The shared per-dataset execution path behind both
    /// [`QueryScheduler::execute_batch_timed`] and each group of
    /// [`QueryScheduler::execute_multi_timed`]: cache probe → dedup →
    /// admission waves → fan-out. Results are per-query: a sink
    /// panic, a cancellation or an elapsed deadline fails the
    /// affected queries (an interrupted wave fails all of its
    /// members) without discarding what already completed; only
    /// non-query failures propagate as the outer `Err`.
    #[allow(clippy::too_many_arguments)]
    fn run_group(
        &self,
        entry: &SchedEntry,
        id: DatasetId,
        queries: &[Query],
        classes: &[Priority],
        started: Instant,
        stats: &mut SchedulerStats,
        token: Option<&CancelToken>,
        shards: usize,
    ) -> Result<Vec<std::result::Result<QueryResult, QueryError>>> {
        let mut results: Vec<Option<std::result::Result<QueryResult, QueryError>>> =
            (0..queries.len()).map(|_| None).collect();
        let mut latencies: Vec<Duration> = vec![Duration::ZERO; queries.len()];
        stats.classes.copy_from_slice(classes);

        // ---- canonical predicate keys: computed once per query,
        // shared by the cache probe, dedup and the cache insert ----
        let keys: Vec<QueryKey> = queries.iter().map(query_key).collect();

        // ---- cross-batch reuse: probe the aggregate cache ----
        let mut pending: Vec<usize> = Vec::with_capacity(queries.len());
        // Missed probe keys, parallel to `pending`, reused verbatim
        // when the finished result is inserted after its wave.
        let mut pending_cache_keys: Vec<Option<AggCacheKey>> = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            let cacheable = self.config.cache && q.scan_class() == ScanClass::SinglePass;
            if cacheable {
                let key = AggCacheKey {
                    dataset: id,
                    generation: entry.generation,
                    query: keys[i].clone(),
                };
                if let Some(hit) = self.cache.get(&key) {
                    results[i] = Some(Ok(hit));
                    latencies[i] = started.elapsed();
                    stats.cache_hits += 1;
                    continue;
                }
                pending.push(i);
                pending_cache_keys.push(Some(key));
            } else {
                pending.push(i);
                pending_cache_keys.push(None);
            }
        }

        // ---- predicate dedup over the cache misses ----
        let pending_keys: Vec<&QueryKey> = pending.iter().map(|&i| &keys[i]).collect();
        let mut sub = SchedulerStats::new(pending.len());
        let (unique, representative) = self.dedup_plan(&pending_keys, &mut sub);
        stats.unique_queries += sub.unique_queries;
        stats.dedup_hits += sub.dedup_hits;

        // ---- admission: cost the unique queries, form waves
        // ordered by class before cost ----
        let costs: Vec<f64> = unique
            .iter()
            .map(|&u| self.estimate_cost(entry, &queries[pending[u]]))
            .collect();
        // A deduplicated predicate executes once, in its
        // representative's wave — so the effective class of a unique
        // query is the **highest** priority among every submission it
        // answers (dedup may only move a query earlier, never park an
        // interactive submitter behind batch waves).
        let mut unique_classes: Vec<Priority> =
            unique.iter().map(|&u| classes[pending[u]]).collect();
        for (p, &rep) in representative.iter().enumerate() {
            let u = unique
                .binary_search(&rep)
                .expect("representatives are unique entries");
            unique_classes[u] = unique_classes[u].min(classes[pending[p]]);
        }
        let waves = form_waves(&costs, &unique_classes, &self.config);

        // ---- execute the waves, fanning results out as each
        // completes ----
        let persist_epoch = entry.session.persist_epoch();
        let mut aggregates_inserted = false;
        for wave in waves {
            let wave_queries: Vec<Query> = wave
                .iter()
                .map(|&w| queries[pending[unique[w]]].clone())
                .collect();
            let (wave_results, batch_stats) =
                match entry
                    .session
                    .run_isolated_core(&wave_queries, token, shards)
                {
                    Ok(outcome) => outcome,
                    // A batch-wide query failure (cancellation, deadline,
                    // partition-sink panic) fails every member of this
                    // wave; later waves observe the same tripped token
                    // and fail fast the same way, so results already
                    // resolved are never discarded.
                    Err(e) => match e.as_query_error() {
                        Some(qe) => {
                            let elapsed = started.elapsed();
                            for &w in &wave {
                                let qi = pending[unique[w]];
                                results[qi] = Some(Err(qe.clone()));
                                latencies[qi] = elapsed;
                            }
                            continue;
                        }
                        None => return Err(e),
                    },
                };
            let elapsed = started.elapsed();
            let scan = batch_stats.shared_scan.total();
            stats.scan_passes += batch_stats.scan_passes;
            for (pos, ((&w, q), result)) in
                wave.iter().zip(&wave_queries).zip(wave_results).enumerate()
            {
                let p = unique[w];
                let qi = pending[p];
                if q.scan_class() == ScanClass::Join {
                    // Feed the admission model with the measured cost.
                    // `per_query` is indexed by position within this
                    // wave; a warm-index wave ran no scan (`scan` is
                    // zero) and is skipped by the observer — a ratio
                    // against a zero denominator would poison the
                    // model.
                    if let Some(per_query) = batch_stats.per_query.get(pos) {
                        entry.observe_join_cost(scan, per_query.wall, self.engine.threads());
                    }
                } else if let Ok(ref finished) = result {
                    if let Some(key) = pending_cache_keys[p].take() {
                        self.insert_if_current(id, entry.generation, key, finished.clone());
                        aggregates_inserted = true;
                    }
                }
                results[qi] = Some(result);
                latencies[qi] = elapsed;
            }
            stats.waves.push(WaveStats {
                queries: wave.len() as u64,
                priority: unique_classes[wave[0]],
                estimated_cost: wave.iter().map(|&w| costs[w]).sum(),
                elapsed,
                batch: batch_stats,
            });
        }

        // ---- write-through: waves that built an index, bounded a
        // shard layout or finished a cacheable aggregate leave the
        // derived state on disk for the next process ----
        if self.engine.persist().is_some()
            && (aggregates_inserted || entry.session.persist_epoch() > persist_epoch)
        {
            self.spill_entry(id, entry);
        }

        // ---- dedup fan-out: duplicates clone their representative's
        // finished result ----
        for (p, rep) in representative.iter().enumerate() {
            let qi = pending[p];
            if results[qi].is_none() {
                let rep_qi = pending[*rep];
                results[qi] = Some(
                    results[rep_qi]
                        .clone()
                        .expect("representative resolved before its duplicates"),
                );
                latencies[qi] = latencies[rep_qi];
            }
        }

        stats.latencies = latencies;
        results
            .into_iter()
            .map(|r| r.ok_or_else(|| Error::Unsupported("query was never scheduled".into())))
            .collect()
    }
}

/// Admission control's wave former, over the estimated costs and SLO
/// classes of the unique queries of one batch. Waves are ordered **by
/// class before cost**: every [`Priority::Interactive`] wave runs
/// before any [`Priority::Batch`] wave, so an interactive query never
/// queues behind a batch outlier's solo wave — class is what the
/// tenant bought, cost only orders waves *within* a class.
///
/// Within each class the invariant is unchanged from cost-only
/// admission: queries are admitted into the class's shared wave in
/// ascending cost order while each one costs at most
/// [`SchedulerConfig::outlier_ratio`] × the wave built so far — **no
/// wave member out-costs the rest of its wave by more than the
/// configured ratio**, so a scan-heavy outlier can never stall the
/// cheap majority. Rejected queries each run in their own wave; the
/// shared (cheap) wave runs first and outlier waves follow in
/// ascending cost order, so completion latency is monotone in cost
/// within a class. With a single class the output is identical to the
/// pre-class wave former. Classes never share a wave (even with
/// admission disabled): sharing would couple an interactive query's
/// completion to batch work. Returns waves as index lists into
/// `costs`.
fn form_waves(costs: &[f64], classes: &[Priority], config: &SchedulerConfig) -> Vec<Vec<usize>> {
    debug_assert_eq!(costs.len(), classes.len());
    let mut waves: Vec<Vec<usize>> = Vec::new();
    for class in [Priority::Interactive, Priority::Batch] {
        let members: Vec<usize> = (0..costs.len()).filter(|&i| classes[i] == class).collect();
        if members.is_empty() {
            continue;
        }
        if !config.admission || members.len() == 1 {
            waves.push(members);
            continue;
        }
        let mut order = members;
        order.sort_by(|&a, &b| costs[a].total_cmp(&costs[b]));
        let mut shared: Vec<usize> = Vec::new();
        let mut shared_cost = 0.0;
        let mut outliers: Vec<usize> = Vec::new();
        for &i in &order {
            if shared.is_empty() || costs[i] <= config.outlier_ratio * shared_cost {
                shared.push(i);
                shared_cost += costs[i];
            } else {
                // `order` is ascending, so every later query is at
                // least as expensive and would be rejected too: the
                // shared wave is exactly the maximal affordable
                // prefix.
                outliers.push(i);
            }
        }
        shared.sort_unstable(); // back to submission order
        waves.push(shared);
        for o in outliers {
            waves.push(vec![o]);
        }
    }
    waves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{RunExt, SchedRunExt};
    use atgis_datagen::{write_geojson, OsmGenerator};
    use atgis_geometry::Mbr;

    fn dataset(seed: u64, n: usize) -> Dataset {
        let ds = OsmGenerator::new(seed).generate(n);
        Dataset::from_bytes(write_geojson(&ds), Format::GeoJson)
    }

    fn engine() -> Engine {
        Engine::builder().threads(2).cell_size(2.0).build()
    }

    #[test]
    fn query_keys_identify_predicates_exactly() {
        let a = Query::containment(Mbr::new(0.0, 0.0, 1.0, 1.0));
        let b = Query::containment(Mbr::new(0.0, 0.0, 1.0, 1.0));
        let c = Query::containment(Mbr::new(0.0, 0.0, 1.0, 2.0));
        assert_eq!(query_key(&a), query_key(&b));
        assert_ne!(query_key(&a), query_key(&c));
        // Containment and aggregation over the same region are
        // different predicates.
        assert_ne!(
            query_key(&a),
            query_key(&Query::aggregation(Mbr::new(0.0, 0.0, 1.0, 1.0)))
        );
        // Metric sets normalise: ordering does not matter, the
        // area/perimeter selection does.
        use crate::query::Metric;
        use atgis_geometry::DistanceModel;
        let m1 = Query::aggregation_with(
            Mbr::new(0.0, 0.0, 1.0, 1.0),
            vec![Metric::Area, Metric::Perimeter],
            DistanceModel::Spherical,
            FilterStrategy::Auto,
        );
        let m2 = Query::aggregation_with(
            Mbr::new(0.0, 0.0, 1.0, 1.0),
            vec![Metric::Perimeter, Metric::Area, Metric::Count],
            DistanceModel::Spherical,
            FilterStrategy::Auto,
        );
        let m3 = Query::aggregation_with(
            Mbr::new(0.0, 0.0, 1.0, 1.0),
            vec![Metric::Area],
            DistanceModel::Spherical,
            FilterStrategy::Auto,
        );
        assert_eq!(query_key(&m1), query_key(&m2));
        assert_ne!(query_key(&m1), query_key(&m3));
        // Join thresholds and perimeter bounds are part of the key.
        assert_eq!(query_key(&Query::join(5)), query_key(&Query::join(5)));
        assert_ne!(query_key(&Query::join(5)), query_key(&Query::join(6)));
        assert_ne!(
            query_key(&Query::combined(5, 0.0, 1.0)),
            query_key(&Query::combined(5, 0.0, 2.0))
        );
        assert_ne!(
            query_key(&Query::join(5)),
            query_key(&Query::combined(5, 0.0, f64::INFINITY))
        );
    }

    /// Single-class wave forming (every caller before SLO classes
    /// existed): the classed wave former must reproduce the cost-only
    /// behavior exactly.
    fn uniform(costs: &[f64], cfg: &SchedulerConfig) -> Vec<Vec<usize>> {
        form_waves(costs, &vec![Priority::Interactive; costs.len()], cfg)
    }

    #[test]
    fn wave_former_isolates_outliers() {
        let cfg = SchedulerConfig::default(); // outlier_ratio 4.0
                                              // Uniform costs: one wave.
        assert_eq!(uniform(&[1.0, 1.0, 1.0], &cfg), vec![vec![0, 1, 2]]);
        // A giant (10 > 4 × 2.0): isolated, cheap wave first.
        assert_eq!(uniform(&[1.0, 10.0, 1.0], &cfg), vec![vec![0, 2], vec![1]]);
        // Two giants over one cheap query: both isolated (20 > 4 × 1,
        // 30 > 4 × 1), ascending cost order.
        assert_eq!(
            uniform(&[30.0, 1.0, 20.0], &cfg),
            vec![vec![1], vec![2], vec![0]]
        );
        // A balanced pair of heavies amortises fine with company:
        // 4 ≤ 4 × 2 once the cheap pair is admitted.
        assert_eq!(uniform(&[1.0, 4.0, 1.0, 4.0], &cfg), vec![vec![0, 1, 2, 3]]);
        // Admission off: always one wave.
        let off = SchedulerConfig {
            admission: false,
            ..SchedulerConfig::default()
        };
        assert_eq!(uniform(&[1.0, 100.0], &off), vec![vec![0, 1]]);
        // Singleton and empty edge cases.
        assert_eq!(uniform(&[5.0], &cfg), vec![vec![0]]);
        assert!(uniform(&[], &cfg).is_empty());
    }

    #[test]
    fn wave_former_orders_classes_before_cost() {
        use Priority::{Batch, Interactive};
        let cfg = SchedulerConfig::default();
        // A batch outlier (100) never precedes interactive work, even
        // though cost-only admission would run the cheap shared wave
        // first and the interactive outlier (50) after the batch one.
        assert_eq!(
            form_waves(
                &[1.0, 100.0, 50.0, 1.0],
                &[Interactive, Batch, Interactive, Batch],
                &cfg
            ),
            vec![vec![0], vec![2], vec![3], vec![1]],
            "interactive waves (shared, then outlier) strictly precede batch waves"
        );
        // Within each class the cost-only invariant is unchanged.
        assert_eq!(
            form_waves(
                &[1.0, 1.0, 10.0, 2.0, 2.0, 30.0],
                &[Interactive, Interactive, Interactive, Batch, Batch, Batch],
                &cfg
            ),
            vec![vec![0, 1], vec![2], vec![3, 4], vec![5]]
        );
        // Classes never share a wave, even with admission disabled.
        let off = SchedulerConfig {
            admission: false,
            ..SchedulerConfig::default()
        };
        assert_eq!(
            form_waves(&[1.0, 1.0], &[Batch, Interactive], &off),
            vec![vec![1], vec![0]]
        );
        // All-batch input degrades to the cost-only shape.
        assert_eq!(
            form_waves(&[1.0, 10.0, 1.0], &[Batch, Batch, Batch], &cfg),
            vec![vec![0, 2], vec![1]]
        );
    }

    #[test]
    fn prioritized_batch_runs_interactive_first_and_stays_bit_identical() {
        use Priority::{Batch, Interactive};
        let ds = dataset(930, 80);
        let engine = engine();
        let queries = [
            Query::join(40),                                       // batch outlier
            Query::containment(Mbr::new(-10.0, 40.0, 10.0, 60.0)), // interactive
            Query::aggregation(Mbr::new(-6.0, 44.0, 4.0, 56.0)),   // interactive
            Query::containment(Mbr::new(-8.0, 42.0, 8.0, 58.0)),   // batch
        ];
        let classes = vec![Batch, Interactive, Interactive, Batch];
        let want: Vec<QueryResult> = queries
            .iter()
            .map(|q| engine.exec1(q, &ds).unwrap())
            .collect();
        let scheduler = QueryScheduler::with_config(
            engine,
            SchedulerConfig {
                cache: false,
                join_cost_weight: 40.0,
                ..SchedulerConfig::default()
            },
        );
        let id = scheduler.register(ds);
        let out = scheduler
            .run_multi(
                &queries
                    .iter()
                    .zip(&classes)
                    .map(|(q, &c)| ScheduledQuery::with_priority(id, q.clone(), c))
                    .collect::<Vec<_>>(),
                &ExecOptions::new().isolated().timed(),
            )
            .unwrap();
        let stats = out.scheduler.clone().unwrap();
        let got: Vec<QueryResult> = out.outcomes.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, want, "class scheduling must not change results");
        assert_eq!(stats.classes, classes);
        // Wave order: interactive shared wave, then the batch
        // containment, then the batch join outlier.
        assert_eq!(stats.waves.first().map(|w| w.priority), Some(Interactive));
        assert_eq!(stats.waves.last().map(|w| w.priority), Some(Batch));
        // Every interactive query completed no later than any batch
        // query — the "never queues behind a batch outlier" claim.
        let interactive_max = stats.latencies[1].max(stats.latencies[2]);
        let batch_min = stats.latencies[0].min(stats.latencies[3]);
        assert!(
            interactive_max <= batch_min,
            "interactive {interactive_max:?} must not wait on batch {batch_min:?}"
        );
        // Per-class percentile report sees the same split.
        let [i95] = stats.class_latency_percentiles(Interactive, &[95.0])[..] else {
            panic!("one percentile requested")
        };
        let [b95] = stats.class_latency_percentiles(Batch, &[95.0])[..] else {
            panic!("one percentile requested")
        };
        assert!(i95 <= b95);
    }

    #[test]
    fn dedup_across_classes_promotes_to_the_interactive_wave() {
        use Priority::{Batch, Interactive};
        let ds = dataset(931, 60);
        let engine = engine();
        let tile = Query::containment(Mbr::new(-10.0, 40.0, 10.0, 60.0));
        let want = engine.exec1(&tile, &ds).unwrap();
        let scheduler = QueryScheduler::with_config(
            engine,
            SchedulerConfig {
                cache: false,
                ..SchedulerConfig::default()
            },
        );
        let id = scheduler.register(ds);
        // The same predicate submitted at batch AND interactive
        // class: one execution, scheduled as interactive (a shared
        // sink may only move a query earlier).
        let queries = [tile.clone(), tile.clone()];
        let out = scheduler
            .run_multi(
                &queries
                    .iter()
                    .zip([Batch, Interactive])
                    .map(|(q, c)| ScheduledQuery::with_priority(id, q.clone(), c))
                    .collect::<Vec<_>>(),
                &ExecOptions::new().isolated().timed(),
            )
            .unwrap();
        let stats = out.scheduler.clone().unwrap();
        let got = out.outcomes;
        assert_eq!(stats.dedup_hits, 1);
        assert_eq!(stats.waves.len(), 1);
        assert_eq!(stats.waves[0].priority, Interactive);
        for r in got {
            assert_eq!(r.unwrap(), want);
        }
    }

    #[test]
    fn mismatched_class_list_is_rejected() {
        let scheduler = QueryScheduler::new(engine());
        let id = scheduler.register(dataset(932, 10));
        let q = Query::containment(Mbr::new(0.0, 0.0, 1.0, 1.0));
        #[allow(deprecated)]
        let mismatched =
            scheduler.execute_batch_prioritized(id, std::slice::from_ref(&q), &[], None);
        assert!(mismatched.is_err());
    }

    #[test]
    fn estimated_cost_is_exposed_for_backpressure() {
        let scheduler = QueryScheduler::new(engine());
        let id = scheduler.register(dataset(933, 20));
        let cheap = scheduler
            .estimate_query_cost(id, &Query::containment(Mbr::new(0.0, 50.0, 1.0, 51.0)))
            .unwrap();
        let join = scheduler.estimate_query_cost(id, &Query::join(10)).unwrap();
        assert!(cheap > 0.0);
        assert!(
            join > cheap,
            "a join prior ({join}) must out-cost a tiny containment ({cheap})"
        );
        assert!(scheduler
            .estimate_query_cost(DatasetId(999), &Query::join(1))
            .is_err());
    }

    #[test]
    fn scheduled_batch_matches_sequential_execution() {
        let ds = dataset(910, 80);
        let engine = engine();
        let queries = vec![
            Query::containment(Mbr::new(-10.0, 40.0, 10.0, 60.0)),
            Query::aggregation(Mbr::new(-6.0, 44.0, 4.0, 56.0)),
            Query::join(40),
            Query::containment(Mbr::new(-10.0, 40.0, 10.0, 60.0)), // dup of 0
            Query::combined(40, 0.0, f64::INFINITY),
            Query::join(40), // dup of 2
        ];
        let want: Vec<QueryResult> = queries
            .iter()
            .map(|q| engine.exec1(q, &ds).unwrap())
            .collect();
        let scheduler = QueryScheduler::new(engine);
        let id = scheduler.register(ds);
        let (got, stats) = scheduler.execb_timed(id, &queries).unwrap();
        assert_eq!(got, want);
        assert_eq!(stats.queries, 6);
        assert_eq!(stats.unique_queries, 4);
        assert_eq!(stats.dedup_hits, 2);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.latencies.len(), 6);
        assert!(stats.latencies.iter().all(|l| *l > Duration::ZERO));
    }

    #[test]
    fn repeated_single_pass_traffic_serves_from_cache() {
        let ds = dataset(911, 60);
        let engine = engine();
        let q = Query::aggregation(Mbr::new(-8.0, 42.0, 6.0, 58.0));
        let want = engine.exec1(&q, &ds).unwrap();
        let scheduler = QueryScheduler::new(engine);
        let id = scheduler.register(ds);
        let (first, s1) = scheduler.execb_timed(id, std::slice::from_ref(&q)).unwrap();
        assert_eq!(first[0], want);
        assert_eq!(s1.cache_hits, 0);
        assert_eq!(s1.scan_passes, 1);
        let (second, s2) = scheduler.execb_timed(id, std::slice::from_ref(&q)).unwrap();
        assert_eq!(second[0], want);
        assert_eq!(s2.cache_hits, 1);
        assert_eq!(s2.scan_passes, 0, "cache hit skips the scan entirely");
        assert!(s2.waves.is_empty());
        let cache = scheduler.cache_stats();
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.entries, 1);
    }

    #[test]
    fn update_bumps_generation_and_never_serves_stale_aggregates() {
        let ds_a = dataset(912, 50);
        let ds_b = dataset(913, 70); // different content
        let engine = engine();
        let world = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
        let want_a = engine.exec1(&world, &ds_a).unwrap();
        let want_b = engine.exec1(&world, &ds_b).unwrap();
        assert_ne!(want_a, want_b, "the two generations must differ");

        let scheduler = QueryScheduler::new(engine);
        let id = scheduler.register(ds_a);
        assert_eq!(scheduler.generation(id), Some(1));
        assert_eq!(scheduler.exec1(id, &world).unwrap(), want_a);
        // Warm the cache, then mutate the dataset.
        assert_eq!(scheduler.exec1(id, &world).unwrap(), want_a);
        assert_eq!(scheduler.cache_stats().hits, 1);

        scheduler.update(id, ds_b).unwrap();
        assert_eq!(scheduler.generation(id), Some(2));
        assert_eq!(
            scheduler.cache_stats().entries,
            0,
            "update drops the old generation's aggregates"
        );
        assert_eq!(
            scheduler.exec1(id, &world).unwrap(),
            want_b,
            "the new generation must serve fresh results"
        );
    }

    #[test]
    fn cache_is_bounded_and_evicts_lru() {
        let cache = AggregateCache::new(2);
        let key = |n: u64| AggCacheKey {
            dataset: DatasetId(1),
            generation: 1,
            query: query_key(&Query::join(n)),
        };
        let r = QueryResult::Matches(Vec::new());
        cache.insert(key(1), r.clone());
        cache.insert(key(2), r.clone());
        assert!(cache.get(&key(1)).is_some(), "keep 1 recently used");
        cache.insert(key(3), r.clone());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert!(cache.get(&key(2)).is_none(), "2 was the LRU victim");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
    }

    #[test]
    fn zero_capacity_cache_stores_nothing() {
        let cache = AggregateCache::new(0);
        let key = AggCacheKey {
            dataset: DatasetId(1),
            generation: 1,
            query: query_key(&Query::join(1)),
        };
        cache.insert(key.clone(), QueryResult::Matches(Vec::new()));
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn multi_dataset_batch_routes_per_dataset() {
        let ds_a = dataset(914, 40);
        let ds_b = dataset(915, 60);
        let engine = engine();
        let qa = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
        let qb = Query::aggregation(Mbr::new(-10.0, 40.0, 10.0, 60.0));
        let want = vec![
            engine.exec1(&qa, &ds_a).unwrap(),
            engine.exec1(&qb, &ds_b).unwrap(),
            engine.exec1(&qa, &ds_b).unwrap(),
            engine.exec1(&qa, &ds_a).unwrap(), // dup of 0 on A
        ];
        let scheduler = QueryScheduler::new(engine);
        let a = scheduler.register(ds_a);
        let b = scheduler.register(ds_b);
        let batch = vec![
            ScheduledQuery::new(a, qa.clone()),
            ScheduledQuery::new(b, qb.clone()),
            ScheduledQuery::new(b, qa.clone()),
            ScheduledQuery::new(a, qa.clone()),
        ];
        let out = scheduler
            .run_multi(&batch, &ExecOptions::new().timed())
            .unwrap();
        let stats = out.scheduler.clone().unwrap();
        let got = out.collapse().unwrap();
        assert_eq!(got, want);
        assert_eq!(stats.queries, 4);
        assert_eq!(stats.dedup_hits, 1, "the duplicate is per-dataset");
        assert_eq!(stats.unique_queries, 3);
        assert_eq!(stats.latencies.len(), 4);
    }

    #[test]
    fn unknown_and_removed_ids_error() {
        let scheduler = QueryScheduler::new(engine());
        let bogus = DatasetId(99);
        assert!(scheduler.run(bogus, &[], &ExecOptions::new()).is_err());
        assert!(scheduler.update(bogus, dataset(916, 5)).is_err());
        assert!(scheduler.remove(bogus).is_err());
        let id = scheduler.register(dataset(917, 5));
        scheduler.remove(id).unwrap();
        assert!(scheduler
            .exec1(id, &Query::containment(Mbr::new(0.0, 0.0, 1.0, 1.0)))
            .is_err());
        assert_eq!(scheduler.generation(id), None);
    }

    #[test]
    fn admission_splits_observed_outlier_into_its_own_wave() {
        let ds = dataset(918, 120);
        let engine = engine();
        let cheap = Query::containment(Mbr::new(-1.0, 49.0, 1.0, 51.0));
        let cheap2 = Query::containment(Mbr::new(-2.0, 48.0, 0.0, 50.0));
        let join = Query::join(60);
        let want: Vec<QueryResult> = [&cheap, &cheap2, &join]
            .iter()
            .map(|q| engine.exec1(q, &ds).unwrap())
            .collect();
        // A prior that makes the join an outlier against two cheap
        // containments (cost ≈ 0.15 each): 40 > 2 × 0.3.
        let scheduler = QueryScheduler::with_config(
            engine,
            SchedulerConfig {
                cache: false,
                join_cost_weight: 40.0,
                ..SchedulerConfig::default()
            },
        );
        let id = scheduler.register(ds);
        let (got, stats) = scheduler
            .execb_timed(id, &[cheap.clone(), cheap2.clone(), join.clone()])
            .unwrap();
        assert_eq!(got, want, "wave splits must not change results");
        assert_eq!(stats.waves.len(), 2, "cheap wave + outlier wave");
        assert_eq!(stats.waves[0].queries, 2);
        assert_eq!(stats.waves[1].queries, 1);
        // The cheap queries completed strictly before the outlier.
        assert!(stats.latencies[0] <= stats.latencies[2]);
        assert!(stats.latencies[1] <= stats.latencies[2]);
        assert!(stats.waves[0].elapsed <= stats.waves[1].elapsed);
        // The measured join cost replaced the prior: it was recorded
        // (the solo wave ran a real scan) and is the sane measured
        // ratio, not the inflated 40.0 prior.
        let observed = scheduler
            .entry(id)
            .unwrap()
            .observed_join_cost
            .lock()
            .unwrap()
            .expect("the cold join wave must feed the admission model");
        assert!(
            (1.0..40.0).contains(&observed),
            "measured join/scan ratio should be modest, got {observed}"
        );
        let (_, stats2) = scheduler.execb_timed(id, &[cheap, cheap2, join]).unwrap();
        assert!(stats2.scan_passes <= stats.scan_passes);
    }

    #[test]
    fn warm_join_waves_do_not_poison_the_cost_model() {
        // A warm-index join wave runs zero scan passes; its wall time
        // must NOT be ratio'd against a zero (or clamped-to-1ns) scan,
        // which would cost every later join astronomically and
        // force-split batches that amortise fine.
        let ds = dataset(921, 100);
        let engine = engine();
        let scheduler = QueryScheduler::new(engine);
        let id = scheduler.register(ds);
        let join = Query::join(50);
        scheduler.exec1(id, &join).unwrap(); // cold: builds index, observes
        let cold = scheduler
            .entry(id)
            .unwrap()
            .observed_join_cost
            .lock()
            .unwrap()
            .expect("cold join observed");
        scheduler.exec1(id, &join).unwrap(); // warm: zero-scan wave
        let warm = scheduler
            .entry(id)
            .unwrap()
            .observed_join_cost
            .lock()
            .unwrap()
            .expect("observation survives");
        assert_eq!(
            cold, warm,
            "a zero-scan wave must not update the join/scan ratio"
        );
        assert!(warm < 1e3, "cost model poisoned: {warm}");
        // The direct guard: a zero scan never records.
        let entry = scheduler.entry(id).unwrap();
        entry.observe_join_cost(Duration::ZERO, Duration::from_millis(5), 2);
        assert_eq!(
            *entry.observed_join_cost.lock().unwrap(),
            Some(warm),
            "zero-denominator observations are discarded"
        );
    }

    #[test]
    fn stale_generation_results_never_enter_the_cache() {
        // An in-flight batch holding a pre-update entry must not park
        // its finished aggregates in the cache after update() has
        // invalidated that generation.
        let engine = engine();
        let scheduler = QueryScheduler::new(engine);
        let id = scheduler.register(dataset(922, 20));
        scheduler.update(id, dataset(923, 30)).unwrap(); // now generation 2
        let key = AggCacheKey {
            dataset: id,
            generation: 1,
            query: query_key(&Query::containment(Mbr::new(0.0, 0.0, 1.0, 1.0))),
        };
        // Simulates the racing batch finishing with its stale handle.
        scheduler.insert_if_current(id, 1, key, QueryResult::Matches(Vec::new()));
        assert_eq!(
            scheduler.cache_stats().entries,
            0,
            "generation-1 results must be dropped, not cached"
        );
        // The current generation still caches normally.
        let key2 = AggCacheKey {
            dataset: id,
            generation: 2,
            query: query_key(&Query::containment(Mbr::new(0.0, 0.0, 1.0, 1.0))),
        };
        scheduler.insert_if_current(id, 2, key2, QueryResult::Matches(Vec::new()));
        assert_eq!(scheduler.cache_stats().entries, 1);
        // And a removed dataset accepts nothing.
        scheduler.remove(id).unwrap();
        let key3 = AggCacheKey {
            dataset: id,
            generation: 2,
            query: query_key(&Query::join(1)),
        };
        scheduler.insert_if_current(id, 2, key3, QueryResult::Matches(Vec::new()));
        assert_eq!(scheduler.cache_stats().entries, 0);
    }

    #[test]
    fn adopt_requires_a_sealed_session() {
        let engine = engine();
        let streaming = QuerySession::streaming(engine.clone(), Format::GeoJson).unwrap();
        let scheduler = QueryScheduler::new(engine.clone());
        assert!(
            scheduler.adopt(streaming).is_err(),
            "mid-ingest sessions cannot be scheduled"
        );
        let pinned = QuerySession::new(engine, dataset(919, 10));
        assert!(scheduler.adopt(pinned).is_ok());
    }

    #[test]
    fn streaming_scheduled_batch_dedups_over_one_pass() {
        let gen = OsmGenerator::new(920).generate(70);
        let bytes = write_geojson(&gen);
        let ds = Dataset::from_bytes(bytes.clone(), Format::GeoJson);
        let engine = engine();
        let q = Query::aggregation(Mbr::new(-10.0, 40.0, 10.0, 60.0));
        let j = Query::join(35);
        let queries = vec![q.clone(), j.clone(), q.clone(), j.clone()];
        let want: Vec<QueryResult> = queries
            .iter()
            .map(|x| engine.exec1(x, &ds).unwrap())
            .collect();
        let scheduler = QueryScheduler::new(engine);
        let mut source = crate::stream::SliceChunkSource::new(&bytes, 1024);
        let out = scheduler
            .run_streaming(
                &queries,
                &mut source,
                Format::GeoJson,
                &ExecOptions::new().timed(),
            )
            .unwrap();
        let stats = out.scheduler.clone().unwrap();
        let sstats = out.stream.clone().unwrap();
        assert_eq!(out.collapse().unwrap(), want);
        assert_eq!(stats.dedup_hits, 2);
        assert_eq!(stats.unique_queries, 2);
        assert_eq!(stats.waves.len(), 1, "a stream is one wave by nature");
        assert!(sstats.chunks > 1);
    }
}
