//! Intra-process sharded scatter–gather execution.
//!
//! A [`ShardSet`] partitions a dataset into N marker-aligned byte
//! ranges ("shards"), each annotated with the MBR of the features it
//! contains. A sharded batch then runs as scatter–gather:
//!
//! 1. **Prune** — a single-pass query whose region's MBR is disjoint
//!    from a shard's MBR cannot match anything there, so it never
//!    scatters to that shard (join queries touch every shard: their
//!    pairs may span shards via the partition grid).
//! 2. **Scatter** — every shard scans only its own byte range, feeding
//!    fresh per-query sinks (a fresh sink is the aggregate's identity
//!    element, so shards are independent).
//! 3. **Gather** — per-query sinks merge across shards with the same
//!    member-wise associative combine the parallel scan already uses
//!    ([`crate::pipeline::AggregateSink::combine_sink`]).
//!
//! Because the underlying transducers are associative and aggregation
//! uses correctly-rounded [`crate::ExactSum`], the gathered result is
//! **bit-identical** to a single-node pass for every shard count — the
//! differential suite pins this across {1, 2, 4, 8}.
//!
//! Shard boundaries come from the same marker-aligned split the PAT
//! scan uses ([`marker_blocks`]), so no feature ever straddles a shard
//! and per-shard scans of either PAT or FAT mode compose exactly.

use crate::cancel::CancelToken;
use crate::dataset::Dataset;
use crate::engine::Engine;
use crate::pipeline::QueryAggregate;
use crate::query::{Query, ScanClass};
use crate::Result;
use atgis_formats::feature::{MetadataFilter, RawFeature};
use atgis_formats::{marker_blocks, Format};
use atgis_geometry::Mbr;

/// One shard: a half-open, marker-aligned byte range of the dataset
/// plus the bounding box of the features inside it.
#[derive(Debug, Clone)]
pub struct Shard {
    /// First byte of the shard's range.
    pub start: usize,
    /// One past the last byte of the shard's range.
    pub end: usize,
    /// MBR of every feature whose serialised form starts in the range
    /// (`None` when the shard holds no features — such a shard is
    /// pruned for every region query).
    pub mbr: Option<Mbr>,
    /// Features owned by the shard.
    pub features: u64,
}

impl Shard {
    /// Whether a query region could match inside this shard.
    fn may_intersect(&self, region: &Mbr) -> bool {
        self.mbr.as_ref().is_some_and(|m| m.intersects(region))
    }
}

/// A dataset's shard layout: marker-aligned byte ranges with per-shard
/// MBRs, built once (one extra bounding pass) and reused across
/// batches. [`crate::batch::QuerySession`] caches one per shard count.
#[derive(Debug, Clone)]
pub struct ShardSet {
    shards: Vec<Shard>,
}

/// The bounding pass: unions feature MBRs and counts features — an
/// associative aggregate, so it rides the ordinary parallel scan.
#[derive(Debug, Clone, Default)]
struct MbrProbe {
    mbr: Option<Mbr>,
    count: u64,
}

impl QueryAggregate for MbrProbe {
    fn identity() -> Self {
        MbrProbe::default()
    }

    fn absorb(&mut self, feature: &RawFeature) {
        let fm = feature.mbr();
        self.mbr = Some(match &self.mbr {
            Some(m) => m.union(&fm),
            None => fm,
        });
        self.count += 1;
    }

    fn combine(mut self, other: Self) -> Self {
        self.mbr = match (self.mbr.take(), other.mbr) {
            (Some(a), Some(b)) => Some(a.union(&b)),
            (a, b) => a.or(b),
        };
        self.count += other.count;
        self
    }
}

impl ShardSet {
    /// Splits `dataset` into at most `count` marker-aligned shards and
    /// bounds each with one scan pass. The dataset may yield fewer
    /// shards than requested (markers are sparse near the end of small
    /// inputs); [`ShardSet::len`] reports the actual count.
    pub fn build(
        engine: &Engine,
        dataset: &Dataset,
        count: usize,
        token: Option<&CancelToken>,
    ) -> Result<ShardSet> {
        let input = dataset.bytes();
        let marker: &[u8] = match dataset.format() {
            Format::GeoJson => atgis_formats::geojson::FEATURE_MARKER,
            _ => b"\n",
        };
        let ranges: Vec<(usize, usize)> = marker_blocks(input, marker, count.max(1))
            .into_iter()
            .map(|b| (b.start, b.end))
            .collect();

        let mut shards = Vec::with_capacity(ranges.len());
        match dataset.format() {
            Format::OsmXml => {
                // One global parse (relations need the whole node
                // table), then bucket features into ranges by offset.
                let (features, _t) = engine.parse_xml(dataset, &MetadataFilter::All, token)?;
                for &(start, end) in &ranges {
                    let mut probe = MbrProbe::default();
                    for f in &features {
                        if (start as u64) <= f.offset && f.offset < end as u64 {
                            probe.absorb(f);
                        }
                    }
                    shards.push(Shard {
                        start,
                        end,
                        mbr: probe.mbr,
                        features: probe.count,
                    });
                }
            }
            _ => {
                for &(start, end) in &ranges {
                    let (probe, _t) = engine.scan_range_cancellable(
                        dataset,
                        start,
                        end,
                        &MetadataFilter::All,
                        MbrProbe::default(),
                        token,
                    )?;
                    shards.push(Shard {
                        start,
                        end,
                        mbr: probe.mbr,
                        features: probe.count,
                    });
                }
            }
        }
        Ok(ShardSet { shards })
    }

    /// Rebuilds a set from already-bounded shards (snapshot restore:
    /// the bounding pass was paid by the process that saved them).
    pub(crate) fn from_shards(shards: Vec<Shard>) -> ShardSet {
        ShardSet { shards }
    }

    /// Actual shard count (≤ the requested count).
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the set holds no shards (never true for a built set —
    /// even an empty dataset yields one empty shard).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard layout, in byte-range order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Which shards `query` must scatter to: `mask[s]` is `true` when
    /// shard `s` can contribute. Region queries prune by MBR
    /// intersection; join-class queries (whose pairs are formed in the
    /// partition grid, not per shard) scatter everywhere.
    pub fn scatter_mask(&self, query: &Query) -> Vec<bool> {
        match query {
            Query::Containment { region } | Query::Aggregation { region, .. } => {
                let qmbr = region.mbr();
                self.shards.iter().map(|s| s.may_intersect(&qmbr)).collect()
            }
            q => {
                debug_assert_eq!(q.scan_class(), ScanClass::Join);
                vec![true; self.shards.len()]
            }
        }
    }

    /// The slots of a partition grid owned by shard `shard` under the
    /// round-robin slot distribution used for the sharded join phase:
    /// occupied slot `i` belongs to shard `i % len`.
    pub(crate) fn own_slots(&self, shard: usize, occupied: &[usize]) -> Vec<usize> {
        occupied
            .iter()
            .copied()
            .enumerate()
            .filter_map(|(i, slot)| (i % self.shards.len() == shard).then_some(slot))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wkt_dataset() -> Dataset {
        // Four rows in two spatial clusters: x∈[0,2] and x∈[100,102].
        let rows = "\
1\tPOLYGON((0.0 0.0,1.0 0.0,1.0 1.0,0.0 1.0,0.0 0.0))\t
2\tPOLYGON((1.0 1.0,2.0 1.0,2.0 2.0,1.0 2.0,1.0 1.0))\t
3\tPOLYGON((100.0 0.0,101.0 0.0,101.0 1.0,100.0 1.0,100.0 0.0))\t
4\tPOLYGON((101.0 1.0,102.0 1.0,102.0 2.0,101.0 2.0,101.0 1.0))\t
";
        Dataset::from_bytes(rows.as_bytes().to_vec(), Format::Wkt)
    }

    #[test]
    fn shards_cover_input_without_overlap() {
        let engine = Engine::builder().build();
        let dataset = wkt_dataset();
        let set = ShardSet::build(&engine, &dataset, 2, None).unwrap();
        assert!(!set.is_empty());
        assert_eq!(set.shards()[0].start, 0);
        assert_eq!(set.shards().last().unwrap().end, dataset.bytes().len());
        for w in set.shards().windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        let total: u64 = set.shards().iter().map(|s| s.features).sum();
        assert_eq!(total, 4, "every feature owned by exactly one shard");
    }

    #[test]
    fn disjoint_region_is_pruned_join_scatters_everywhere() {
        let engine = Engine::builder().build();
        let dataset = wkt_dataset();
        let set = ShardSet::build(&engine, &dataset, 4, None).unwrap();
        assert!(set.len() >= 2, "sample must split");

        // A region far from every feature scatters nowhere.
        let nowhere = Query::containment(Mbr::new(500.0, 500.0, 501.0, 501.0));
        assert!(set.scatter_mask(&nowhere).iter().all(|&m| !m));

        // A region covering only the first cluster prunes the shard
        // holding the second.
        let first_cluster = Query::containment(Mbr::new(-1.0, -1.0, 3.0, 3.0));
        let mask = set.scatter_mask(&first_cluster);
        assert!(mask[0], "first shard holds the matching cluster");
        assert!(
            mask.iter().any(|&m| !m),
            "the far cluster's shard must be pruned: {mask:?}"
        );

        // Joins always scatter everywhere.
        let join = Query::join(u64::MAX);
        assert!(set.scatter_mask(&join).iter().all(|&m| m));
    }

    #[test]
    fn round_robin_slot_ownership_partitions_occupied_slots() {
        let engine = Engine::builder().build();
        let dataset = wkt_dataset();
        let set = ShardSet::build(&engine, &dataset, 2, None).unwrap();
        let occupied = vec![3, 7, 11, 12, 20];
        let mut seen = Vec::new();
        for s in 0..set.len() {
            seen.extend(set.own_slots(s, &occupied));
        }
        seen.sort_unstable();
        assert_eq!(seen, occupied, "slots partition exactly across shards");
    }
}
