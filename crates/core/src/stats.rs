//! Phase timing instrumentation for the evaluation harness.
//!
//! Figs. 11 and 15 report the processing (P) and merge (M) phase times
//! of each pipeline separately; [`Timings`] captures them.

use std::time::Duration;

/// Wall-clock timings of one pipeline execution (Fig. 5's phases).
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// Time to compute block boundaries (marker search for PAT).
    pub split: Duration,
    /// Time for the parallel processing phase (longest pole).
    pub process: Duration,
    /// Time for the in-order fragment merge.
    pub merge: Duration,
}

impl Timings {
    /// Total of all phases.
    pub fn total(&self) -> Duration {
        self.split + self.process + self.merge
    }
}

/// Timings for the two pipelines of a join query (Fig. 11 splits
/// "Partition" from "Join").
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinTimings {
    /// First pass: parse + bound + partition.
    pub partition: Timings,
    /// Second pass: MBR compare → sort → re-parse → refine.
    pub join: Timings,
    /// Final duplicate elimination.
    pub dedup: Duration,
}

impl JoinTimings {
    /// Total of both pipelines.
    pub fn total(&self) -> Duration {
        self.partition.total() + self.join.total() + self.dedup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let t = Timings {
            split: Duration::from_millis(1),
            process: Duration::from_millis(20),
            merge: Duration::from_millis(3),
        };
        assert_eq!(t.total(), Duration::from_millis(24));
        let j = JoinTimings {
            partition: t,
            join: t,
            dedup: Duration::from_millis(2),
        };
        assert_eq!(j.total(), Duration::from_millis(50));
    }
}
