//! Phase timing instrumentation for the evaluation harness.
//!
//! Figs. 11 and 15 report the processing (P) and merge (M) phase times
//! of each pipeline separately; [`Timings`] captures them.
//! [`JoinDecisions`] additionally records what the skew-adaptive join
//! decided — how many hot cells were split and which MBR-compare
//! algorithm each partition ran — so the Fig. 14 experiments can
//! attribute throughput differences to specific decisions.

use crate::partition::PartitionMapStats;
use std::time::Duration;

/// Wall-clock timings of one pipeline execution (Fig. 5's phases).
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// Time to compute block boundaries (marker search for PAT).
    pub split: Duration,
    /// Time for the parallel processing phase (longest pole).
    pub process: Duration,
    /// Time for the in-order fragment merge.
    pub merge: Duration,
}

impl Timings {
    /// Total of all phases.
    pub fn total(&self) -> Duration {
        self.split + self.process + self.merge
    }
}

/// Timings for the two pipelines of a join query (Fig. 11 splits
/// "Partition" from "Join").
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinTimings {
    /// First pass: parse + bound + partition.
    pub partition: Timings,
    /// Partition-map refinement between the passes (per-cell load
    /// statistics + hot-cell splitting; zero for the uniform grid).
    pub refine: Duration,
    /// Second pass: MBR compare → sort → re-parse → refine.
    pub join: Timings,
    /// Final duplicate elimination.
    pub dedup: Duration,
}

impl JoinTimings {
    /// Total of both pipelines.
    pub fn total(&self) -> Duration {
        self.partition.total() + self.refine + self.join.total() + self.dedup
    }
}

/// What the skew-adaptive join decided for one query: the shape of the
/// refined partition map plus the per-partition MBR COMPARE algorithm
/// tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinDecisions {
    /// Shape of the (possibly refined) partition map.
    pub map: PartitionMapStats,
    /// Partitions answered with the sort + sweep.
    pub sweep_partitions: u64,
    /// Partitions answered with the R-tree bulk-load + probe.
    pub rtree_partitions: u64,
}

impl JoinDecisions {
    /// Seeds the decision record from a built partition map; the probe
    /// tallies accumulate as partitions execute.
    pub fn from_map(map: PartitionMapStats) -> Self {
        JoinDecisions {
            map,
            sweep_partitions: 0,
            rtree_partitions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let t = Timings {
            split: Duration::from_millis(1),
            process: Duration::from_millis(20),
            merge: Duration::from_millis(3),
        };
        assert_eq!(t.total(), Duration::from_millis(24));
        let j = JoinTimings {
            partition: t,
            refine: Duration::from_millis(4),
            join: t,
            dedup: Duration::from_millis(2),
        };
        assert_eq!(j.total(), Duration::from_millis(54));
    }

    #[test]
    fn decisions_seed_from_map_stats() {
        let map = PartitionMapStats {
            base_cells: 8,
            split_cells: 1,
            slots: 11,
            max_cell_entries: 100,
            max_slot_entries: 30,
        };
        let d = JoinDecisions::from_map(map);
        assert_eq!(d.map, map);
        assert_eq!(d.sweep_partitions, 0);
        assert_eq!(d.rtree_partitions, 0);
    }
}
