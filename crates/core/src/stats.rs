//! Phase timing instrumentation for the evaluation harness.
//!
//! Figs. 11 and 15 report the processing (P) and merge (M) phase times
//! of each pipeline separately; [`Timings`] captures them.
//! [`JoinDecisions`] additionally records what the skew-adaptive join
//! decided — how many hot cells were split and which MBR-compare
//! algorithm each partition ran — so the Fig. 14 experiments can
//! attribute throughput differences to specific decisions.

use crate::partition::PartitionMapStats;
use crate::scheduler::Priority;
use atgis_formats::Mode;
use std::time::Duration;

/// Wall-clock timings of one pipeline execution (Fig. 5's phases).
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// Time to compute block boundaries (marker search for PAT).
    pub split: Duration,
    /// Time for the parallel processing phase (longest pole).
    pub process: Duration,
    /// Time for the in-order fragment merge.
    pub merge: Duration,
}

impl Timings {
    /// Total of all phases.
    pub fn total(&self) -> Duration {
        self.split + self.process + self.merge
    }
}

/// Timings for the two pipelines of a join query (Fig. 11 splits
/// "Partition" from "Join").
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinTimings {
    /// First pass: parse + bound + partition.
    pub partition: Timings,
    /// Partition-map refinement between the passes (per-cell load
    /// statistics + hot-cell splitting; zero for the uniform grid).
    pub refine: Duration,
    /// Second pass: MBR compare → sort → re-parse → refine.
    pub join: Timings,
    /// Final duplicate elimination.
    pub dedup: Duration,
}

impl JoinTimings {
    /// Total of both pipelines.
    pub fn total(&self) -> Duration {
        self.partition.total() + self.refine + self.join.total() + self.dedup
    }
}

/// What the skew-adaptive join decided for one query: the shape of the
/// refined partition map plus the per-partition MBR COMPARE algorithm
/// tally and the inputs the cost model saw (side asymmetry *and*
/// partition density — objects per square degree of the slot's
/// region).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JoinDecisions {
    /// Shape of the (possibly refined) partition map.
    pub map: PartitionMapStats,
    /// Partitions answered with the sort + sweep.
    pub sweep_partitions: u64,
    /// Partitions answered with the R-tree bulk-load + probe.
    pub rtree_partitions: u64,
    /// `Auto` R-tree picks attributed to side asymmetry.
    pub rtree_by_asymmetry: u64,
    /// `Auto` R-tree picks attributed to partition density alone
    /// (dense, roughly symmetric partitions where the sweep's window
    /// scans degrade).
    pub rtree_by_density: u64,
    /// Largest observed partition density (objects per square degree)
    /// across non-empty partitions; 0 when the map carries no grid
    /// geometry to derive areas from.
    pub max_partition_density: f64,
}

impl JoinDecisions {
    /// Seeds the decision record from a built partition map; the probe
    /// tallies accumulate as partitions execute.
    pub fn from_map(map: PartitionMapStats) -> Self {
        JoinDecisions {
            map,
            ..JoinDecisions::default()
        }
    }
}

/// What one streaming ingestion did: how the stream arrived, how it
/// was dispatched, and the evidence for the bounded-memory claim
/// (live fragments never exceed the in-flight task count, regardless
/// of how many chunks the stream had).
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    /// Chunks ingested from the source (including empty ones).
    pub chunks: u64,
    /// Total bytes ingested.
    pub bytes: u64,
    /// Scan regions dispatched to the worker pool.
    pub regions: u64,
    /// Pairwise fragment merges performed by the incremental merger.
    pub merges: u64,
    /// Peak number of fragments alive in the merger at any instant —
    /// bounded by in-flight tasks + 1 (`O(workers)`), not by the chunk
    /// count.
    pub peak_fragments: u64,
    /// The execution mode the scan resolved to (`Adaptive` resolves on
    /// the first ingested bytes; `None` when nothing was scanned
    /// incrementally, e.g. OSM XML, which parses at seal).
    pub resolved_mode: Option<Mode>,
    /// Time the pipelined driver spent blocked waiting on the chunk
    /// source — the I/O-bound indicator.
    pub ingest_wait: Duration,
    /// Transient chunk-read errors (`Interrupted`/`WouldBlock`/
    /// `TimedOut`) absorbed by the bounded retry-with-backoff in the
    /// pipelined driver; each retry that eventually succeeded (or
    /// exhausted the bound) counts once.
    pub retries: u64,
}

/// Per-query breakdown inside one batch execution: how much shared
/// scan the query rode on, plus the work only it caused.
#[derive(Debug, Clone, Default)]
pub struct BatchQueryStats {
    /// The shared structural scan this query was served from (the same
    /// pass is reported for every member — that is the amortisation).
    pub scan: Duration,
    /// Join-pipeline breakdown when the query joins (its `partition`
    /// field repeats the shared scan; `refine`/`join`/`dedup` are this
    /// query's own).
    pub join: Option<JoinTimings>,
    /// Partition-map shape and probe decisions when the query joins.
    pub decisions: Option<JoinDecisions>,
    /// Per-query result finalisation (match ordering, aggregate
    /// extraction, the combined query's union-area step).
    pub finalize: Duration,
    /// Everything attributed to this query: shared scan + own join
    /// work + finalisation. Join processing inside the flattened
    /// (query × partition) fan-out is attributed by summing the
    /// query's own partition tasks, so `wall` is worker-time, not
    /// elapsed time.
    pub wall: Duration,
}

/// What one `execute_batch` call did: per-query breakdowns plus the
/// shared-scan amortisation the batch achieved.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Queries served by the batch.
    pub queries: u64,
    /// Full-input parse passes actually executed (the shared scan, and
    /// for OSM XML joins the node-table pass; `0` when a cached
    /// partition index served a join-only batch with no scan at all).
    pub scan_passes: u64,
    /// Timings of the one shared scan (zero when no scan ran).
    pub shared_scan: Timings,
    /// Per-query breakdowns, in submission order.
    pub per_query: Vec<BatchQueryStats>,
    /// Scatter–gather accounting when the batch ran sharded (`None`
    /// for single-node execution).
    pub shards: Option<ShardStats>,
}

/// Scatter–gather accounting for one sharded batch: how queries fanned
/// out across shards (MBR pruning included) and what each shard cost.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Shards in the [`crate::shard::ShardSet`] the batch ran over.
    pub shards: u64,
    /// (query, shard) scatter pairs actually executed.
    pub scattered: u64,
    /// (query, shard) pairs skipped because the query's region cannot
    /// intersect the shard's MBR. `scattered + pruned` =
    /// `queries × shards`.
    pub pruned: u64,
    /// Per-query gather merges performed (one per query per extra
    /// shard it scattered to).
    pub gathered: u64,
    /// Per-shard timings, in shard (byte-range) order.
    pub per_shard: Vec<ShardTiming>,
}

/// What one shard contributed to a sharded batch.
#[derive(Debug, Clone, Default)]
pub struct ShardTiming {
    /// Queries scattered to this shard.
    pub queries: u64,
    /// The shard's scan-pipeline timings (zero when every query was
    /// pruned and no index build touched the shard).
    pub scan: Timings,
    /// Worker time spent on this shard's slice of the join grid.
    pub join: Duration,
}

impl BatchStats {
    /// Queries served per structural parse pass — the shared-scan
    /// amortisation ratio. Sequential per-query execution scores 1.0
    /// (one pass per query); a batch of N single-pass queries scores
    /// N; a join-only batch over a session-cached partition index
    /// reports `queries` over the `scan_passes.max(1)` floor.
    pub fn amortisation_ratio(&self) -> f64 {
        self.queries as f64 / self.scan_passes.max(1) as f64
    }
}

/// One admission wave of a scheduled batch: the unique queries it
/// carried, the cost estimate admission grouped it by, and the
/// underlying shared-scan [`BatchStats`].
#[derive(Debug, Clone, Default)]
pub struct WaveStats {
    /// Unique queries executed in this wave.
    pub queries: u64,
    /// Summed estimated cost (scan-equivalents) admission assigned to
    /// the wave's members (0 for streamed waves, which are never
    /// split).
    pub estimated_cost: f64,
    /// Wall-clock time from batch submission to this wave's
    /// completion — the latency every query in the wave observed.
    pub elapsed: Duration,
    /// The SLO class every member of this wave was admitted under
    /// (waves never mix classes; interactive waves run first).
    pub priority: Priority,
    /// The wave's shared-scan execution breakdown.
    pub batch: BatchStats,
}

/// What one scheduled batch did: how many submitted queries collapsed
/// through predicate dedup and the aggregate cache, how admission
/// split the remainder into waves, and the completion latency of
/// every submitted query (the stall-free evidence — a cheap query's
/// latency is its own wave's, not the batch maximum).
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    /// Queries submitted.
    pub queries: u64,
    /// Queries actually executed (after dedup and cache hits).
    pub unique_queries: u64,
    /// Queries answered by sharing another submission's sink
    /// (predicate dedup).
    pub dedup_hits: u64,
    /// Queries answered from the cross-batch aggregate cache without
    /// any execution.
    pub cache_hits: u64,
    /// Structural parse passes across all waves.
    pub scan_passes: u64,
    /// Per-wave breakdowns, in execution order (cheap wave first,
    /// then outliers by ascending estimated cost).
    pub waves: Vec<WaveStats>,
    /// Completion latency of every **submitted** query, in submission
    /// order: the wall-clock from batch submission until the wave
    /// resolving that query (or its cache/dedup source) finished.
    pub latencies: Vec<Duration>,
    /// SLO class of every submitted query, parallel to `latencies`
    /// (all [`Priority::Interactive`] for the unprioritized entry
    /// points).
    pub classes: Vec<Priority>,
    /// Queries that ended with [`crate::QueryError::Cancelled`]
    /// because the batch's [`crate::CancelToken`] was cancelled.
    pub cancelled: u64,
    /// Queries that ended with
    /// [`crate::QueryError::DeadlineExceeded`] because the token's
    /// deadline elapsed mid-execution.
    pub deadline_exceeded: u64,
    /// Queries that ended with [`crate::QueryError::Panicked`]: their
    /// aggregate sink panicked, and the failure was confined to the
    /// query (batch mates and the worker pool were unaffected).
    pub task_panics: u64,
}

impl SchedulerStats {
    /// An empty record for a batch of `queries` submissions.
    pub fn new(queries: usize) -> Self {
        SchedulerStats {
            queries: queries as u64,
            latencies: vec![Duration::ZERO; queries],
            classes: vec![Priority::default(); queries],
            ..SchedulerStats::default()
        }
    }

    /// Appends one served query to a cumulative record — how a serving
    /// tier folds per-request completions into the stats it reports,
    /// without ever constructing a fake batch.
    pub fn record(&mut self, class: Priority, latency: Duration) {
        self.queries += 1;
        self.latencies.push(latency);
        self.classes.push(class);
    }

    /// Submitted queries served per structural parse pass — the
    /// scheduler-level amortisation (dedup and cache hits push this
    /// *above* the batch-layer ratio, because they add served queries
    /// without adding scans).
    pub fn amortisation_ratio(&self) -> f64 {
        self.queries as f64 / self.scan_passes.max(1) as f64
    }

    /// The `p`-th percentile (0–100, nearest-rank) of the per-query
    /// completion latencies; zero for an empty batch.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        nearest_rank(&sorted, p)
    }

    /// Nearest-rank percentiles for several `ps` at once, sorting the
    /// latency vector **once** — the shape a stats endpoint polls (p50
    /// / p95 / p99 per class per tick), where per-call re-sorting is
    /// quadratic noise. Each returned entry is exactly what
    /// [`SchedulerStats::latency_percentile`] returns for the same
    /// `p`.
    pub fn latency_percentiles(&self, ps: &[f64]) -> Vec<Duration> {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        ps.iter().map(|&p| nearest_rank(&sorted, p)).collect()
    }

    /// Completion latencies of the queries submitted under `class`, in
    /// submission order.
    pub fn class_latencies(&self, class: Priority) -> Vec<Duration> {
        self.latencies
            .iter()
            .zip(&self.classes)
            .filter(|&(_, &c)| c == class)
            .map(|(&l, _)| l)
            .collect()
    }

    /// Nearest-rank percentiles over only the queries submitted under
    /// `class`, sorting once; all zeros when the class had no
    /// submissions. This is the per-class SLO report: an interactive
    /// p95 that stays below the batch p95 under load is the
    /// class-ordered admission working.
    pub fn class_latency_percentiles(&self, class: Priority, ps: &[f64]) -> Vec<Duration> {
        let mut sorted = self.class_latencies(class);
        sorted.sort();
        ps.iter().map(|&p| nearest_rank(&sorted, p)).collect()
    }
}

/// Nearest-rank percentile over an already-sorted slice: the exact
/// formula [`SchedulerStats::latency_percentile`] has always used
/// (`ceil(p/100 × n)` clamped to `[1, n]`, 1-indexed), zero for an
/// empty slice.
fn nearest_rank(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortisation_ratio_counts_queries_per_pass() {
        let mut s = BatchStats {
            queries: 8,
            scan_passes: 1,
            ..BatchStats::default()
        };
        assert_eq!(s.amortisation_ratio(), 8.0);
        s.scan_passes = 0; // cached-index, join-only batch
        assert_eq!(s.amortisation_ratio(), 8.0);
        s.scan_passes = 2; // XML join: scan + node-table pass
        assert_eq!(s.amortisation_ratio(), 4.0);
    }

    #[test]
    fn totals_add_up() {
        let t = Timings {
            split: Duration::from_millis(1),
            process: Duration::from_millis(20),
            merge: Duration::from_millis(3),
        };
        assert_eq!(t.total(), Duration::from_millis(24));
        let j = JoinTimings {
            partition: t,
            refine: Duration::from_millis(4),
            join: t,
            dedup: Duration::from_millis(2),
        };
        assert_eq!(j.total(), Duration::from_millis(54));
    }

    #[test]
    fn scheduler_latency_percentiles_use_nearest_rank() {
        let mut s = SchedulerStats::new(4);
        s.latencies = vec![
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
            Duration::from_millis(40),
        ];
        assert_eq!(s.latency_percentile(50.0), Duration::from_millis(20));
        assert_eq!(s.latency_percentile(95.0), Duration::from_millis(40));
        assert_eq!(s.latency_percentile(100.0), Duration::from_millis(40));
        assert_eq!(s.latency_percentile(0.0), Duration::from_millis(10));
        assert_eq!(
            SchedulerStats::new(0).latency_percentile(50.0),
            Duration::ZERO
        );
    }

    #[test]
    fn multi_percentile_report_matches_the_single_call_exactly() {
        let mut s = SchedulerStats::new(0);
        // Unsorted on purpose: both paths must sort identically.
        for ms in [40u64, 10, 30, 20, 25] {
            s.record(Priority::Interactive, Duration::from_millis(ms));
        }
        let ps = [0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0];
        let report = s.latency_percentiles(&ps);
        for (&p, &got) in ps.iter().zip(&report) {
            assert_eq!(got, s.latency_percentile(p), "p{p} diverged");
        }
        assert!(SchedulerStats::new(0)
            .latency_percentiles(&ps)
            .iter()
            .all(|&d| d == Duration::ZERO));
    }

    #[test]
    fn per_class_percentiles_split_the_tenants() {
        let mut s = SchedulerStats::new(0);
        for ms in [10u64, 12, 11] {
            s.record(Priority::Interactive, Duration::from_millis(ms));
        }
        for ms in [100u64, 130, 120] {
            s.record(Priority::Batch, Duration::from_millis(ms));
        }
        assert_eq!(s.queries, 6);
        assert_eq!(
            s.class_latencies(Priority::Interactive),
            vec![
                Duration::from_millis(10),
                Duration::from_millis(12),
                Duration::from_millis(11)
            ]
        );
        let i = s.class_latency_percentiles(Priority::Interactive, &[50.0, 95.0]);
        let b = s.class_latency_percentiles(Priority::Batch, &[50.0, 95.0]);
        assert_eq!(
            i,
            vec![Duration::from_millis(11), Duration::from_millis(12)]
        );
        assert_eq!(
            b,
            vec![Duration::from_millis(120), Duration::from_millis(130)]
        );
        // A class with no submissions reports zeros, not a panic.
        let empty = SchedulerStats::new(0);
        assert_eq!(
            empty.class_latency_percentiles(Priority::Batch, &[95.0]),
            vec![Duration::ZERO]
        );
    }

    #[test]
    fn scheduler_amortisation_counts_all_submissions() {
        let mut s = SchedulerStats::new(16);
        s.scan_passes = 1;
        assert_eq!(s.amortisation_ratio(), 16.0);
        s.scan_passes = 0; // all-cache batch
        assert_eq!(s.amortisation_ratio(), 16.0);
    }

    #[test]
    fn decisions_seed_from_map_stats() {
        let map = PartitionMapStats {
            base_cells: 8,
            split_cells: 1,
            slots: 11,
            max_cell_entries: 100,
            max_slot_entries: 30,
        };
        let d = JoinDecisions::from_map(map);
        assert_eq!(d.map, map);
        assert_eq!(d.sweep_partitions, 0);
        assert_eq!(d.rtree_partitions, 0);
    }
}
