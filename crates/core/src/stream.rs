//! Streaming ingestion: chunk-fed execution over partial datasets.
//!
//! The paper's core property — transducer fragments that start from
//! *any* byte offset and merge associatively later (§3) — means the
//! engine never needed the whole buffer before the first byte is
//! scanned. This module exploits that: a [`ChunkSource`] feeds
//! fixed-size chunks into a [`StreamBuffer`]
//! (append-only, stable addresses), and a `StreamingScan` dispatches
//! scan regions to the engine's persistent worker pool *as the bytes
//! arrive*, folding the resulting fragments through the incremental
//! out-of-order [`StreamMerger`]. Fragments for chunk *k+1* spawn
//! while chunk *k* is still being merged; live fragment memory stays
//! `O(workers)` (one per gap between completed runs), never
//! `O(chunks)`.
//!
//! Region safety per mode:
//!
//! * **FAT** — blocks may start anywhere (that is the whole point of
//!   full associativity), so every appended byte is dispatched
//!   immediately; speculative head/tail token runs resolve in merges,
//!   which only read bytes below the merged region's end.
//! * **PAT** — blocks must start at record markers, and a record
//!   starting before a marker ends before the next marker. The scan
//!   therefore dispatches only up to the **last marker seen** and
//!   holds the tail until more bytes (or EOF) arrive — a chunk
//!   boundary can fall anywhere, including inside a marker, a UTF-8
//!   escape or a number, without a fragment ever reading past the
//!   published prefix.
//! * **OSM XML** — relations resolve against a *global* node table,
//!   so the scan only buffers during ingest and runs the ordinary
//!   two-pass parse at seal.
//!
//! Results are **bit-identical** to buffered execution for every
//! format × mode × chunk size: parse fragments merge associatively,
//! match/pair lists are canonically ordered, and numeric aggregates
//! accumulate in [`crate::exact::ExactSum`]s whose correctly-rounded
//! totals are independent of chunking, blocking and thread count.

use crate::cancel::CancelToken;
use crate::dataset::{Dataset, StreamBuffer};
use crate::engine::{parse_wkt_rows, Engine};
use crate::exec::{self, ExecOptions, RunOutcome};
use crate::executor::StreamMerger;
use crate::pipeline::{FatGeoJsonFrag, FatWktFrag, QueryAggregate};
use crate::pool::recover;
use crate::stats::{StreamStats, Timings};
use crate::{Error, Result};
use atgis_formats::feature::MetadataFilter;
use atgis_formats::split::find_marker;
use atgis_formats::{fixed_blocks, marker_blocks, Block, Format, Mode, ParseError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default virtual reservation for streams of unknown size (64-bit
/// hosts); untouched pages are never committed, and the ladder backs
/// off on strict-commit hosts.
#[cfg(target_pointer_width = "64")]
const DEFAULT_CAPACITY: usize = 1 << 35; // 32 GiB
#[cfg(not(target_pointer_width = "64"))]
const DEFAULT_CAPACITY: usize = 1 << 28; // 256 MiB
/// Smallest reservation the capacity ladder accepts before giving up.
const MIN_CAPACITY: usize = 1 << 24; // 16 MiB
/// Slack added to exact size hints (a file may grow between `stat`
/// and the final `read`).
const HINT_SLACK: usize = 1 << 16;
/// Target bytes per dispatched scan region (larger regions split so
/// the pool can parallelise inside one chunk).
const DISPATCH_TARGET: usize = 1 << 20;
/// Chunks the pipelined driver reads ahead of the scan.
const READAHEAD_CHUNKS: usize = 4;
/// Transient chunk-read errors (`Interrupted`, `WouldBlock`,
/// `TimedOut`) are retried this many times with doubling backoff
/// before the error surfaces; each retry is tallied into
/// [`StreamStats::retries`].
const MAX_READ_RETRIES: u32 = 4;
/// First-retry backoff; doubles per attempt (100 µs, 200 µs, …).
const RETRY_BACKOFF_BASE: Duration = Duration::from_micros(100);
/// Default chunk length for file/reader sources.
pub const DEFAULT_CHUNK_LEN: usize = 1 << 20;

/// A source of input chunks for streaming ingestion. Implementations
/// exist for files ([`FileChunkSource`]), arbitrary readers
/// ([`ReaderChunkSource`]), in-memory slices ([`SliceChunkSource`])
/// and a bounded in-memory channel fed by another thread
/// ([`chunk_channel`] — the network-style feed).
pub trait ChunkSource: Send {
    /// The next chunk, `None` at end of stream. Empty chunks are
    /// valid (they ingest zero bytes); chunk boundaries may fall
    /// anywhere, including mid-token.
    fn next_chunk(&mut self) -> std::io::Result<Option<Vec<u8>>>;

    /// Total stream size when known up front (files, slices); sizes
    /// the buffer reservation exactly. Sources of unknown size get
    /// one up-front virtual reservation (`DEFAULT_CAPACITY`, with a
    /// back-off ladder on strict-commit hosts); a stream that
    /// outgrows it errors cleanly mid-ingest rather than silently
    /// relocating published bytes — growable chained buffers are a
    /// known follow-on (the engine retains every byte regardless, so
    /// the practical ceiling is resident memory, not the
    /// reservation).
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Reads one chunk from `reader` without zero-filling scratch memory
/// (the ingest hot path): `take` + `read_to_end` fills a
/// fresh-capacity buffer directly.
fn read_chunk(
    reader: &mut impl std::io::Read,
    chunk_len: usize,
) -> std::io::Result<Option<Vec<u8>>> {
    use std::io::Read as _;
    let mut buf = Vec::with_capacity(chunk_len);
    reader
        .by_ref()
        .take(chunk_len as u64)
        .read_to_end(&mut buf)?;
    if buf.is_empty() {
        return Ok(None);
    }
    Ok(Some(buf))
}

/// Reads a file in fixed-size chunks straight off the file descriptor
/// — the bytes land in the stream buffer and nowhere else, unlike
/// `Dataset::from_file` + re-feeding, which would hold the input
/// twice.
pub struct FileChunkSource {
    file: std::fs::File,
    chunk_len: usize,
    size: usize,
}

impl FileChunkSource {
    /// Opens `path` with the default chunk length.
    pub fn open(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        FileChunkSource::open_with_chunk_len(path, DEFAULT_CHUNK_LEN)
    }

    /// Opens `path` reading `chunk_len`-byte chunks.
    pub fn open_with_chunk_len(
        path: impl AsRef<std::path::Path>,
        chunk_len: usize,
    ) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        let size = file.metadata()?.len() as usize;
        Ok(FileChunkSource {
            file,
            chunk_len: chunk_len.max(1),
            size,
        })
    }
}

impl ChunkSource for FileChunkSource {
    fn next_chunk(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        read_chunk(&mut self.file, self.chunk_len)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.size)
    }
}

/// Chunks an arbitrary `Read` (a socket, a decompressor, …). No size
/// hint: the buffer reservation uses the capacity ladder.
pub struct ReaderChunkSource<R> {
    reader: R,
    chunk_len: usize,
}

impl<R: std::io::Read + Send> ReaderChunkSource<R> {
    /// Wraps `reader` with the default chunk length.
    pub fn new(reader: R) -> Self {
        ReaderChunkSource {
            reader,
            chunk_len: DEFAULT_CHUNK_LEN,
        }
    }

    /// Wraps `reader` reading `chunk_len`-byte chunks.
    pub fn with_chunk_len(reader: R, chunk_len: usize) -> Self {
        ReaderChunkSource {
            reader,
            chunk_len: chunk_len.max(1),
        }
    }
}

impl<R: std::io::Read + Send> ChunkSource for ReaderChunkSource<R> {
    fn next_chunk(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        read_chunk(&mut self.reader, self.chunk_len)
    }
}

/// Chunks an in-memory slice — the differential-testing source, where
/// the chunk length *is* the experiment.
pub struct SliceChunkSource<'a> {
    data: &'a [u8],
    chunk_len: usize,
    pos: usize,
}

impl<'a> SliceChunkSource<'a> {
    /// Streams `data` in `chunk_len`-byte chunks.
    pub fn new(data: &'a [u8], chunk_len: usize) -> Self {
        SliceChunkSource {
            data,
            chunk_len: chunk_len.max(1),
            pos: 0,
        }
    }
}

impl ChunkSource for SliceChunkSource<'_> {
    fn next_chunk(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        if self.pos >= self.data.len() {
            return Ok(None);
        }
        let end = (self.pos + self.chunk_len).min(self.data.len());
        let chunk = self.data[self.pos..end].to_vec();
        self.pos = end;
        Ok(Some(chunk))
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.data.len())
    }
}

/// The sending half of [`chunk_channel`]: a network-style feed pushes
/// chunks from any thread; dropping it ends the stream.
pub struct ChunkSender(mpsc::SyncSender<Vec<u8>>);

impl ChunkSender {
    /// Sends one chunk, blocking while the channel is at capacity.
    /// Errors when the consuming scan has gone away.
    pub fn send(&self, chunk: Vec<u8>) -> std::io::Result<()> {
        self.0.send(chunk).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::BrokenPipe, "stream consumer dropped")
        })
    }
}

/// The receiving half of [`chunk_channel`].
pub struct ChannelChunkSource(mpsc::Receiver<Vec<u8>>);

impl ChunkSource for ChannelChunkSource {
    fn next_chunk(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        // A closed channel is a clean end of stream.
        Ok(self.0.recv().ok())
    }
}

/// A bounded in-memory chunk channel: the producer blocks once
/// `capacity` chunks are in flight, which is the back-pressure a
/// network ingest loop wants.
pub fn chunk_channel(capacity: usize) -> (ChunkSender, ChannelChunkSource) {
    let (tx, rx) = mpsc::sync_channel(capacity.max(1));
    (ChunkSender(tx), ChannelChunkSource(rx))
}

/// Reserves a stream buffer for a stream of `size_hint` bytes: exact
/// (plus [`HINT_SLACK`]) when the size is known, the generous
/// virtual-reservation ladder otherwise. The single reservation
/// policy for every ingestion path.
pub(crate) fn reserve(size_hint: Option<usize>) -> Result<StreamBuffer> {
    match size_hint {
        Some(n) => StreamBuffer::with_capacity(n.saturating_add(HINT_SLACK)).map_err(Error::Io),
        None => {
            StreamBuffer::with_capacity_ladder(DEFAULT_CAPACITY, MIN_CAPACITY).map_err(Error::Io)
        }
    }
}

/// How the scan cuts dispatchable regions for the resolved mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegionPlan {
    /// Marker-aligned PAT dispatch: regions end at the last seen
    /// marker (`boundary_skip` bytes *after* the marker start — 0 for
    /// GeoJSON feature markers, `marker.len()` for WKT newlines).
    Pat {
        marker: &'static [u8],
        boundary_skip: usize,
    },
    /// Arbitrary-offset FAT dispatch: every published byte goes out
    /// immediately.
    Fat,
    /// Buffer only; parse at seal (OSM XML's global node table).
    Sealed,
}

/// One scan fragment in flight: the PAT aggregate itself, or a FAT
/// parse fragment still carrying unresolved block edges.
enum Frag<A: QueryAggregate> {
    Pat(A),
    FatG(Box<FatGeoJsonFrag<A>>),
    FatW(Box<FatWktFrag<A>>),
}

fn merge_frag<A: QueryAggregate>(
    a: Frag<A>,
    b: Frag<A>,
    input: &[u8],
    filter: &MetadataFilter,
) -> std::result::Result<Frag<A>, ParseError> {
    match (a, b) {
        (Frag::Pat(x), Frag::Pat(y)) => Ok(Frag::Pat(x.combine(y))),
        (Frag::FatG(x), Frag::FatG(y)) => Ok(Frag::FatG(Box::new(x.merge(*y, input, filter)?))),
        (Frag::FatW(x), Frag::FatW(y)) => Ok(Frag::FatW(Box::new(x.merge(*y, input, filter)?))),
        _ => unreachable!("one resolved mode per scan"),
    }
}

/// An incremental scan over a growing stream: append chunks, dispatch
/// the newly-safe regions to the worker pool, seal into the final
/// aggregate plus the (zero-copy) sealed [`Dataset`].
///
/// Used directly by `QuerySession::ingest_chunk` (synchronous,
/// pool released between calls so prefix queries can interleave) and
/// through [`drive`] by `Engine::execute_streaming*` (pipelined:
/// a pump thread reads ahead while regions scan and merge).
pub(crate) struct StreamingScan<A: QueryAggregate + 'static> {
    buf: Arc<StreamBuffer>,
    format: Format,
    filter: MetadataFilter,
    proto: A,
    /// Engine-configured mode (possibly `Adaptive`).
    configured: Mode,
    plan: Option<RegionPlan>,
    /// Bytes already covered by dispatched regions.
    dispatched: usize,
    /// Next byte to inspect in the marker scan.
    marker_scan: usize,
    /// Latest safe PAT cut at or beyond `dispatched`.
    boundary: usize,
    /// Next region ordinal (the merger's index space).
    next_region: usize,
    merger: Mutex<StreamMerger<Frag<A>, ParseError>>,
    pub(crate) stats: StreamStats,
    split_time: std::time::Duration,
    run_time: std::time::Duration,
}

impl<A: QueryAggregate + 'static> StreamingScan<A> {
    /// Opens a scan for `format` with `proto` as the aggregate
    /// prototype. The buffer reservation is exact when the stream
    /// size is known (`size_hint`), otherwise a generous virtual
    /// reservation with a back-off ladder.
    pub fn new(
        engine: &Engine,
        format: Format,
        proto: A,
        size_hint: Option<usize>,
    ) -> Result<Self> {
        let buf = reserve(size_hint)?;
        Ok(StreamingScan {
            buf: Arc::new(buf),
            format,
            filter: MetadataFilter::All,
            proto,
            configured: engine.config().mode,
            plan: None,
            dispatched: 0,
            marker_scan: 0,
            boundary: 0,
            next_region: 0,
            merger: Mutex::new(StreamMerger::new()),
            stats: StreamStats::default(),
            split_time: std::time::Duration::ZERO,
            run_time: std::time::Duration::ZERO,
        })
    }

    /// The shared stream buffer (prefix views hang off it).
    pub fn buffer(&self) -> &Arc<StreamBuffer> {
        &self.buf
    }

    /// Bytes ingested so far.
    pub fn ingested_len(&self) -> usize {
        self.buf.len()
    }

    /// The longest prefix that is safe to query mid-ingest: every
    /// record in it is complete (PAT boundary discipline). XML streams
    /// report 0 until sealed — relations resolve against a global node
    /// table, so no prefix answer would be sound.
    pub fn queryable_len(&self) -> usize {
        match self.plan {
            Some(RegionPlan::Sealed) | None => 0,
            // Both PAT and FAT prefixes are cut at the marker
            // boundary: `boundary` tracks it in every non-XML plan.
            Some(_) => self.boundary,
        }
    }

    /// Appends one chunk without dispatching (the pipelined driver
    /// batches several appends per dispatch).
    pub fn append_chunk(&mut self, chunk: &[u8]) -> Result<()> {
        self.buf.append(chunk).map_err(Error::Io)?;
        self.stats.chunks += 1;
        self.stats.bytes += chunk.len() as u64;
        Ok(())
    }

    /// Appends one chunk and dispatches the newly-safe regions.
    pub fn ingest(&mut self, engine: &Engine, chunk: &[u8]) -> Result<()> {
        self.append_chunk(chunk)?;
        self.dispatch(engine, false, None)
    }

    /// Resolves the region plan on first contact with real bytes.
    fn resolve_plan(&mut self, engine: &Engine) {
        if self.plan.is_some() {
            return;
        }
        let len = self.buf.len();
        if len == 0 {
            return;
        }
        let mode = match (self.format, self.configured) {
            (Format::OsmXml, _) => {
                self.plan = Some(RegionPlan::Sealed);
                return;
            }
            (_, Mode::Adaptive) => {
                // Resolve on the bytes seen so far — any choice is
                // result-identical (PAT and FAT parse the same feature
                // stream and the aggregates are order-invariant), so
                // resolving early costs nothing but a different
                // throughput profile.
                let marker = self.marker();
                atgis_formats::resolve_adaptive(self.buf.bytes(), marker, engine.block_count())
            }
            (_, m) => m,
        };
        self.stats.resolved_mode = Some(mode);
        self.plan = Some(match mode {
            Mode::Fat => RegionPlan::Fat,
            _ => RegionPlan::Pat {
                marker: self.marker(),
                boundary_skip: self.marker_skip(),
            },
        });
    }

    fn marker(&self) -> &'static [u8] {
        match self.format {
            Format::GeoJson => atgis_formats::geojson::FEATURE_MARKER,
            _ => b"\n",
        }
    }

    /// Bytes between a marker's start and the safe cut point: a WKT
    /// row *starts after* its preceding newline, a GeoJSON feature
    /// starts *at* its marker. The single source of the rule for both
    /// PAT dispatch and the FAT queryable-prefix tracking.
    fn marker_skip(&self) -> usize {
        match self.format {
            Format::Wkt => 1,
            _ => 0,
        }
    }

    /// Advances the marker scan over newly published bytes, updating
    /// the safe boundary. O(total bytes) across the whole stream.
    fn advance_boundary(&mut self, marker: &'static [u8], skip: usize) {
        let len = self.buf.len();
        let input = self.buf.slice_to(len);
        let mut from = self.marker_scan;
        while let Some(at) = find_marker(input, marker, from) {
            let cut = at + skip;
            if cut > self.boundary && cut <= len {
                self.boundary = cut;
            }
            from = at + 1;
        }
        // A marker may straddle the append point: resume the scan
        // marker-length-minus-one bytes before the end.
        self.marker_scan = len
            .saturating_sub(marker.len().saturating_sub(1))
            .max(self.marker_scan);
    }

    /// Dispatches every safe region; with `at_eof` the tail past the
    /// last marker goes out too. The `token` (when present) is polled
    /// by every pool claimant before each region, so a cancelled or
    /// past-deadline scan stops within one in-flight region per
    /// worker and returns [`Error::Cancelled`] /
    /// [`Error::DeadlineExceeded`].
    pub fn dispatch(
        &mut self,
        engine: &Engine,
        at_eof: bool,
        token: Option<&CancelToken>,
    ) -> Result<()> {
        self.resolve_plan(engine);
        let Some(plan) = self.plan else {
            return Ok(()); // nothing ingested yet
        };
        let len = self.buf.len();
        let started = Instant::now();
        let end = match plan {
            RegionPlan::Sealed => {
                return Ok(());
            }
            RegionPlan::Pat {
                marker,
                boundary_skip,
            } => {
                self.advance_boundary(marker, boundary_skip);
                if at_eof {
                    len
                } else {
                    self.boundary
                }
            }
            RegionPlan::Fat => {
                // Track the marker boundary anyway: it defines the
                // queryable prefix for sessions.
                let marker = self.marker();
                let skip = self.marker_skip();
                self.advance_boundary(marker, skip);
                len
            }
        };
        if end <= self.dispatched {
            self.split_time += started.elapsed();
            return Ok(());
        }
        let start = self.dispatched;
        let region_len = end - start;
        // Cut the region for pool parallelism: PAT sub-cuts stay
        // marker-aligned, FAT cuts anywhere.
        let pieces = region_len
            .div_ceil(DISPATCH_TARGET)
            .max(if region_len >= 4 * 1024 {
                engine.threads().min(region_len / 1024).max(1)
            } else {
                1
            });
        let blocks: Vec<Block> = match plan {
            RegionPlan::Pat { marker, .. } => {
                marker_blocks(&self.buf.slice_to(end)[start..], marker, pieces)
                    .into_iter()
                    .filter(|b| !b.is_empty())
                    .map(|b| Block {
                        index: 0,
                        start: b.start + start,
                        end: b.end + start,
                    })
                    .collect()
            }
            _ => fixed_blocks(region_len, pieces)
                .into_iter()
                .filter(|b| !b.is_empty())
                .map(|b| Block {
                    index: 0,
                    start: b.start + start,
                    end: b.end + start,
                })
                .collect(),
        };
        self.dispatched = end;
        self.split_time += started.elapsed();
        if blocks.is_empty() {
            return Ok(());
        }
        let base = self.next_region;
        self.next_region += blocks.len();
        self.stats.regions += blocks.len() as u64;

        // Run the regions on the pool; each completion folds straight
        // into the shared merger (see `StreamMerger`), so merging of
        // earlier regions overlaps the scanning of later ones.
        let input = self.buf.slice_to(len);
        let merger = &self.merger;
        let proto = &self.proto;
        let filter = &self.filter;
        let format = self.format;
        let started = Instant::now();
        let run = engine
            .pool()
            .run_cancellable(blocks.len(), engine.threads(), token, |i| {
                crate::fault_point!("stream.region");
                let b = blocks[i];
                let result: std::result::Result<Frag<A>, ParseError> = match plan {
                    RegionPlan::Pat { .. } => process_pat(input, b, format, filter, proto),
                    RegionPlan::Fat => match format {
                        Format::GeoJson => FatGeoJsonFrag::process(input, b, filter, proto)
                            .map(|f| Frag::FatG(Box::new(f))),
                        _ => FatWktFrag::process(input, b, filter, proto)
                            .map(|f| Frag::FatW(Box::new(f))),
                    },
                    RegionPlan::Sealed => unreachable!("sealed plans dispatch nothing"),
                };
                match result {
                    Ok(frag) => StreamMerger::push_shared(merger, base + i, frag, |a, c| {
                        merge_frag(a, c, input, filter)
                    }),
                    Err(e) => recover(merger.lock()).poison(e),
                }
            });
        self.run_time += started.elapsed();
        run.map_err(Error::from)
    }

    /// Seals the stream: dispatches the tail, finalises the fold and
    /// returns the aggregate plus the sealed zero-copy dataset,
    /// timings and stream statistics. XML (and empty) streams run the
    /// ordinary buffered pass here.
    pub fn seal(self, engine: &Engine) -> Result<(A, Dataset, Timings, StreamStats)> {
        self.seal_cancellable(engine, None)
    }

    /// [`StreamingScan::seal`] under an optional [`CancelToken`]: the
    /// tail dispatch and the XML buffered pass observe the token at
    /// region granularity.
    pub fn seal_cancellable(
        mut self,
        engine: &Engine,
        token: Option<&CancelToken>,
    ) -> Result<(A, Dataset, Timings, StreamStats)> {
        self.dispatch(engine, true, token)?;
        let len = self.buf.len();
        let dataset = Dataset::from_stream_buffer(self.buf.clone(), len, self.format);
        let mut stats = self.stats;
        let merger = recover(self.merger.into_inner());
        stats.peak_fragments = merger.peak_runs() as u64;
        stats.merges = merger.merges();
        // Summed merge time is worker-time (merges run concurrently);
        // clamp so the phases partition the actual dispatch wall time.
        let merge_time = merger.merge_time().min(self.run_time);
        let mut timings = Timings {
            split: self.split_time,
            process: self.run_time - merge_time,
            merge: merge_time,
        };
        let needs_buffered_pass = matches!(self.plan, Some(RegionPlan::Sealed) | None);
        if needs_buffered_pass {
            let (agg, t) =
                engine.single_pass_cancellable(&dataset, &self.filter, self.proto, token)?;
            return Ok((agg, dataset, t, stats));
        }
        let started = Instant::now();
        let input = dataset.bytes();
        let agg = match merger.finish().map_err(Error::Parse)? {
            None => self.proto,
            Some(Frag::Pat(a)) => a,
            Some(Frag::FatG(f)) => f.finalize(input, &self.filter).map_err(Error::Parse)?,
            Some(Frag::FatW(f)) => f.finalize(input, &self.filter).map_err(Error::Parse)?,
        };
        timings.merge += started.elapsed();
        Ok((agg, dataset, timings, stats))
    }
}

/// PAT region processing: block-local parse, absorb into a clone of
/// the prototype.
fn process_pat<A: QueryAggregate>(
    input: &[u8],
    b: Block,
    format: Format,
    filter: &MetadataFilter,
    proto: &A,
) -> std::result::Result<Frag<A>, ParseError> {
    let mut agg = proto.clone();
    let mut features = Vec::new();
    match format {
        Format::GeoJson => {
            atgis_formats::geojson::fast::parse_block(input, b.start, b.end, filter, &mut features)?
        }
        Format::Wkt => parse_wkt_rows(input, b.start, b.end, filter, &mut features)?,
        Format::OsmXml => unreachable!("XML never dispatches PAT regions"),
    }
    for f in &features {
        agg.absorb(f);
    }
    Ok(Frag::Pat(agg))
}

impl Engine {
    /// Executes one query over a dataset that **arrives while the
    /// query runs**: chunks from `source` feed the scan pipeline as
    /// they appear, fragments merge incrementally, and join-class
    /// queries run against the index sealed at end of stream. The
    /// result is bit-identical to buffering the whole stream and
    /// calling [`Engine::execute`] — for every format, execution mode
    /// and chunk size.
    ///
    /// ```
    /// use atgis::{Engine, Query, SliceChunkSource};
    /// use atgis_formats::Format;
    /// use atgis_geometry::Mbr;
    ///
    /// let bytes = atgis_datagen::write_geojson(&atgis_datagen::OsmGenerator::new(5).generate(80));
    /// let engine = Engine::builder().threads(2).build();
    /// let query = Query::aggregation(Mbr::new(-10.0, 40.0, 10.0, 60.0));
    ///
    /// // Feed the bytes in 1 KiB chunks, scanning as they arrive…
    /// let mut source = SliceChunkSource::new(&bytes, 1024);
    /// let streamed = engine
    ///     .execute_streaming(&query, &mut source, Format::GeoJson)
    ///     .unwrap();
    ///
    /// // …bit-identical to buffering everything first.
    /// let buffered = engine
    ///     .execute(&query, &atgis::Dataset::from_bytes(bytes, Format::GeoJson))
    ///     .unwrap();
    /// assert_eq!(streamed, buffered);
    /// ```
    #[deprecated(note = "use Engine::run_streaming with ExecOptions")]
    pub fn execute_streaming(
        &self,
        query: &crate::query::Query,
        source: &mut dyn ChunkSource,
        format: Format,
    ) -> Result<crate::result::QueryResult> {
        self.run_streaming(
            std::slice::from_ref(query),
            source,
            format,
            &ExecOptions::new(),
        )?
        .into_single()
    }

    /// The unified streaming entry point: executes `queries` over a
    /// one-shot chunk-fed stream under [`ExecOptions`] — cancellation
    /// and deadline observed per chunk and per scan region, fault
    /// isolation and timing selected by the options struct. One-shot
    /// streams never shard ([`crate::ShardPolicy`] is ignored: the
    /// byte length needed to split the input only exists once the
    /// scan is over); use [`crate::QuerySession::run`] after sealing
    /// a streaming session for sharded re-execution. Results are
    /// bit-identical to buffering the whole stream and calling
    /// [`Engine::run`].
    ///
    /// ```
    /// use atgis::{Engine, ExecOptions, Query, SliceChunkSource};
    /// use atgis_formats::Format;
    /// use atgis_geometry::Mbr;
    ///
    /// let bytes = atgis_datagen::write_geojson(&atgis_datagen::OsmGenerator::new(5).generate(80));
    /// let engine = Engine::builder().threads(2).build();
    /// let queries = vec![Query::aggregation(Mbr::new(-10.0, 40.0, 10.0, 60.0))];
    ///
    /// let mut source = SliceChunkSource::new(&bytes, 1024);
    /// let streamed = engine
    ///     .run_streaming(&queries, &mut source, Format::GeoJson, &ExecOptions::new())
    ///     .unwrap()
    ///     .into_single()
    ///     .unwrap();
    ///
    /// let buffered = engine
    ///     .run(&queries, &atgis::Dataset::from_bytes(bytes, Format::GeoJson), &ExecOptions::new())
    ///     .unwrap()
    ///     .into_single()
    ///     .unwrap();
    /// assert_eq!(streamed, buffered);
    /// ```
    pub fn run_streaming(
        &self,
        queries: &[crate::query::Query],
        source: &mut dyn ChunkSource,
        format: Format,
        opts: &ExecOptions,
    ) -> Result<RunOutcome> {
        let token = opts.effective_token();
        let cache = crate::batch::IndexCache::new();
        let (outcomes, batch_stats, stream_stats) = crate::batch::execute_streaming_batch_impl(
            self,
            queries,
            source,
            format,
            &cache,
            token.as_ref(),
        )?;
        exec::finish_run(outcomes, Some(batch_stats), None, Some(stream_stats), opts)
    }

    /// Executes a batch of queries over a streamed dataset with one
    /// shared chunk-fed scan (the streaming analogue of
    /// [`Engine::execute_batch`]). Results come back in submission
    /// order, bit-identical to the buffered batch.
    #[deprecated(note = "use Engine::run_streaming with ExecOptions")]
    pub fn execute_streaming_batch(
        &self,
        queries: &[crate::query::Query],
        source: &mut dyn ChunkSource,
        format: Format,
    ) -> Result<Vec<crate::result::QueryResult>> {
        self.run_streaming(queries, source, format, &ExecOptions::new())?
            .collapse()
    }

    /// [`Engine::execute_streaming_batch`] with the amortisation
    /// breakdown and the stream's ingestion statistics (chunk count,
    /// peak live fragments, ingest wait).
    #[deprecated(note = "use Engine::run_streaming with ExecOptions::new().timed()")]
    pub fn execute_streaming_batch_timed(
        &self,
        queries: &[crate::query::Query],
        source: &mut dyn ChunkSource,
        format: Format,
    ) -> Result<(
        Vec<crate::result::QueryResult>,
        crate::stats::BatchStats,
        StreamStats,
    )> {
        let out = self.run_streaming(queries, source, format, &ExecOptions::new().timed())?;
        let batch = out.batch.clone().expect("timed run reports batch stats");
        let stream = out
            .stream
            .clone()
            .expect("streaming run reports stream stats");
        Ok((out.collapse()?, batch, stream))
    }

    /// [`Engine::execute_streaming`] under a cooperative
    /// [`CancelToken`]: the token is observed per chunk in the ingest
    /// loop and per region in the scan fan-out, so a cancelled or
    /// past-deadline stream stops within one work unit and returns
    /// [`Error::Cancelled`] / [`Error::DeadlineExceeded`].
    #[deprecated(note = "use Engine::run_streaming with ExecOptions::new().cancellable(token)")]
    pub fn execute_streaming_cancellable(
        &self,
        query: &crate::query::Query,
        source: &mut dyn ChunkSource,
        format: Format,
        token: &CancelToken,
    ) -> Result<crate::result::QueryResult> {
        self.run_streaming(
            std::slice::from_ref(query),
            source,
            format,
            &ExecOptions::new().cancellable(token),
        )?
        .into_single()
    }

    /// The **fault-isolated** streaming batch: per-query `Result`s
    /// (a panicking aggregate sink fails only its own query), plus
    /// the batch and stream statistics — including the transient
    /// chunk-read retry count ([`StreamStats::retries`]). Whole-batch
    /// failures (I/O, parse, cancellation, deadline) surface as the
    /// outer `Err`.
    #[deprecated(note = "use Engine::run_streaming with ExecOptions::new().isolated().timed()")]
    pub fn execute_streaming_batch_isolated(
        &self,
        queries: &[crate::query::Query],
        source: &mut dyn ChunkSource,
        format: Format,
        token: Option<&CancelToken>,
    ) -> Result<(
        Vec<crate::result::QueryOutcome>,
        crate::stats::BatchStats,
        StreamStats,
    )> {
        let out = self.run_streaming(
            queries,
            source,
            format,
            &ExecOptions::new().isolated().timed().cancellable_opt(token),
        )?;
        let batch = out.batch.expect("timed run reports batch stats");
        let stream = out.stream.expect("streaming run reports stream stats");
        Ok((out.outcomes, batch, stream))
    }
}

/// `true` for I/O errors the streaming pump treats as transient and
/// retries with backoff rather than failing the whole stream.
fn is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

/// `source.next_chunk()` with bounded retry-with-backoff for
/// transient errors: up to [`MAX_READ_RETRIES`] attempts, sleeping
/// [`RETRY_BACKOFF_BASE`]·2ⁿ between them, every retry tallied into
/// `retries`. Non-transient errors (and transient ones past the
/// bound) surface unchanged as [`Error::Io`].
///
/// The `token` is polled **before every attempt and between retry
/// sleeps**: a cancelled or past-deadline stream (e.g. a disconnected
/// client) returns [`Error::Cancelled`] / [`Error::DeadlineExceeded`]
/// immediately instead of burning the whole backoff ladder against a
/// flaky source nobody is waiting on.
fn next_chunk_with_retry(
    source: &mut (dyn ChunkSource + '_),
    retries: &AtomicU64,
    token: Option<&CancelToken>,
) -> Result<Option<Vec<u8>>> {
    let mut attempt = 0u32;
    loop {
        if let Some(t) = token {
            t.check()?;
        }
        match source.next_chunk() {
            Err(e) if attempt < MAX_READ_RETRIES && is_transient(&e) => {
                attempt += 1;
                retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(RETRY_BACKOFF_BASE * (1 << (attempt - 1)));
            }
            other => return other.map_err(Error::Io),
        }
    }
}

/// Drives `scan` from `source` with read-ahead: a pump thread blocks
/// on the source while the calling thread appends and dispatches, so
/// ingest I/O overlaps scanning and merging. Several already-arrived
/// chunks are appended per dispatch to amortise pool submissions.
///
/// Robustness: transient chunk-read errors retry with bounded
/// backoff ([`StreamStats::retries`] counts them), and the `token`
/// is observed once per chunk batch — cancelling mid-stream stops
/// the ingest loop within one chunk and drops the read-ahead
/// channel, which unblocks and retires the pump thread.
pub(crate) fn drive<A: QueryAggregate + 'static>(
    scan: &mut StreamingScan<A>,
    engine: &Engine,
    source: &mut (dyn ChunkSource + '_),
    token: Option<&CancelToken>,
) -> Result<()> {
    let retries = AtomicU64::new(0);
    let result = std::thread::scope(|s| -> Result<()> {
        let (tx, rx) = mpsc::sync_channel::<Result<Vec<u8>>>(READAHEAD_CHUNKS);
        let retry_counter = &retries;
        // The pump observes the same token as the consumer loop, so a
        // cancellation that lands mid-backoff (a disconnected client
        // on a flaky source) stops the retry ladder, not just the
        // dispatch loop.
        let pump_token = token.cloned();
        s.spawn(move || loop {
            match next_chunk_with_retry(source, retry_counter, pump_token.as_ref()) {
                Ok(Some(chunk)) => {
                    if tx.send(Ok(chunk)).is_err() {
                        return; // consumer bailed
                    }
                }
                Ok(None) => return,
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        });
        loop {
            if let Some(t) = token {
                t.check()?;
            }
            let waited = Instant::now();
            let msg = rx.recv();
            scan.stats.ingest_wait += waited.elapsed();
            let Ok(msg) = msg else {
                return Ok(()); // stream complete
            };
            scan.append_chunk(&msg?)?;
            // Batch everything already buffered into this dispatch.
            while let Ok(more) = rx.try_recv() {
                scan.append_chunk(&more?)?;
            }
            scan.dispatch(engine, false, token)?;
        }
    });
    scan.stats.retries += retries.load(Ordering::Relaxed);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ContainmentAgg;
    use crate::query::Query;
    use atgis_geometry::{Mbr, Polygon};

    fn world_agg() -> ContainmentAgg {
        ContainmentAgg::new(Arc::new(Polygon::from_mbr(&Mbr::new(
            -180.0, -90.0, 180.0, 90.0,
        ))))
    }

    fn tiny_geojson() -> Vec<u8> {
        concat!(
            r#"{"type":"FeatureCollection","features":["#,
            r#"{"type":"Feature","geometry":{"type":"Point","coordinates":[1.25,50.5]},"id":1,"properties":{"name":"caf\u00e9"}},"#,
            r#"{"type":"Feature","geometry":{"type":"Point","coordinates":[2.5,51.5]},"id":2,"properties":{}}"#,
            r#"]}"#
        )
        .as_bytes()
        .to_vec()
    }

    #[test]
    fn queryable_prefix_advances_only_at_markers() {
        let engine = Engine::builder().threads(2).build();
        let doc = tiny_geojson();
        let mut scan =
            StreamingScan::new(&engine, Format::GeoJson, world_agg(), Some(doc.len())).unwrap();
        // Feed one byte at a time: the queryable prefix must only ever
        // sit at 0 or at a feature-marker boundary, never mid-feature.
        let marker = atgis_formats::geojson::FEATURE_MARKER;
        let mut marker_positions: Vec<usize> = vec![0];
        let mut at = 0usize;
        while let Some(p) = find_marker(&doc, marker, at) {
            marker_positions.push(p);
            at = p + 1;
        }
        for b in doc.iter() {
            scan.ingest(&engine, std::slice::from_ref(b)).unwrap();
            let q = scan.queryable_len();
            assert!(
                marker_positions.contains(&q),
                "queryable prefix {q} is not a marker boundary"
            );
        }
        let (agg, dataset, _, stats) = scan.seal(&engine).unwrap();
        assert_eq!(agg.matches.len(), 2, "both features parsed once");
        assert_eq!(dataset.len(), doc.len());
        assert_eq!(stats.chunks, doc.len() as u64);
        assert_eq!(stats.resolved_mode, Some(Mode::Pat));
    }

    #[test]
    fn chunk_split_inside_utf8_escape_parses_clean() {
        // Split in the middle of the é escape: the held-back tail
        // must keep the feature intact.
        let engine = Engine::builder().build();
        let doc = tiny_geojson();
        let escape_at = doc
            .windows(6)
            .position(|w| w == br"\u00e9")
            .expect("escape present");
        for cut in escape_at..escape_at + 6 {
            let mut scan =
                StreamingScan::new(&engine, Format::GeoJson, world_agg(), Some(doc.len())).unwrap();
            scan.ingest(&engine, &doc[..cut]).unwrap();
            scan.ingest(&engine, &doc[cut..]).unwrap();
            let (agg, ..) = scan.seal(&engine).unwrap();
            assert_eq!(agg.matches.len(), 2, "cut={cut}");
        }
    }

    #[test]
    fn chunk_split_inside_wkt_number_parses_clean() {
        let engine = Engine::builder().build();
        let doc = b"1\tPOINT(1.2345678 50.8765432)\t\n2\tPOINT(2.5 51.5)\t\n".to_vec();
        let digit_at = 10usize; // inside "1.2345678"
        for cut in digit_at..digit_at + 8 {
            let mut scan =
                StreamingScan::new(&engine, Format::Wkt, world_agg(), Some(doc.len())).unwrap();
            scan.ingest(&engine, &doc[..cut]).unwrap();
            scan.ingest(&engine, &doc[cut..]).unwrap();
            let (agg, ..) = scan.seal(&engine).unwrap();
            assert_eq!(agg.matches.len(), 2, "cut={cut}");
        }
    }

    #[test]
    fn empty_final_chunk_at_eof_is_harmless() {
        let engine = Engine::builder().build();
        let doc = b"1\tPOINT(1.5 50.5)\t\n".to_vec();
        let mut scan =
            StreamingScan::new(&engine, Format::Wkt, world_agg(), Some(doc.len())).unwrap();
        scan.ingest(&engine, &doc).unwrap();
        scan.ingest(&engine, b"").unwrap();
        let (agg, dataset, _, stats) = scan.seal(&engine).unwrap();
        assert_eq!(agg.matches.len(), 1);
        assert_eq!(dataset.len(), doc.len());
        assert_eq!(stats.chunks, 2, "the empty chunk still counts");
    }

    /// A source that fails every read with a transient error — the
    /// worst case for the retry ladder — while counting attempts.
    struct AlwaysTransientSource {
        attempts: u64,
    }

    impl ChunkSource for AlwaysTransientSource {
        fn next_chunk(&mut self) -> std::io::Result<Option<Vec<u8>>> {
            self.attempts += 1;
            Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "transient",
            ))
        }
    }

    #[test]
    fn retry_ladder_observes_a_pre_cancelled_token() {
        // A disconnected client's cancelled stream must not burn the
        // whole backoff ladder before noticing: with the token already
        // tripped, not a single read attempt (or sleep) happens.
        let mut source = AlwaysTransientSource { attempts: 0 };
        let retries = AtomicU64::new(0);
        let token = CancelToken::new();
        token.cancel();
        let got = next_chunk_with_retry(&mut source, &retries, Some(&token));
        assert!(matches!(got, Err(Error::Cancelled)), "{got:?}");
        assert_eq!(source.attempts, 0, "no read happens after cancellation");
        assert_eq!(retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn retry_ladder_observes_cancellation_between_attempts() {
        // Cancel from another thread while the ladder is mid-backoff:
        // the retry loop must notice between attempts instead of
        // exhausting all retries first.
        let mut source = AlwaysTransientSource { attempts: 0 };
        let retries = AtomicU64::new(0);
        let token = CancelToken::new();
        let canceller = token.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(50));
            canceller.cancel();
        });
        let got = next_chunk_with_retry(&mut source, &retries, Some(&token));
        handle.join().unwrap();
        assert!(matches!(got, Err(Error::Cancelled)), "{got:?}");
        assert!(
            source.attempts <= MAX_READ_RETRIES as u64,
            "cancellation must stop the ladder, saw {} attempts",
            source.attempts
        );
    }

    #[test]
    fn retry_ladder_observes_an_elapsed_deadline() {
        let mut source = AlwaysTransientSource { attempts: 0 };
        let retries = AtomicU64::new(0);
        let token = CancelToken::with_deadline(Duration::ZERO);
        let got = next_chunk_with_retry(&mut source, &retries, Some(&token));
        assert!(matches!(got, Err(Error::DeadlineExceeded)), "{got:?}");
        assert_eq!(source.attempts, 0);
    }

    #[test]
    fn untokened_retry_ladder_still_exhausts_and_surfaces() {
        // Without a token the pre-fix behavior is preserved: the
        // bounded ladder runs dry and the transient error surfaces.
        let mut source = AlwaysTransientSource { attempts: 0 };
        let retries = AtomicU64::new(0);
        let got = next_chunk_with_retry(&mut source, &retries, None);
        assert!(matches!(got, Err(Error::Io(_))), "{got:?}");
        assert_eq!(source.attempts, (MAX_READ_RETRIES + 1) as u64);
        assert_eq!(retries.load(Ordering::Relaxed), MAX_READ_RETRIES as u64);
    }

    #[test]
    fn chunk_sender_reports_dropped_consumer() {
        let (tx, rx) = chunk_channel(1);
        drop(rx);
        assert!(tx.send(vec![1, 2, 3]).is_err());
    }

    #[test]
    fn file_source_reads_exact_chunks_and_hints_size() {
        let path = std::env::temp_dir().join(format!("atgis_chunk_src_{}.bin", std::process::id()));
        std::fs::write(&path, b"abcdefghij").unwrap();
        let mut src = FileChunkSource::open_with_chunk_len(&path, 4).unwrap();
        assert_eq!(src.size_hint(), Some(10));
        let mut total = Vec::new();
        while let Some(c) = src.next_chunk().unwrap() {
            assert!(c.len() <= 4);
            total.extend(c);
        }
        assert_eq!(total, b"abcdefghij");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_engine_api_smoke() {
        // The one-query convenience API over a reader source.
        let engine = Engine::builder().threads(2).build();
        let doc = tiny_geojson();
        let mut source = ReaderChunkSource::with_chunk_len(&doc[..], 5);
        let r = engine
            .run_streaming(
                &[Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0))],
                &mut source,
                Format::GeoJson,
                &ExecOptions::new(),
            )
            .unwrap()
            .into_single()
            .unwrap();
        assert_eq!(r.matches().len(), 2);
    }
}
