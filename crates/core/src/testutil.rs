//! Test-only sugar over the unified [`ExecOptions`] entry points:
//! "execute this and give me the collapsed result" without spelling
//! the options struct at every call site. Everything here delegates
//! to [`Engine::run`] / [`QuerySession::run`] /
//! [`QueryScheduler::run`] — no test goes through the deprecated
//! compatibility wrappers.

use crate::batch::QuerySession;
use crate::dataset::Dataset;
use crate::engine::Engine;
use crate::exec::ExecOptions;
use crate::query::Query;
use crate::result::QueryResult;
use crate::scheduler::{DatasetId, QueryScheduler};
use crate::stats::{BatchStats, SchedulerStats};
use crate::Result;

/// One-query / collapsed-batch helpers for [`Engine`].
pub(crate) trait RunExt {
    fn exec1(&self, query: &Query, dataset: &Dataset) -> Result<QueryResult>;
    fn execb(&self, queries: &[Query], dataset: &Dataset) -> Result<Vec<QueryResult>>;
    fn execb_timed(
        &self,
        queries: &[Query],
        dataset: &Dataset,
    ) -> Result<(Vec<QueryResult>, BatchStats)>;
}

impl RunExt for Engine {
    fn exec1(&self, query: &Query, dataset: &Dataset) -> Result<QueryResult> {
        self.run(std::slice::from_ref(query), dataset, &ExecOptions::new())?
            .into_single()
    }

    fn execb(&self, queries: &[Query], dataset: &Dataset) -> Result<Vec<QueryResult>> {
        self.run(queries, dataset, &ExecOptions::new())?.collapse()
    }

    fn execb_timed(
        &self,
        queries: &[Query],
        dataset: &Dataset,
    ) -> Result<(Vec<QueryResult>, BatchStats)> {
        let out = self.run(queries, dataset, &ExecOptions::new().timed())?;
        let stats = out.batch.clone().expect("timed run reports batch stats");
        Ok((out.collapse()?, stats))
    }
}

/// The same sugar for [`QuerySession`].
pub(crate) trait SessionRunExt {
    fn exec1(&self, query: &Query) -> Result<QueryResult>;
    fn execb_timed(&self, queries: &[Query]) -> Result<(Vec<QueryResult>, BatchStats)>;
}

impl SessionRunExt for QuerySession {
    fn exec1(&self, query: &Query) -> Result<QueryResult> {
        self.run(std::slice::from_ref(query), &ExecOptions::new())?
            .into_single()
    }

    fn execb_timed(&self, queries: &[Query]) -> Result<(Vec<QueryResult>, BatchStats)> {
        let out = self.run(queries, &ExecOptions::new().timed())?;
        let stats = out.batch.clone().expect("timed run reports batch stats");
        Ok((out.collapse()?, stats))
    }
}

/// The same sugar for [`QueryScheduler`].
pub(crate) trait SchedRunExt {
    fn exec1(&self, id: DatasetId, query: &Query) -> Result<QueryResult>;
    fn execb_timed(
        &self,
        id: DatasetId,
        queries: &[Query],
    ) -> Result<(Vec<QueryResult>, SchedulerStats)>;
}

impl SchedRunExt for QueryScheduler {
    fn exec1(&self, id: DatasetId, query: &Query) -> Result<QueryResult> {
        self.run(id, std::slice::from_ref(query), &ExecOptions::new())?
            .into_single()
    }

    fn execb_timed(
        &self,
        id: DatasetId,
        queries: &[Query],
    ) -> Result<(Vec<QueryResult>, SchedulerStats)> {
        let out = self.run(id, queries, &ExecOptions::new().timed())?;
        let stats = out
            .scheduler
            .clone()
            .expect("timed run reports scheduler stats");
        Ok((out.collapse()?, stats))
    }
}
