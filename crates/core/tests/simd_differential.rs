//! SIMD ≡ SWAR differential test: the full query pipeline must
//! produce bit-identical results whichever scanning kernel the
//! dispatcher picks.
//!
//! The kernel probe is cached once per process, so the comparison
//! re-executes this test binary as a child with `ATGIS_NO_SIMD=1`
//! (forcing the SWAR fallback) and compares a digest of every query
//! result against the parent's (SIMD on machines that have it). Under
//! a suite-wide `ATGIS_NO_SIMD=1` run (the CI fallback job) both
//! sides are SWAR and the test degenerates to a determinism check.

use atgis::{Dataset, Engine, ExecOptions, Query, QueryResult};
use atgis_datagen::{write_geojson, write_osm_xml, write_wkt, OsmGenerator};
use atgis_formats::Format;
use atgis_geometry::Mbr;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

const ROLE_VAR: &str = "ATGIS_DIFF_ROLE";
const DIGEST_PREFIX: &str = "ATGIS_DIFF_DIGEST=";

fn engine() -> Engine {
    Engine::builder()
        .threads(2)
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .cell_size(1.0)
        .build()
}

/// Runs the query battery over every format and folds the `Debug`
/// rendering of each result (exact offsets, exact aggregates, exact
/// join pairs) into one digest. `DefaultHasher` uses fixed keys, so
/// the value is stable between two runs of the same binary.
fn battery_digest() -> u64 {
    let engine = engine();
    let objects = OsmGenerator::new(41).generate(2_000);
    let datasets = [
        (Format::GeoJson, write_geojson(&objects)),
        (Format::Wkt, write_wkt(&objects)),
        (Format::OsmXml, write_osm_xml(&objects)),
    ];
    let queries = [
        Query::containment(Mbr::new(-6.0, 44.0, 4.0, 56.0)),
        Query::aggregation(Mbr::new(-2.0, 48.0, 2.0, 52.0)),
        Query::join(1_000),
    ];
    let mut h = DefaultHasher::new();
    for (format, bytes) in datasets {
        let ds = Dataset::from_bytes(bytes.clone(), format);
        // Buffered solo + batched: both pipelines ride the kernels.
        for q in &queries {
            let r = engine
                .run(std::slice::from_ref(q), &ds, &ExecOptions::new())
                .unwrap()
                .into_single()
                .unwrap();
            format!("{format:?}/{q:?}/{r:?}").hash(&mut h);
        }
        let batched = engine
            .run(&queries, &ds, &ExecOptions::new())
            .unwrap()
            .collapse()
            .unwrap();
        format!("{format:?}/batch/{batched:?}").hash(&mut h);
        // Streamed: the same battery fed chunkwise.
        let path =
            std::env::temp_dir().join(format!("atgis_diff_{}_{format:?}.raw", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        for q in &queries {
            let mut src = atgis::FileChunkSource::open_with_chunk_len(&path, 64 << 10).unwrap();
            let r: QueryResult = engine
                .run_streaming(
                    std::slice::from_ref(q),
                    &mut src,
                    format,
                    &ExecOptions::new(),
                )
                .unwrap()
                .into_single()
                .unwrap();
            format!("{format:?}/stream/{q:?}/{r:?}").hash(&mut h);
        }
        std::fs::remove_file(&path).ok();
    }
    h.finish()
}

#[test]
fn query_results_are_bit_identical_under_forced_swar() {
    if std::env::var_os(ROLE_VAR).is_some_and(|v| v == "child") {
        // Child role: the env knob must actually have forced the
        // fallback, otherwise the comparison is vacuous.
        assert_eq!(
            atgis_transducer::simd::kernel(),
            atgis_transducer::simd::Kernel::Swar,
            "ATGIS_NO_SIMD=1 must force the SWAR kernel"
        );
        println!("{DIGEST_PREFIX}{:x}", battery_digest());
        return;
    }

    let mine = battery_digest();
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args([
            "--exact",
            "query_results_are_bit_identical_under_forced_swar",
            "--nocapture",
        ])
        .env("ATGIS_NO_SIMD", "1")
        .env(ROLE_VAR, "child")
        .output()
        .expect("spawn SWAR child");
    assert!(
        out.status.success(),
        "SWAR child failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The harness may emit its own text around the digest (the
    // `test … ok` line is not newline-separated from captured output),
    // so scan within lines rather than anchoring to line starts.
    let theirs = stdout
        .lines()
        .find_map(|l| {
            let at = l.find(DIGEST_PREFIX)?;
            let rest = &l[at + DIGEST_PREFIX.len()..];
            Some(rest.split_whitespace().next().unwrap_or(""))
        })
        .expect("child digest line");
    assert_eq!(
        format!("{mine:x}"),
        theirs,
        "SIMD and SWAR kernels produced different query results"
    );
}
