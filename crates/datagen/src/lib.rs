//! Dataset generators for the AT-GIS evaluation (Table 2).
//!
//! The paper evaluates on the OpenStreetMap planet file in three
//! serialisations (OSM-X/G/W), a 10× replicated variant (OSM-10G) and
//! a synthetic `Synth(n, σ)` workload whose polygon edge counts follow
//! a log-normal distribution. The planet file is not redistributable
//! at benchmark scale, so this crate generates *OSM-like* data with
//! the same structural features the paper's parsers must handle —
//! nested feature collections, free-form metadata, node/way/relation
//! indirection for XML — at any configurable size, deterministically
//! from a seed.
//!
//! See `ARCHITECTURE.md` at the repository root for how this crate
//! fits into the workspace as the workload-generation support crate of the four-layer design,
//! plus the ingest → seal → query lifecycle and the data flow of a
//! scheduled batch.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod osm;
pub mod synth;
pub mod writers;

pub use osm::{OsmDataset, OsmGenerator, OsmObject};
pub use synth::SynthConfig;
pub use writers::{write_geojson, write_osm_xml, write_wkt};

/// Replicates a dataset `k` times, rewriting ids to stay unique — the
/// OSM-10G construction ("the geometries are kept the same but the id
/// is changed to ensure uniqueness", §5).
pub fn replicate(dataset: &OsmDataset, k: usize) -> OsmDataset {
    let mut objects = Vec::with_capacity(dataset.objects.len() * k);
    let id_stride = dataset.objects.iter().map(|o| o.id).max().unwrap_or(0) + 1;
    for rep in 0..k as u64 {
        for o in &dataset.objects {
            let mut copy = o.clone();
            copy.id = o.id + rep * id_stride;
            objects.push(copy);
        }
    }
    OsmDataset { objects }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_preserves_geometry_and_renumbers() {
        let ds = OsmGenerator::new(7).generate(10);
        let rep = replicate(&ds, 3);
        assert_eq!(rep.objects.len(), 30);
        let mut ids: Vec<u64> = rep.objects.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 30, "ids must stay unique");
        assert_eq!(rep.objects[0].geometry, rep.objects[10].geometry);
    }
}
