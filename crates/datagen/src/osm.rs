//! OSM-like object generation.
//!
//! Objects mimic the OpenStreetMap planet file's statistical shape at
//! reduced scale: mostly small building-like polygons, some longer
//! road linestrings, occasional multipolygons (land-use with islands)
//! and rare nested geometry collections, spread non-uniformly over a
//! configurable lon/lat extent (clustered around "city" centres, as
//! real OSM data clusters around settlements).

use atgis_geometry::{Geometry, LineString, Mbr, MultiPolygon, Point, Polygon, Ring};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated object: geometry plus OSM-style metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct OsmObject {
    /// Unique object id.
    pub id: u64,
    /// The geometry.
    pub geometry: Geometry,
    /// `k=v` tags (building=yes, highway=…, name=…).
    pub tags: Vec<(String, String)>,
}

/// A generated dataset.
#[derive(Debug, Clone, Default)]
pub struct OsmDataset {
    /// Objects in file order.
    pub objects: Vec<OsmObject>,
}

impl OsmDataset {
    /// Bounding box of the whole dataset.
    pub fn mbr(&self) -> Mbr {
        self.objects
            .iter()
            .fold(Mbr::EMPTY, |acc, o| acc.union(&o.geometry.mbr()))
    }

    /// Total vertex count — the paper reports "Shapes (1000s)";
    /// vertex counts drive parse cost.
    pub fn total_points(&self) -> usize {
        self.objects.iter().map(|o| o.geometry.num_points()).sum()
    }
}

/// Deterministic OSM-like data generator.
#[derive(Debug, Clone)]
pub struct OsmGenerator {
    seed: u64,
    /// Longitude extent of the generated world.
    pub lon_range: (f64, f64),
    /// Latitude extent of the generated world.
    pub lat_range: (f64, f64),
    /// Number of cluster centres ("cities").
    pub clusters: usize,
    /// Fraction of objects that are road linestrings.
    pub road_fraction: f64,
    /// Fraction of objects that are multipolygons.
    pub multipolygon_fraction: f64,
    /// Fraction of objects that are nested geometry collections.
    pub collection_fraction: f64,
    /// Fraction of objects concentrated into one tiny hotspot cluster
    /// (`0` disables): the join-skew workload of Fig. 14, where a
    /// uniform partition grid serialises on the hotspot's cell.
    pub hotspot_fraction: f64,
    /// Longitude scatter radius (degrees) of the hotspot cluster.
    pub hotspot_radius_x: f64,
    /// Latitude scatter radius (degrees) of the hotspot cluster. Equal
    /// radii give a compact blob; a small x with a large y gives a
    /// *corridor* (coastline/highway-style linear clustering), the
    /// shape that degrades a sort-and-sweep MBR compare to quadratic.
    pub hotspot_radius_y: f64,
    /// Scale factor applied to every generated geometry's footprint
    /// (building radius, road step, multipolygon member size). `1.0`
    /// keeps the defaults; small values give dense-but-rarely-touching
    /// workloads where candidate filtering dominates refinement.
    pub object_scale: f64,
}

impl OsmGenerator {
    /// Creates a generator with the default world: a 20°×20° region
    /// with 12 city clusters.
    pub fn new(seed: u64) -> Self {
        OsmGenerator {
            seed,
            lon_range: (-10.0, 10.0),
            lat_range: (40.0, 60.0),
            clusters: 12,
            road_fraction: 0.25,
            multipolygon_fraction: 0.05,
            collection_fraction: 0.02,
            hotspot_fraction: 0.0,
            hotspot_radius_x: 0.1,
            hotspot_radius_y: 0.1,
            object_scale: 1.0,
        }
    }

    /// Scales every generated geometry's footprint.
    pub fn with_object_scale(mut self, scale: f64) -> Self {
        self.object_scale = scale;
        self
    }

    /// Concentrates `fraction` of the objects into a single compact
    /// cluster scattered ±`radius` degrees around its centre (the
    /// skewed-join workload knob).
    pub fn with_hotspot(mut self, fraction: f64, radius: f64) -> Self {
        self.hotspot_fraction = fraction;
        self.hotspot_radius_x = radius;
        self.hotspot_radius_y = radius;
        self
    }

    /// Concentrates `fraction` of the objects into a thin vertical
    /// corridor — linear clustering along a coastline or trunk road.
    /// `width` and `length` are half-extents: objects scatter
    /// ±`width` degrees in longitude and ±`length` in latitude around
    /// the corridor centre. Every object in the corridor shares its
    /// x-range with every other, the worst case for the sweep-based
    /// MBR compare on a uniform grid.
    pub fn with_corridor(mut self, fraction: f64, width: f64, length: f64) -> Self {
        self.hotspot_fraction = fraction;
        self.hotspot_radius_x = width;
        self.hotspot_radius_y = length;
        self
    }

    /// Generates `n` objects.
    pub fn generate(&self, n: usize) -> OsmDataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let centres: Vec<Point> = (0..self.clusters.max(1))
            .map(|_| {
                Point::new(
                    rng.gen_range(self.lon_range.0..self.lon_range.1),
                    rng.gen_range(self.lat_range.0..self.lat_range.1),
                )
            })
            .collect();
        let mut objects = Vec::with_capacity(n);
        for i in 0..n {
            let id = i as u64 + 1;
            // The hotspot roll is only drawn when the knob is on, so
            // the RNG stream (and every generated dataset) is
            // bit-identical to pre-hotspot generators by default.
            let (centre, spread_x, spread_y, hotspot) =
                if self.hotspot_fraction > 0.0 && rng.gen::<f64>() < self.hotspot_fraction {
                    (
                        centres[0],
                        self.hotspot_radius_x.max(1e-6),
                        self.hotspot_radius_y.max(1e-6),
                        true,
                    )
                } else {
                    (centres[rng.gen_range(0..centres.len())], 0.5, 0.5, false)
                };
            // Gaussian-ish scatter around a city centre; uniform fill
            // along a hotspot/corridor (linear features are roughly
            // uniform along their length).
            let jitter = |rng: &mut StdRng| {
                let u: f64 = rng.gen_range(-1.0..1.0);
                let v: f64 = rng.gen_range(-1.0..1.0);
                if hotspot {
                    (u * spread_x, v * spread_y)
                } else {
                    (u * u * u.signum() * spread_x, v * v * v.signum() * spread_y)
                }
            };
            let (dx, dy) = jitter(&mut rng);
            let at = Point::new(centre.x + dx, centre.y + dy);
            let roll: f64 = rng.gen();
            let (geometry, tags) = if roll < self.collection_fraction {
                (
                    self.gen_collection(&mut rng, at),
                    vec![("type".into(), "site".into()), (name_tag(id))],
                )
            } else if roll < self.collection_fraction + self.multipolygon_fraction {
                (
                    self.gen_multipolygon(&mut rng, at),
                    vec![("landuse".into(), "forest".into()), (name_tag(id))],
                )
            } else if roll
                < self.collection_fraction + self.multipolygon_fraction + self.road_fraction
            {
                (
                    self.gen_road(&mut rng, at),
                    vec![("highway".into(), road_kind(&mut rng)), (name_tag(id))],
                )
            } else {
                (
                    self.gen_building(&mut rng, at),
                    vec![("building".into(), "yes".into()), (name_tag(id))],
                )
            };
            objects.push(OsmObject { id, geometry, tags });
        }
        OsmDataset { objects }
    }

    /// A small convex building polygon (4–12 vertices).
    fn gen_building(&self, rng: &mut StdRng, at: Point) -> Geometry {
        Geometry::Polygon(random_polygon(
            rng,
            at,
            0.0005..0.005,
            4..13,
            self.object_scale,
        ))
    }

    /// A road polyline (2–30 vertices, random walk).
    fn gen_road(&self, rng: &mut StdRng, at: Point) -> Geometry {
        let n = rng.gen_range(2..30);
        let mut pts = Vec::with_capacity(n);
        let mut cur = at;
        let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        for _ in 0..n {
            pts.push(cur);
            heading += rng.gen_range(-0.5..0.5);
            let step = rng.gen_range(0.0005..0.003) * self.object_scale;
            cur = Point::new(cur.x + step * heading.cos(), cur.y + step * heading.sin());
        }
        Geometry::LineString(LineString::new(pts))
    }

    /// A land-use multipolygon with 2–4 members.
    fn gen_multipolygon(&self, rng: &mut StdRng, at: Point) -> Geometry {
        let k = rng.gen_range(2..5);
        let polys = (0..k)
            .map(|i| {
                let off = Point::new(
                    at.x + i as f64 * 0.02 * self.object_scale,
                    at.y + (i % 2) as f64 * 0.02 * self.object_scale,
                );
                random_polygon(rng, off, 0.002..0.01, 5..20, self.object_scale)
            })
            .collect();
        Geometry::MultiPolygon(MultiPolygon::new(polys))
    }

    /// A nested geometry collection (the Listing 1 shape).
    fn gen_collection(&self, rng: &mut StdRng, at: Point) -> Geometry {
        let inner = Geometry::Collection(vec![
            Geometry::Point(at),
            self.gen_building(rng, Point::new(at.x + 0.01, at.y)),
        ]);
        Geometry::Collection(vec![inner, self.gen_road(rng, at)])
    }
}

/// A random convex-ish polygon: vertices on a wobbly circle.
fn random_polygon(
    rng: &mut StdRng,
    centre: Point,
    radius: std::ops::Range<f64>,
    vertices: std::ops::Range<usize>,
    scale: f64,
) -> Polygon {
    let n = rng.gen_range(vertices);
    let r = rng.gen_range(radius) * scale;
    let pts: Vec<Point> = (0..n)
        .map(|i| {
            let theta = std::f64::consts::TAU * i as f64 / n as f64;
            let rr = r * rng.gen_range(0.7..1.3);
            Point::new(centre.x + rr * theta.cos(), centre.y + rr * theta.sin())
        })
        .collect();
    Polygon::new(Ring::new(pts).normalised_ccw(), Vec::new())
}

fn name_tag(id: u64) -> (String, String) {
    ("name".into(), format!("object {id}"))
}

fn road_kind(rng: &mut StdRng) -> String {
    const KINDS: [&str; 4] = ["residential", "primary", "footway", "service"];
    KINDS[rng.gen_range(0..KINDS.len())].to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = OsmGenerator::new(42).generate(50);
        let b = OsmGenerator::new(42).generate(50);
        assert_eq!(a.objects, b.objects);
        let c = OsmGenerator::new(43).generate(50);
        assert_ne!(a.objects, c.objects);
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        let ds = OsmGenerator::new(1).generate(100);
        for (i, o) in ds.objects.iter().enumerate() {
            assert_eq!(o.id, i as u64 + 1);
        }
    }

    #[test]
    fn mix_of_geometry_types() {
        let ds = OsmGenerator::new(2).generate(2000);
        let polys = ds
            .objects
            .iter()
            .filter(|o| matches!(o.geometry, Geometry::Polygon(_)))
            .count();
        let lines = ds
            .objects
            .iter()
            .filter(|o| matches!(o.geometry, Geometry::LineString(_)))
            .count();
        let multis = ds
            .objects
            .iter()
            .filter(|o| matches!(o.geometry, Geometry::MultiPolygon(_)))
            .count();
        let colls = ds
            .objects
            .iter()
            .filter(|o| matches!(o.geometry, Geometry::Collection(_)))
            .count();
        assert!(polys > 1000, "buildings dominate: {polys}");
        assert!(lines > 200, "roads present: {lines}");
        assert!(multis > 20, "multipolygons present: {multis}");
        assert!(colls > 5, "collections present: {colls}");
    }

    #[test]
    fn polygons_are_valid_ccw_rings() {
        let ds = OsmGenerator::new(3).generate(500);
        for o in &ds.objects {
            if let Geometry::Polygon(p) = &o.geometry {
                assert!(p.exterior.len() >= 4 || p.exterior.len() >= 3);
                assert!(p.exterior.is_ccw(), "object {} not ccw", o.id);
                assert!(p.area() > 0.0);
            }
        }
    }

    #[test]
    fn hotspot_concentrates_objects() {
        let ds = OsmGenerator::new(9).with_hotspot(0.7, 0.05).generate(600);
        // Bucket object centres into 0.2° cells; even when the hotspot
        // straddles bucket boundaries (≤ 4-way split), its densest
        // bucket far exceeds any ordinary cluster's densest bucket.
        let mut buckets = std::collections::HashMap::new();
        for o in &ds.objects {
            let c = o.geometry.mbr().center();
            *buckets
                .entry(((c.x * 5.0).floor() as i64, (c.y * 5.0).floor() as i64))
                .or_insert(0usize) += 1;
        }
        let max = *buckets.values().max().unwrap();
        assert!(
            max >= 600 * 7 / 10 / 5,
            "hotspot bucket dominates: max bucket {max}"
        );
    }

    #[test]
    fn corridor_is_thin_and_tall() {
        let mut g = OsmGenerator::new(11).with_corridor(1.0, 0.003, 0.8);
        g.road_fraction = 0.0;
        g.multipolygon_fraction = 0.0;
        g.collection_fraction = 0.0;
        let ds = g.generate(300);
        let mbr = ds.mbr();
        assert!(mbr.width() < 0.1, "corridor stays thin: {mbr:?}");
        assert!(mbr.height() > 0.5, "corridor stretches in y: {mbr:?}");
    }

    #[test]
    fn disabled_hotspot_changes_nothing() {
        let plain = OsmGenerator::new(42).generate(50);
        let zeroed = OsmGenerator::new(42).with_hotspot(0.0, 0.3).generate(50);
        assert_eq!(plain.objects, zeroed.objects);
    }

    #[test]
    fn world_extent_respected() {
        let g = OsmGenerator::new(4);
        let ds = g.generate(300);
        let mbr = ds.mbr();
        // Clusters plus max jitter (0.5) plus geometry radius.
        assert!(mbr.min_x >= g.lon_range.0 - 1.0);
        assert!(mbr.max_x <= g.lon_range.1 + 1.0);
        assert!(mbr.min_y >= g.lat_range.0 - 1.0);
        assert!(mbr.max_y <= g.lat_range.1 + 1.0);
    }
}
