//! The `Synth(n, σ)` workload (§5, Table 2).
//!
//! "We also generate a synthetic dataset (Synth) that includes
//! polygons and multi-polygons with the number of edges distributed
//! according to a log-normal distribution. Two parameters control the
//! number of geometries and the σ value of the distribution." High σ
//! concentrates most of the data volume into a handful of enormous
//! polygons — the skew that defeats marker-based splitting in the
//! Fig. 14b experiment.

use crate::osm::{OsmDataset, OsmObject};
use atgis_geometry::{Geometry, MultiPolygon, Point, Polygon, Ring};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the synthetic dataset.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of geometries (the paper's `n`).
    pub objects: usize,
    /// σ of the log-normal edge-count distribution.
    pub sigma: f64,
    /// μ of the log-normal (the paper scales datasets to 10 GB; we
    /// expose μ directly so tests can bound sizes).
    pub mu: f64,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of multipolygons.
    pub multipolygon_fraction: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            objects: 1000,
            sigma: 1.0,
            mu: 3.0, // median ~20 edges
            seed: 9,
            multipolygon_fraction: 0.1,
        }
    }
}

impl SynthConfig {
    /// Generates the dataset.
    pub fn generate(&self) -> OsmDataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut objects = Vec::with_capacity(self.objects);
        for i in 0..self.objects {
            let id = i as u64 + 1;
            let centre = Point::new(rng.gen_range(-180.0..180.0), rng.gen_range(-85.0..85.0));
            let edges = self.lognormal_edges(&mut rng);
            let geometry = if rng.gen::<f64>() < self.multipolygon_fraction {
                let k = rng.gen_range(2..4usize);
                let per = (edges / k).max(3);
                let polys = (0..k)
                    .map(|j| {
                        circle_polygon(
                            &mut rng,
                            Point::new(centre.x + j as f64 * 0.1, centre.y),
                            per,
                        )
                    })
                    .collect();
                Geometry::MultiPolygon(MultiPolygon::new(polys))
            } else {
                Geometry::Polygon(circle_polygon(&mut rng, centre, edges))
            };
            objects.push(OsmObject {
                id,
                geometry,
                tags: vec![("synthetic".into(), "yes".into())],
            });
        }
        OsmDataset { objects }
    }

    /// Draws an edge count from LogNormal(μ, σ), clamped to ≥ 3 and a
    /// sanity cap so σ sweeps stay laptop-sized.
    fn lognormal_edges(&self, rng: &mut StdRng) -> usize {
        // Box-Muller for a standard normal.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let edges = (self.mu + self.sigma * z).exp();
        (edges as usize).clamp(3, 2_000_000)
    }
}

fn circle_polygon(rng: &mut StdRng, centre: Point, edges: usize) -> Polygon {
    let edges = edges.max(3);
    let r = rng.gen_range(0.001..0.05);
    let pts: Vec<Point> = (0..edges)
        .map(|i| {
            let theta = std::f64::consts::TAU * i as f64 / edges as f64;
            Point::new(centre.x + r * theta.cos(), centre.y + r * theta.sin())
        })
        .collect();
    Polygon::new(Ring::new(pts), Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_count_matches_config() {
        let ds = SynthConfig {
            objects: 123,
            ..Default::default()
        }
        .generate();
        assert_eq!(ds.objects.len(), 123);
    }

    #[test]
    fn higher_sigma_increases_skew() {
        let low = SynthConfig {
            objects: 400,
            sigma: 0.2,
            ..Default::default()
        }
        .generate();
        let high = SynthConfig {
            objects: 400,
            sigma: 2.5,
            ..Default::default()
        }
        .generate();
        let max_pts = |ds: &OsmDataset| {
            ds.objects
                .iter()
                .map(|o| o.geometry.num_points())
                .max()
                .unwrap()
        };
        let mean_pts = |ds: &OsmDataset| ds.total_points() as f64 / ds.objects.len() as f64;
        let skew_low = max_pts(&low) as f64 / mean_pts(&low);
        let skew_high = max_pts(&high) as f64 / mean_pts(&high);
        assert!(
            skew_high > skew_low * 3.0,
            "σ=2.5 skew {skew_high:.1} vs σ=0.2 skew {skew_low:.1}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SynthConfig::default().generate();
        let b = SynthConfig::default().generate();
        assert_eq!(a.objects, b.objects);
    }

    #[test]
    fn every_polygon_has_at_least_three_edges() {
        let ds = SynthConfig {
            objects: 200,
            sigma: 3.0,
            mu: 0.5,
            ..Default::default()
        }
        .generate();
        for o in &ds.objects {
            for p in o.geometry.polygons() {
                assert!(p.exterior.len() >= 3);
            }
        }
    }
}
