//! Serialisers producing the three raw-file flavours of Table 2 from a
//! generated dataset. Output is byte-compatible with what
//! `atgis-formats` parses, which the round-trip tests below verify
//! structurally.

use crate::osm::OsmDataset;
use atgis_geometry::{Geometry, Point, Polygon};
use std::fmt::Write as _;

/// Serialises the dataset as a GeoJSON FeatureCollection (OSM-G).
pub fn write_geojson(dataset: &OsmDataset) -> Vec<u8> {
    let mut out = String::with_capacity(dataset.objects.len() * 256);
    out.push_str(r#"{"type":"FeatureCollection","features":["#);
    for (i, o) in dataset.objects.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(r#"{"type":"Feature","geometry":"#);
        write_geojson_geometry(&mut out, &o.geometry);
        let _ = write!(out, r#","id":{}"#, o.id);
        out.push_str(r#","properties":{"#);
        for (j, (k, v)) in o.tags.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, r#""{}":"{}""#, escape_json(k), escape_json(v));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out.into_bytes()
}

fn write_geojson_geometry(out: &mut String, g: &Geometry) {
    match g {
        Geometry::Point(p) => {
            out.push_str(r#"{"type":"Point","coordinates":"#);
            write_pos(out, p);
            out.push('}');
        }
        Geometry::LineString(ls) => {
            out.push_str(r#"{"type":"LineString","coordinates":"#);
            write_pos_list(out, &ls.points, false);
            out.push('}');
        }
        Geometry::Polygon(p) => {
            out.push_str(r#"{"type":"Polygon","coordinates":"#);
            write_polygon_coords(out, p);
            out.push('}');
        }
        Geometry::MultiPolygon(mp) => {
            out.push_str(r#"{"type":"MultiPolygon","coordinates":["#);
            for (i, p) in mp.polygons.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_polygon_coords(out, p);
            }
            out.push_str("]}");
        }
        Geometry::Collection(gs) => {
            out.push_str(r#"{"type":"GeometryCollection","geometries":["#);
            for (i, g) in gs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_geojson_geometry(out, g);
            }
            out.push_str("]}");
        }
    }
}

fn write_polygon_coords(out: &mut String, p: &Polygon) {
    out.push('[');
    write_pos_list(out, &p.exterior.points, true);
    for h in &p.holes {
        out.push(',');
        write_pos_list(out, &h.points, true);
    }
    out.push(']');
}

/// Writes `[[x,y],…]`; closed rings repeat the first position per the
/// GeoJSON spec.
fn write_pos_list(out: &mut String, pts: &[Point], close: bool) {
    out.push('[');
    for (i, p) in pts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_pos(out, p);
    }
    if close {
        if let Some(first) = pts.first() {
            if pts.len() > 1 {
                out.push(',');
                write_pos(out, first);
            }
        }
    }
    out.push(']');
}

fn write_pos(out: &mut String, p: &Point) {
    let _ = write!(out, "[{},{}]", fmt_coord(p.x), fmt_coord(p.y));
}

/// Formats a coordinate with enough precision to round-trip f64 while
/// keeping generated files compact.
fn fmt_coord(v: f64) -> String {
    let s = format!("{v:.7}");
    s.trim_end_matches('0').trim_end_matches('.').to_owned()
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialises the dataset as tab-separated WKT rows (OSM-W).
pub fn write_wkt(dataset: &OsmDataset) -> Vec<u8> {
    let mut out = String::with_capacity(dataset.objects.len() * 192);
    for o in &dataset.objects {
        let _ = write!(out, "{}\t", o.id);
        write_wkt_geometry(&mut out, &o.geometry);
        out.push('\t');
        for (j, (k, v)) in o.tags.iter().enumerate() {
            if j > 0 {
                out.push(';');
            }
            let _ = write!(out, "{k}={v}");
        }
        out.push('\n');
    }
    out.into_bytes()
}

fn write_wkt_geometry(out: &mut String, g: &Geometry) {
    match g {
        Geometry::Point(p) => {
            let _ = write!(out, "POINT({} {})", fmt_coord(p.x), fmt_coord(p.y));
        }
        Geometry::LineString(ls) => {
            out.push_str("LINESTRING");
            write_wkt_points(out, &ls.points, false);
        }
        Geometry::Polygon(p) => {
            out.push_str("POLYGON");
            write_wkt_polygon(out, p);
        }
        Geometry::MultiPolygon(mp) => {
            out.push_str("MULTIPOLYGON(");
            for (i, p) in mp.polygons.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_wkt_polygon(out, p);
            }
            out.push(')');
        }
        Geometry::Collection(gs) => {
            out.push_str("GEOMETRYCOLLECTION(");
            for (i, g) in gs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_wkt_geometry(out, g);
            }
            out.push(')');
        }
    }
}

fn write_wkt_polygon(out: &mut String, p: &Polygon) {
    out.push('(');
    write_wkt_points(out, &p.exterior.points, true);
    for h in &p.holes {
        out.push(',');
        write_wkt_points(out, &h.points, true);
    }
    out.push(')');
}

fn write_wkt_points(out: &mut String, pts: &[Point], close: bool) {
    out.push('(');
    for (i, p) in pts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{} {}", fmt_coord(p.x), fmt_coord(p.y));
    }
    if close {
        if let Some(first) = pts.first() {
            if pts.len() > 1 {
                let _ = write!(out, ",{} {}", fmt_coord(first.x), fmt_coord(first.y));
            }
        }
    }
    out.push(')');
}

/// Serialises the dataset as OSM XML (OSM-X): nodes first, then ways,
/// then multipolygon relations — reproducing the section separation
/// that makes OSM-X "the most complex format to support" (§4.4).
/// A flattened object awaiting XML serialisation: id, geometry, tags.
type WorkItem<'a> = (u64, &'a Geometry, &'a [(String, String)]);

/// Geometry collections and linestring members are flattened to ways;
/// polygons with holes become relations.
pub fn write_osm_xml(dataset: &OsmDataset) -> Vec<u8> {
    let mut nodes = String::new();
    let mut ways = String::new();
    let mut relations = String::new();
    let mut next_node_id: u64 = 1_000_000_000; // Clear of object ids.
    let mut next_way_id: u64 = 2_000_000_000;

    // Flatten geometry collections upfront: XML has no collection
    // concept, so each member becomes an object under a derived id.
    let mut worklist: Vec<WorkItem<'_>> = Vec::new();
    fn flatten<'a>(
        id: u64,
        g: &'a Geometry,
        tags: &'a [(String, String)],
        out: &mut Vec<WorkItem<'a>>,
    ) {
        match g {
            Geometry::Collection(gs) => {
                for (k, member) in gs.iter().enumerate() {
                    flatten(id * 100 + k as u64, member, tags, out);
                }
            }
            other => out.push((id, other, tags)),
        }
    }
    for o in &dataset.objects {
        flatten(o.id, &o.geometry, &o.tags, &mut worklist);
    }

    let emit_nodes = |pts: &[Point], nodes: &mut String, next: &mut u64| -> Vec<u64> {
        pts.iter()
            .map(|p| {
                let id = *next;
                *next += 1;
                let _ = writeln!(
                    nodes,
                    " <node id=\"{id}\" lat=\"{}\" lon=\"{}\"/>",
                    fmt_coord(p.y),
                    fmt_coord(p.x)
                );
                id
            })
            .collect()
    };

    for (id, geometry, tags) in worklist {
        match geometry {
            Geometry::LineString(ls) => {
                let ids = emit_nodes(&ls.points, &mut nodes, &mut next_node_id);
                write_way(&mut ways, id, &ids, false, tags);
            }
            Geometry::Polygon(p) if p.holes.is_empty() => {
                let ids = emit_nodes(&p.exterior.points, &mut nodes, &mut next_node_id);
                write_way(&mut ways, id, &ids, true, tags);
            }
            Geometry::Polygon(p) => {
                // Polygon with holes -> multipolygon relation.
                let mut members = Vec::new();
                let ext_ids = emit_nodes(&p.exterior.points, &mut nodes, &mut next_node_id);
                let wid = next_way_id;
                next_way_id += 1;
                write_way(&mut ways, wid, &ext_ids, true, &[]);
                members.push((wid, "outer"));
                for h in &p.holes {
                    let ids = emit_nodes(&h.points, &mut nodes, &mut next_node_id);
                    let wid = next_way_id;
                    next_way_id += 1;
                    write_way(&mut ways, wid, &ids, true, &[]);
                    members.push((wid, "inner"));
                }
                write_relation(&mut relations, id, &members, tags);
            }
            Geometry::MultiPolygon(mp) => {
                let mut members = Vec::new();
                for p in &mp.polygons {
                    let ids = emit_nodes(&p.exterior.points, &mut nodes, &mut next_node_id);
                    let wid = next_way_id;
                    next_way_id += 1;
                    write_way(&mut ways, wid, &ids, true, &[]);
                    members.push((wid, "outer"));
                    for h in &p.holes {
                        let ids = emit_nodes(&h.points, &mut nodes, &mut next_node_id);
                        let wid = next_way_id;
                        next_way_id += 1;
                        write_way(&mut ways, wid, &ids, true, &[]);
                        members.push((wid, "inner"));
                    }
                }
                write_relation(&mut relations, id, &members, tags);
            }
            Geometry::Point(p) => {
                // Tagged standalone node.
                let _ = writeln!(
                    nodes,
                    " <node id=\"{}\" lat=\"{}\" lon=\"{}\"/>",
                    id,
                    fmt_coord(p.y),
                    fmt_coord(p.x)
                );
            }
            Geometry::Collection(_) => unreachable!("collections were flattened"),
        }
    }

    let mut out = String::with_capacity(nodes.len() + ways.len() + relations.len() + 128);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<osm version=\"0.6\" generator=\"atgis-datagen\">\n");
    out.push_str(&nodes);
    out.push_str(&ways);
    out.push_str(&relations);
    out.push_str("</osm>\n");
    out.into_bytes()
}

fn write_way(out: &mut String, id: u64, node_ids: &[u64], close: bool, tags: &[(String, String)]) {
    let _ = write!(out, " <way id=\"{id}\">");
    for nid in node_ids {
        let _ = write!(out, "<nd ref=\"{nid}\"/>");
    }
    if close {
        if let Some(first) = node_ids.first() {
            if node_ids.len() > 1 {
                let _ = write!(out, "<nd ref=\"{first}\"/>");
            }
        }
    }
    for (k, v) in tags {
        let _ = write!(
            out,
            "<tag k=\"{}\" v=\"{}\"/>",
            escape_xml(k),
            escape_xml(v)
        );
    }
    out.push_str("</way>\n");
}

fn write_relation(out: &mut String, id: u64, members: &[(u64, &str)], tags: &[(String, String)]) {
    let _ = write!(out, " <relation id=\"{id}\">");
    for (way_id, role) in members {
        let _ = write!(
            out,
            "<member type=\"way\" ref=\"{way_id}\" role=\"{role}\"/>"
        );
    }
    let _ = write!(out, "<tag k=\"type\" v=\"multipolygon\"/>");
    for (k, v) in tags {
        let _ = write!(
            out,
            "<tag k=\"{}\" v=\"{}\"/>",
            escape_xml(k),
            escape_xml(v)
        );
    }
    out.push_str("</relation>\n");
}

fn escape_xml(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('"', "&quot;")
        .replace('<', "&lt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osm::OsmGenerator;

    #[test]
    fn geojson_output_is_structurally_valid() {
        let ds = OsmGenerator::new(11).generate(50);
        let bytes = write_geojson(&ds);
        let text = std::str::from_utf8(&bytes).unwrap();
        assert!(text.starts_with(r#"{"type":"FeatureCollection"#));
        assert!(text.ends_with("]}"));
        assert_eq!(text.matches(r#"{"type":"Feature","geometry""#).count(), 50);
        // Balanced braces/brackets.
        let depth = text.bytes().fold(0i64, |d, b| match b {
            b'{' | b'[' => d + 1,
            b'}' | b']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn wkt_output_has_one_row_per_object() {
        let ds = OsmGenerator::new(12).generate(40);
        let bytes = write_wkt(&ds);
        let text = std::str::from_utf8(&bytes).unwrap();
        assert_eq!(text.lines().count(), 40);
        for line in text.lines() {
            assert_eq!(line.matches('\t').count(), 2, "three columns: {line}");
        }
    }

    #[test]
    fn xml_output_has_expected_sections() {
        let ds = OsmGenerator::new(13).generate(60);
        let bytes = write_osm_xml(&ds);
        let text = std::str::from_utf8(&bytes).unwrap();
        assert!(text.starts_with("<?xml"));
        assert!(text.trim_end().ends_with("</osm>"));
        assert!(text.contains("<node"));
        assert!(text.contains("<way"));
        // Nodes must all precede ways (the two-pass structure).
        let last_node = text.rfind("<node").unwrap();
        let first_way = text.find("<way").unwrap();
        assert!(last_node < first_way, "nodes section precedes ways");
    }

    #[test]
    fn coordinates_round_trip_within_precision() {
        assert_eq!(fmt_coord(1.5), "1.5");
        assert_eq!(fmt_coord(-0.1278), "-0.1278");
        assert_eq!(fmt_coord(51.0), "51");
        let v: f64 = 12.3456789;
        let back: f64 = fmt_coord(v).parse().unwrap();
        assert!((v - back).abs() < 1e-7);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_xml(r#"a"b<c&d"#), "a&quot;b&lt;c&amp;d");
    }
}
