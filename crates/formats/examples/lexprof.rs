//! Ad-hoc timing probe for the speculative lexer (not shipped in
//! benches; run manually with `cargo run --release -p atgis-formats
//! --example lexprof`).

use atgis_formats::geojson::lexer;
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let doc: String =
        r#"{"type":"Feature","geometry":{"type":"Point","coordinates":[1.0,2.0]},"id":1,"properties":{"k":"v"}},"#
            .repeat(200);
    let bytes = doc.as_bytes();
    let mb = bytes.len() as f64 / 1e6;
    let iters = 2000;

    // Warm.
    for _ in 0..50 {
        black_box(lexer::lex_block(black_box(bytes), 0));
    }

    let t = Instant::now();
    for _ in 0..iters {
        black_box(lexer::lex_block(black_box(bytes), 0));
    }
    let dt = t.elapsed().as_secs_f64() / iters as f64;
    println!("lex_block       : {:8.1} MB/s", mb / dt);

    // Count-only emit through the same run_block machinery: isolates
    // Token construction + Vec pushes from the scan itself.
    use atgis_transducer::DfaFragment;
    let t = Instant::now();
    for _ in 0..iters {
        black_box(DfaFragment::run_block(
            lexer::lexer(),
            &lexer::ALL_STATES,
            black_box(bytes),
            0,
            |_tape: &mut Vec<u64>, _a, _pos, _b| {},
        ));
    }
    let dt = t.elapsed().as_secs_f64() / iters as f64;
    println!("count-only block: {:8.1} MB/s", mb / dt);

    let t = Instant::now();
    for _ in 0..iters {
        black_box(lexer::lex_known(black_box(bytes), 0, lexer::STATE_OUT));
    }
    let dt = t.elapsed().as_secs_f64() / iters as f64;
    println!("lex_known       : {:8.1} MB/s", mb / dt);

    // Two independent full-length known-state runs ≈ the no-lockstep
    // alternative for the never-converging pair.
    let t = Instant::now();
    for _ in 0..iters {
        black_box(lexer::lex_known(black_box(bytes), 0, lexer::STATE_OUT));
        black_box(lexer::lex_known(black_box(bytes), 0, lexer::STATE_STR));
    }
    let dt = t.elapsed().as_secs_f64() / iters as f64;
    println!("2x lex_known    : {:8.1} MB/s", mb / dt);
}
