//! The parsed-object model shared by all formats.

use atgis_geometry::{Geometry, Mbr};

/// A spatial object extracted from raw input: a geometry, its
/// identifying metadata and its byte offset in the source file.
///
/// §4.2: "Each object between pipeline stages is tagged with the data
/// offset from which it was created. Offsets are used … to enable
/// unique identification of points and geometries; and to allow
/// re-parsing of objects in the join pipeline."
#[derive(Debug, Clone, PartialEq)]
pub struct RawFeature {
    /// Object id from the source metadata (OSM object id); 0 when the
    /// source carries none.
    pub id: u64,
    /// The parsed geometry.
    pub geometry: Geometry,
    /// Byte offset of the object's first byte in the raw input.
    pub offset: u64,
    /// Byte length of the object's serialised form (offset + len spans
    /// the object, enabling re-parsing).
    pub len: u32,
}

impl RawFeature {
    /// Bounding box of the feature's geometry.
    pub fn mbr(&self) -> Mbr {
        self.geometry.mbr()
    }
}

/// A push-down metadata predicate compiled into the parsing stage
/// (§4.4: "any filtering on the accompanying metadata is also compiled
/// into the parsing automaton").
#[derive(Debug, Clone, PartialEq, Default)]
pub enum MetadataFilter {
    /// Keep every feature.
    #[default]
    All,
    /// Keep features whose properties/tags contain `key` = `value`.
    KeyEquals {
        /// Metadata key (GeoJSON property name / OSM tag key).
        key: String,
        /// Required value.
        value: String,
    },
    /// Keep features whose id is below the threshold (used to carve
    /// the join query's two disjoint subsets, Table 3).
    IdBelow(u64),
    /// Keep features whose id is at or above the threshold.
    IdAtLeast(u64),
    /// Keep features whose properties satisfy an XPath-style path
    /// predicate (§4.4's JSON query language); evaluated against the
    /// raw properties object for GeoJSON and against flat tags for
    /// WKT/OSM-XML (where only single-segment paths can match).
    Path(crate::pathquery::PathQuery),
}

impl MetadataFilter {
    /// Applies the id-based component of the filter.
    #[inline]
    pub fn accepts_id(&self, id: u64) -> bool {
        match self {
            MetadataFilter::IdBelow(t) => id < *t,
            MetadataFilter::IdAtLeast(t) => id >= *t,
            _ => true,
        }
    }

    /// Applies the key/value component given the feature's metadata
    /// pairs.
    pub fn accepts_tags<'a>(&self, mut tags: impl Iterator<Item = (&'a str, &'a str)>) -> bool {
        match self {
            MetadataFilter::KeyEquals { key, value } => tags.any(|(k, v)| k == key && v == value),
            MetadataFilter::Path(q) => {
                // Flat tag sources can only satisfy single-segment
                // paths with existence / string-equality semantics.
                use crate::pathquery::{PathOp, PathValue};
                if q.path.len() != 1 {
                    return false;
                }
                let key = q.path[0].as_str();
                match (&q.op, &q.value) {
                    (PathOp::Exists, _) => tags.any(|(k, _)| k == key),
                    (PathOp::Eq, PathValue::Str(v)) => tags.any(|(k, val)| k == key && val == v),
                    (PathOp::Ne, PathValue::Str(v)) => tags.any(|(k, val)| k == key && val != v),
                    _ => false,
                }
            }
            _ => true,
        }
    }

    /// Applies the metadata predicate to a raw JSON properties object
    /// (GeoJSON path; supports the full path language).
    pub fn accepts_properties_json(&self, raw: &[u8]) -> bool {
        match self {
            MetadataFilter::Path(q) => q.matches_json(raw),
            _ => true,
        }
    }

    /// True when the filter needs metadata beyond the id.
    pub fn needs_tags(&self) -> bool {
        matches!(
            self,
            MetadataFilter::KeyEquals { .. } | MetadataFilter::Path(_)
        )
    }

    /// True when the filter must see the raw properties JSON (rather
    /// than flattened tag pairs).
    pub fn needs_raw_properties(&self) -> bool {
        matches!(self, MetadataFilter::Path(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgis_geometry::Point;

    #[test]
    fn id_filters() {
        assert!(MetadataFilter::IdBelow(10).accepts_id(9));
        assert!(!MetadataFilter::IdBelow(10).accepts_id(10));
        assert!(MetadataFilter::IdAtLeast(10).accepts_id(10));
        assert!(!MetadataFilter::IdAtLeast(10).accepts_id(9));
        assert!(MetadataFilter::All.accepts_id(u64::MAX));
    }

    #[test]
    fn tag_filters() {
        let f = MetadataFilter::KeyEquals {
            key: "building".into(),
            value: "yes".into(),
        };
        let tags = [("name", "x"), ("building", "yes")];
        assert!(f.accepts_tags(tags.iter().copied()));
        let no = [("building", "no")];
        assert!(!f.accepts_tags(no.iter().copied()));
        assert!(MetadataFilter::All.accepts_tags(std::iter::empty()));
        assert!(f.needs_tags());
        assert!(!MetadataFilter::All.needs_tags());
    }

    #[test]
    fn feature_mbr_delegates_to_geometry() {
        let f = RawFeature {
            id: 1,
            geometry: Geometry::Point(Point::new(3.0, 4.0)),
            offset: 0,
            len: 10,
        };
        assert_eq!(f.mbr(), Mbr::new(3.0, 4.0, 3.0, 4.0));
    }
}
