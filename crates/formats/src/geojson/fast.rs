//! The optimised block-local GeoJSON parser used in PAT mode.
//!
//! This plays the role RapidJSON plays in the paper's prototype
//! (§4.4: "the parsing stage consists of a wrapper around an
//! off-the-shelf parser, which inputs well-formed data blocks"): a
//! non-speculative recursive-descent parser that assumes its block
//! starts at a `{"type":"Feature"` marker, i.e. in a known parser
//! state (§3.5).

use crate::feature::{MetadataFilter, RawFeature};
use crate::split::find_marker;
use crate::ParseError;
use atgis_geometry::{Geometry, LineString, MultiPolygon, Point, Polygon, Ring};

use super::FEATURE_MARKER;

/// Parses every feature whose object starts in `[start, end)` of
/// `input`, appending accepted features to `out`. Objects may extend
/// past `end` (they never do when blocks are marker-aligned, except
/// for the final block's closing `]}`).
pub fn parse_block(
    input: &[u8],
    start: usize,
    end: usize,
    filter: &MetadataFilter,
    out: &mut Vec<RawFeature>,
) -> Result<(), ParseError> {
    let mut pos = start;
    while let Some(at) = find_marker(input, FEATURE_MARKER, pos) {
        if at >= end {
            break;
        }
        let mut cur = Cursor { input, pos: at };
        if let Some(feature) = cur.parse_feature(filter)? {
            out.push(feature);
        }
        pos = cur.pos.max(at + 1);
    }
    Ok(())
}

/// Byte-level cursor with the usual recursive-descent helpers.
struct Cursor<'a> {
    input: &'a [u8],
    pos: usize,
}

/// Raw nested-array coordinate value, interpreted per geometry type
/// once the whole `coordinates` member is read (this makes the parser
/// independent of member order). Shared with the token-level FAT
/// parser.
pub(crate) enum Coords {
    /// A numeric leaf.
    Num(f64),
    /// A nested array.
    List(Vec<Coords>),
}

impl<'a> Cursor<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::syntax(self.pos as u64, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {:?}, found {:?}",
                b as char,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Parses a string literal, returning its raw (un-unescaped)
    /// contents. The scan jumps straight to the next quote or escape
    /// via the SWAR [`crate::split::memchr2`], so plain string bytes
    /// cost 1/8th of a comparison each.
    fn parse_string(&mut self) -> Result<&'a str, ParseError> {
        self.expect(b'"')?;
        let content_start = self.pos;
        loop {
            match crate::split::memchr2(b'"', b'\\', self.input, self.pos) {
                Some(at) if self.input[at] == b'"' => {
                    let s = &self.input[content_start..at];
                    self.pos = at + 1;
                    return std::str::from_utf8(s).map_err(|_| self.err("non-UTF8 string"));
                }
                Some(at) => self.pos = at + 2, // Escape: skip the pair.
                None => {
                    self.pos = self.input.len();
                    return Err(self.err("unterminated string"));
                }
            }
        }
    }

    /// Parses a JSON number (or bare literal like `true`/`null`) and
    /// returns its text.
    fn parse_scalar_text(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        // Lane-at-a-time scalar-run scan: number bytes plus lowercase
        // letters (`true` / `false` / `null`).
        self.pos += atgis_transducer::scan::json_scalar_span(self.input, self.pos);
        if start == self.pos {
            return Err(self.err("expected a scalar value"));
        }
        std::str::from_utf8(&self.input[start..self.pos]).map_err(|_| self.err("non-UTF8 scalar"))
    }

    fn parse_number(&mut self) -> Result<f64, ParseError> {
        let at = self.pos;
        let text = self.parse_scalar_text()?;
        text.parse::<f64>()
            .map_err(|e| ParseError::syntax(at as u64, format!("bad number {text:?}: {e}")))
    }

    /// Skips one arbitrary JSON value.
    fn skip_value(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => {
                self.parse_string()?;
                Ok(())
            }
            Some(b'{') => {
                self.expect(b'{')?;
                if self.eat(b'}') {
                    return Ok(());
                }
                loop {
                    self.parse_string()?;
                    self.expect(b':')?;
                    self.skip_value()?;
                    if !self.eat(b',') {
                        break;
                    }
                }
                self.expect(b'}')
            }
            Some(b'[') => {
                self.expect(b'[')?;
                if self.eat(b']') {
                    return Ok(());
                }
                loop {
                    self.skip_value()?;
                    if !self.eat(b',') {
                        break;
                    }
                }
                self.expect(b']')
            }
            Some(_) => {
                self.parse_scalar_text()?;
                Ok(())
            }
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Parses one feature object starting at the cursor. Returns
    /// `None` when the metadata filter rejects it.
    fn parse_feature(&mut self, filter: &MetadataFilter) -> Result<Option<RawFeature>, ParseError> {
        let offset = self.pos;
        self.expect(b'{')?;
        let mut geometry = None;
        let mut id = 0u64;
        let mut tags_ok = !filter.needs_tags();
        if self.eat(b'}') {
            return Err(self.err("empty feature object"));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            match key {
                "type" => {
                    let t = self.parse_string()?;
                    if t != "Feature" {
                        return Err(self.err(format!("expected Feature, got {t:?}")));
                    }
                }
                "geometry" => geometry = Some(self.parse_geometry()?),
                "id" => {
                    id = self.parse_number()? as u64;
                }
                "properties" => {
                    self.skip_ws();
                    let span_start = self.pos;
                    let pair_match = self.parse_properties(filter)?;
                    tags_ok = if filter.needs_raw_properties() {
                        filter.accepts_properties_json(&self.input[span_start..self.pos])
                    } else {
                        pair_match || tags_ok
                    };
                }
                _ => self.skip_value()?,
            }
            if !self.eat(b',') {
                break;
            }
        }
        self.expect(b'}')?;
        let geometry = geometry.ok_or_else(|| self.err("feature without geometry"))?;
        let len = (self.pos - offset) as u32;
        if !filter.accepts_id(id) || !tags_ok {
            return Ok(None);
        }
        Ok(Some(RawFeature {
            id,
            geometry,
            offset: offset as u64,
            len,
        }))
    }

    /// Parses the properties object, returning whether the filter's
    /// key/value predicate matched (always true for filters that do
    /// not inspect tags).
    fn parse_properties(&mut self, filter: &MetadataFilter) -> Result<bool, ParseError> {
        self.expect(b'{')?;
        let mut matched = !filter.needs_tags();
        if self.eat(b'}') {
            return Ok(matched);
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            self.skip_ws();
            match self.peek() {
                Some(b'"') => {
                    let value = self.parse_string()?;
                    if filter.accepts_tags(std::iter::once((key, value))) && filter.needs_tags() {
                        matched = true;
                    }
                }
                _ => self.skip_value()?,
            }
            if !self.eat(b',') {
                break;
            }
        }
        self.expect(b'}')?;
        Ok(matched)
    }

    fn parse_geometry(&mut self) -> Result<Geometry, ParseError> {
        self.expect(b'{')?;
        let mut kind: Option<&str> = None;
        let mut coords: Option<Coords> = None;
        let mut members: Option<Vec<Geometry>> = None;
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            match key {
                "type" => kind = Some(self.parse_string()?),
                "coordinates" => coords = Some(self.parse_coords()?),
                "geometries" => {
                    let mut gs = Vec::new();
                    self.expect(b'[')?;
                    if !self.eat(b']') {
                        loop {
                            gs.push(self.parse_geometry()?);
                            if !self.eat(b',') {
                                break;
                            }
                        }
                        self.expect(b']')?;
                    }
                    members = Some(gs);
                }
                _ => self.skip_value()?,
            }
            if !self.eat(b',') {
                break;
            }
        }
        self.expect(b'}')?;
        let kind = kind.ok_or_else(|| self.err("geometry without type"))?;
        interpret_geometry(kind, coords, members).map_err(|m| self.err(m))
    }

    fn parse_coords(&mut self) -> Result<Coords, ParseError> {
        self.skip_ws();
        if self.peek() == Some(b'[') {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if !self.eat(b']') {
                loop {
                    items.push(self.parse_coords()?);
                    if !self.eat(b',') {
                        break;
                    }
                }
                self.expect(b']')?;
            }
            Ok(Coords::List(items))
        } else {
            Ok(Coords::Num(self.parse_number()?))
        }
    }
}

/// Interprets a raw coordinates tree according to the geometry type —
/// shared by the fast parser and the token-level FAT parser.
pub(crate) fn interpret_geometry(
    kind: &str,
    coords: Option<Coords>,
    members: Option<Vec<Geometry>>,
) -> Result<Geometry, String> {
    match kind {
        "GeometryCollection" => Ok(Geometry::Collection(
            members.ok_or("GeometryCollection without geometries")?,
        )),
        _ => {
            let coords = coords.ok_or("geometry without coordinates")?;
            match kind {
                "Point" => Ok(Geometry::Point(as_point(&coords)?)),
                "LineString" => Ok(Geometry::LineString(LineString::new(as_points(&coords)?))),
                "Polygon" => Ok(Geometry::Polygon(as_polygon(&coords)?)),
                "MultiPolygon" => {
                    let list = as_list(&coords)?;
                    let polys = list.iter().map(as_polygon).collect::<Result<Vec<_>, _>>()?;
                    Ok(Geometry::MultiPolygon(MultiPolygon::new(polys)))
                }
                other => Err(format!("unsupported geometry type {other:?}")),
            }
        }
    }
}

fn as_list(c: &Coords) -> Result<&[Coords], String> {
    match c {
        Coords::List(l) => Ok(l),
        Coords::Num(_) => Err("expected an array".into()),
    }
}

fn as_point(c: &Coords) -> Result<Point, String> {
    let l = as_list(c)?;
    if l.len() < 2 {
        return Err("point needs two coordinates".into());
    }
    match (&l[0], &l[1]) {
        (Coords::Num(x), Coords::Num(y)) => Ok(Point::new(*x, *y)),
        _ => Err("point coordinates must be numbers".into()),
    }
}

fn as_points(c: &Coords) -> Result<Vec<Point>, String> {
    as_list(c)?.iter().map(as_point).collect()
}

fn as_polygon(c: &Coords) -> Result<Polygon, String> {
    let rings = as_list(c)?;
    if rings.is_empty() {
        return Err("polygon needs at least one ring".into());
    }
    let exterior = Ring::new(as_points(&rings[0])?);
    let holes = rings[1..]
        .iter()
        .map(|r| Ok(Ring::new(as_points(r)?)))
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Polygon::new(exterior, holes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(doc: &str) -> RawFeature {
        let mut out = Vec::new();
        parse_block(doc.as_bytes(), 0, doc.len(), &MetadataFilter::All, &mut out).unwrap();
        assert_eq!(out.len(), 1, "expected one feature in {doc}");
        out.into_iter().next().unwrap()
    }

    #[test]
    fn parses_polygon_with_hole() {
        let f = one(
            r#"{"type":"Feature","geometry":{"type":"Polygon","coordinates":[[[0.0,0.0],[4.0,0.0],[4.0,4.0],[0.0,4.0]],[[1.0,1.0],[2.0,1.0],[2.0,2.0],[1.0,2.0]]]},"id":9,"properties":{}}"#,
        );
        match f.geometry {
            Geometry::Polygon(p) => {
                assert_eq!(p.holes.len(), 1);
                assert!((p.area() - 15.0).abs() < 1e-12);
            }
            g => panic!("got {g:?}"),
        }
    }

    #[test]
    fn member_order_is_irrelevant() {
        let f = one(
            r#"{"type":"Feature","id":3,"geometry":{"coordinates":[1.5,2.5],"type":"Point"},"properties":{"a":1}}"#,
        );
        assert_eq!(f.id, 3);
        assert_eq!(f.geometry, Geometry::Point(Point::new(1.5, 2.5)));
    }

    #[test]
    fn skips_unknown_members_and_nested_metadata() {
        let f = one(
            r#"{"type":"Feature","bbox":[0,0,1,1],"geometry":{"type":"Point","coordinates":[1.0,2.0]},"id":5,"properties":{"nested":{"deep":[1,{"x":"y"}]},"flag":true}}"#,
        );
        assert_eq!(f.id, 5);
    }

    #[test]
    fn marker_inside_string_is_not_a_feature() {
        // The marker bytes appear inside a properties string; the naive
        // scan finds them but the parse fails mid-string... it must not
        // *miscount*. We place the tricky feature alone so the scan
        // directly shows the behaviour.
        let doc = r#"{"type":"Feature","geometry":{"type":"Point","coordinates":[0.0,0.0]},"id":1,"properties":{"note":"x"}}"#;
        let f = one(doc);
        assert_eq!(f.len as usize, doc.len());
    }

    #[test]
    fn escaped_quotes_in_properties() {
        let f = one(
            r#"{"type":"Feature","geometry":{"type":"Point","coordinates":[0.0,1.0]},"id":2,"properties":{"name":"say \"hi\" {[,:]}"}}"#,
        );
        assert_eq!(f.id, 2);
    }

    #[test]
    fn rejects_malformed_feature() {
        let doc = r#"{"type":"Feature","geometry":{"type":"Point","coordinates":}}"#;
        let mut out = Vec::new();
        let err = parse_block(doc.as_bytes(), 0, doc.len(), &MetadataFilter::All, &mut out);
        assert!(err.is_err());
    }

    #[test]
    fn rejects_feature_without_geometry() {
        let doc = r#"{"type":"Feature","id":1,"properties":{}}"#;
        let mut out = Vec::new();
        assert!(parse_block(doc.as_bytes(), 0, doc.len(), &MetadataFilter::All, &mut out).is_err());
    }

    #[test]
    fn negative_and_exponent_coordinates() {
        let f = one(
            r#"{"type":"Feature","geometry":{"type":"Point","coordinates":[-1.5e2,2.5E-1]},"id":1,"properties":{}}"#,
        );
        assert_eq!(f.geometry, Geometry::Point(Point::new(-150.0, 0.25)));
    }
}
