//! Fully-associative GeoJSON parsing over arbitrary block splits.
//!
//! A block is lexed speculatively from all three string states
//! ([`super::lexer`]); each speculative token tape is then structurally
//! scanned into a [`GeoFragment`]:
//!
//! * tokens before the first *feature synchronisation point* (an `{`
//!   followed by `"type":"Feature"`) form the unresolved **head** — they
//!   belong to a feature that started in an earlier block;
//! * complete features between sync points are parsed locally;
//! * tokens of a trailing incomplete feature form the **tail**.
//!
//! Merging two fragments concatenates the left tail with the right
//! head and parses the spanning run — the token-level incarnation of
//! the periodically-flushing merge rule (§3.3), with feature
//! boundaries as flush symbols. The lexer speculation is resolved by
//! relation composition over the three `(start → final)` entries, as
//! in §3.2's pipeline composition.
//!
//! Known limitation (shared with the paper's §3.5 discussion): a
//! metadata object containing a literal `"type":"Feature"` member
//! would be mistaken for a sync point; the merge detects the resulting
//! desynchronisation and reports [`ParseError::Desync`] rather than
//! returning wrong results.

use crate::feature::{MetadataFilter, RawFeature};
use crate::points::parse_float;
use crate::split::Block;
use crate::ParseError;
use atgis_geometry::Geometry;

use super::fast::{interpret_geometry, Coords};
use super::lexer::{lex_block, Token, TokenKind, STATE_OUT};

/// The per-block fragment: one [`GeoFragment`] per speculated lexer
/// start state, plus the lexer state relation.
#[derive(Debug, Clone)]
pub struct BlockFragment {
    /// `(lexer start, lexer final, parse fragment)` triples.
    entries: Vec<(u8, u8, GeoFragment)>,
}

/// The structural-parse fragment for one token tape.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GeoFragment {
    /// Tokens before the first sync point (owned by an earlier block's
    /// feature).
    head: Vec<Token>,
    /// Features completed within this fragment.
    features: Vec<RawFeature>,
    /// Tokens of the trailing incomplete feature (starts at its `{`).
    tail: Vec<Token>,
    /// Whether a sync point was found.
    synced: bool,
    /// Set when a spanning parse failed — only fatal if this fragment
    /// chain is the one selected by the true lexer start state.
    poisoned: Option<u64>,
}

/// Lexes and structurally scans one block.
pub fn process_block(
    input: &[u8],
    block: Block,
    filter: &MetadataFilter,
) -> Result<BlockFragment, ParseError> {
    let lex = lex_block(block.slice(input), block.start as u64);
    let entries = lex
        .into_entries()
        .into_iter()
        .map(|(start, fin, tokens)| (start, fin, GeoFragment::from_tokens(input, &tokens, filter)))
        .collect();
    Ok(BlockFragment { entries })
}

impl BlockFragment {
    /// Drains the locally-completed features of every speculative
    /// entry, returning `(lexer_start_state, features)` pairs. Used by
    /// pipeline composition (§3.2): downstream query transducers keep
    /// one aggregate per start state and absorb features as soon as a
    /// block (or merge) completes them, so feature buffers never
    /// accumulate across the whole input.
    pub fn drain_features(&mut self) -> Vec<(u8, Vec<RawFeature>)> {
        self.entries
            .iter_mut()
            .map(|(s, _, g)| (*s, std::mem::take(&mut g.features)))
            .collect()
    }

    /// The lexer state relation: `(start, final)` per entry. Pipeline
    /// composition uses this to chain downstream aggregates across a
    /// merge before the fragment is consumed.
    pub fn entry_finals(&self) -> Vec<(u8, u8)> {
        self.entries.iter().map(|(s, f, _)| (*s, *f)).collect()
    }

    /// Composes two block fragments: lexer relation composition plus
    /// parse-fragment merging (§3.2).
    pub fn merge(
        self,
        other: BlockFragment,
        input: &[u8],
        filter: &MetadataFilter,
    ) -> Result<BlockFragment, ParseError> {
        let mut entries = Vec::with_capacity(self.entries.len());
        for (start, mid, left) in self.entries {
            let (_, fin, right) = other
                .entries
                .iter()
                .find(|(s, _, _)| *s == mid)
                .ok_or(ParseError::Desync { offset: 0 })?;
            entries.push((start, *fin, left.merge(right.clone(), input, filter)));
        }
        Ok(BlockFragment { entries })
    }

    /// Resolves the speculation against the document's true starting
    /// state (outside any string) and emits the final feature stream.
    pub fn finalize(
        self,
        input: &[u8],
        filter: &MetadataFilter,
    ) -> Result<Vec<RawFeature>, ParseError> {
        let (_, _, frag) = self
            .entries
            .into_iter()
            .find(|(s, _, _)| *s == STATE_OUT)
            .ok_or(ParseError::Desync { offset: 0 })?;
        frag.finalize(input, filter)
    }
}

impl GeoFragment {
    /// Scans a token tape: locate the first sync point, parse complete
    /// features, retain head/tail token runs.
    pub fn from_tokens(input: &[u8], tokens: &[Token], filter: &MetadataFilter) -> GeoFragment {
        match find_sync(input, tokens, 0) {
            None => GeoFragment {
                head: tokens.to_vec(),
                synced: false,
                ..GeoFragment::default()
            },
            Some(sync) => {
                let (features, tail, poisoned) = parse_run(input, &tokens[sync..], filter);
                GeoFragment {
                    head: tokens[..sync].to_vec(),
                    features,
                    tail,
                    synced: true,
                    poisoned,
                }
            }
        }
    }

    /// The ⊗ merge. `self` covers earlier input than `other`.
    pub fn merge(
        mut self,
        mut other: GeoFragment,
        input: &[u8],
        filter: &MetadataFilter,
    ) -> GeoFragment {
        let poisoned = self.poisoned.or(other.poisoned);
        match (self.synced, other.synced) {
            (false, false) => {
                self.head.append(&mut other.head);
                self.poisoned = poisoned;
                self
            }
            (false, true) => {
                // Everything we hold prefixes the right head.
                self.head.append(&mut other.head);
                other.head = self.head;
                other.poisoned = poisoned;
                other
            }
            (true, false) => {
                // The right block continues our trailing feature.
                self.tail.append(&mut other.head);
                self.poisoned = poisoned;
                self
            }
            (true, true) => {
                // Parse the boundary-spanning run: left tail ++ right
                // head must resolve into zero or more complete
                // features.
                let mut spanning = std::mem::take(&mut self.tail);
                spanning.append(&mut other.head);
                let (mid, leftover, poison2) = parse_run(input, &spanning, filter);
                let mut poisoned = poisoned.or(poison2);
                if !leftover.is_empty() {
                    poisoned = poisoned.or(leftover.first().map(|t| t.pos));
                }
                self.features.extend(mid);
                self.features.append(&mut other.features);
                GeoFragment {
                    head: self.head,
                    features: self.features,
                    tail: other.tail,
                    synced: true,
                    poisoned,
                }
            }
        }
    }

    /// Final resolution at the document level: the head must contain
    /// only the collection preamble; a non-empty tail must parse into
    /// complete features (the document's last feature plus epilogue).
    pub fn finalize(
        mut self,
        input: &[u8],
        filter: &MetadataFilter,
    ) -> Result<Vec<RawFeature>, ParseError> {
        if let Some(offset) = self.poisoned {
            return Err(ParseError::Desync { offset });
        }
        let mut out = Vec::new();
        if !self.synced {
            // No feature anywhere (empty collection) — head holds only
            // preamble/epilogue tokens.
            let (features, leftover, poison) = parse_run(input, &self.head, filter);
            if let Some(offset) = poison.or(leftover.first().map(|t| t.pos)) {
                return Err(ParseError::Desync { offset });
            }
            return Ok(features);
        }
        // Head: preamble only — there must be no feature hidden in it.
        let (pre, pre_left, pre_poison) = parse_run(input, &self.head, filter);
        if let Some(offset) = pre_poison.or(pre_left.first().map(|t| t.pos)) {
            return Err(ParseError::Desync { offset });
        }
        out.extend(pre);
        out.append(&mut self.features);
        let (tail_feats, leftover, poison) = parse_run(input, &self.tail, filter);
        if let Some(offset) = poison.or(leftover.first().map(|t| t.pos)) {
            return Err(ParseError::Desync { offset });
        }
        out.extend(tail_feats);
        Ok(out)
    }
}

/// True when `tokens[i..]` begins the `{"type":"Feature"` pattern.
/// Returns `None` when there are too few tokens to decide (treated as
/// "no" by scanning — the undecided tokens flow into head/tail runs).
fn is_feature_start(input: &[u8], tokens: &[Token], i: usize) -> bool {
    if i + 6 > tokens.len() {
        return false; // Needs 6 tokens: { " " : " "
    }
    tokens[i].kind == TokenKind::ObjOpen
        && tokens[i + 1].kind == TokenKind::StrStart
        && tokens[i + 2].kind == TokenKind::StrEnd
        && str_span(input, tokens[i + 1], tokens[i + 2]) == Some("type")
        && tokens[i + 3].kind == TokenKind::Colon
        && tokens[i + 4].kind == TokenKind::StrStart
        && tokens[i + 5].kind == TokenKind::StrEnd
        && str_span(input, tokens[i + 4], tokens[i + 5]) == Some("Feature")
}

fn find_sync(input: &[u8], tokens: &[Token], from: usize) -> Option<usize> {
    (from..tokens.len()).find(|&i| is_feature_start(input, tokens, i))
}

fn str_span(input: &[u8], start: Token, end: Token) -> Option<&str> {
    let s = start.pos as usize + 1;
    let e = end.pos as usize;
    input.get(s..e).and_then(|b| std::str::from_utf8(b).ok())
}

/// Parses features from a token run that starts at a feature boundary.
/// Returns `(features, leftover_tail_tokens, poison_offset)`; leftover
/// tokens begin at an incomplete feature's `{`. Separator tokens
/// between features (`,`, `]`, `}` of the enclosing collection) are
/// skipped.
fn parse_run(
    input: &[u8],
    tokens: &[Token],
    filter: &MetadataFilter,
) -> (Vec<RawFeature>, Vec<Token>, Option<u64>) {
    let mut features = Vec::new();
    let mut poisoned = None;
    let mut i = 0;
    while i < tokens.len() {
        if is_feature_start(input, tokens, i) {
            match parse_feature_tokens(input, tokens, i, filter) {
                Ok((feature, next)) => {
                    if let Some(f) = feature {
                        features.push(f);
                    }
                    i = next;
                }
                Err(TokenParseError::Incomplete) => {
                    return (features, tokens[i..].to_vec(), poisoned);
                }
                Err(TokenParseError::Invalid(offset)) => {
                    poisoned = poisoned.or(Some(offset));
                    i += 1;
                }
            }
        } else if tokens[i].kind == TokenKind::ObjOpen && i + 6 > tokens.len() {
            // Possibly a feature start whose identifying tokens lie in
            // the next block: defer.
            return (features, tokens[i..].to_vec(), poisoned);
        } else {
            i += 1; // Separator / preamble token.
        }
    }
    (features, Vec::new(), poisoned)
}

enum TokenParseError {
    /// Token tape ended mid-feature; resume after merge.
    Incomplete,
    /// Structurally invalid at the given offset.
    Invalid(u64),
}

type TpResult<T> = Result<T, TokenParseError>;

/// Token-stream cursor for the structural feature parser.
struct TokCursor<'a> {
    input: &'a [u8],
    tokens: &'a [Token],
    i: usize,
}

impl<'a> TokCursor<'a> {
    fn peek(&self) -> Option<Token> {
        self.tokens.get(self.i).copied()
    }

    fn next(&mut self) -> TpResult<Token> {
        let t = self.peek().ok_or(TokenParseError::Incomplete)?;
        self.i += 1;
        Ok(t)
    }

    fn expect(&mut self, kind: TokenKind) -> TpResult<Token> {
        let t = self.next()?;
        if t.kind == kind {
            Ok(t)
        } else {
            Err(TokenParseError::Invalid(t.pos))
        }
    }

    /// Parses a string value, returning its contents.
    fn parse_string(&mut self) -> TpResult<&'a str> {
        let s = self.expect(TokenKind::StrStart)?;
        let e = self.expect(TokenKind::StrEnd)?;
        str_span(self.input, s, e).ok_or(TokenParseError::Invalid(s.pos))
    }

    /// The byte span of a scalar literal between the previous token
    /// (exclusive) and the next token (exclusive). Does not consume
    /// the next token.
    fn scalar_span(&self, prev_end: u64) -> TpResult<(usize, usize)> {
        let next = self.peek().ok_or(TokenParseError::Incomplete)?;
        Ok((prev_end as usize + 1, next.pos as usize))
    }

    /// Skips one JSON value at the token level. `after` is the
    /// position of the token that preceded the value (for scalars,
    /// which own no tokens).
    fn skip_value(&mut self) -> TpResult<()> {
        match self.peek() {
            None => Err(TokenParseError::Incomplete),
            Some(t) => match t.kind {
                TokenKind::StrStart => {
                    self.next()?;
                    self.expect(TokenKind::StrEnd)?;
                    Ok(())
                }
                TokenKind::ObjOpen | TokenKind::ArrOpen => {
                    // Balanced skip.
                    let mut depth = 0i32;
                    loop {
                        let t = self.next()?;
                        match t.kind {
                            TokenKind::ObjOpen | TokenKind::ArrOpen => depth += 1,
                            TokenKind::ObjClose | TokenKind::ArrClose => {
                                depth -= 1;
                                if depth == 0 {
                                    return Ok(());
                                }
                            }
                            _ => {}
                        }
                    }
                }
                // Scalar: owns no tokens; nothing to consume.
                _ => Ok(()),
            },
        }
    }
}

/// Parses one feature starting at token index `start` (which satisfies
/// [`is_feature_start`]). Returns the feature (None when filtered out)
/// and the index of the first token after it.
fn parse_feature_tokens(
    input: &[u8],
    tokens: &[Token],
    start: usize,
    filter: &MetadataFilter,
) -> TpResult<(Option<RawFeature>, usize)> {
    let mut c = TokCursor {
        input,
        tokens,
        i: start,
    };
    let open = c.expect(TokenKind::ObjOpen)?;
    let mut geometry: Option<Geometry> = None;
    let mut id = 0u64;
    let mut tags_ok = !filter.needs_tags();
    loop {
        let key = c.parse_string()?;
        let colon = c.expect(TokenKind::Colon)?;
        match key {
            "type" => {
                let t = c.parse_string()?;
                if t != "Feature" {
                    return Err(TokenParseError::Invalid(colon.pos));
                }
            }
            "geometry" => geometry = Some(parse_geometry_tokens(&mut c)?),
            "id" => {
                let (s, e) = c.scalar_span(colon.pos)?;
                id = parse_float(input, s, e).map_err(|_| TokenParseError::Invalid(colon.pos))?
                    as u64;
            }
            "properties" => {
                let open = c.peek().ok_or(TokenParseError::Incomplete)?;
                let pair_match = parse_properties_tokens(&mut c, filter)?;
                tags_ok = if filter.needs_raw_properties() {
                    // The token after the object's close was not
                    // consumed; the previous token is the ObjClose.
                    let close = c.tokens[c.i - 1];
                    let raw = input
                        .get(open.pos as usize..close.pos as usize + 1)
                        .ok_or(TokenParseError::Invalid(open.pos))?;
                    filter.accepts_properties_json(raw)
                } else {
                    pair_match || tags_ok
                };
            }
            _ => c.skip_value()?,
        }
        let sep = c.next()?;
        match sep.kind {
            TokenKind::Comma => continue,
            TokenKind::ObjClose => {
                let geometry = geometry.ok_or(TokenParseError::Invalid(sep.pos))?;
                let len = (sep.pos + 1 - open.pos) as u32;
                let feature = (filter.accepts_id(id) && tags_ok).then_some(RawFeature {
                    id,
                    geometry,
                    offset: open.pos,
                    len,
                });
                return Ok((feature, c.i));
            }
            _ => return Err(TokenParseError::Invalid(sep.pos)),
        }
    }
}

fn parse_properties_tokens(c: &mut TokCursor<'_>, filter: &MetadataFilter) -> TpResult<bool> {
    let open = c.expect(TokenKind::ObjOpen)?;
    let mut matched = !filter.needs_tags();
    // Empty object?
    if matches!(c.peek().map(|t| t.kind), Some(TokenKind::ObjClose)) {
        c.next()?;
        return Ok(matched);
    }
    let _ = open;
    loop {
        let key = c.parse_string()?;
        let _colon = c.expect(TokenKind::Colon)?;
        if matches!(c.peek().map(|t| t.kind), Some(TokenKind::StrStart)) {
            let value = c.parse_string()?;
            if filter.needs_tags() && filter.accepts_tags(std::iter::once((key, value))) {
                matched = true;
            }
        } else {
            c.skip_value()?;
        }
        let sep = c.next()?;
        match sep.kind {
            TokenKind::Comma => continue,
            TokenKind::ObjClose => return Ok(matched),
            _ => return Err(TokenParseError::Invalid(sep.pos)),
        }
    }
}

fn parse_geometry_tokens(c: &mut TokCursor<'_>) -> TpResult<Geometry> {
    let open = c.expect(TokenKind::ObjOpen)?;
    let mut kind: Option<String> = None;
    let mut coords: Option<Coords> = None;
    let mut members: Option<Vec<Geometry>> = None;
    loop {
        let key = c.parse_string()?;
        let _colon = c.expect(TokenKind::Colon)?;
        match key {
            "type" => kind = Some(c.parse_string()?.to_owned()),
            "coordinates" => coords = Some(parse_coords_tokens(c)?),
            "geometries" => {
                let arr = c.expect(TokenKind::ArrOpen)?;
                let _ = arr;
                let mut gs = Vec::new();
                if matches!(c.peek().map(|t| t.kind), Some(TokenKind::ArrClose)) {
                    c.next()?;
                } else {
                    loop {
                        gs.push(parse_geometry_tokens(c)?);
                        let sep = c.next()?;
                        match sep.kind {
                            TokenKind::Comma => continue,
                            TokenKind::ArrClose => break,
                            _ => return Err(TokenParseError::Invalid(sep.pos)),
                        }
                    }
                }
                members = Some(gs);
            }
            _ => c.skip_value()?,
        }
        let sep = c.next()?;
        match sep.kind {
            TokenKind::Comma => continue,
            TokenKind::ObjClose => {
                let kind = kind.ok_or(TokenParseError::Invalid(sep.pos))?;
                return interpret_geometry(&kind, coords, members)
                    .map_err(|_| TokenParseError::Invalid(open.pos));
            }
            _ => return Err(TokenParseError::Invalid(sep.pos)),
        }
    }
}

/// Parses a coordinates value: nested arrays whose numeric leaves are
/// byte spans between structural tokens (the "point offsets" the
/// paper's stateless point parser consumes).
fn parse_coords_tokens(c: &mut TokCursor<'_>) -> TpResult<Coords> {
    let open = c.expect(TokenKind::ArrOpen)?;
    let mut items = Vec::new();
    let mut prev_pos = open.pos;
    loop {
        let next = c.peek().ok_or(TokenParseError::Incomplete)?;
        match next.kind {
            TokenKind::ArrOpen => {
                items.push(parse_coords_tokens(c)?);
                prev_pos = c.tokens.get(c.i - 1).map(|t| t.pos).unwrap_or(prev_pos);
            }
            TokenKind::ArrClose => {
                if let Some(v) = scalar_between(c.input, prev_pos, next.pos)? {
                    items.push(Coords::Num(v));
                }
                c.next()?;
                return Ok(Coords::List(items));
            }
            TokenKind::Comma => {
                if let Some(v) = scalar_between(c.input, prev_pos, next.pos)? {
                    items.push(Coords::Num(v));
                }
                c.next()?;
                prev_pos = next.pos;
            }
            _ => return Err(TokenParseError::Invalid(next.pos)),
        }
    }
}

/// Parses the scalar literal strictly between two token positions;
/// `None` when the span is empty or all whitespace.
fn scalar_between(input: &[u8], prev: u64, next: u64) -> TpResult<Option<f64>> {
    let (s, e) = (prev as usize + 1, next as usize);
    if s >= e {
        return Ok(None);
    }
    let raw = input.get(s..e).ok_or(TokenParseError::Invalid(prev))?;
    if raw.iter().all(|b| b.is_ascii_whitespace()) {
        return Ok(None);
    }
    parse_float(input, s, e)
        .map(Some)
        .map_err(|_| TokenParseError::Invalid(prev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::fixed_blocks;

    const DOC: &str = super::super::tests::SAMPLE;

    fn parse_with_blocks(doc: &str, n: usize) -> Vec<RawFeature> {
        let input = doc.as_bytes();
        let filter = MetadataFilter::All;
        let mut merged: Option<BlockFragment> = None;
        for b in fixed_blocks(input.len(), n) {
            let f = process_block(input, b, &filter).unwrap();
            merged = Some(match merged {
                None => f,
                Some(acc) => acc.merge(f, input, &filter).unwrap(),
            });
        }
        merged.unwrap().finalize(input, &filter).unwrap()
    }

    #[test]
    fn one_block_equals_many_blocks() {
        let base = parse_with_blocks(DOC, 1);
        assert_eq!(base.len(), 5);
        for n in [2, 3, 5, 8, 13, 21, 34, 55] {
            assert_eq!(parse_with_blocks(DOC, n), base, "blocks = {n}");
        }
    }

    #[test]
    fn block_boundary_inside_string_is_handled() {
        // Force many tiny blocks so boundaries land inside the
        // property strings containing structural characters.
        let doc = r#"{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"Point","coordinates":[1.0,2.0]},"id":1,"properties":{"evil":"}],{[\":\" oh no"}}]}"#;
        let whole = parse_with_blocks(doc, 1);
        assert_eq!(whole.len(), 1);
        for n in 2..doc.len().min(40) {
            assert_eq!(parse_with_blocks(doc, n), whole, "blocks = {n}");
        }
    }

    #[test]
    fn block_boundary_inside_number_is_handled() {
        let doc = r#"{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"Point","coordinates":[123.456789,-98.7654321]},"id":42,"properties":{}}]}"#;
        let whole = parse_with_blocks(doc, 1);
        for n in 2..40 {
            let got = parse_with_blocks(doc, n);
            assert_eq!(got, whole, "blocks = {n}");
        }
    }

    #[test]
    fn sync_pattern_detection() {
        let input = br#"{"type":"Feature"}"#;
        let (_, tokens) = super::super::lexer::lex_known(input, 0, STATE_OUT);
        assert!(is_feature_start(input, &tokens, 0));
        let input2 = br#"{"type":"FeatureCollection"}"#;
        let (_, tokens2) = super::super::lexer::lex_known(input2, 0, STATE_OUT);
        assert!(!is_feature_start(input2, &tokens2, 0));
    }

    #[test]
    fn desync_reported_for_marker_in_metadata_object() {
        // A nested properties *object* with "type":"Feature" is the
        // documented false-positive. The parser must fail loudly (or
        // parse correctly), never silently drop data. With whole-input
        // parsing it actually parses fine since the nested object is
        // consumed by skip_value; this asserts we don't crash and the
        // real feature count is right.
        let doc = r#"{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"Point","coordinates":[0.0,0.0]},"id":1,"properties":{"trap":{"type":"Feature","x":1}}}]}"#;
        let got = parse_with_blocks(doc, 1);
        assert_eq!(got.len(), 1);
    }
}
