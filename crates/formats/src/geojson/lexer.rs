//! The speculative GeoJSON lexer (pipeline stage 1 of Fig. 6).
//!
//! A three-state byte DFA (outside string / inside string / escape)
//! emits structural tokens only when *outside* strings, which is the
//! whole difficulty of splitting JSON at arbitrary offsets: a block may
//! begin inside a string literal, so the fully-associative execution
//! speculates from all three states (§3.3) and resolves at merge.

use atgis_transducer::dfa::{ByteDfa, DfaBuilder};
use atgis_transducer::DfaFragment;
use std::sync::OnceLock;

/// Lexer state: outside any string.
pub const STATE_OUT: u8 = 0;
/// Lexer state: inside a string literal.
pub const STATE_STR: u8 = 1;
/// Lexer state: inside a string, after a backslash.
pub const STATE_ESC: u8 = 2;

/// The full speculation set for arbitrary splits.
pub const ALL_STATES: [u8; 3] = [STATE_OUT, STATE_STR, STATE_ESC];

/// Structural token kinds (the lexer's output alphabet Γ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TokenKind {
    /// `{`
    ObjOpen = 1,
    /// `}`
    ObjClose = 2,
    /// `[`
    ArrOpen = 3,
    /// `]`
    ArrClose = 4,
    /// `,`
    Comma = 5,
    /// `:`
    Colon = 6,
    /// Opening `"` of a string literal.
    StrStart = 7,
    /// Closing `"` of a string literal.
    StrEnd = 8,
}

impl TokenKind {
    fn from_action(a: u8) -> TokenKind {
        match a {
            1 => TokenKind::ObjOpen,
            2 => TokenKind::ObjClose,
            3 => TokenKind::ArrOpen,
            4 => TokenKind::ArrClose,
            5 => TokenKind::Comma,
            6 => TokenKind::Colon,
            7 => TokenKind::StrStart,
            8 => TokenKind::StrEnd,
            other => unreachable!("unknown lexer action {other}"),
        }
    }
}

/// One structural token: kind plus absolute byte position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Absolute byte offset of the token character in the input.
    pub pos: u64,
}

fn build_lexer() -> ByteDfa {
    let mut b = DfaBuilder::new(3, STATE_OUT);
    // Outside strings: structural characters emit tokens.
    b.transition(STATE_OUT, b'"', STATE_STR)
        .action(STATE_OUT, b'"', TokenKind::StrStart as u8)
        .action(STATE_OUT, b'{', TokenKind::ObjOpen as u8)
        .action(STATE_OUT, b'}', TokenKind::ObjClose as u8)
        .action(STATE_OUT, b'[', TokenKind::ArrOpen as u8)
        .action(STATE_OUT, b']', TokenKind::ArrClose as u8)
        .action(STATE_OUT, b',', TokenKind::Comma as u8)
        .action(STATE_OUT, b':', TokenKind::Colon as u8);
    // Inside strings: only the closing quote and escapes matter.
    b.transition(STATE_STR, b'"', STATE_OUT)
        .action(STATE_STR, b'"', TokenKind::StrEnd as u8)
        .transition(STATE_STR, b'\\', STATE_ESC);
    // After a backslash: consume one byte, return to in-string.
    b.default_transition(STATE_ESC, STATE_STR);
    b.build()
}

/// The lexer automaton (built once per process).
pub fn lexer() -> &'static ByteDfa {
    static LEXER: OnceLock<ByteDfa> = OnceLock::new();
    LEXER.get_or_init(build_lexer)
}

/// Lexes a block speculatively from all three states, returning the
/// per-start-state token tapes as a DFA fragment.
pub fn lex_block(bytes: &[u8], base: u64) -> DfaFragment<Vec<Token>> {
    DfaFragment::run_block(
        lexer(),
        &ALL_STATES,
        bytes,
        base,
        |tape: &mut Vec<Token>, action, pos, _byte| {
            tape.push(Token {
                kind: TokenKind::from_action(action),
                pos,
            });
        },
    )
}

/// Reference implementation of [`lex_block`]: independent
/// byte-at-a-time runs per start state, no skip classes, no tape
/// sharing — the seed's lexing path, kept for differential tests and
/// the structural-scan ablation benches.
pub fn lex_block_bytewise(bytes: &[u8], base: u64) -> DfaFragment<Vec<Token>> {
    let dfa = lexer();
    let entries = ALL_STATES
        .iter()
        .map(|&s| {
            let mut tape = Vec::new();
            let fin = dfa.run_bytewise(s, bytes, base, |action, pos| {
                tape.push(Token {
                    kind: TokenKind::from_action(action),
                    pos,
                });
            });
            (s, fin, tape)
        })
        .collect();
    DfaFragment::from_entries(entries)
}

/// Lexes from a known state (PAT mode / resolved replay), sequentially.
pub fn lex_known(bytes: &[u8], base: u64, start: u8) -> (u8, Vec<Token>) {
    let mut tokens = Vec::new();
    let fin = lexer().run(start, bytes, base, |action, pos| {
        tokens.push(Token {
            kind: TokenKind::from_action(action),
            pos,
        });
    });
    (fin, tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgis_transducer::Mergeable;
    use proptest::prelude::*;

    fn kinds(tokens: &[Token]) -> Vec<TokenKind> {
        tokens.iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_structural_characters() {
        let (fin, toks) = lex_known(br#"{"a":[1,2]}"#, 0, STATE_OUT);
        assert_eq!(fin, STATE_OUT);
        assert_eq!(
            kinds(&toks),
            vec![
                TokenKind::ObjOpen,
                TokenKind::StrStart,
                TokenKind::StrEnd,
                TokenKind::Colon,
                TokenKind::ArrOpen,
                TokenKind::Comma,
                TokenKind::ArrClose,
                TokenKind::ObjClose,
            ]
        );
    }

    #[test]
    fn string_contents_are_opaque() {
        let (_, toks) = lex_known(br#""{[,:]}"extra"#, 0, STATE_OUT);
        assert_eq!(kinds(&toks), vec![TokenKind::StrStart, TokenKind::StrEnd]);
    }

    #[test]
    fn escaped_quote_does_not_close_string() {
        let (fin, toks) = lex_known(br#""a\"b""#, 0, STATE_OUT);
        assert_eq!(fin, STATE_OUT);
        assert_eq!(kinds(&toks), vec![TokenKind::StrStart, TokenKind::StrEnd]);
        assert_eq!(toks[1].pos, 5, "closing quote is the last byte");
    }

    #[test]
    fn escaped_backslash_then_quote_closes() {
        let (_, toks) = lex_known(br#""a\\"x"#, 0, STATE_OUT);
        assert_eq!(kinds(&toks), vec![TokenKind::StrStart, TokenKind::StrEnd]);
        assert_eq!(toks[1].pos, 4);
    }

    #[test]
    fn positions_are_absolute() {
        let (_, toks) = lex_known(b"[,]", 1000, STATE_OUT);
        assert_eq!(toks[0].pos, 1000);
        assert_eq!(toks[1].pos, 1001);
        assert_eq!(toks[2].pos, 1002);
    }

    #[test]
    fn speculative_fragment_resolves_to_sequential() {
        let input = br#"{"k":"v,[}","n":[1.5,2]}"#;
        let frag = lex_block(input, 0);
        let (fin_seq, toks_seq) = lex_known(input, 0, STATE_OUT);
        let (fin, toks) = frag.resolve(STATE_OUT).unwrap();
        assert_eq!(fin, fin_seq);
        assert_eq!(toks, toks_seq);
    }

    proptest! {
        #[test]
        fn split_invariance(
            input in prop::collection::vec(
                prop::sample::select(br#"{}[],:"\ab1.5"#.to_vec()), 0..200),
            cut in 0usize..200,
        ) {
            let cut = cut.min(input.len());
            let merged = lex_block(&input[..cut], 0)
                .merge(lex_block(&input[cut..], cut as u64));
            let whole = lex_block(&input, 0);
            prop_assert_eq!(merged, whole);
        }

        #[test]
        fn resolved_tokens_match_sequential(
            input in prop::collection::vec(
                prop::sample::select(br#"{}[],:"\ab"#.to_vec()), 0..150),
            nblocks in 1usize..6,
        ) {
            let chunk = input.len().div_ceil(nblocks).max(1);
            let frags: Vec<_> = input
                .chunks(chunk)
                .enumerate()
                .map(|(i, c)| lex_block(c, (i * chunk) as u64))
                .collect();
            let merged = atgis_transducer::merge::merge_tree(frags);
            let (fin_seq, toks_seq) = lex_known(&input, 0, STATE_OUT);
            if !merged.is_identity() {
                let (fin, toks) = merged.resolve(STATE_OUT).unwrap();
                prop_assert_eq!(fin, fin_seq);
                prop_assert_eq!(toks, toks_seq);
            } else {
                prop_assert!(toks_seq.is_empty());
                prop_assert_eq!(fin_seq, STATE_OUT);
            }
        }
    }
}
