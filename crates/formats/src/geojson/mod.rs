//! GeoJSON parsing (the paper's primary format, §2.2).
//!
//! GeoJSON "encompasses many features that make parallel processing
//! challenging, such as a recursive definition and support for
//! arbitrary metadata" — geometries nest through
//! `GeometryCollection`s and free-form `properties` make naive
//! string-based splitting unsound.
//!
//! Two execution modes:
//!
//! * [`parse_fat`] — fully associative: fixed-offset blocks, a
//!   3-state speculative string lexer ([`lexer`]), and a token-level
//!   structural parser ([`fat`]) whose fragments carry unresolved head
//!   and tail token runs that are completed when fragments merge.
//! * [`parse_pat`] — partially associative: blocks are aligned on the
//!   `{"type":"Feature"` marker (§3.5's example) and handed to an
//!   optimised block-local recursive-descent parser ([`fast`], our
//!   RapidJSON stand-in).

pub mod fast;
pub mod fat;
pub mod lexer;

use crate::feature::{MetadataFilter, RawFeature};
use crate::split::{fixed_blocks, marker_blocks};
use crate::ParseError;

/// The PAT split marker: every generated feature object begins with
/// this byte string (its final quote excludes the `FeatureCollection`
/// preamble).
pub const FEATURE_MARKER: &[u8] = b"{\"type\":\"Feature\"";

/// Parses a whole GeoJSON document in PAT mode using `blocks` marker-
/// aligned blocks processed sequentially (the parallel executor lives
/// in `atgis-core`).
pub fn parse_pat(input: &[u8], filter: &MetadataFilter) -> Result<Vec<RawFeature>, ParseError> {
    let mut out = Vec::new();
    for block in marker_blocks(input, FEATURE_MARKER, 4) {
        fast::parse_block(input, block.start, block.end, filter, &mut out)?;
    }
    Ok(out)
}

/// Parses a whole GeoJSON document in FAT mode: `blocks` fixed-offset
/// blocks lexed and parsed speculatively, fragments merged in order,
/// then finalised.
pub fn parse_fat(
    input: &[u8],
    filter: &MetadataFilter,
    blocks: usize,
) -> Result<Vec<RawFeature>, ParseError> {
    let mut merged: Option<fat::BlockFragment> = None;
    for block in fixed_blocks(input.len(), blocks) {
        let frag = fat::process_block(input, block, filter)?;
        merged = Some(match merged {
            None => frag,
            Some(acc) => acc.merge(frag, input, filter)?,
        });
    }
    match merged {
        None => Ok(Vec::new()),
        Some(m) => m.finalize(input, filter),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgis_geometry::Geometry;

    /// A small handwritten document exercising every geometry type and
    /// the recursive collection case of Listing 1.
    pub(crate) const SAMPLE: &str = concat!(
        r#"{"type":"FeatureCollection","features":["#,
        r#"{"type":"Feature","geometry":{"type":"Polygon","coordinates":[[[0.0,0.0],[1.0,0.0],[1.0,1.0],[0.0,1.0],[0.0,0.0]]]},"id":1,"properties":{"name":"sq","building":"yes"}},"#,
        r#"{"type":"Feature","geometry":{"type":"LineString","coordinates":[[1.1,0.0],[1.2,1.0]]},"id":2,"properties":{}},"#,
        r#"{"type":"Feature","geometry":{"type":"Point","coordinates":[5.0,6.0]},"id":3,"properties":{"name":"pt"}},"#,
        r#"{"type":"Feature","geometry":{"type":"MultiPolygon","coordinates":[[[[2.0,2.0],[3.0,2.0],[3.0,3.0],[2.0,2.0]]],[[[4.0,4.0],[5.0,4.0],[5.0,5.0],[4.0,4.0]]]]},"id":4,"properties":{"building":"no"}},"#,
        r#"{"type":"Feature","geometry":{"type":"GeometryCollection","geometries":[{"type":"GeometryCollection","geometries":[{"type":"Point","coordinates":[9.0,9.0]}]},{"type":"LineString","coordinates":[[1.1,0.0],[1.2,1.0]]}]},"id":1234,"properties":{"note":"listing one"}}"#,
        r#"]}"#
    );

    fn check_sample(features: &[RawFeature]) {
        assert_eq!(features.len(), 5);
        assert_eq!(features[0].id, 1);
        match &features[0].geometry {
            Geometry::Polygon(p) => {
                assert_eq!(p.exterior.len(), 4);
                assert!((p.area() - 1.0).abs() < 1e-12);
            }
            g => panic!("feature 1 should be a polygon, got {g:?}"),
        }
        assert!(matches!(features[1].geometry, Geometry::LineString(_)));
        assert!(matches!(features[2].geometry, Geometry::Point(_)));
        match &features[3].geometry {
            Geometry::MultiPolygon(mp) => assert_eq!(mp.polygons.len(), 2),
            g => panic!("feature 4 should be a multipolygon, got {g:?}"),
        }
        assert_eq!(features[4].id, 1234);
        match &features[4].geometry {
            Geometry::Collection(gs) => {
                assert_eq!(gs.len(), 2);
                assert!(
                    matches!(gs[0], Geometry::Collection(_)),
                    "nested collection"
                );
            }
            g => panic!("feature 5 should be a collection, got {g:?}"),
        }
    }

    #[test]
    fn pat_parses_sample() {
        let f = parse_pat(SAMPLE.as_bytes(), &MetadataFilter::All).unwrap();
        check_sample(&f);
    }

    #[test]
    fn fat_parses_sample_single_block() {
        let f = parse_fat(SAMPLE.as_bytes(), &MetadataFilter::All, 1).unwrap();
        check_sample(&f);
    }

    #[test]
    fn fat_parses_sample_any_block_count() {
        for blocks in 2..24 {
            let f = parse_fat(SAMPLE.as_bytes(), &MetadataFilter::All, blocks).unwrap();
            check_sample(&f);
        }
    }

    #[test]
    fn fat_and_pat_agree() {
        let a = parse_pat(SAMPLE.as_bytes(), &MetadataFilter::All).unwrap();
        let b = parse_fat(SAMPLE.as_bytes(), &MetadataFilter::All, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn metadata_filter_pushdown() {
        let filter = MetadataFilter::KeyEquals {
            key: "building".into(),
            value: "yes".into(),
        };
        let pat = parse_pat(SAMPLE.as_bytes(), &filter).unwrap();
        assert_eq!(pat.len(), 1);
        assert_eq!(pat[0].id, 1);
        let fat = parse_fat(SAMPLE.as_bytes(), &filter, 5).unwrap();
        assert_eq!(pat, fat);
    }

    #[test]
    fn id_filter_pushdown() {
        let filter = MetadataFilter::IdBelow(3);
        let pat = parse_pat(SAMPLE.as_bytes(), &filter).unwrap();
        assert_eq!(pat.iter().map(|f| f.id).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn offsets_allow_reparsing() {
        let input = SAMPLE.as_bytes();
        let features = parse_pat(input, &MetadataFilter::All).unwrap();
        for f in &features {
            let span = &input[f.offset as usize..f.offset as usize + f.len as usize];
            assert!(span.starts_with(FEATURE_MARKER));
            // Re-parse the span as a standalone block.
            let mut again = Vec::new();
            fast::parse_block(
                input,
                f.offset as usize,
                (f.offset + f.len as u64) as usize,
                &MetadataFilter::All,
                &mut again,
            )
            .unwrap();
            assert_eq!(again.len(), 1);
            assert_eq!(again[0].geometry, f.geometry);
        }
    }

    #[test]
    fn empty_collection() {
        let doc = br#"{"type":"FeatureCollection","features":[]}"#;
        assert!(parse_pat(doc, &MetadataFilter::All).unwrap().is_empty());
        assert!(parse_fat(doc, &MetadataFilter::All, 3).unwrap().is_empty());
    }

    #[test]
    fn whitespace_tolerated() {
        let doc = br#"{ "type": "FeatureCollection", "features": [
            {"type":"Feature", "geometry": {"type": "Point", "coordinates": [ 1.0 , 2.0 ]}, "id": 7, "properties": {}}
        ] }"#;
        let f = parse_pat(doc, &MetadataFilter::All).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id, 7);
        let g = parse_fat(doc, &MetadataFilter::All, 4).unwrap();
        assert_eq!(f, g);
    }
}
