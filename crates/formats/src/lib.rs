//! Spatial data-format substrate for AT-GIS.
//!
//! AT-GIS executes queries directly over raw files in three formats
//! (§4.4): GeoJSON, WKT and OpenStreetMap XML. This crate implements,
//! for each format, both execution modes the paper evaluates:
//!
//! * **FAT** (fully-associative transducers): blocks are cut at
//!   arbitrary byte offsets; a speculative lexer (all possible string
//!   states) feeds a structural parser whose fragments defer the
//!   block's unsynchronised head and tail token runs until merge
//!   (§3.3). No knowledge of record boundaries is needed.
//! * **PAT** (partially-associative transducers): blocks are cut at
//!   *markers* that pin the parser state — `{"type":"Feature"` for
//!   GeoJSON, newlines for WKT, element starts for OSM XML — and an
//!   optimised, non-speculative block-local parser (our stand-in for
//!   RapidJSON) handles each block (§3.5).
//!
//! Both modes produce the same stream of [`RawFeature`]s tagged with
//! their byte offsets, which downstream pipelines use for
//! identification and join-time re-parsing (§4.2).
//!
//! See `ARCHITECTURE.md` at the repository root for how this crate
//! fits into the workspace as layer 2 of the four-layer design (transducer → formats → core scan/merge → batch/stream/scheduler),
//! plus the ingest → seal → query lifecycle and the data flow of a
//! scheduled batch.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod feature;
pub mod geojson;
pub mod osmxml;
pub mod pathquery;
pub mod points;
pub mod split;
pub mod wkt;

pub use feature::{MetadataFilter, RawFeature};
pub use pathquery::{PathOp, PathQuery, PathValue};
pub use split::{fixed_blocks, marker_blocks, Block};

/// The input formats AT-GIS queries directly (Table 2's dataset
/// flavours).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// GeoJSON feature collections (OSM-G).
    GeoJson,
    /// Tab-separated WKT rows (OSM-W).
    Wkt,
    /// OpenStreetMap XML (OSM-X).
    OsmXml,
}

/// Parsing execution mode (§5's AT-GIS-FAT vs AT-GIS-PAT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Fully-associative: speculative parsing from arbitrary splits.
    Fat,
    /// Partially-associative: marker-based splits, optimised block
    /// parser.
    #[default]
    Pat,
    /// Pick per dataset: PAT when record markers are dense enough to
    /// split cheaply, FAT otherwise — the hybrid §5.5 proposes ("the
    /// best of both approaches could be attained by instrumenting the
    /// splitting component … to fall back to a fully-associative
    /// pipeline").
    Adaptive,
}

/// Decides between PAT and FAT for `Mode::Adaptive` by sampling marker
/// density in the input prefix: with fewer markers than `want_blocks`,
/// marker-aligned splitting cannot produce enough parallelism (the
/// Fig. 14 failure mode) and FAT wins.
pub fn resolve_adaptive(input: &[u8], marker: &[u8], want_blocks: usize) -> Mode {
    const SAMPLE: usize = 1 << 20;
    let sample = &input[..input.len().min(SAMPLE)];
    let mut count = 0usize;
    let mut pos = 0usize;
    while let Some(at) = split::find_marker(sample, marker, pos) {
        count += 1;
        pos = at + 1;
        if count >= want_blocks * 4 {
            return Mode::Pat; // Plenty of split points.
        }
    }
    // Extrapolate the sampled density to the full input.
    let scale = (input.len().max(1) as f64 / sample.len().max(1) as f64).max(1.0);
    if (count as f64 * scale) as usize >= want_blocks * 4 {
        Mode::Pat
    } else {
        Mode::Fat
    }
}

/// Parses an entire in-memory dataset into features using a handful of
/// logical blocks (sequentially — the parallel executor lives in
/// `atgis-core`). Convenience entry point for tests and examples.
pub fn parse_all(
    input: &[u8],
    format: Format,
    mode: Mode,
    filter: &MetadataFilter,
) -> Result<Vec<RawFeature>, ParseError> {
    let mode = match mode {
        Mode::Adaptive => {
            let marker: &[u8] = match format {
                Format::GeoJson => geojson::FEATURE_MARKER,
                _ => b"\n",
            };
            resolve_adaptive(input, marker, 4)
        }
        m => m,
    };
    match (format, mode) {
        (Format::GeoJson, Mode::Pat) => geojson::parse_pat(input, filter),
        (Format::GeoJson, _) => geojson::parse_fat(input, filter, 4),
        (Format::Wkt, Mode::Pat) => wkt::parse_pat(input, filter),
        (Format::Wkt, _) => wkt::parse_fat(input, filter, 4),
        (Format::OsmXml, _) => osmxml::parse(input, filter),
    }
}

/// Errors surfaced while parsing raw spatial data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input violated the format's grammar at the given byte
    /// offset.
    Syntax {
        /// Byte offset of the offending input.
        offset: u64,
        /// Human-readable description.
        message: String,
    },
    /// A fragment merge discovered that speculative parsing had
    /// desynchronised (e.g. a split marker appeared inside free-form
    /// metadata, §3.5).
    Desync {
        /// Byte offset of the suspect block.
        offset: u64,
    },
}

impl ParseError {
    /// Shorthand constructor for syntax errors.
    pub fn syntax(offset: u64, message: impl Into<String>) -> Self {
        ParseError::Syntax {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Syntax { offset, message } => {
                write!(f, "syntax error at byte {offset}: {message}")
            }
            ParseError::Desync { offset } => {
                write!(f, "speculative parse desynchronised near byte {offset}")
            }
        }
    }
}

impl std::error::Error for ParseError {}
