//! OpenStreetMap XML — the OSM-X dataset flavour.
//!
//! "OpenStreetMap XML is the most complex format to support because it
//! separates the data into multiple sections: first it lists all the
//! nodes that link a numeric identifier to a point in space; followed
//! by the ways that relate multiple nodes; and finally relations that
//! link nodes and ways to describe complex polygons. AT-GIS handles
//! the separation of point and polygon data by keeping a temporary
//! table of all points and ways …, which is constructed during the
//! first data pass" (§4.4).
//!
//! This module implements that two-pass design: [`collect_nodes`]
//! builds the temporary node table from blocks (parallelisable —
//! tables merge by map union), [`parse_elements`] assembles ways and
//! relations into features against the completed table. Blocks split
//! on newlines (OSM XML is element-per-line).

use crate::feature::{MetadataFilter, RawFeature};
use crate::ParseError;
use atgis_geometry::{Geometry, LineString, MultiPolygon, Point, Polygon, Ring};
use std::collections::HashMap;

/// The temporary node table: OSM node id → coordinate.
pub type NodeTable = HashMap<u64, Point>;

/// Pass 1: scans a byte range for `<node …/>` elements, adding them to
/// a node table. Tables built for disjoint blocks merge by union.
pub fn collect_nodes(input: &[u8], start: usize, end: usize) -> Result<NodeTable, ParseError> {
    let mut table = NodeTable::new();
    let mut scanner = Scanner { input, pos: start };
    while let Some(elem) = scanner.next_element(end)? {
        if elem.name == "node" {
            let id = elem
                .attr_u64("id")
                .ok_or_else(|| ParseError::syntax(elem.offset as u64, "node without id"))?;
            let lat = elem.attr_f64("lat");
            let lon = elem.attr_f64("lon");
            if let (Some(lat), Some(lon)) = (lat, lon) {
                table.insert(id, Point::new(lon, lat));
            }
        }
        // Other elements (the <osm> container, ways, relations, tags)
        // are scanned *through*, not skipped over: nodes may appear
        // anywhere below them.
    }
    Ok(table)
}

/// A parsed way: id, node refs and tags — kept in the temporary table
/// so relations can assemble multipolygons from member ways.
#[derive(Debug, Clone)]
pub struct WaySpec {
    /// OSM way id.
    pub id: u64,
    /// Ordered node references.
    pub refs: Vec<u64>,
    /// `k=v` tags.
    pub tags: Vec<(String, String)>,
    /// Byte offset of the `<way` element.
    pub offset: u64,
    /// Byte length of the element.
    pub len: u32,
}

/// A parsed relation: id plus way members with roles.
#[derive(Debug, Clone)]
pub struct RelationSpec {
    /// OSM relation id.
    pub id: u64,
    /// `(way_id, role)` members.
    pub members: Vec<(u64, String)>,
    /// Byte offset of the `<relation` element.
    pub offset: u64,
    /// Byte length of the element.
    pub len: u32,
}

/// Pass 2a: scans a byte range for `<way>` elements. Block-parallel;
/// way lists from disjoint blocks merge by concatenation.
pub fn collect_ways(input: &[u8], start: usize, end: usize) -> Result<Vec<WaySpec>, ParseError> {
    let mut ways = Vec::new();
    let mut scanner = Scanner { input, pos: start };
    while let Some(elem) = scanner.next_element(end)? {
        if elem.name == "way" {
            let id = elem
                .attr_u64("id")
                .ok_or_else(|| ParseError::syntax(elem.offset as u64, "way without id"))?;
            let (refs, tags, end_pos) = scanner.way_children(&elem)?;
            ways.push(WaySpec {
                id,
                refs,
                tags,
                offset: elem.offset as u64,
                len: (end_pos - elem.offset) as u32,
            });
        }
    }
    Ok(ways)
}

/// Pass 2b: scans a byte range for `<relation>` elements.
pub fn collect_relations(
    input: &[u8],
    start: usize,
    end: usize,
) -> Result<Vec<RelationSpec>, ParseError> {
    let mut relations = Vec::new();
    let mut scanner = Scanner { input, pos: start };
    while let Some(elem) = scanner.next_element(end)? {
        match elem.name.as_str() {
            "relation" => {
                let id = elem
                    .attr_u64("id")
                    .ok_or_else(|| ParseError::syntax(elem.offset as u64, "relation without id"))?;
                let (members, end_pos) = scanner.relation_children(&elem)?;
                relations.push(RelationSpec {
                    id,
                    members,
                    offset: elem.offset as u64,
                    len: (end_pos - elem.offset) as u32,
                });
            }
            // Ways must be stepped over (their children contain no
            // relations, and scanning into them is harmless but slow).
            "way" => {
                let _ = scanner.way_children(&elem)?;
            }
            _ => {}
        }
    }
    Ok(relations)
}

/// Final assembly: resolves way refs against the node table, attaches
/// relation members and emits features. Runs once after the parallel
/// collection passes (its cost is proportional to the *object* count,
/// not the byte count, so it does not bound scalability).
pub fn assemble(
    ways: &[WaySpec],
    relations: &[RelationSpec],
    nodes: &NodeTable,
    filter: &MetadataFilter,
) -> Vec<RawFeature> {
    let way_index: HashMap<u64, usize> = ways.iter().enumerate().map(|(i, w)| (w.id, i)).collect();
    let mut in_relation: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut out = Vec::new();

    for rel in relations {
        let mut outers = Vec::new();
        let mut inners = Vec::new();
        for (way_id, role) in &rel.members {
            in_relation.insert(*way_id);
            if let Some(&wi) = way_index.get(way_id) {
                if let Some(ring) = way_ring(&ways[wi], nodes) {
                    if role == "inner" {
                        inners.push(ring);
                    } else {
                        outers.push(ring);
                    }
                }
            }
        }
        if outers.is_empty() {
            continue;
        }
        let polygons: Vec<Polygon> = outers
            .into_iter()
            .map(|ext| {
                // Attach inners contained by this outer's bbox.
                let holes = inners
                    .iter()
                    .filter(|h| ext.mbr().contains(&h.mbr()))
                    .cloned()
                    .collect();
                Polygon::new(ext, holes)
            })
            .collect();
        let geometry = if polygons.len() == 1 {
            Geometry::Polygon(polygons.into_iter().next().expect("one"))
        } else {
            Geometry::MultiPolygon(MultiPolygon::new(polygons))
        };
        if filter.accepts_id(rel.id) {
            out.push(RawFeature {
                id: rel.id,
                geometry,
                offset: rel.offset,
                len: rel.len,
            });
        }
    }

    for w in ways {
        if in_relation.contains(&w.id) {
            continue; // Geometry already emitted through its relation.
        }
        if !filter.accepts_id(w.id) {
            continue;
        }
        if filter.needs_tags()
            && !filter.accepts_tags(w.tags.iter().map(|(k, v)| (k.as_str(), v.as_str())))
        {
            continue;
        }
        let pts: Vec<Point> = w
            .refs
            .iter()
            .filter_map(|r| nodes.get(r).copied())
            .collect();
        if pts.len() < 2 {
            continue;
        }
        let closed = w.refs.len() >= 4 && w.refs.first() == w.refs.last();
        let geometry = if closed {
            Geometry::Polygon(Polygon::new(Ring::new(pts), Vec::new()))
        } else {
            Geometry::LineString(LineString::new(pts))
        };
        out.push(RawFeature {
            id: w.id,
            geometry,
            offset: w.offset,
            len: w.len,
        });
    }
    // Deterministic output order: by appearance in the file.
    out.sort_by_key(|f| f.offset);
    out
}

/// Pass 2 over one range with a prebuilt node table (legacy single-
/// range form used by [`parse`]).
pub fn parse_elements(
    input: &[u8],
    start: usize,
    end: usize,
    nodes: &NodeTable,
    filter: &MetadataFilter,
) -> Result<Vec<RawFeature>, ParseError> {
    let ways = collect_ways(input, start, end)?;
    let relations = collect_relations(input, start, end)?;
    Ok(assemble(&ways, &relations, nodes, filter))
}

fn way_ring(way: &WaySpec, nodes: &NodeTable) -> Option<Ring> {
    let pts: Vec<Point> = way
        .refs
        .iter()
        .filter_map(|r| nodes.get(r).copied())
        .collect();
    if pts.len() < 3 {
        return None;
    }
    Some(Ring::new(pts))
}

/// Full two-pass parse of an OSM XML document.
pub fn parse(input: &[u8], filter: &MetadataFilter) -> Result<Vec<RawFeature>, ParseError> {
    let nodes = collect_nodes(input, 0, input.len())?;
    parse_elements(input, 0, input.len(), &nodes, filter)
}

/// One opening tag with its attributes.
struct Element {
    name: String,
    attrs: Vec<(String, String)>,
    /// Offset of the `<`.
    offset: usize,
    /// True when the tag self-closes (`/>`).
    self_closing: bool,
}

/// A `<way>` body: node refs, tags, and the position just past the
/// closing tag.
type WayBody = (Vec<u64>, Vec<(String, String)>, usize);

impl Element {
    fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn attr_u64(&self, key: &str) -> Option<u64> {
        self.attr(key)?.parse().ok()
    }

    fn attr_f64(&self, key: &str) -> Option<f64> {
        self.attr(key)?.parse().ok()
    }
}

/// A minimal XML scanner sufficient for OSM files: elements,
/// attributes, comments and XML declarations. No entities or CDATA
/// (OSM planet files escape attribute values with standard entities,
/// which we pass through unexpanded — tags are compared byte-wise).
struct Scanner<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    /// Advances to the next opening element that *starts* before
    /// `end`. Skips comments, declarations and closing tags.
    fn next_element(&mut self, end: usize) -> Result<Option<Element>, ParseError> {
        loop {
            let lt = match crate::split::find_marker(self.input, b"<", self.pos) {
                Some(p) if p < end => p,
                _ => return Ok(None),
            };
            self.pos = lt + 1;
            match self.input.get(self.pos) {
                Some(b'?') => {
                    // XML declaration: skip to '>'.
                    self.skip_to_gt()?;
                }
                Some(b'!') => {
                    // Comment: skip to '-->'.
                    match crate::split::find_marker(self.input, b"-->", self.pos) {
                        Some(p) => self.pos = p + 3,
                        None => return Ok(None),
                    }
                }
                Some(b'/') => {
                    // Closing tag: skip.
                    self.skip_to_gt()?;
                }
                Some(_) => return self.read_element(lt).map(Some),
                None => return Ok(None),
            }
        }
    }

    fn skip_to_gt(&mut self) -> Result<(), ParseError> {
        match crate::split::find_marker(self.input, b">", self.pos) {
            Some(p) => {
                self.pos = p + 1;
                Ok(())
            }
            None => Err(ParseError::syntax(self.pos as u64, "unterminated tag")),
        }
    }

    fn read_element(&mut self, offset: usize) -> Result<Element, ParseError> {
        let name_start = self.pos;
        while self
            .input
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.pos += 1;
        }
        let name = std::str::from_utf8(&self.input[name_start..self.pos])
            .map_err(|_| ParseError::syntax(offset as u64, "non-UTF8 tag name"))?
            .to_owned();
        let mut attrs = Vec::new();
        loop {
            // Skip whitespace.
            while self
                .input
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
            match self.input.get(self.pos) {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(Element {
                        name,
                        attrs,
                        offset,
                        self_closing: false,
                    });
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.input.get(self.pos) == Some(&b'>') {
                        self.pos += 1;
                        return Ok(Element {
                            name,
                            attrs,
                            offset,
                            self_closing: true,
                        });
                    }
                    return Err(ParseError::syntax(
                        self.pos as u64,
                        "expected '>' after '/'",
                    ));
                }
                Some(_) => {
                    // attribute: key="value"
                    let key_start = self.pos;
                    while self
                        .input
                        .get(self.pos)
                        .is_some_and(|b| *b != b'=' && !b.is_ascii_whitespace())
                    {
                        self.pos += 1;
                    }
                    let key = std::str::from_utf8(&self.input[key_start..self.pos])
                        .map_err(|_| ParseError::syntax(key_start as u64, "non-UTF8 attr"))?
                        .to_owned();
                    if self.input.get(self.pos) != Some(&b'=') {
                        return Err(ParseError::syntax(self.pos as u64, "expected '='"));
                    }
                    self.pos += 1;
                    if self.input.get(self.pos) != Some(&b'"') {
                        return Err(ParseError::syntax(self.pos as u64, "expected '\"'"));
                    }
                    self.pos += 1;
                    let val_start = self.pos;
                    self.pos = crate::split::memchr(b'"', self.input, self.pos)
                        .unwrap_or(self.input.len());
                    let value = std::str::from_utf8(&self.input[val_start..self.pos])
                        .map_err(|_| ParseError::syntax(val_start as u64, "non-UTF8 value"))?
                        .to_owned();
                    self.pos += 1; // closing quote
                    attrs.push((key, value));
                }
                None => return Err(ParseError::syntax(self.pos as u64, "unterminated element")),
            }
        }
    }

    /// Skips over an element's content (if not self-closing).
    fn skip_element(&mut self, elem: &Element) -> Result<(), ParseError> {
        if elem.self_closing {
            return Ok(());
        }
        let close = format!("</{}>", elem.name);
        match crate::split::find_marker(self.input, close.as_bytes(), self.pos) {
            Some(p) => {
                self.pos = p + close.len();
                Ok(())
            }
            None => Ok(()), // Unclosed container (e.g. <osm>) — scan on.
        }
    }

    /// Reads the children of a `<way>`: `<nd ref>` and `<tag k v>`.
    /// Returns (refs, tags, end position after `</way>`).
    fn way_children(&mut self, elem: &Element) -> Result<WayBody, ParseError> {
        let mut refs = Vec::new();
        let mut tags = Vec::new();
        if elem.self_closing {
            return Ok((refs, tags, self.pos));
        }
        loop {
            let lt = crate::split::find_marker(self.input, b"<", self.pos)
                .ok_or_else(|| ParseError::syntax(self.pos as u64, "unterminated way"))?;
            self.pos = lt + 1;
            if self.input[self.pos..].starts_with(b"/way>") {
                self.pos += 5;
                return Ok((refs, tags, self.pos));
            }
            let child = self.read_element(lt)?;
            match child.name.as_str() {
                "nd" => {
                    if let Some(r) = child.attr_u64("ref") {
                        refs.push(r);
                    }
                }
                "tag" => {
                    if let (Some(k), Some(v)) = (child.attr("k"), child.attr("v")) {
                        tags.push((k.to_owned(), v.to_owned()));
                    }
                }
                _ => self.skip_element(&child)?,
            }
        }
    }

    /// Reads the children of a `<relation>`: way members with roles.
    fn relation_children(
        &mut self,
        elem: &Element,
    ) -> Result<(Vec<(u64, String)>, usize), ParseError> {
        let mut members = Vec::new();
        if elem.self_closing {
            return Ok((members, self.pos));
        }
        loop {
            let lt = crate::split::find_marker(self.input, b"<", self.pos)
                .ok_or_else(|| ParseError::syntax(self.pos as u64, "unterminated relation"))?;
            self.pos = lt + 1;
            if self.input[self.pos..].starts_with(b"/relation>") {
                self.pos += 10;
                return Ok((members, self.pos));
            }
            let child = self.read_element(lt)?;
            if child.name == "member" && child.attr("type") == Some("way") {
                if let Some(r) = child.attr_u64("ref") {
                    let role = child.attr("role").unwrap_or("outer").to_owned();
                    members.push((r, role));
                }
            } else {
                self.skip_element(&child)?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6" generator="atgis-datagen">
 <node id="1" lat="0.0" lon="0.0"/>
 <node id="2" lat="0.0" lon="1.0"/>
 <node id="3" lat="1.0" lon="1.0"/>
 <node id="4" lat="1.0" lon="0.0"/>
 <node id="5" lat="0.25" lon="0.25"/>
 <node id="6" lat="0.25" lon="0.75"/>
 <node id="7" lat="0.75" lon="0.75"/>
 <node id="8" lat="0.75" lon="0.25"/>
 <node id="9" lat="5.0" lon="5.0"/>
 <node id="10" lat="6.0" lon="6.0"/>
 <way id="100"><nd ref="1"/><nd ref="2"/><nd ref="3"/><nd ref="4"/><nd ref="1"/><tag k="building" v="yes"/></way>
 <way id="101"><nd ref="5"/><nd ref="6"/><nd ref="7"/><nd ref="8"/><nd ref="5"/></way>
 <way id="102"><nd ref="9"/><nd ref="10"/><tag k="highway" v="path"/></way>
 <relation id="200"><member type="way" ref="100" role="outer"/><member type="way" ref="101" role="inner"/><tag k="type" v="multipolygon"/></relation>
</osm>
"#;

    #[test]
    fn collects_all_nodes() {
        let nodes = collect_nodes(SAMPLE.as_bytes(), 0, SAMPLE.len()).unwrap();
        assert_eq!(nodes.len(), 10);
        assert_eq!(nodes[&1], Point::new(0.0, 0.0));
        assert_eq!(nodes[&3], Point::new(1.0, 1.0), "lon is x, lat is y");
    }

    #[test]
    fn assembles_ways_and_relations() {
        let features = parse(SAMPLE.as_bytes(), &MetadataFilter::All).unwrap();
        // Relation 200 (polygon w/ hole) + way 102 (linestring); ways
        // 100/101 are consumed by the relation.
        assert_eq!(features.len(), 2);
        let rel = features.iter().find(|f| f.id == 200).expect("relation");
        match &rel.geometry {
            Geometry::Polygon(p) => {
                assert_eq!(p.holes.len(), 1);
                assert!((p.area() - 0.75).abs() < 1e-12);
            }
            g => panic!("relation should be polygon, got {g:?}"),
        }
        let path = features.iter().find(|f| f.id == 102).expect("way");
        assert!(matches!(path.geometry, Geometry::LineString(_)));
    }

    #[test]
    fn closed_way_without_relation_is_polygon() {
        let doc = r#"<osm>
<node id="1" lat="0.0" lon="0.0"/>
<node id="2" lat="0.0" lon="2.0"/>
<node id="3" lat="2.0" lon="1.0"/>
<way id="50"><nd ref="1"/><nd ref="2"/><nd ref="3"/><nd ref="1"/></way>
</osm>"#;
        let features = parse(doc.as_bytes(), &MetadataFilter::All).unwrap();
        assert_eq!(features.len(), 1);
        match &features[0].geometry {
            Geometry::Polygon(p) => assert!((p.area() - 2.0).abs() < 1e-12),
            g => panic!("{g:?}"),
        }
    }

    #[test]
    fn tag_filter_applies_to_ways() {
        let features = parse(
            SAMPLE.as_bytes(),
            &MetadataFilter::KeyEquals {
                key: "highway".into(),
                value: "path".into(),
            },
        )
        .unwrap();
        // Relation passes (tag filtering applies to ways only here),
        // way 102 matches.
        assert!(features.iter().any(|f| f.id == 102));
    }

    #[test]
    fn dangling_node_refs_are_skipped() {
        let doc = r#"<osm>
<node id="1" lat="0.0" lon="0.0"/>
<way id="60"><nd ref="1"/><nd ref="999"/></way>
</osm>"#;
        let features = parse(doc.as_bytes(), &MetadataFilter::All).unwrap();
        assert!(features.is_empty(), "one resolvable point is not enough");
    }

    #[test]
    fn comments_and_declaration_are_skipped() {
        let doc = r#"<?xml version="1.0"?>
<!-- a comment with <node id="99" lat="9" lon="9"/> inside -->
<osm><node id="1" lat="1.0" lon="2.0"/></osm>"#;
        let nodes = collect_nodes(doc.as_bytes(), 0, doc.len()).unwrap();
        assert_eq!(nodes.len(), 1);
        assert!(nodes.contains_key(&1));
    }

    #[test]
    fn offsets_point_at_way_elements() {
        let features = parse(SAMPLE.as_bytes(), &MetadataFilter::All).unwrap();
        for f in &features {
            let at = &SAMPLE.as_bytes()[f.offset as usize..];
            assert!(at.starts_with(b"<way") || at.starts_with(b"<relation"));
        }
    }

    #[test]
    fn block_partitioned_node_collection_merges() {
        let input = SAMPLE.as_bytes();
        let mid = input.len() / 2;
        // Align to a line boundary to split cleanly.
        let cut = crate::split::find_marker(input, b"\n", mid).unwrap() + 1;
        let mut a = collect_nodes(input, 0, cut).unwrap();
        let b = collect_nodes(input, cut, input.len()).unwrap();
        a.extend(b);
        let whole = collect_nodes(input, 0, input.len()).unwrap();
        assert_eq!(a, whole);
    }
}
