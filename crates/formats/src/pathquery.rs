//! The XPath-style metadata query language (§4.4).
//!
//! "As pushdown transducers can handle XPath-style queries, AT-GIS
//! supports a similar query language for JSON that filters on the
//! structure or value of fields in the metadata." This module provides
//! that language: dotted paths over the feature's `properties` tree
//! with existence, equality and numeric comparisons, compiled into a
//! [`PathQuery`] the parsing stage evaluates per feature.
//!
//! Grammar (one predicate per query):
//!
//! ```text
//! query      := path | path op value
//! path       := ident ('.' ident)*
//! op         := '=' | '!=' | '<' | '>' | '<=' | '>='
//! value      := quoted string | number | true | false | null
//! ```
//!
//! Examples: `building`, `building = "yes"`, `levels >= 3`,
//! `address.city = "London"`.

use crate::ParseError;

/// Comparison operator of a path predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathOp {
    /// The path exists (any value).
    Exists,
    /// String/number/bool equality.
    Eq,
    /// Inequality.
    Ne,
    /// Numeric less-than.
    Lt,
    /// Numeric greater-than.
    Gt,
    /// Numeric ≤.
    Le,
    /// Numeric ≥.
    Ge,
}

/// A literal the predicate compares against.
#[derive(Debug, Clone, PartialEq)]
pub enum PathValue {
    /// Quoted string.
    Str(String),
    /// Number.
    Num(f64),
    /// Boolean.
    Bool(bool),
    /// JSON null.
    Null,
}

/// A compiled metadata path predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct PathQuery {
    /// Path segments relative to the properties object.
    pub path: Vec<String>,
    /// Comparison operator.
    pub op: PathOp,
    /// Right-hand-side literal (`Null` for `Exists`).
    pub value: PathValue,
}

impl PathQuery {
    /// Parses the query text.
    pub fn parse(text: &str) -> Result<PathQuery, ParseError> {
        let text = text.trim();
        if text.is_empty() {
            return Err(ParseError::syntax(0, "empty path query"));
        }
        // Find the operator (two-char ops first).
        let ops: [(&str, PathOp); 6] = [
            ("!=", PathOp::Ne),
            ("<=", PathOp::Le),
            (">=", PathOp::Ge),
            ("=", PathOp::Eq),
            ("<", PathOp::Lt),
            (">", PathOp::Gt),
        ];
        let mut found: Option<(usize, &str, PathOp)> = None;
        for (sym, op) in ops {
            if let Some(at) = text.find(sym) {
                match found {
                    Some((prev, psym, _))
                        if prev < at || (prev == at && psym.len() >= sym.len()) => {}
                    _ => found = Some((at, sym, op)),
                }
            }
        }
        let (path_text, op, value_text) = match found {
            None => (text, PathOp::Exists, ""),
            Some((at, sym, op)) => (
                text[..at].trim_end(),
                op,
                text[at + sym.len()..].trim_start(),
            ),
        };
        let path: Vec<String> = path_text.split('.').map(|s| s.trim().to_owned()).collect();
        if path.iter().any(|s| s.is_empty()) {
            return Err(ParseError::syntax(0, format!("bad path {path_text:?}")));
        }
        let value = if op == PathOp::Exists {
            PathValue::Null
        } else {
            parse_value(value_text)?
        };
        if matches!(op, PathOp::Lt | PathOp::Gt | PathOp::Le | PathOp::Ge)
            && !matches!(value, PathValue::Num(_))
        {
            return Err(ParseError::syntax(
                0,
                "ordered comparison requires a numeric literal",
            ));
        }
        Ok(PathQuery { path, op, value })
    }

    /// Evaluates the predicate against a raw properties JSON object
    /// (the bytes of `{...}` including braces). Walks the object
    /// lazily without building a DOM, so the parsing stage can call it
    /// per feature.
    pub fn matches_json(&self, properties: &[u8]) -> bool {
        match lookup(properties, &self.path) {
            None => false,
            Some(raw) => self.compare(raw),
        }
    }

    fn compare(&self, raw: &[u8]) -> bool {
        let raw = trim(raw);
        match self.op {
            PathOp::Exists => true,
            PathOp::Eq => value_eq(raw, &self.value),
            PathOp::Ne => !value_eq(raw, &self.value),
            PathOp::Lt | PathOp::Gt | PathOp::Le | PathOp::Ge => {
                let (PathValue::Num(rhs), Some(lhs)) = (&self.value, parse_num(raw)) else {
                    return false;
                };
                match self.op {
                    PathOp::Lt => lhs < *rhs,
                    PathOp::Gt => lhs > *rhs,
                    PathOp::Le => lhs <= *rhs,
                    PathOp::Ge => lhs >= *rhs,
                    _ => unreachable!(),
                }
            }
        }
    }
}

fn parse_value(text: &str) -> Result<PathValue, ParseError> {
    let t = text.trim();
    if t.starts_with('"') && t.ends_with('"') && t.len() >= 2 {
        return Ok(PathValue::Str(t[1..t.len() - 1].to_owned()));
    }
    match t {
        "true" => return Ok(PathValue::Bool(true)),
        "false" => return Ok(PathValue::Bool(false)),
        "null" => return Ok(PathValue::Null),
        _ => {}
    }
    t.parse::<f64>()
        .map(PathValue::Num)
        .map_err(|_| ParseError::syntax(0, format!("bad literal {t:?}")))
}

fn trim(raw: &[u8]) -> &[u8] {
    let start = raw
        .iter()
        .position(|b| !b.is_ascii_whitespace())
        .unwrap_or(0);
    let end = raw
        .iter()
        .rposition(|b| !b.is_ascii_whitespace())
        .map(|e| e + 1)
        .unwrap_or(0);
    &raw[start.min(end)..end]
}

fn parse_num(raw: &[u8]) -> Option<f64> {
    std::str::from_utf8(raw).ok()?.trim().parse().ok()
}

fn value_eq(raw: &[u8], value: &PathValue) -> bool {
    match value {
        PathValue::Str(s) => {
            raw.first() == Some(&b'"')
                && raw.last() == Some(&b'"')
                && &raw[1..raw.len() - 1] == s.as_bytes()
        }
        PathValue::Num(n) => parse_num(raw) == Some(*n),
        PathValue::Bool(b) => raw == if *b { b"true" as &[u8] } else { b"false" },
        PathValue::Null => raw == b"null",
    }
}

/// Looks up a dotted path in a JSON object, returning the raw bytes of
/// the addressed value.
fn lookup<'a>(json: &'a [u8], path: &[String]) -> Option<&'a [u8]> {
    let mut cur = json;
    for (depth, key) in path.iter().enumerate() {
        cur = object_member(cur, key.as_bytes())?;
        if depth + 1 < path.len() {
            // Intermediate segments must address objects.
            if trim(cur).first() != Some(&b'{') {
                return None;
            }
        }
    }
    Some(cur)
}

/// Finds the raw value span of `key` in a JSON object's top level.
fn object_member<'a>(json: &'a [u8], key: &[u8]) -> Option<&'a [u8]> {
    let json = trim(json);
    if json.first() != Some(&b'{') {
        return None;
    }
    let mut i = 1usize;
    loop {
        i = skip_ws(json, i);
        if json.get(i) == Some(&b'}') || i >= json.len() {
            return None;
        }
        // Key string.
        let (k, next) = read_string(json, i)?;
        i = skip_ws(json, next);
        if json.get(i) != Some(&b':') {
            return None;
        }
        i = skip_ws(json, i + 1);
        let end = skip_value(json, i)?;
        if k == key {
            return Some(&json[i..end]);
        }
        i = skip_ws(json, end);
        match json.get(i) {
            Some(&b',') => i += 1,
            _ => return None,
        }
    }
}

fn skip_ws(json: &[u8], mut i: usize) -> usize {
    while json.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
        i += 1;
    }
    i
}

/// Reads a string starting at `i` (a `"`), returning contents and the
/// index after the closing quote.
fn read_string(json: &[u8], i: usize) -> Option<(&[u8], usize)> {
    if json.get(i) != Some(&b'"') {
        return None;
    }
    let mut j = i + 1;
    while j < json.len() {
        match json[j] {
            b'"' => return Some((&json[i + 1..j], j + 1)),
            b'\\' => j += 2,
            _ => j += 1,
        }
    }
    None
}

/// Returns the index just past the JSON value starting at `i`.
fn skip_value(json: &[u8], i: usize) -> Option<usize> {
    match json.get(i)? {
        b'"' => read_string(json, i).map(|(_, j)| j),
        b'{' | b'[' => {
            let mut depth = 0i32;
            let mut j = i;
            while j < json.len() {
                match json[j] {
                    b'"' => {
                        let (_, nj) = read_string(json, j)?;
                        j = nj;
                        continue;
                    }
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(j + 1);
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            None
        }
        _ => {
            // Scalar: runs to the next , } ] or whitespace.
            let mut j = i;
            while j < json.len()
                && !matches!(json[j], b',' | b'}' | b']')
                && !json[j].is_ascii_whitespace()
            {
                j += 1;
            }
            Some(j)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROPS: &[u8] = br#"{"building":"yes","levels":4,"vacant":false,"address":{"city":"London","zip":"N1"},"note":"has = and . inside","renovated":null}"#;

    #[test]
    fn parse_forms() {
        let q = PathQuery::parse("building").unwrap();
        assert_eq!(q.op, PathOp::Exists);
        assert_eq!(q.path, vec!["building"]);

        let q = PathQuery::parse(r#"building = "yes""#).unwrap();
        assert_eq!(q.op, PathOp::Eq);
        assert_eq!(q.value, PathValue::Str("yes".into()));

        let q = PathQuery::parse("levels >= 3").unwrap();
        assert_eq!(q.op, PathOp::Ge);
        assert_eq!(q.value, PathValue::Num(3.0));

        let q = PathQuery::parse("address.city != \"Paris\"").unwrap();
        assert_eq!(q.path, vec!["address", "city"]);
        assert_eq!(q.op, PathOp::Ne);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(PathQuery::parse("").is_err());
        assert!(PathQuery::parse(". = 1").is_err());
        assert!(
            PathQuery::parse("a < \"str\"").is_err(),
            "ordered needs number"
        );
        assert!(PathQuery::parse("a = nonsense").is_err());
    }

    #[test]
    fn existence() {
        assert!(PathQuery::parse("building").unwrap().matches_json(PROPS));
        assert!(!PathQuery::parse("missing").unwrap().matches_json(PROPS));
        assert!(PathQuery::parse("address.city")
            .unwrap()
            .matches_json(PROPS));
        assert!(!PathQuery::parse("address.street")
            .unwrap()
            .matches_json(PROPS));
        assert!(
            PathQuery::parse("renovated").unwrap().matches_json(PROPS),
            "null exists"
        );
    }

    #[test]
    fn string_equality() {
        assert!(PathQuery::parse(r#"building = "yes""#)
            .unwrap()
            .matches_json(PROPS));
        assert!(!PathQuery::parse(r#"building = "no""#)
            .unwrap()
            .matches_json(PROPS));
        assert!(PathQuery::parse(r#"building != "no""#)
            .unwrap()
            .matches_json(PROPS));
        assert!(PathQuery::parse(r#"address.city = "London""#)
            .unwrap()
            .matches_json(PROPS));
    }

    #[test]
    fn numeric_comparisons() {
        for (q, expect) in [
            ("levels = 4", true),
            ("levels != 4", false),
            ("levels > 3", true),
            ("levels >= 4", true),
            ("levels < 4", false),
            ("levels <= 4", true),
            ("levels > 100", false),
        ] {
            assert_eq!(
                PathQuery::parse(q).unwrap().matches_json(PROPS),
                expect,
                "{q}"
            );
        }
    }

    #[test]
    fn booleans_and_null() {
        assert!(PathQuery::parse("vacant = false")
            .unwrap()
            .matches_json(PROPS));
        assert!(!PathQuery::parse("vacant = true")
            .unwrap()
            .matches_json(PROPS));
        assert!(PathQuery::parse("renovated = null")
            .unwrap()
            .matches_json(PROPS));
    }

    #[test]
    fn operators_inside_string_values_do_not_confuse_lookup() {
        // The "note" value contains '=' and '.'; lookup must skip the
        // string correctly.
        assert!(PathQuery::parse("note").unwrap().matches_json(PROPS));
        assert!(PathQuery::parse(r#"note = "has = and . inside""#)
            .unwrap()
            .matches_json(PROPS));
    }

    #[test]
    fn nested_non_object_path_fails_cleanly() {
        assert!(!PathQuery::parse("building.sub")
            .unwrap()
            .matches_json(PROPS));
        assert!(!PathQuery::parse("x").unwrap().matches_json(b"not json"));
        assert!(!PathQuery::parse("x").unwrap().matches_json(b"[1,2]"));
    }

    #[test]
    fn whitespace_tolerant_json() {
        let spaced = br#"{ "a" : { "b" : 7 } }"#;
        assert!(PathQuery::parse("a.b = 7").unwrap().matches_json(spaced));
        assert!(PathQuery::parse("a.b >= 7").unwrap().matches_json(spaced));
    }
}
