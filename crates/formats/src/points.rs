//! The stateless point parser (§3.3, "Point parser" example).
//!
//! "A point parser is a transducer that takes streams of point offsets
//! and produces a stream of point values. It … isolate\[s\] the
//! structural parsing, performed by finite and pushdown transducers,
//! from handling floating point values. It is stateless as each offset
//! can be parsed into a point value independently."

use crate::ParseError;
use atgis_geometry::Point;

/// Parses an ASCII float from `input[span]`, tolerating surrounding
/// whitespace.
pub fn parse_float(input: &[u8], start: usize, end: usize) -> Result<f64, ParseError> {
    let raw = input
        .get(start..end)
        .ok_or_else(|| ParseError::syntax(start as u64, "float span out of bounds"))?;
    let text = std::str::from_utf8(raw)
        .map_err(|_| ParseError::syntax(start as u64, "non-UTF8 float"))?
        .trim();
    text.parse::<f64>()
        .map_err(|e| ParseError::syntax(start as u64, format!("bad float {text:?}: {e}")))
}

/// A `(start, end)` byte span pair addressing the two coordinates of a
/// point in the raw input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointOffsets {
    /// Span of the x (longitude) literal.
    pub x: (usize, usize),
    /// Span of the y (latitude) literal.
    pub y: (usize, usize),
}

/// The stateless point-parsing step: offsets → point value.
pub fn parse_point(input: &[u8], offsets: PointOffsets) -> Result<Point, ParseError> {
    Ok(Point::new(
        parse_float(input, offsets.x.0, offsets.x.1)?,
        parse_float(input, offsets.y.0, offsets.y.1)?,
    ))
}

/// Batch form used by pipelines: maps offset streams to point streams
/// independently per element (hence trivially data-parallel).
pub fn parse_points(input: &[u8], offsets: &[PointOffsets]) -> Result<Vec<Point>, ParseError> {
    offsets.iter().map(|&o| parse_point(input, o)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_signed_floats() {
        let input = b"[-0.1278, 51.5074]";
        assert_eq!(parse_float(input, 1, 8).unwrap(), -0.1278);
        assert_eq!(parse_float(input, 9, 17).unwrap(), 51.5074);
    }

    #[test]
    fn parses_exponent_notation() {
        let input = b"1.5e-3,2E2";
        assert_eq!(parse_float(input, 0, 6).unwrap(), 0.0015);
        assert_eq!(parse_float(input, 7, 10).unwrap(), 200.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_float(b"abc", 0, 3).is_err());
        assert!(parse_float(b"1.0", 0, 99).is_err(), "span out of bounds");
        assert!(parse_float(b"", 0, 0).is_err(), "empty span");
    }

    #[test]
    fn point_parsing() {
        let input = b"[1.5, -2.25]";
        let p = parse_point(
            input,
            PointOffsets {
                x: (1, 4),
                y: (5, 11),
            },
        )
        .unwrap();
        assert_eq!(p, Point::new(1.5, -2.25));
    }

    #[test]
    fn batch_is_elementwise() {
        let input = b"1 2 3 4";
        let offs = [
            PointOffsets {
                x: (0, 1),
                y: (2, 3),
            },
            PointOffsets {
                x: (4, 5),
                y: (6, 7),
            },
        ];
        let pts = parse_points(input, &offs).unwrap();
        assert_eq!(pts, vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)]);
    }
}
