//! The split phase (§4.1, Fig. 5): dividing raw input into blocks.
//!
//! Fully-associative pipelines split at arbitrary byte offsets
//! ([`fixed_blocks`], "incrementing a pointer"); partially-associative
//! pipelines align block starts with *markers* that pin the parser
//! state ([`marker_blocks`], "executing a regular expression and
//! lightweight parsing"). Marker search cost is what the Fig. 14 skew
//! experiments measure.

/// One block of the input: a byte range plus its ordinal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Block index in input order (merge order follows this).
    pub index: usize,
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Block {
    /// The block's byte slice within `input`.
    pub fn slice<'a>(&self, input: &'a [u8]) -> &'a [u8] {
        &input[self.start..self.end]
    }

    /// Block length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the block covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Splits `input` into `n` blocks of (nearly) equal size at arbitrary
/// byte offsets — the FAT split, O(1) per block.
pub fn fixed_blocks(input_len: usize, n: usize) -> Vec<Block> {
    let n = n.max(1);
    if input_len == 0 {
        return vec![Block {
            index: 0,
            start: 0,
            end: 0,
        }];
    }
    let chunk = input_len.div_ceil(n);
    (0..n)
        .map(|i| Block {
            index: i,
            start: (i * chunk).min(input_len),
            end: ((i + 1) * chunk).min(input_len),
        })
        .filter(|b| !b.is_empty() || b.index == 0)
        .collect()
}

pub use atgis_transducer::scan::{memchr, memchr2};

/// Finds the next occurrence of `marker` in `haystack` at or after
/// `from` — the "regular expression" of §4.1 specialised to a literal,
/// vectorised: candidate positions come from the SWAR [`memchr`] on
/// the marker's first byte, then the remainder is verified.
pub fn find_marker(haystack: &[u8], marker: &[u8], from: usize) -> Option<usize> {
    if marker.is_empty() || from >= haystack.len() {
        return None;
    }
    let first = marker[0];
    let limit = haystack.len().checked_sub(marker.len())?;
    let mut i = from;
    while i <= limit {
        match memchr(first, haystack, i) {
            Some(at) if at <= limit => {
                if &haystack[at..at + marker.len()] == marker {
                    return Some(at);
                }
                i = at + 1;
            }
            _ => return None,
        }
    }
    None
}

/// Splits `input` into at most `n` blocks whose starts (except the
/// first) coincide with `marker` occurrences — the PAT split. Every
/// marker occurrence lies at a block start or strictly inside a block;
/// no block starts mid-record (provided markers are genuine record
/// starts, the §3.5 caveat).
pub fn marker_blocks(input: &[u8], marker: &[u8], n: usize) -> Vec<Block> {
    let n = n.max(1);
    let len = input.len();
    if len == 0 {
        return vec![Block {
            index: 0,
            start: 0,
            end: 0,
        }];
    }
    let chunk = len.div_ceil(n);
    let mut starts = vec![0usize];
    for i in 1..n {
        let target = i * chunk;
        if target >= len {
            break;
        }
        match find_marker(input, marker, target) {
            Some(pos) if pos > *starts.last().expect("non-empty") => starts.push(pos),
            _ => {}
        }
    }
    let mut blocks = Vec::with_capacity(starts.len());
    for (i, &s) in starts.iter().enumerate() {
        let e = starts.get(i + 1).copied().unwrap_or(len);
        blocks.push(Block {
            index: i,
            start: s,
            end: e,
        });
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_blocks_cover_input_exactly() {
        let blocks = fixed_blocks(100, 7);
        assert_eq!(blocks.first().unwrap().start, 0);
        assert_eq!(blocks.last().unwrap().end, 100);
        for w in blocks.windows(2) {
            assert_eq!(w[0].end, w[1].start, "no gaps or overlaps");
        }
    }

    #[test]
    fn fixed_blocks_of_empty_input() {
        let blocks = fixed_blocks(0, 4);
        assert_eq!(blocks.len(), 1);
        assert!(blocks[0].is_empty());
    }

    #[test]
    fn more_blocks_than_bytes() {
        let blocks = fixed_blocks(3, 10);
        let total: usize = blocks.iter().map(Block::len).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn find_marker_basic() {
        let hay = b"aa<r>bb<r>cc";
        assert_eq!(find_marker(hay, b"<r>", 0), Some(2));
        assert_eq!(find_marker(hay, b"<r>", 3), Some(7));
        assert_eq!(find_marker(hay, b"<r>", 8), None);
        assert_eq!(find_marker(hay, b"", 0), None);
        assert_eq!(
            find_marker(b"ab", b"abc", 0),
            None,
            "marker longer than input"
        );
    }

    #[test]
    fn marker_blocks_start_at_markers() {
        // Records of 10 bytes each starting with 'R'.
        let mut input = Vec::new();
        for i in 0..20 {
            input.push(b'R');
            input.extend_from_slice(format!("record{i:03}").as_bytes());
        }
        let blocks = marker_blocks(&input, b"R", 4);
        assert!(blocks.len() >= 2);
        assert_eq!(blocks[0].start, 0);
        for b in &blocks[1..] {
            assert_eq!(input[b.start], b'R', "block must start at a marker");
        }
        assert_eq!(blocks.last().unwrap().end, input.len());
        for w in blocks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn marker_blocks_with_no_marker_yield_one_block() {
        let input = b"xxxxxxxxxxxxxxxxxxxx";
        let blocks = marker_blocks(input, b"Q", 4);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len(), input.len());
    }

    proptest! {
        #[test]
        fn fixed_blocks_partition(len in 0usize..5000, n in 1usize..32) {
            let blocks = fixed_blocks(len, n);
            let total: usize = blocks.iter().map(Block::len).sum();
            prop_assert_eq!(total, len);
            for w in blocks.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
        }

        #[test]
        fn marker_blocks_partition(
            records in prop::collection::vec(0u8..26, 1..50),
            n in 1usize..8,
        ) {
            let mut input = Vec::new();
            for &r in &records {
                input.push(b'#');
                input.extend(std::iter::repeat_n(b'a', r as usize));
            }
            let blocks = marker_blocks(&input, b"#", n);
            let total: usize = blocks.iter().map(Block::len).sum();
            prop_assert_eq!(total, input.len());
            for b in &blocks[1..] {
                prop_assert_eq!(input[b.start], b'#');
            }
        }

        #[test]
        fn find_marker_agrees_with_std(
            hay in prop::collection::vec(prop::sample::select(b"ab#".to_vec()), 0..200),
            from in 0usize..200,
        ) {
            let got = find_marker(&hay, b"#a", from);
            let want = if from < hay.len() {
                hay[from..]
                    .windows(2)
                    .position(|w| w == b"#a")
                    .map(|p| p + from)
            } else {
                None
            };
            prop_assert_eq!(got, want);
        }
    }
}
