//! Well-known text (WKT) rows — the OSM-W dataset flavour.
//!
//! "RDBMS with spatial extensions usually handle well-known text …
//! geometries contained inside comma or tab separated files. This
//! makes splitting the data a case of searching for newlines" (§2.2).
//! Each row is `id <TAB> WKT <TAB> key=value;key=value…`.
//!
//! * PAT mode splits at newlines and parses rows directly.
//! * FAT mode splits at arbitrary offsets; the fragment is a
//!   line-level periodically flushing transducer: the partial first
//!   line (head) and partial last line (tail) are kept as byte spans
//!   and joined at merge — spans are contiguous across block
//!   boundaries, so the spanning row is parsed straight out of the
//!   input.

use crate::feature::{MetadataFilter, RawFeature};
use crate::split::{fixed_blocks, marker_blocks, Block};
use crate::ParseError;
use atgis_geometry::{Geometry, LineString, MultiPolygon, Point, Polygon, Ring};

/// Parses one `id \t WKT \t tags` row spanning `input[start..end]`
/// (no trailing newline). Returns `None` for empty/filtered rows.
pub fn parse_row(
    input: &[u8],
    start: usize,
    end: usize,
    filter: &MetadataFilter,
) -> Result<Option<RawFeature>, ParseError> {
    let row = &input[start..end];
    if row.iter().all(|b| b.is_ascii_whitespace()) {
        return Ok(None);
    }
    let mut cols = row.split(|&b| b == b'\t');
    let id_col = cols
        .next()
        .ok_or_else(|| ParseError::syntax(start as u64, "missing id column"))?;
    let wkt_col = cols
        .next()
        .ok_or_else(|| ParseError::syntax(start as u64, "missing WKT column"))?;
    let tags_col = cols.next().unwrap_or(b"");

    let id: u64 = std::str::from_utf8(id_col)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| ParseError::syntax(start as u64, "bad id column"))?;
    if !filter.accepts_id(id) {
        return Ok(None);
    }
    if filter.needs_tags() {
        let tags = std::str::from_utf8(tags_col)
            .map_err(|_| ParseError::syntax(start as u64, "non-UTF8 tags"))?;
        let pairs = tags.split(';').filter_map(|kv| kv.split_once('='));
        if !filter.accepts_tags(pairs) {
            return Ok(None);
        }
    }

    let mut cur = WktCursor {
        text: std::str::from_utf8(wkt_col)
            .map_err(|_| ParseError::syntax(start as u64, "non-UTF8 WKT"))?,
        pos: 0,
        base: start + (wkt_col.as_ptr() as usize - row.as_ptr() as usize),
    };
    let geometry = cur.parse_geometry()?;
    Ok(Some(RawFeature {
        id,
        geometry,
        offset: start as u64,
        len: (end - start) as u32,
    }))
}

struct WktCursor<'a> {
    text: &'a str,
    pos: usize,
    base: usize,
}

impl<'a> WktCursor<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::syntax((self.base + self.pos) as u64, msg)
    }

    fn skip_ws(&mut self) {
        while self.text[self.pos..].starts_with(' ') {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.text[self.pos..].starts_with(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected {c:?}")))
        }
    }

    fn keyword(&mut self) -> &'a str {
        self.skip_ws();
        let rest = &self.text[self.pos..];
        let len = atgis_transducer::scan::alpha_span(rest.as_bytes(), 0);
        let kw = &rest[..len];
        self.pos += len;
        kw
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        let rest = &self.text[self.pos..];
        // Lane-at-a-time number-run scan (digits and `+ - . e E`).
        let len = atgis_transducer::scan::number_span(rest.as_bytes(), 0);
        if len == 0 {
            return Err(self.err("expected a number"));
        }
        let v = rest[..len]
            .parse::<f64>()
            .map_err(|e| self.err(format!("bad number: {e}")))?;
        self.pos += len;
        Ok(v)
    }

    /// `x y` pair.
    fn point(&mut self) -> Result<Point, ParseError> {
        let x = self.number()?;
        let y = self.number()?;
        Ok(Point::new(x, y))
    }

    /// `(x y, x y, …)`
    fn point_list(&mut self) -> Result<Vec<Point>, ParseError> {
        self.expect('(')?;
        let mut pts = vec![self.point()?];
        while self.eat(',') {
            pts.push(self.point()?);
        }
        self.expect(')')?;
        Ok(pts)
    }

    /// `((ring),(ring)…)`
    fn ring_list(&mut self) -> Result<Vec<Vec<Point>>, ParseError> {
        self.expect('(')?;
        let mut rings = vec![self.point_list()?];
        while self.eat(',') {
            rings.push(self.point_list()?);
        }
        self.expect(')')?;
        Ok(rings)
    }

    fn parse_geometry(&mut self) -> Result<Geometry, ParseError> {
        let kw = self.keyword().to_ascii_uppercase();
        match kw.as_str() {
            "POINT" => {
                self.expect('(')?;
                let p = self.point()?;
                self.expect(')')?;
                Ok(Geometry::Point(p))
            }
            "LINESTRING" => Ok(Geometry::LineString(LineString::new(self.point_list()?))),
            "POLYGON" => {
                let rings = self.ring_list()?;
                Ok(Geometry::Polygon(rings_to_polygon(rings)))
            }
            "MULTIPOLYGON" => {
                self.expect('(')?;
                let mut polys = vec![rings_to_polygon(self.ring_list()?)];
                while self.eat(',') {
                    polys.push(rings_to_polygon(self.ring_list()?));
                }
                self.expect(')')?;
                Ok(Geometry::MultiPolygon(MultiPolygon::new(polys)))
            }
            "GEOMETRYCOLLECTION" => {
                self.expect('(')?;
                let mut members = vec![self.parse_geometry()?];
                while self.eat(',') {
                    members.push(self.parse_geometry()?);
                }
                self.expect(')')?;
                Ok(Geometry::Collection(members))
            }
            other => Err(self.err(format!("unknown WKT keyword {other:?}"))),
        }
    }
}

fn rings_to_polygon(mut rings: Vec<Vec<Point>>) -> Polygon {
    let exterior = Ring::new(rings.remove(0));
    let holes = rings.into_iter().map(Ring::new).collect();
    Polygon::new(exterior, holes)
}

/// PAT parse: newline-aligned blocks, each row parsed directly.
pub fn parse_pat(input: &[u8], filter: &MetadataFilter) -> Result<Vec<RawFeature>, ParseError> {
    let mut out = Vec::new();
    for block in marker_blocks(input, b"\n", 4) {
        parse_block_rows(input, block.start, block.end, filter, &mut out)?;
    }
    Ok(out)
}

/// Parses every complete row that *starts* within `[start, end)`.
fn parse_block_rows(
    input: &[u8],
    start: usize,
    end: usize,
    filter: &MetadataFilter,
    out: &mut Vec<RawFeature>,
) -> Result<(), ParseError> {
    let mut pos = start;
    while pos < end {
        // Skip leading newlines (block starts at a marker = newline).
        while pos < end && input[pos] == b'\n' {
            pos += 1;
        }
        if pos >= end {
            break;
        }
        let row_end = crate::split::find_marker(input, b"\n", pos).unwrap_or(input.len());
        if let Some(f) = parse_row(input, pos, row_end, filter)? {
            out.push(f);
        }
        pos = row_end + 1;
    }
    Ok(())
}

/// The FAT fragment for WKT: a line-level periodically flushing
/// transducer whose head/tail are byte spans into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct WktFragment {
    /// Span of the partial first line `(start, end)`.
    head: (usize, usize),
    /// Features from complete rows inside the block.
    features: Vec<RawFeature>,
    /// Span of the partial last line.
    tail: (usize, usize),
    /// Whether the block contained at least one newline.
    saw_newline: bool,
}

/// Builds the FAT fragment for one block.
pub fn process_block(
    input: &[u8],
    block: Block,
    filter: &MetadataFilter,
) -> Result<WktFragment, ParseError> {
    let bytes = block.slice(input);
    let first_nl = crate::split::memchr(b'\n', bytes, 0);
    match first_nl {
        None => Ok(WktFragment {
            head: (block.start, block.end),
            features: Vec::new(),
            tail: (block.end, block.end),
            saw_newline: false,
        }),
        Some(nl) => {
            let last_nl = bytes.iter().rposition(|&b| b == b'\n').expect("nl exists");
            let mut features = Vec::new();
            parse_block_rows(
                input,
                block.start + nl + 1,
                block.start + last_nl + 1,
                filter,
                &mut features,
            )?;
            Ok(WktFragment {
                head: (block.start, block.start + nl),
                features,
                tail: (block.start + last_nl + 1, block.end),
                saw_newline: true,
            })
        }
    }
}

impl WktFragment {
    /// Drains the locally-completed features (see
    /// `geojson::fat::BlockFragment::drain_features` — same pipeline-
    /// composition role; WKT needs no speculation so there is a single
    /// stream).
    pub fn drain_features(&mut self) -> Vec<RawFeature> {
        std::mem::take(&mut self.features)
    }

    /// Merges two adjacent fragments; `self` must cover the bytes
    /// immediately preceding `other`.
    pub fn merge(
        mut self,
        mut other: WktFragment,
        input: &[u8],
        filter: &MetadataFilter,
    ) -> Result<WktFragment, ParseError> {
        debug_assert_eq!(self.tail.1, other.head.0, "fragments must be adjacent");
        match (self.saw_newline, other.saw_newline) {
            (false, false) => Ok(WktFragment {
                head: (self.head.0, other.head.1),
                features: Vec::new(),
                tail: (other.tail.0, other.tail.1),
                saw_newline: false,
            }),
            (false, true) => {
                other.head.0 = self.head.0;
                Ok(other)
            }
            (true, false) => {
                self.tail.1 = other.head.1;
                Ok(self)
            }
            (true, true) => {
                // The spanning row: left tail ++ right head.
                let (s, e) = (self.tail.0, other.head.1);
                if let Some(f) = parse_row(input, s, e, filter)? {
                    self.features.push(f);
                }
                self.features.append(&mut other.features);
                Ok(WktFragment {
                    head: self.head,
                    features: self.features,
                    tail: other.tail,
                    saw_newline: true,
                })
            }
        }
    }

    /// Resolves a fully merged fragment: head is the first row, tail
    /// the last.
    pub fn finalize(
        mut self,
        input: &[u8],
        filter: &MetadataFilter,
    ) -> Result<Vec<RawFeature>, ParseError> {
        let mut out = Vec::new();
        if let Some(f) = parse_row(input, self.head.0, self.head.1, filter)? {
            out.push(f);
        }
        out.append(&mut self.features);
        if self.tail.0 < self.tail.1 {
            if let Some(f) = parse_row(input, self.tail.0, self.tail.1, filter)? {
                out.push(f);
            }
        }
        Ok(out)
    }
}

/// FAT parse over `blocks` fixed-offset blocks (sequential merge).
pub fn parse_fat(
    input: &[u8],
    filter: &MetadataFilter,
    blocks: usize,
) -> Result<Vec<RawFeature>, ParseError> {
    let mut merged: Option<WktFragment> = None;
    for block in fixed_blocks(input.len(), blocks) {
        let frag = process_block(input, block, filter)?;
        merged = Some(match merged {
            None => frag,
            Some(acc) => acc.merge(frag, input, filter)?,
        });
    }
    match merged {
        None => Ok(Vec::new()),
        Some(m) => m.finalize(input, filter),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
1\tPOLYGON((0.0 0.0,1.0 0.0,1.0 1.0,0.0 1.0,0.0 0.0))\tname=sq;building=yes
2\tLINESTRING(1.1 0.0,1.2 1.0)\t
3\tPOINT(5.0 6.0)\tname=pt
4\tMULTIPOLYGON(((2.0 2.0,3.0 2.0,3.0 3.0,2.0 2.0)),((4.0 4.0,5.0 4.0,5.0 5.0,4.0 4.0)))\tbuilding=no
5\tGEOMETRYCOLLECTION(POINT(9.0 9.0),LINESTRING(1.1 0.0,1.2 1.0))\tnote=listing
6\tPOLYGON((0.0 0.0,4.0 0.0,4.0 4.0,0.0 4.0),(1.0 1.0,2.0 1.0,2.0 2.0,1.0 2.0))\t
";

    fn check(features: &[RawFeature]) {
        assert_eq!(features.len(), 6);
        assert!(matches!(features[0].geometry, Geometry::Polygon(_)));
        assert!(matches!(features[1].geometry, Geometry::LineString(_)));
        assert_eq!(features[2].geometry, Geometry::Point(Point::new(5.0, 6.0)));
        match &features[3].geometry {
            Geometry::MultiPolygon(mp) => assert_eq!(mp.polygons.len(), 2),
            g => panic!("{g:?}"),
        }
        assert!(matches!(features[4].geometry, Geometry::Collection(_)));
        match &features[5].geometry {
            Geometry::Polygon(p) => {
                assert_eq!(p.holes.len(), 1);
                assert!((p.area() - 15.0).abs() < 1e-12);
            }
            g => panic!("{g:?}"),
        }
    }

    #[test]
    fn pat_parses_sample() {
        let f = parse_pat(SAMPLE.as_bytes(), &MetadataFilter::All).unwrap();
        check(&f);
    }

    #[test]
    fn fat_parses_sample_any_block_count() {
        for blocks in 1..32 {
            let f = parse_fat(SAMPLE.as_bytes(), &MetadataFilter::All, blocks).unwrap();
            check(&f);
        }
    }

    #[test]
    fn fat_and_pat_agree() {
        let a = parse_pat(SAMPLE.as_bytes(), &MetadataFilter::All).unwrap();
        let b = parse_fat(SAMPLE.as_bytes(), &MetadataFilter::All, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn filters_apply() {
        let f = parse_pat(
            SAMPLE.as_bytes(),
            &MetadataFilter::KeyEquals {
                key: "building".into(),
                value: "yes".into(),
            },
        )
        .unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id, 1);
        let g = parse_fat(SAMPLE.as_bytes(), &MetadataFilter::IdBelow(3), 5).unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn offsets_allow_reparsing() {
        let input = SAMPLE.as_bytes();
        let features = parse_pat(input, &MetadataFilter::All).unwrap();
        for f in &features {
            let again = parse_row(
                input,
                f.offset as usize,
                f.offset as usize + f.len as usize,
                &MetadataFilter::All,
            )
            .unwrap()
            .unwrap();
            assert_eq!(again.geometry, f.geometry);
            assert_eq!(again.id, f.id);
        }
    }

    #[test]
    fn malformed_row_is_an_error() {
        let bad = b"1\tPOLYGON((0 0,1 0)\t\n";
        assert!(parse_pat(bad, &MetadataFilter::All).is_err());
        let worse = b"notanid\tPOINT(1 1)\t\n";
        assert!(parse_pat(worse, &MetadataFilter::All).is_err());
    }

    #[test]
    fn empty_input() {
        assert!(parse_pat(b"", &MetadataFilter::All).unwrap().is_empty());
        assert!(parse_fat(b"", &MetadataFilter::All, 4).unwrap().is_empty());
        assert!(parse_pat(b"\n\n", &MetadataFilter::All).unwrap().is_empty());
    }

    #[test]
    fn missing_trailing_newline() {
        let doc = "7\tPOINT(1.0 2.0)\t";
        let f = parse_fat(doc.as_bytes(), &MetadataFilter::All, 3).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id, 7);
    }

    #[test]
    fn scientific_notation_coordinates() {
        let doc = "8\tPOINT(1.5e2 -2.5E-1)\t\n";
        let f = parse_pat(doc.as_bytes(), &MetadataFilter::All).unwrap();
        assert_eq!(f[0].geometry, Geometry::Point(Point::new(150.0, -0.25)));
    }
}
