//! ST_Boundary and ST_IsSimple (Table 1, single-geometry operators).
//!
//! Both must "consider the geometry in its entirety", which is why the
//! paper maps them to *stateless* transducers over whole shapes rather
//! than periodically flushing edge-streams.

use crate::polygon::{Geometry, LineString};
use crate::segment::{segments_cross_properly, Segment};

/// Returns the boundary of a geometry per OGC semantics:
/// the endpoints of a linestring (empty when closed), the rings of a
/// polygon as linestrings, and the union of member boundaries for
/// multi-geometries. Points have an empty boundary.
pub fn boundary(g: &Geometry) -> Geometry {
    match g {
        Geometry::Point(_) => Geometry::Collection(Vec::new()),
        Geometry::LineString(ls) => {
            if ls.is_closed() || ls.points.len() < 2 {
                Geometry::Collection(Vec::new())
            } else {
                Geometry::Collection(vec![
                    Geometry::Point(ls.points[0]),
                    Geometry::Point(*ls.points.last().expect("len >= 2")),
                ])
            }
        }
        Geometry::Polygon(p) => {
            let mut rings = Vec::with_capacity(1 + p.holes.len());
            rings.push(ring_to_linestring(&p.exterior.points));
            for h in &p.holes {
                rings.push(ring_to_linestring(&h.points));
            }
            Geometry::Collection(rings)
        }
        Geometry::MultiPolygon(mp) => Geometry::Collection(
            mp.polygons
                .iter()
                .map(|p| boundary(&Geometry::Polygon(p.clone())))
                .collect(),
        ),
        Geometry::Collection(gs) => Geometry::Collection(gs.iter().map(boundary).collect()),
    }
}

fn ring_to_linestring(points: &[crate::point::Point]) -> Geometry {
    let mut pts = points.to_vec();
    if let Some(&first) = pts.first() {
        pts.push(first); // Close the ring explicitly.
    }
    Geometry::LineString(LineString::new(pts))
}

/// OGC simplicity: no self-intersections other than shared ring
/// endpoints. For polygons this checks that no two edges of any ring
/// cross properly and no two non-adjacent edges touch; for linestrings,
/// that the path does not revisit any point except a closing endpoint.
pub fn is_simple(g: &Geometry) -> bool {
    match g {
        Geometry::Point(_) => true,
        Geometry::LineString(ls) => {
            let segs: Vec<Segment> = ls.segments().collect();
            !any_improper_self_intersection(&segs, false)
        }
        Geometry::Polygon(p) => {
            let ext: Vec<Segment> = p.exterior.segments().collect();
            if any_improper_self_intersection(&ext, true) {
                return false;
            }
            for h in &p.holes {
                let hs: Vec<Segment> = h.segments().collect();
                if any_improper_self_intersection(&hs, true) {
                    return false;
                }
            }
            true
        }
        Geometry::MultiPolygon(mp) => mp
            .polygons
            .iter()
            .all(|p| is_simple(&Geometry::Polygon(p.clone()))),
        Geometry::Collection(gs) => gs.iter().all(is_simple),
    }
}

/// Quadratic self-intersection test. `cyclic` treats the segment list
/// as a closed ring, so the first and last segments count as adjacent.
fn any_improper_self_intersection(segs: &[Segment], cyclic: bool) -> bool {
    let n = segs.len();
    for i in 0..n {
        for j in (i + 1)..n {
            let adjacent = j == i + 1 || (cyclic && i == 0 && j == n - 1);
            if adjacent {
                // Adjacent edges legitimately share an endpoint; a
                // *proper* crossing is still an error.
                if segments_cross_properly(&segs[i], &segs[j]) {
                    return true;
                }
                continue;
            }
            if crate::segment::segments_intersect(&segs[i], &segs[j]) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::polygon::{unit_square, Polygon, Ring};

    #[test]
    fn square_is_simple() {
        assert!(is_simple(&Geometry::Polygon(unit_square())));
    }

    #[test]
    fn bowtie_is_not_simple() {
        let bowtie = Polygon::from_exterior(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
        ]);
        assert!(!is_simple(&Geometry::Polygon(bowtie)));
    }

    #[test]
    fn open_linestring_simplicity() {
        let zigzag = Geometry::LineString(LineString::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 0.0),
        ]));
        assert!(is_simple(&zigzag));
        let crossing = Geometry::LineString(LineString::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
        ]));
        assert!(!is_simple(&crossing));
    }

    #[test]
    fn point_is_simple_with_empty_boundary() {
        let p = Geometry::Point(Point::new(1.0, 1.0));
        assert!(is_simple(&p));
        match boundary(&p) {
            Geometry::Collection(c) => assert!(c.is_empty()),
            other => panic!("expected empty collection, got {other:?}"),
        }
    }

    #[test]
    fn linestring_boundary_is_its_endpoints() {
        let ls = Geometry::LineString(LineString::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 3.0),
        ]));
        match boundary(&ls) {
            Geometry::Collection(c) => {
                assert_eq!(c.len(), 2);
                assert_eq!(c[0], Geometry::Point(Point::new(0.0, 0.0)));
                assert_eq!(c[1], Geometry::Point(Point::new(2.0, 3.0)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn closed_linestring_has_empty_boundary() {
        let ls = Geometry::LineString(LineString::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(0.0, 0.0),
        ]));
        match boundary(&ls) {
            Geometry::Collection(c) => assert!(c.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn polygon_boundary_contains_all_rings() {
        let hole = Ring::new(vec![
            Point::new(0.25, 0.25),
            Point::new(0.75, 0.25),
            Point::new(0.75, 0.75),
        ]);
        let poly = Polygon::new(unit_square().exterior, vec![hole]);
        match boundary(&Geometry::Polygon(poly)) {
            Geometry::Collection(c) => {
                assert_eq!(c.len(), 2);
                for ring in &c {
                    match ring {
                        Geometry::LineString(ls) => assert!(ls.is_closed()),
                        other => panic!("boundary piece not a linestring: {other:?}"),
                    }
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn boundary_length_equals_perimeter() {
        let poly = unit_square();
        let b = boundary(&Geometry::Polygon(poly.clone()));
        assert_eq!(b.perimeter(), poly.perimeter());
    }
}
